#!/usr/bin/env bash
# End-to-end smoke of the sharded campaign service: boots campaignd with two
# workers and a Prometheus endpoint, scrapes /metrics mid-run, SIGKILLs one
# worker process, and then requires a clean exit with the full scenario
# count in the merged report — proving the steal/reassign/restart machinery
# survives a real process death, not just the in-process test double.
#
# Usage: scripts/campaignd_smoke.sh [BUILD_DIR] [OUT_DIR]
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-campaignd-smoke}"
CAMPAIGND="$BUILD_DIR/examples/campaignd"
[ -x "$CAMPAIGND" ] || { echo "FAIL: $CAMPAIGND not built" >&2; exit 1; }

mkdir -p "$OUT_DIR"
SPEC="$OUT_DIR/job.json"
REPORT="$OUT_DIR/report.json"
LOG="$OUT_DIR/campaignd.log"
METRICS="$OUT_DIR/metrics.prom"
EXPECTED=48

# 24 noise levels x 2 upset rates: uniform-cost scenarios, long enough that
# the mid-run scrape and the worker kill land while the sweep is in flight.
python3 - "$SPEC" <<'EOF'
import json, sys
spec = {
    "variants": ["reconfigured-hw"],
    "parts": ["xc3s200"],
    "ports": ["jcap"],
    "noise_levels": [1e-3 * (1 + 0.05 * i) for i in range(24)],
    "upset_rates": [0.0, 0.5],
    "cycles": 6,
    "campaign_seed": 20080808,
}
json.dump(spec, open(sys.argv[1], "w"))
EOF

"$CAMPAIGND" --spec "$SPEC" --workers 2 --batch 1 \
    --http-port 0 --json --out "$REPORT" \
    --spool "$OUT_DIR/job.spool" 2> "$LOG" &
DAEMON=$!

# The bound port is printed to stderr once the listener is up (before the
# run starts), so the scrape below can never miss the server: connections
# queue in the listen backlog until the event loop accepts them.
PORT=""
for _ in $(seq 1 100); do
    PORT=$(sed -n 's/.*serving \/metrics on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$LOG" | head -1)
    [ -n "$PORT" ] && break
    if ! kill -0 "$DAEMON" 2>/dev/null; then
        cat "$LOG" >&2
        echo "FAIL: campaignd died before serving /metrics" >&2
        exit 1
    fi
    sleep 0.1
done
[ -n "$PORT" ] || { cat "$LOG" >&2; echo "FAIL: no /metrics port in $LOG" >&2; exit 1; }

python3 - "$PORT" "$METRICS" <<'EOF'
import sys, urllib.request
body = urllib.request.urlopen(
    f"http://127.0.0.1:{sys.argv[1]}/metrics", timeout=60).read().decode()
open(sys.argv[2], "w").write(body)
assert "svc_workers_alive" in body, "svc gauges missing from scrape"
assert "svc_scenarios_committed_total" in body, "svc counters missing from scrape"
EOF

# SIGKILL one worker mid-run; the coordinator must requeue its in-flight
# range (and restart it), and the final report must not lose a scenario.
VICTIM=""
for _ in $(seq 1 100); do
    VICTIM=$(pgrep -P "$DAEMON" -f 'campaign-worker' | head -1 || true)
    [ -n "$VICTIM" ] && break
    sleep 0.05
done
[ -n "$VICTIM" ] || { echo "FAIL: no worker process found to kill" >&2; exit 1; }
kill -KILL "$VICTIM"

if ! wait "$DAEMON"; then
    cat "$LOG" >&2
    echo "FAIL: campaignd exited non-zero after worker kill" >&2
    exit 1
fi
cat "$LOG"

python3 - "$REPORT" "$EXPECTED" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
expected = int(sys.argv[2])
count = report["campaign"]["scenario_count"]
rows = len(report["scenarios"])
assert count == expected, f"report claims {count} scenarios, expected {expected}"
assert rows == expected, f"report carries {rows} scenario rows, expected {expected}"
EOF

# The kill must actually have been absorbed by the service: either the dead
# worker's range was reassigned or the worker was restarted (usually both).
REASSIGNED=$(sed -n 's/.* \([0-9]*\) reassigned.*/\1/p' "$LOG" | head -1)
RESTARTS=$(sed -n 's/.* \([0-9]*\) restarts.*/\1/p' "$LOG" | head -1)
if [ "${REASSIGNED:-0}" -eq 0 ] && [ "${RESTARTS:-0}" -eq 0 ]; then
    echo "FAIL: worker kill left no trace (0 reassigned, 0 restarts)" >&2
    exit 1
fi

echo "PASS: $EXPECTED/$EXPECTED scenarios after worker kill" \
     "(reassigned=$REASSIGNED restarts=$RESTARTS)"
