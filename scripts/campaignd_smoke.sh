#!/usr/bin/env bash
# End-to-end smoke of the sharded campaign service: boots campaignd with two
# workers and a Prometheus endpoint, scrapes /metrics mid-run, SIGKILLs one
# worker process, and then requires a clean exit with the full scenario
# count in the merged report — proving the steal/reassign/restart machinery
# survives a real process death, not just the in-process test double.
#
# After the kill smoke, a chaos drill matrix runs the seeded fault-injection
# harness through the real binary: worker hang (heartbeat reap), torn frame,
# mid-batch crash and slow straggler must all finish with a report
# byte-identical to a clean run's, and a torn checkpoint must abort the run
# and then complete via --resume. Every drill is deterministic (fixed
# --chaos-seed), so a failure replays exactly.
#
# Usage: scripts/campaignd_smoke.sh [BUILD_DIR] [OUT_DIR]
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-campaignd-smoke}"
CAMPAIGND="$BUILD_DIR/examples/campaignd"
[ -x "$CAMPAIGND" ] || { echo "FAIL: $CAMPAIGND not built" >&2; exit 1; }

mkdir -p "$OUT_DIR"
SPEC="$OUT_DIR/job.json"
REPORT="$OUT_DIR/report.json"
LOG="$OUT_DIR/campaignd.log"
METRICS="$OUT_DIR/metrics.prom"
EXPECTED=48

# 24 noise levels x 2 upset rates: uniform-cost scenarios, long enough that
# the mid-run scrape and the worker kill land while the sweep is in flight.
python3 - "$SPEC" <<'EOF'
import json, sys
spec = {
    "variants": ["reconfigured-hw"],
    "parts": ["xc3s200"],
    "ports": ["jcap"],
    "noise_levels": [1e-3 * (1 + 0.05 * i) for i in range(24)],
    "upset_rates": [0.0, 0.5],
    "cycles": 6,
    "campaign_seed": 20080808,
}
json.dump(spec, open(sys.argv[1], "w"))
EOF

"$CAMPAIGND" --spec "$SPEC" --workers 2 --batch 1 \
    --http-port 0 --json --out "$REPORT" \
    --spool "$OUT_DIR/job.spool" 2> "$LOG" &
DAEMON=$!

# The bound port is printed to stderr once the listener is up (before the
# run starts), so the scrape below can never miss the server: connections
# queue in the listen backlog until the event loop accepts them.
PORT=""
for _ in $(seq 1 100); do
    PORT=$(sed -n 's/.*serving \/metrics on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$LOG" | head -1)
    [ -n "$PORT" ] && break
    if ! kill -0 "$DAEMON" 2>/dev/null; then
        cat "$LOG" >&2
        echo "FAIL: campaignd died before serving /metrics" >&2
        exit 1
    fi
    sleep 0.1
done
[ -n "$PORT" ] || { cat "$LOG" >&2; echo "FAIL: no /metrics port in $LOG" >&2; exit 1; }

python3 - "$PORT" "$METRICS" <<'EOF'
import sys, urllib.request
body = urllib.request.urlopen(
    f"http://127.0.0.1:{sys.argv[1]}/metrics", timeout=60).read().decode()
open(sys.argv[2], "w").write(body)
assert "svc_workers_alive" in body, "svc gauges missing from scrape"
assert "svc_scenarios_committed_total" in body, "svc counters missing from scrape"
EOF

# SIGKILL one worker mid-run; the coordinator must requeue its in-flight
# range (and restart it), and the final report must not lose a scenario.
VICTIM=""
for _ in $(seq 1 100); do
    VICTIM=$(pgrep -P "$DAEMON" -f 'campaign-worker' | head -1 || true)
    [ -n "$VICTIM" ] && break
    sleep 0.05
done
[ -n "$VICTIM" ] || { echo "FAIL: no worker process found to kill" >&2; exit 1; }
kill -KILL "$VICTIM"

if ! wait "$DAEMON"; then
    cat "$LOG" >&2
    echo "FAIL: campaignd exited non-zero after worker kill" >&2
    exit 1
fi
cat "$LOG"

python3 - "$REPORT" "$EXPECTED" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
expected = int(sys.argv[2])
count = report["campaign"]["scenario_count"]
rows = len(report["scenarios"])
assert count == expected, f"report claims {count} scenarios, expected {expected}"
assert rows == expected, f"report carries {rows} scenario rows, expected {expected}"
EOF

# The kill must actually have been absorbed by the service: either the dead
# worker's range was reassigned or the worker was restarted (usually both).
REASSIGNED=$(sed -n 's/.* \([0-9]*\) reassigned.*/\1/p' "$LOG" | head -1)
RESTARTS=$(sed -n 's/.* \([0-9]*\) restarts.*/\1/p' "$LOG" | head -1)
if [ "${REASSIGNED:-0}" -eq 0 ] && [ "${RESTARTS:-0}" -eq 0 ]; then
    echo "FAIL: worker kill left no trace (0 reassigned, 0 restarts)" >&2
    exit 1
fi

echo "PASS: $EXPECTED/$EXPECTED scenarios after worker kill" \
     "(reassigned=$REASSIGNED restarts=$RESTARTS)"

# ---------------------------------------------------------------- chaos drills

DRILL_SPEC="$OUT_DIR/drill.json"
DRILL_EXPECTED=12
python3 - "$DRILL_SPEC" <<'EOF'
import json, sys
spec = {
    "variants": ["reconfigured-hw"],
    "parts": ["xc3s200"],
    "ports": ["jcap"],
    "noise_levels": [1e-3 * (1 + 0.05 * i) for i in range(12)],
    "cycles": 2,
    "campaign_seed": 20260808,
}
json.dump(spec, open(sys.argv[1], "w"))
EOF

# Clean reference rendering: every drill's report must match it byte for
# byte — fault recovery may cost wall time, never report drift.
REFERENCE="$OUT_DIR/drill_reference.json"
"$CAMPAIGND" --spec "$DRILL_SPEC" --workers 2 --batch 1 --json \
    --out "$REFERENCE" --spool "$OUT_DIR/drill_ref.spool" \
    2> "$OUT_DIR/drill_reference.log"

# run_drill NAME EXPECTED_RC EXTRA_FLAGS... — runs campaignd under one fault
# category; on EXPECTED_RC=0 the report must equal the clean reference.
run_drill() {
    local name="$1" want_rc="$2"
    shift 2
    local out="$OUT_DIR/drill_$name.json"
    local log="$OUT_DIR/drill_$name.log"
    local rc=0
    "$CAMPAIGND" --spec "$DRILL_SPEC" --workers 2 --batch 1 --json \
        --out "$out" --spool "$OUT_DIR/drill_$name.spool" \
        --metrics-json "$OUT_DIR/drill_$name.metrics.json" \
        --chaos-seed 7 "$@" 2> "$log" || rc=$?
    if [ "$rc" -ne "$want_rc" ]; then
        cat "$log" >&2
        echo "FAIL: drill '$name' exited $rc (wanted $want_rc)" >&2
        exit 1
    fi
    if [ "$want_rc" -eq 0 ] && ! cmp -s "$out" "$REFERENCE"; then
        cat "$log" >&2
        echo "FAIL: drill '$name' report differs from the clean reference" >&2
        exit 1
    fi
    echo "PASS: drill '$name' (exit $rc)"
}

# A hung worker is reaped by heartbeats and its range re-run clean.
run_drill hang 0 --chaos-hang 1.0 --chaos-only-worker 0 \
    --heartbeat-ms 50 --heartbeat-miss-limit 2 --liveness-timeout-ms 300 \
    --max-restarts 2
grep -q "liveness kills" "$OUT_DIR/drill_hang.log" \
    || { echo "FAIL: hang drill logged no liveness kill" >&2; exit 1; }

# A torn frame kills the writer mid-write; the dead worker's range requeues.
run_drill torn 0 --chaos-torn 1.0 --chaos-only-worker 0 --max-restarts 2

# A worker that dies after computing (before sending) every first batch.
run_drill crash 0 --chaos-crash mid-batch --chaos-crash-after 1 \
    --max-restarts 4 --restart-backoff-ms 10

# A straggler 60ms/batch slower than the fleet: with stealing disabled the
# speculation path must re-run its remainder on the idle worker.
run_drill straggler 0 --chaos-slow 1.0 --chaos-slow-ms 60 \
    --chaos-only-worker 0 --shard 6 --steal-min 1000 \
    --straggler-factor 2.0 --straggler-min-ms 40
grep -q " [1-9][0-9]* speculations" "$OUT_DIR/drill_straggler.log" \
    || { echo "FAIL: straggler drill logged no speculation" >&2; exit 1; }

# A torn checkpoint append aborts the run (non-zero exit, as a crash
# would); --resume against the torn journal must finish byte-identically.
DRILL_CKPT="$OUT_DIR/drill.ckpt"
run_drill tear_ckpt 1 --checkpoint "$DRILL_CKPT" --chaos-tear-checkpoint 4 \
    --chaos-tear-bytes 9
run_drill resume_after_tear 0 --checkpoint "$DRILL_CKPT" --resume
grep -q "resumed" "$OUT_DIR/drill_resume_after_tear.log" \
    || { echo "FAIL: resume drill replayed nothing" >&2; exit 1; }

echo "PASS: chaos drill matrix ($DRILL_EXPECTED scenarios per drill)"
