# Empty dependencies file for bench_device_fit.
# This may be replaced when dependencies are built.
