file(REMOVE_RECURSE
  "CMakeFiles/bench_reconfig_throughput.dir/bench_reconfig_throughput.cpp.o"
  "CMakeFiles/bench_reconfig_throughput.dir/bench_reconfig_throughput.cpp.o.d"
  "bench_reconfig_throughput"
  "bench_reconfig_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reconfig_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
