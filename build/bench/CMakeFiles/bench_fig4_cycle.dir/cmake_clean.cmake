file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_cycle.dir/bench_fig4_cycle.cpp.o"
  "CMakeFiles/bench_fig4_cycle.dir/bench_fig4_cycle.cpp.o.d"
  "bench_fig4_cycle"
  "bench_fig4_cycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_cycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
