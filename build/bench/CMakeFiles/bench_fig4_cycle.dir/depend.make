# Empty dependencies file for bench_fig4_cycle.
# This may be replaced when dependencies are built.
