file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_sinusgen.dir/bench_fig3_sinusgen.cpp.o"
  "CMakeFiles/bench_fig3_sinusgen.dir/bench_fig3_sinusgen.cpp.o.d"
  "bench_fig3_sinusgen"
  "bench_fig3_sinusgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_sinusgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
