file(REMOVE_RECURSE
  "CMakeFiles/bench_headline_speedup.dir/bench_headline_speedup.cpp.o"
  "CMakeFiles/bench_headline_speedup.dir/bench_headline_speedup.cpp.o.d"
  "bench_headline_speedup"
  "bench_headline_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_headline_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
