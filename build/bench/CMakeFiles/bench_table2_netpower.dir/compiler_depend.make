# Empty compiler generated dependencies file for bench_table2_netpower.
# This may be replaced when dependencies are built.
