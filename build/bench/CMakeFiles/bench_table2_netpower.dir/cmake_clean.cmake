file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_netpower.dir/bench_table2_netpower.cpp.o"
  "CMakeFiles/bench_table2_netpower.dir/bench_table2_netpower.cpp.o.d"
  "bench_table2_netpower"
  "bench_table2_netpower.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_netpower.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
