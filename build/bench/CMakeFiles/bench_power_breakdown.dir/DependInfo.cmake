
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_power_breakdown.cpp" "bench/CMakeFiles/bench_power_breakdown.dir/bench_power_breakdown.cpp.o" "gcc" "bench/CMakeFiles/bench_power_breakdown.dir/bench_power_breakdown.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/refpga_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/refpga_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/refpga_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/refpga_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/par/CMakeFiles/refpga_par.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/refpga_power.dir/DependInfo.cmake"
  "/root/repo/build/src/reconfig/CMakeFiles/refpga_reconfig.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/refpga_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/analog/CMakeFiles/refpga_analog.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/refpga_app.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
