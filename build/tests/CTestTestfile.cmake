# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_common "/root/repo/build/tests/test_common")
set_tests_properties(test_common PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;7;refpga_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_fabric "/root/repo/build/tests/test_fabric")
set_tests_properties(test_fabric PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;8;refpga_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_netlist "/root/repo/build/tests/test_netlist")
set_tests_properties(test_netlist PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;9;refpga_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sim "/root/repo/build/tests/test_sim")
set_tests_properties(test_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;10;refpga_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_par "/root/repo/build/tests/test_par")
set_tests_properties(test_par PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;11;refpga_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_power "/root/repo/build/tests/test_power")
set_tests_properties(test_power PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;12;refpga_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_reconfig "/root/repo/build/tests/test_reconfig")
set_tests_properties(test_reconfig PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;13;refpga_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_soc "/root/repo/build/tests/test_soc")
set_tests_properties(test_soc PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;14;refpga_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_analog "/root/repo/build/tests/test_analog")
set_tests_properties(test_analog PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;15;refpga_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_app_golden "/root/repo/build/tests/test_app_golden")
set_tests_properties(test_app_golden PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;16;refpga_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_app_hw "/root/repo/build/tests/test_app_hw")
set_tests_properties(test_app_hw PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;17;refpga_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_app_software "/root/repo/build/tests/test_app_software")
set_tests_properties(test_app_software PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;18;refpga_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_system "/root/repo/build/tests/test_system")
set_tests_properties(test_system PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;19;refpga_test;/root/repo/tests/CMakeLists.txt;0;")
