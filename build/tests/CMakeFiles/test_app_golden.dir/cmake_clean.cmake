file(REMOVE_RECURSE
  "CMakeFiles/test_app_golden.dir/test_app_golden.cpp.o"
  "CMakeFiles/test_app_golden.dir/test_app_golden.cpp.o.d"
  "test_app_golden"
  "test_app_golden.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_app_golden.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
