# Empty dependencies file for test_app_golden.
# This may be replaced when dependencies are built.
