# Empty dependencies file for test_app_software.
# This may be replaced when dependencies are built.
