file(REMOVE_RECURSE
  "CMakeFiles/test_app_software.dir/test_app_software.cpp.o"
  "CMakeFiles/test_app_software.dir/test_app_software.cpp.o.d"
  "test_app_software"
  "test_app_software.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_app_software.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
