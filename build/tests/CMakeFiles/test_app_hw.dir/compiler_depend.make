# Empty compiler generated dependencies file for test_app_hw.
# This may be replaced when dependencies are built.
