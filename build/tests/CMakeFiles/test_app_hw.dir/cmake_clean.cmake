file(REMOVE_RECURSE
  "CMakeFiles/test_app_hw.dir/test_app_hw.cpp.o"
  "CMakeFiles/test_app_hw.dir/test_app_hw.cpp.o.d"
  "test_app_hw"
  "test_app_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_app_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
