# Empty dependencies file for power_optimization.
# This may be replaced when dependencies are built.
