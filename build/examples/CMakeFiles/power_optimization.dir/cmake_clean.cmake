file(REMOVE_RECURSE
  "CMakeFiles/power_optimization.dir/power_optimization.cpp.o"
  "CMakeFiles/power_optimization.dir/power_optimization.cpp.o.d"
  "power_optimization"
  "power_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
