file(REMOVE_RECURSE
  "CMakeFiles/level_measurement.dir/level_measurement.cpp.o"
  "CMakeFiles/level_measurement.dir/level_measurement.cpp.o.d"
  "level_measurement"
  "level_measurement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/level_measurement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
