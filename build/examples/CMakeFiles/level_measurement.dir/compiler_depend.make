# Empty compiler generated dependencies file for level_measurement.
# This may be replaced when dependencies are built.
