# Empty compiler generated dependencies file for partial_reconfig.
# This may be replaced when dependencies are built.
