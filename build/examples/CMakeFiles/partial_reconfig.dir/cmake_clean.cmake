file(REMOVE_RECURSE
  "CMakeFiles/partial_reconfig.dir/partial_reconfig.cpp.o"
  "CMakeFiles/partial_reconfig.dir/partial_reconfig.cpp.o.d"
  "partial_reconfig"
  "partial_reconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partial_reconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
