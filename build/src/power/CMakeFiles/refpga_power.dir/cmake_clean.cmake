file(REMOVE_RECURSE
  "CMakeFiles/refpga_power.dir/estimator.cpp.o"
  "CMakeFiles/refpga_power.dir/estimator.cpp.o.d"
  "librefpga_power.a"
  "librefpga_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refpga_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
