file(REMOVE_RECURSE
  "librefpga_power.a"
)
