# Empty compiler generated dependencies file for refpga_power.
# This may be replaced when dependencies are built.
