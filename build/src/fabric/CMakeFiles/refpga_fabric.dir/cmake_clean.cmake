file(REMOVE_RECURSE
  "CMakeFiles/refpga_fabric.dir/device.cpp.o"
  "CMakeFiles/refpga_fabric.dir/device.cpp.o.d"
  "CMakeFiles/refpga_fabric.dir/part_catalog.cpp.o"
  "CMakeFiles/refpga_fabric.dir/part_catalog.cpp.o.d"
  "CMakeFiles/refpga_fabric.dir/wire.cpp.o"
  "CMakeFiles/refpga_fabric.dir/wire.cpp.o.d"
  "librefpga_fabric.a"
  "librefpga_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refpga_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
