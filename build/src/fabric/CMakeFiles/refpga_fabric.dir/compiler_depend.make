# Empty compiler generated dependencies file for refpga_fabric.
# This may be replaced when dependencies are built.
