file(REMOVE_RECURSE
  "librefpga_fabric.a"
)
