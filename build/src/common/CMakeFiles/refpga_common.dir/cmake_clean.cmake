file(REMOVE_RECURSE
  "CMakeFiles/refpga_common.dir/log.cpp.o"
  "CMakeFiles/refpga_common.dir/log.cpp.o.d"
  "CMakeFiles/refpga_common.dir/table.cpp.o"
  "CMakeFiles/refpga_common.dir/table.cpp.o.d"
  "librefpga_common.a"
  "librefpga_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refpga_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
