# Empty compiler generated dependencies file for refpga_common.
# This may be replaced when dependencies are built.
