file(REMOVE_RECURSE
  "librefpga_common.a"
)
