file(REMOVE_RECURSE
  "librefpga_app.a"
)
