file(REMOVE_RECURSE
  "CMakeFiles/refpga_app.dir/golden.cpp.o"
  "CMakeFiles/refpga_app.dir/golden.cpp.o.d"
  "CMakeFiles/refpga_app.dir/hw_modules.cpp.o"
  "CMakeFiles/refpga_app.dir/hw_modules.cpp.o.d"
  "CMakeFiles/refpga_app.dir/software.cpp.o"
  "CMakeFiles/refpga_app.dir/software.cpp.o.d"
  "CMakeFiles/refpga_app.dir/system.cpp.o"
  "CMakeFiles/refpga_app.dir/system.cpp.o.d"
  "CMakeFiles/refpga_app.dir/tables.cpp.o"
  "CMakeFiles/refpga_app.dir/tables.cpp.o.d"
  "librefpga_app.a"
  "librefpga_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refpga_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
