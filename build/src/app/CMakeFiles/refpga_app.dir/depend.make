# Empty dependencies file for refpga_app.
# This may be replaced when dependencies are built.
