file(REMOVE_RECURSE
  "CMakeFiles/refpga_netlist.dir/builder.cpp.o"
  "CMakeFiles/refpga_netlist.dir/builder.cpp.o.d"
  "CMakeFiles/refpga_netlist.dir/drc.cpp.o"
  "CMakeFiles/refpga_netlist.dir/drc.cpp.o.d"
  "CMakeFiles/refpga_netlist.dir/netlist.cpp.o"
  "CMakeFiles/refpga_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/refpga_netlist.dir/stats.cpp.o"
  "CMakeFiles/refpga_netlist.dir/stats.cpp.o.d"
  "librefpga_netlist.a"
  "librefpga_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refpga_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
