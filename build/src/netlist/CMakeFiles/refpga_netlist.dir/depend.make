# Empty dependencies file for refpga_netlist.
# This may be replaced when dependencies are built.
