file(REMOVE_RECURSE
  "librefpga_netlist.a"
)
