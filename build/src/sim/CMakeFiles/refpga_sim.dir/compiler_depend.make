# Empty compiler generated dependencies file for refpga_sim.
# This may be replaced when dependencies are built.
