file(REMOVE_RECURSE
  "librefpga_sim.a"
)
