file(REMOVE_RECURSE
  "CMakeFiles/refpga_sim.dir/activity.cpp.o"
  "CMakeFiles/refpga_sim.dir/activity.cpp.o.d"
  "CMakeFiles/refpga_sim.dir/simulator.cpp.o"
  "CMakeFiles/refpga_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/refpga_sim.dir/vcd.cpp.o"
  "CMakeFiles/refpga_sim.dir/vcd.cpp.o.d"
  "librefpga_sim.a"
  "librefpga_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refpga_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
