file(REMOVE_RECURSE
  "CMakeFiles/refpga_reconfig.dir/bitstream.cpp.o"
  "CMakeFiles/refpga_reconfig.dir/bitstream.cpp.o.d"
  "CMakeFiles/refpga_reconfig.dir/busmacro.cpp.o"
  "CMakeFiles/refpga_reconfig.dir/busmacro.cpp.o.d"
  "CMakeFiles/refpga_reconfig.dir/config_port.cpp.o"
  "CMakeFiles/refpga_reconfig.dir/config_port.cpp.o.d"
  "CMakeFiles/refpga_reconfig.dir/controller.cpp.o"
  "CMakeFiles/refpga_reconfig.dir/controller.cpp.o.d"
  "CMakeFiles/refpga_reconfig.dir/scrubber.cpp.o"
  "CMakeFiles/refpga_reconfig.dir/scrubber.cpp.o.d"
  "librefpga_reconfig.a"
  "librefpga_reconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refpga_reconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
