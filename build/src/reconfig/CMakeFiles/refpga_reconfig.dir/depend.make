# Empty dependencies file for refpga_reconfig.
# This may be replaced when dependencies are built.
