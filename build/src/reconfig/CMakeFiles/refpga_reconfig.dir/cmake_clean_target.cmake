file(REMOVE_RECURSE
  "librefpga_reconfig.a"
)
