
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reconfig/bitstream.cpp" "src/reconfig/CMakeFiles/refpga_reconfig.dir/bitstream.cpp.o" "gcc" "src/reconfig/CMakeFiles/refpga_reconfig.dir/bitstream.cpp.o.d"
  "/root/repo/src/reconfig/busmacro.cpp" "src/reconfig/CMakeFiles/refpga_reconfig.dir/busmacro.cpp.o" "gcc" "src/reconfig/CMakeFiles/refpga_reconfig.dir/busmacro.cpp.o.d"
  "/root/repo/src/reconfig/config_port.cpp" "src/reconfig/CMakeFiles/refpga_reconfig.dir/config_port.cpp.o" "gcc" "src/reconfig/CMakeFiles/refpga_reconfig.dir/config_port.cpp.o.d"
  "/root/repo/src/reconfig/controller.cpp" "src/reconfig/CMakeFiles/refpga_reconfig.dir/controller.cpp.o" "gcc" "src/reconfig/CMakeFiles/refpga_reconfig.dir/controller.cpp.o.d"
  "/root/repo/src/reconfig/scrubber.cpp" "src/reconfig/CMakeFiles/refpga_reconfig.dir/scrubber.cpp.o" "gcc" "src/reconfig/CMakeFiles/refpga_reconfig.dir/scrubber.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/refpga_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/refpga_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/refpga_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/par/CMakeFiles/refpga_par.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/refpga_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
