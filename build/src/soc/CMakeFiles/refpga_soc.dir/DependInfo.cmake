
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/soc/assembler.cpp" "src/soc/CMakeFiles/refpga_soc.dir/assembler.cpp.o" "gcc" "src/soc/CMakeFiles/refpga_soc.dir/assembler.cpp.o.d"
  "/root/repo/src/soc/cpu.cpp" "src/soc/CMakeFiles/refpga_soc.dir/cpu.cpp.o" "gcc" "src/soc/CMakeFiles/refpga_soc.dir/cpu.cpp.o.d"
  "/root/repo/src/soc/fabric_macros.cpp" "src/soc/CMakeFiles/refpga_soc.dir/fabric_macros.cpp.o" "gcc" "src/soc/CMakeFiles/refpga_soc.dir/fabric_macros.cpp.o.d"
  "/root/repo/src/soc/isa.cpp" "src/soc/CMakeFiles/refpga_soc.dir/isa.cpp.o" "gcc" "src/soc/CMakeFiles/refpga_soc.dir/isa.cpp.o.d"
  "/root/repo/src/soc/memory.cpp" "src/soc/CMakeFiles/refpga_soc.dir/memory.cpp.o" "gcc" "src/soc/CMakeFiles/refpga_soc.dir/memory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/refpga_common.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/refpga_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/refpga_fabric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
