# Empty dependencies file for refpga_soc.
# This may be replaced when dependencies are built.
