file(REMOVE_RECURSE
  "CMakeFiles/refpga_soc.dir/assembler.cpp.o"
  "CMakeFiles/refpga_soc.dir/assembler.cpp.o.d"
  "CMakeFiles/refpga_soc.dir/cpu.cpp.o"
  "CMakeFiles/refpga_soc.dir/cpu.cpp.o.d"
  "CMakeFiles/refpga_soc.dir/fabric_macros.cpp.o"
  "CMakeFiles/refpga_soc.dir/fabric_macros.cpp.o.d"
  "CMakeFiles/refpga_soc.dir/isa.cpp.o"
  "CMakeFiles/refpga_soc.dir/isa.cpp.o.d"
  "CMakeFiles/refpga_soc.dir/memory.cpp.o"
  "CMakeFiles/refpga_soc.dir/memory.cpp.o.d"
  "librefpga_soc.a"
  "librefpga_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refpga_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
