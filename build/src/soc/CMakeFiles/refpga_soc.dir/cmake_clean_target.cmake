file(REMOVE_RECURSE
  "librefpga_soc.a"
)
