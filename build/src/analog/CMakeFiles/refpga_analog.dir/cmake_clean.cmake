file(REMOVE_RECURSE
  "CMakeFiles/refpga_analog.dir/delta_sigma.cpp.o"
  "CMakeFiles/refpga_analog.dir/delta_sigma.cpp.o.d"
  "CMakeFiles/refpga_analog.dir/dsp.cpp.o"
  "CMakeFiles/refpga_analog.dir/dsp.cpp.o.d"
  "CMakeFiles/refpga_analog.dir/frontend.cpp.o"
  "CMakeFiles/refpga_analog.dir/frontend.cpp.o.d"
  "CMakeFiles/refpga_analog.dir/tank.cpp.o"
  "CMakeFiles/refpga_analog.dir/tank.cpp.o.d"
  "librefpga_analog.a"
  "librefpga_analog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refpga_analog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
