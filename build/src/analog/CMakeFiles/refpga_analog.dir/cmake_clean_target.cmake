file(REMOVE_RECURSE
  "librefpga_analog.a"
)
