# Empty dependencies file for refpga_analog.
# This may be replaced when dependencies are built.
