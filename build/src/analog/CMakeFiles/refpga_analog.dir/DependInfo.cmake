
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analog/delta_sigma.cpp" "src/analog/CMakeFiles/refpga_analog.dir/delta_sigma.cpp.o" "gcc" "src/analog/CMakeFiles/refpga_analog.dir/delta_sigma.cpp.o.d"
  "/root/repo/src/analog/dsp.cpp" "src/analog/CMakeFiles/refpga_analog.dir/dsp.cpp.o" "gcc" "src/analog/CMakeFiles/refpga_analog.dir/dsp.cpp.o.d"
  "/root/repo/src/analog/frontend.cpp" "src/analog/CMakeFiles/refpga_analog.dir/frontend.cpp.o" "gcc" "src/analog/CMakeFiles/refpga_analog.dir/frontend.cpp.o.d"
  "/root/repo/src/analog/tank.cpp" "src/analog/CMakeFiles/refpga_analog.dir/tank.cpp.o" "gcc" "src/analog/CMakeFiles/refpga_analog.dir/tank.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/refpga_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
