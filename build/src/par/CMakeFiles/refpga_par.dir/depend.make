# Empty dependencies file for refpga_par.
# This may be replaced when dependencies are built.
