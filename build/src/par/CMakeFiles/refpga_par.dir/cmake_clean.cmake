file(REMOVE_RECURSE
  "CMakeFiles/refpga_par.dir/pack.cpp.o"
  "CMakeFiles/refpga_par.dir/pack.cpp.o.d"
  "CMakeFiles/refpga_par.dir/placement.cpp.o"
  "CMakeFiles/refpga_par.dir/placement.cpp.o.d"
  "CMakeFiles/refpga_par.dir/placer.cpp.o"
  "CMakeFiles/refpga_par.dir/placer.cpp.o.d"
  "CMakeFiles/refpga_par.dir/reallocate.cpp.o"
  "CMakeFiles/refpga_par.dir/reallocate.cpp.o.d"
  "CMakeFiles/refpga_par.dir/router.cpp.o"
  "CMakeFiles/refpga_par.dir/router.cpp.o.d"
  "CMakeFiles/refpga_par.dir/timing.cpp.o"
  "CMakeFiles/refpga_par.dir/timing.cpp.o.d"
  "librefpga_par.a"
  "librefpga_par.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refpga_par.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
