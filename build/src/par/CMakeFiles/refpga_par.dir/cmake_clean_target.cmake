file(REMOVE_RECURSE
  "librefpga_par.a"
)
