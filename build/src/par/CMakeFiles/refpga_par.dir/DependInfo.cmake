
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/par/pack.cpp" "src/par/CMakeFiles/refpga_par.dir/pack.cpp.o" "gcc" "src/par/CMakeFiles/refpga_par.dir/pack.cpp.o.d"
  "/root/repo/src/par/placement.cpp" "src/par/CMakeFiles/refpga_par.dir/placement.cpp.o" "gcc" "src/par/CMakeFiles/refpga_par.dir/placement.cpp.o.d"
  "/root/repo/src/par/placer.cpp" "src/par/CMakeFiles/refpga_par.dir/placer.cpp.o" "gcc" "src/par/CMakeFiles/refpga_par.dir/placer.cpp.o.d"
  "/root/repo/src/par/reallocate.cpp" "src/par/CMakeFiles/refpga_par.dir/reallocate.cpp.o" "gcc" "src/par/CMakeFiles/refpga_par.dir/reallocate.cpp.o.d"
  "/root/repo/src/par/router.cpp" "src/par/CMakeFiles/refpga_par.dir/router.cpp.o" "gcc" "src/par/CMakeFiles/refpga_par.dir/router.cpp.o.d"
  "/root/repo/src/par/timing.cpp" "src/par/CMakeFiles/refpga_par.dir/timing.cpp.o" "gcc" "src/par/CMakeFiles/refpga_par.dir/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/refpga_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/refpga_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/refpga_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/refpga_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
