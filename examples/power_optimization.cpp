// Power-driven logic reallocation on a user design (the §4.3 methodology as
// a library call): find the hottest movable nets, pull their logic together,
// re-route on low-capacitance wires, and show the before/after.
//
//   ./build/examples/power_optimization
//   ./build/examples/power_optimization --engine event   # event-driven
//       activity extraction (bit-identical output; see sim/engine.hpp)
#include <iostream>
#include <string>

#include "refpga/common/table.hpp"
#include "refpga/netlist/builder.hpp"
#include "refpga/par/pack.hpp"
#include "refpga/par/placer.hpp"
#include "refpga/par/reallocate.hpp"
#include "refpga/par/router.hpp"
#include "refpga/sim/activity.hpp"
#include "refpga/sim/engine.hpp"

int main(int argc, char** argv) {
    using namespace refpga;

    sim::EngineKind engine = sim::EngineKind::Cycle;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--engine" && i + 1 < argc) {
            const auto kind = sim::parse_engine_kind(argv[++i]);
            if (!kind) {
                std::cerr << "invalid value for --engine (cycle|event): "
                          << argv[i] << "\n";
                return 2;
            }
            engine = *kind;
        } else {
            std::cerr << "usage: power_optimization [--engine cycle|event]\n";
            return 2;
        }
    }

    // A little DSP datapath: two counters driving a MULT18 and an
    // accumulator — busy nets with real toggle-rate structure.
    netlist::Netlist nl;
    const auto clk = nl.add_input_port("clk", 1)[0];
    netlist::Builder b(nl, clk);
    const netlist::Bus a = b.counter(10, netlist::NetId{}, "phase_a");
    const netlist::Bus c = b.counter(10, netlist::NetId{}, "phase_b");
    const netlist::Bus product = b.mul_mult18(a, c, 20, 0, "mix");
    const netlist::Bus acc = b.feedback_reg(
        24, [&](const netlist::Bus& q) { return b.add(q, b.sign_extend(product, 24)); },
        netlist::NetId{}, "acc");
    nl.add_output_port("acc", acc);

    // Implement on an XC3S400 with a deliberately light annealing pass
    // (mirrors a quick ISE run that leaves power on the table).
    const par::PackedDesign packed = par::pack(nl);
    const fabric::Device device(fabric::PartName::XC3S400);
    par::Placement placement(device, nl, packed);
    placement.place_initial();
    par::PlacerOptions placer_options;
    placer_options.effort = 0.05;
    (void)par::anneal(placement, placer_options);
    par::RoutedDesign routed(placement, par::ChannelCapacity{});
    routed.route_all(par::RouteMode::Performance);

    // Activity from simulation (the VCD route is shown in bench_table2).
    const auto simulator = sim::make_engine(engine, nl);
    simulator->run(2048);
    const sim::ActivityMap activity = sim::activity_from_simulation(*simulator, 50e6);

    par::ReallocateOptions options;
    options.net_count = 6;
    options.capture_routes = true;
    const par::ReallocateReport report =
        par::optimize_net_power(placement, routed, activity, options);

    Table table({"net", "before (uW)", "after (uW)", "reduction"});
    for (const auto& change : report.nets)
        table.add_row({change.name, Table::num(change.before_uw),
                       Table::num(change.after_uw),
                       Table::num(change.reduction_pct(), 1) + " %"});
    std::cout << table.render();
    std::cout << "total dynamic: " << Table::num(report.total_before_uw * 1e-3, 2)
              << " mW -> " << Table::num(report.total_after_uw * 1e-3, 2) << " mW\n";
    std::cout << "critical path: " << Table::num(report.critical_before_ps / 1e3, 2)
              << " ns -> " << Table::num(report.critical_after_ps / 1e3, 2) << " ns\n\n";
    if (!report.nets.empty()) {
        std::cout << "hottest net, before:\n" << report.nets.front().route_before;
        std::cout << "hottest net, after:\n" << report.nets.front().route_after;
    }
    return 0;
}
