// Level measurement end to end: a tank is slowly filled while the complete
// reconfigurable system (analog front end + sinus generator + HW modules +
// JCAP module swapping) measures the level each 100 ms cycle.
//
//   ./build/examples/level_measurement
#include <iomanip>
#include <iostream>

#include "refpga/app/system.hpp"

int main() {
    using namespace refpga;

    app::SystemOptions options;
    options.variant = app::SystemVariant::ReconfiguredHw;  // the paper's system
    app::MeasurementSystem system(options);

    std::cout << "capacity-based level measurement, reconfigured system on "
              << fabric::part(options.part).id << " via " << options.port.name
              << "\n\n";
    std::cout << "cycle | true level | capacitance | measured | alarms\n";
    std::cout << "------+------------+-------------+----------+-------\n";

    // Fill the tank from 10 % to 90 % over 60 measurement cycles.
    for (int cycle = 0; cycle < 60; ++cycle) {
        const double true_level = 0.1 + 0.8 * cycle / 59.0;
        system.set_true_level(true_level);
        const app::CycleReport report = system.run_cycle();
        if (cycle % 5 != 4) continue;  // print every 5th cycle
        std::cout << std::setw(5) << cycle + 1 << " | " << std::fixed
                  << std::setprecision(3) << std::setw(10) << true_level << " | "
                  << std::setw(8) << report.capacitance_pf << " pF | "
                  << std::setw(8) << report.level << " | "
                  << (report.result.level.alarm_high
                          ? "HIGH"
                          : (report.result.level.alarm_low ? "LOW" : "-"))
                  << "\n";
    }

    const auto& ctrl = system.controller();
    std::cout << "\nreconfiguration ledger: " << ctrl.load_count() << " module loads, "
              << std::setprecision(1) << ctrl.total_time_s() * 1e3 << " ms, "
              << ctrl.total_energy_mj() << " mJ over " << system.cycles_run()
              << " cycles\n";
    std::cout << "(the EMA filter trails the fill on purpose: it averages out "
                 "sloshing, per the application's requirements)\n";
    return 0;
}
