// Quickstart: build a small design, simulate it, place & route it on a
// Spartan-3 part, and get a power report — the library's core loop in under
// a hundred lines.
//
//   cmake --build build && ./build/examples/quickstart
//   ./build/examples/quickstart --engine event   # event-driven simulation
//       (identical output — the engines are parity-gated, sim/engine.hpp)
#include <iostream>
#include <string>

#include "refpga/netlist/builder.hpp"
#include "refpga/netlist/drc.hpp"
#include "refpga/par/pack.hpp"
#include "refpga/par/placer.hpp"
#include "refpga/par/router.hpp"
#include "refpga/par/timing.hpp"
#include "refpga/power/estimator.hpp"
#include "refpga/sim/activity.hpp"
#include "refpga/sim/engine.hpp"

int main(int argc, char** argv) {
    using namespace refpga;

    sim::EngineKind engine = sim::EngineKind::Cycle;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--engine" && i + 1 < argc) {
            const auto kind = sim::parse_engine_kind(argv[++i]);
            if (!kind) {
                std::cerr << "invalid value for --engine (cycle|event): "
                          << argv[i] << "\n";
                return 2;
            }
            engine = *kind;
        } else {
            std::cerr << "usage: quickstart [--engine cycle|event]\n";
            return 2;
        }
    }

    // 1. Describe hardware with the word-level builder: an 8-bit counter
    //    whose value is squared by a MULT18 block.
    netlist::Netlist nl;
    const auto clk = nl.add_input_port("clk", 1)[0];
    netlist::Builder b(nl, clk);
    const netlist::Bus count = b.counter(8, netlist::NetId{}, "count");
    const netlist::Bus squared = b.mul_mult18(count, count, 16, 0, "square");
    nl.add_output_port("squared", b.reg(squared, netlist::NetId{}, "out"));
    netlist::require_clean(nl);
    std::cout << "netlist: " << nl.cell_count() << " cells, " << nl.net_count()
              << " nets\n";

    // 2. Simulate a few cycles and check the arithmetic.
    const auto simulator = sim::make_engine(engine, nl);
    simulator->run(12);
    std::cout << "after 12 cycles: count^2 = " << simulator->get_port("squared")
              << " (expect 11^2 + pipeline = 121)\n";

    // 3. Pack, place (simulated annealing) and route on an XC3S200.
    const par::PackedDesign packed = par::pack(nl);
    const fabric::Device device(fabric::PartName::XC3S200);
    par::Placement placement(device, nl, packed);
    placement.place_initial();
    par::PlacerOptions placer_options;
    placer_options.effort = 0.5;
    const par::PlacerResult anneal_result = par::anneal(placement, placer_options);
    std::cout << "placement cost: " << anneal_result.initial_cost << " -> "
              << anneal_result.final_cost << " (HPWL)\n";

    par::RoutedDesign routed(placement, par::ChannelCapacity{});
    routed.route_all(par::RouteMode::Performance);
    const par::TimingReport timing = par::analyze_timing(routed);
    std::cout << "routed: " << routed.total_capacitance_pf() << " pF total, Fmax "
              << timing.fmax_mhz() << " MHz\n";

    // 4. Activity-based power estimate at 50 MHz (either engine: the power
    //    overload consumes the common SimEngine interface).
    const power::PowerReport report = power::estimate_power(routed, *simulator, 50e6);
    std::cout << report.render();
    return 0;
}
