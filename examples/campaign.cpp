// Measurement-campaign driver: sweeps the design space (variant x part x
// config port x noise) as independent scenarios, runs them concurrently and
// prints the aggregated report.
//
//   ./build/examples/campaign                      # 24-scenario default sweep
//   ./build/examples/campaign --threads 4          # same results, faster
//   ./build/examples/campaign --json               # machine-readable report
//   ./build/examples/campaign --with-software      # add the MicroBlaze baseline
//   ./build/examples/campaign --metrics-json FILE  # obs metrics/trace to FILE
//   ./build/examples/campaign --sim-engine event   # add simulated-activity
//                                                  # logic power (either
//                                                  # engine; same numbers)
//
// The report is byte-identical for any --threads value: scenarios carry
// their own deterministic seeds, so scheduling cannot change the results.
// --metrics-json additionally arms the refpga::obs recorder: the obs JSON is
// written to FILE ("-" = stdout) and embedded in the --json report under
// "observability" (wall-clock facts, so only present when asked for).
#include <atomic>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <thread>

#include "refpga/fleet/campaign.hpp"
#include "refpga/fleet/report.hpp"
#include "refpga/obs/obs.hpp"

namespace {

// SIGINT/SIGTERM flip this flag; the campaign stops dispatching, records
// unstarted scenarios as "cancelled before start" failures, and the final
// report (plus the non-zero exit) shows exactly what was skipped.
std::atomic<bool> g_stop{false};

extern "C" void handle_stop_signal(int) { g_stop.store(true); }

int parse_int(const char* text, const char* flag) {
    char* end = nullptr;
    const long v = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || v < 0) {
        std::cerr << "invalid value for " << flag << ": " << text << "\n";
        std::exit(2);
    }
    return static_cast<int>(v);
}

}  // namespace

int main(int argc, char** argv) {
    using namespace refpga;

    int threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads < 1) threads = 1;
    int cycles = 6;
    std::uint64_t seed = 2008;
    bool json = false;
    bool with_software = false;
    std::string metrics_path;
    std::optional<sim::EngineKind> sim_engine;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            json = true;
        } else if (arg == "--with-software") {
            with_software = true;
        } else if (arg == "--threads" && i + 1 < argc) {
            threads = parse_int(argv[++i], "--threads");
        } else if (arg == "--cycles" && i + 1 < argc) {
            cycles = parse_int(argv[++i], "--cycles");
        } else if (arg == "--seed" && i + 1 < argc) {
            seed = static_cast<std::uint64_t>(parse_int(argv[++i], "--seed"));
        } else if (arg == "--metrics-json" && i + 1 < argc) {
            metrics_path = argv[++i];
        } else if (arg == "--sim-engine" && i + 1 < argc) {
            const auto kind = sim::parse_engine_kind(argv[++i]);
            if (!kind) {
                std::cerr << "invalid value for --sim-engine (cycle|event): "
                          << argv[i] << "\n";
                return 2;
            }
            sim_engine = *kind;
        } else {
            std::cerr << "usage: campaign [--threads N] [--cycles N] [--seed S] "
                         "[--json] [--with-software] [--metrics-json FILE] "
                         "[--sim-engine cycle|event]\n";
            return 2;
        }
    }

    std::vector<app::SystemVariant> variants{app::SystemVariant::MonolithicHw,
                                             app::SystemVariant::ReconfiguredHw};
    if (with_software) variants.push_back(app::SystemVariant::Software);

    const std::vector<fleet::Scenario> sweep =
        fleet::SweepBuilder{}
            .variants(std::move(variants))
            .parts({fabric::PartName::XC3S200, fabric::PartName::XC3S400,
                    fabric::PartName::XC3S1000})
            .ports({fleet::PortKind::Jcap, fleet::PortKind::JcapAccelerated})
            .noise_levels({1e-3, 5e-3})
            .cycles(cycles)
            .campaign_seed(seed)
            .build();

    if (!json)
        std::cout << "running " << sweep.size() << " scenarios on " << threads
                  << " thread(s), " << cycles << " cycles each (seed " << seed
                  << ")\n\n";

    std::signal(SIGINT, handle_stop_signal);
    std::signal(SIGTERM, handle_stop_signal);

    obs::Recorder recorder;
    fleet::CampaignOptions options(threads);
    options.stop = &g_stop;
    options.activity_engine = sim_engine;
    if (!metrics_path.empty()) options.recorder = &recorder;

    const fleet::CampaignResult result =
        fleet::CampaignRunner(options).run(sweep);
    fleet::CampaignReport report = fleet::CampaignReport::from(result);

    if (!metrics_path.empty()) {
        const std::string obs_json = recorder.render_json();
        report.attach_metrics_json(obs_json);
        if (metrics_path == "-") {
            std::cout << obs_json << "\n";
        } else {
            std::ofstream out(metrics_path);
            if (!out) {
                std::cerr << "cannot write " << metrics_path << "\n";
                return 2;
            }
            out << obs_json << "\n";
        }
    }

    std::cout << (json ? report.render_json() : report.render_text()) << "\n";
    if (g_stop.load() && !json)
        std::cerr << "interrupted: unstarted scenarios reported as "
                     "\"cancelled before start\"\n";
    return result.failure_count() == 0 ? 0 : 1;
}
