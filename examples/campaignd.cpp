// Sharded campaign service driver: runs a JSON-specified sweep across N
// worker processes with streaming aggregation, work stealing, liveness
// supervision and checkpoint/resume.
//
//   ./build/examples/campaignd --spec job.json --workers 4
//   ./build/examples/campaignd --spec job.json --checkpoint run.ckpt
//   ./build/examples/campaignd --spec job.json --checkpoint run.ckpt --resume
//   ./build/examples/campaignd --spec job.json --http-port 9464   # /metrics
//   ./build/examples/campaignd --spec job.json --json --out report.json
//
// The merged report is byte-identical to a single-process `campaign` run of
// the same job: outcomes are deterministic per scenario seed and the
// streaming accumulator renders them in sweep order, so neither worker
// count, batch interleaving, a crashed-and-reassigned worker nor a
// checkpoint resume can change a byte of the output.
//
// Liveness (on by default here; library defaults are off): workers are
// pinged once a second, a silent worker is reaped and restarted with
// exponential backoff, and --progress-timeout-ms / --straggler-factor add
// progress deadlines and speculative re-execution on top. --min-workers
// fails fast when the fleet cannot be kept at strength; --partial-ok
// instead finishes with whatever committed and marks the report partial
// (with its exact missing index ranges) in both output formats.
//
// The --chaos-* family arms the deterministic fault-injection harness used
// by the chaos drill in CI: every injected fault is drawn from seeded
// per-category streams, so a failing drill replays exactly.
//
// SIGINT/SIGTERM stop dispatch, drain in-flight batches into the checkpoint
// and report what completed; the exit code is then non-zero and a --resume
// run finishes the sweep without recomputing.
//
// The hidden --campaign-worker mode is how the coordinator re-executes this
// binary as a worker (wire protocol on fds 3/4); it is not for interactive
// use.
#include <atomic>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "refpga/svc/coordinator.hpp"
#include "refpga/svc/http.hpp"
#include "refpga/svc/job.hpp"
#include "refpga/svc/worker.hpp"

namespace {

std::atomic<bool> g_stop{false};

extern "C" void handle_stop_signal(int) { g_stop.store(true); }

int parse_int(const char* text, const char* flag) {
    char* end = nullptr;
    const long v = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || v < 0) {
        std::cerr << "invalid value for " << flag << ": " << text << "\n";
        std::exit(2);
    }
    return static_cast<int>(v);
}

double parse_prob(const char* text, const char* flag) {
    char* end = nullptr;
    const double v = std::strtod(text, &end);
    if (end == text || *end != '\0' || v < 0.0 || v > 1.0) {
        std::cerr << "invalid probability for " << flag << ": " << text << "\n";
        std::exit(2);
    }
    return v;
}

double parse_double(const char* text, const char* flag) {
    char* end = nullptr;
    const double v = std::strtod(text, &end);
    if (end == text || *end != '\0' || v < 0.0) {
        std::cerr << "invalid value for " << flag << ": " << text << "\n";
        std::exit(2);
    }
    return v;
}

int usage() {
    std::cerr
        << "usage: campaignd --spec FILE [--workers N] [--threads N]\n"
           "                 [--batch N] [--shard N] [--steal-min N]\n"
           "                 [--checkpoint FILE [--resume]] [--fsync-every N]\n"
           "                 [--spool FILE] [--http-port P]\n"
           "                 [--json] [--out FILE] [--metrics-json FILE]\n"
           "  fleet policy:  [--no-restart] [--max-restarts N]\n"
           "                 [--restart-backoff-ms N] [--min-workers N]\n"
           "                 [--partial-ok]\n"
           "  liveness:      [--heartbeat-ms N] [--heartbeat-miss-limit N]\n"
           "                 [--liveness-timeout-ms N]\n"
           "                 [--progress-timeout-ms N]\n"
           "                 [--straggler-factor X] [--straggler-min-ms N]\n"
           "  chaos drills:  [--chaos-seed N] [--chaos-hang P]\n"
           "                 [--chaos-torn P] [--chaos-corrupt-length P]\n"
           "                 [--chaos-corrupt-payload P] [--chaos-drop P]\n"
           "                 [--chaos-delay P] [--chaos-slow P]\n"
           "                 [--chaos-slow-ms N] [--chaos-crash PHASE]\n"
           "                 [--chaos-crash-after N]\n"
           "                 [--chaos-tear-checkpoint N] [--chaos-tear-bytes N]\n"
           "                 [--chaos-only-worker N] [--chaos-all-generations]\n";
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace refpga;

    // Worker mode: this process was forked+exec'd by a coordinator with the
    // wire protocol pinned to fds 3 (in) and 4 (out). No CLI, no stdout.
    if (argc == 2 && std::string(argv[1]) == "--campaign-worker")
        return svc::worker_main(3, 4);

    std::string spec_path;
    std::string checkpoint_path;
    std::string spool_path;
    std::string out_path;
    std::string metrics_path;
    bool resume = false;
    bool json = false;
    bool restart = true;
    int http_port = -1;
    svc::CoordinatorOptions options;
    // Liveness on by default at the CLI: an operator-facing daemon should
    // notice a wedged worker on its own. (The library defaults stay off so
    // embedded runs are frame-identical to the pre-liveness protocol.)
    options.heartbeat_interval_ms = 1000;
    options.restart_backoff_ms = 100;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--spec" && i + 1 < argc) {
            spec_path = argv[++i];
        } else if (arg == "--workers" && i + 1 < argc) {
            options.workers = parse_int(argv[++i], "--workers");
        } else if (arg == "--threads" && i + 1 < argc) {
            options.worker_threads = parse_int(argv[++i], "--threads");
        } else if (arg == "--batch" && i + 1 < argc) {
            options.batch =
                static_cast<std::uint64_t>(parse_int(argv[++i], "--batch"));
        } else if (arg == "--shard" && i + 1 < argc) {
            options.shard =
                static_cast<std::uint64_t>(parse_int(argv[++i], "--shard"));
        } else if (arg == "--steal-min" && i + 1 < argc) {
            options.steal_min =
                static_cast<std::uint64_t>(parse_int(argv[++i], "--steal-min"));
        } else if (arg == "--checkpoint" && i + 1 < argc) {
            checkpoint_path = argv[++i];
        } else if (arg == "--resume") {
            resume = true;
        } else if (arg == "--fsync-every" && i + 1 < argc) {
            options.checkpoint_fsync_every_n =
                static_cast<std::uint64_t>(parse_int(argv[++i], "--fsync-every"));
        } else if (arg == "--spool" && i + 1 < argc) {
            spool_path = argv[++i];
        } else if (arg == "--http-port" && i + 1 < argc) {
            http_port = parse_int(argv[++i], "--http-port");
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--metrics-json" && i + 1 < argc) {
            metrics_path = argv[++i];
        } else if (arg == "--no-restart") {
            restart = false;
        } else if (arg == "--max-restarts" && i + 1 < argc) {
            options.max_worker_restarts = parse_int(argv[++i], "--max-restarts");
        } else if (arg == "--restart-backoff-ms" && i + 1 < argc) {
            options.restart_backoff_ms =
                parse_int(argv[++i], "--restart-backoff-ms");
        } else if (arg == "--min-workers" && i + 1 < argc) {
            options.min_workers = parse_int(argv[++i], "--min-workers");
        } else if (arg == "--partial-ok") {
            options.partial_ok = true;
        } else if (arg == "--heartbeat-ms" && i + 1 < argc) {
            options.heartbeat_interval_ms = parse_int(argv[++i], "--heartbeat-ms");
        } else if (arg == "--heartbeat-miss-limit" && i + 1 < argc) {
            options.heartbeat_miss_limit =
                parse_int(argv[++i], "--heartbeat-miss-limit");
        } else if (arg == "--liveness-timeout-ms" && i + 1 < argc) {
            options.liveness_timeout_ms =
                parse_int(argv[++i], "--liveness-timeout-ms");
        } else if (arg == "--progress-timeout-ms" && i + 1 < argc) {
            options.progress_timeout_ms =
                parse_int(argv[++i], "--progress-timeout-ms");
        } else if (arg == "--straggler-factor" && i + 1 < argc) {
            options.straggler_factor =
                parse_double(argv[++i], "--straggler-factor");
        } else if (arg == "--straggler-min-ms" && i + 1 < argc) {
            options.straggler_min_ms = parse_int(argv[++i], "--straggler-min-ms");
        } else if (arg == "--chaos-seed" && i + 1 < argc) {
            options.chaos_seed =
                static_cast<std::uint64_t>(parse_int(argv[++i], "--chaos-seed"));
        } else if (arg == "--chaos-hang" && i + 1 < argc) {
            options.chaos.hang_prob = parse_prob(argv[++i], "--chaos-hang");
        } else if (arg == "--chaos-torn" && i + 1 < argc) {
            options.chaos.torn_frame_prob = parse_prob(argv[++i], "--chaos-torn");
        } else if (arg == "--chaos-corrupt-length" && i + 1 < argc) {
            options.chaos.corrupt_length_prob =
                parse_prob(argv[++i], "--chaos-corrupt-length");
        } else if (arg == "--chaos-corrupt-payload" && i + 1 < argc) {
            options.chaos.corrupt_payload_prob =
                parse_prob(argv[++i], "--chaos-corrupt-payload");
        } else if (arg == "--chaos-drop" && i + 1 < argc) {
            options.chaos.drop_frame_prob = parse_prob(argv[++i], "--chaos-drop");
        } else if (arg == "--chaos-delay" && i + 1 < argc) {
            options.chaos.delay_frame_prob =
                parse_prob(argv[++i], "--chaos-delay");
        } else if (arg == "--chaos-slow" && i + 1 < argc) {
            options.chaos.slow_batch_prob = parse_prob(argv[++i], "--chaos-slow");
        } else if (arg == "--chaos-slow-ms" && i + 1 < argc) {
            options.chaos.slow_ms = parse_int(argv[++i], "--chaos-slow-ms");
        } else if (arg == "--chaos-crash" && i + 1 < argc) {
            const char* phase = argv[++i];
            try {
                options.chaos.crash_phase = refpga::svc::parse_crash_phase(phase);
            } catch (const std::exception&) {
                std::cerr << "invalid --chaos-crash phase: " << phase
                          << " (pre-init, mid-batch, pre-truncate-ack, "
                             "pre-checkpoint)\n";
                return 2;
            }
        } else if (arg == "--chaos-crash-after" && i + 1 < argc) {
            options.chaos.crash_after = static_cast<std::uint64_t>(
                parse_int(argv[++i], "--chaos-crash-after"));
        } else if (arg == "--chaos-tear-checkpoint" && i + 1 < argc) {
            options.chaos.checkpoint_tear_after = static_cast<std::uint64_t>(
                parse_int(argv[++i], "--chaos-tear-checkpoint"));
        } else if (arg == "--chaos-tear-bytes" && i + 1 < argc) {
            options.chaos.checkpoint_tear_bytes = static_cast<std::size_t>(
                parse_int(argv[++i], "--chaos-tear-bytes"));
        } else if (arg == "--chaos-only-worker" && i + 1 < argc) {
            options.chaos.only_worker =
                parse_int(argv[++i], "--chaos-only-worker");
        } else if (arg == "--chaos-all-generations") {
            options.chaos_all_generations = true;
        } else {
            return usage();
        }
    }
    if (spec_path.empty()) return usage();
    if (options.workers < 1 || options.worker_threads < 1 ||
        options.batch < 1) {
        std::cerr << "--workers, --threads and --batch must be >= 1\n";
        return 2;
    }
    if (options.min_workers < 1) {
        std::cerr << "--min-workers must be >= 1\n";
        return 2;
    }
    if (resume && checkpoint_path.empty()) {
        std::cerr << "--resume requires --checkpoint\n";
        return 2;
    }

    std::ifstream spec_in(spec_path);
    if (!spec_in) {
        std::cerr << "cannot read job spec " << spec_path << "\n";
        return 2;
    }
    std::ostringstream spec_text;
    spec_text << spec_in.rdbuf();

    try {
        const svc::JobSpec spec = svc::JobSpec::from_json(spec_text.str());

        std::signal(SIGINT, handle_stop_signal);
        std::signal(SIGTERM, handle_stop_signal);

        obs::Recorder recorder;
        svc::HttpEndpoint http;
        options.checkpoint_path = checkpoint_path;
        options.resume = resume;
        options.spool_path =
            spool_path.empty() ? spec_path + ".spool" : spool_path;
        options.restart_dead_workers = restart;
        options.recorder = &recorder;
        options.stop = &g_stop;
        options.launch = svc::CoordinatorOptions::Launch::Exec;
        options.exec_path = argv[0];
        if (http_port >= 0) {
            http.listen(static_cast<std::uint16_t>(http_port));
            options.http = &http;
            std::cerr << "campaignd: serving /metrics on 127.0.0.1:"
                      << http.port() << "\n";
        }

        svc::Coordinator coordinator(spec, options);
        const svc::CoordinatorResult result = coordinator.run();

        std::cerr << "campaignd: " << result.scenarios_committed << "/"
                  << spec.grid_size() << " scenarios ("
                  << result.scenarios_resumed << " resumed), "
                  << result.shards_dispatched << " shards, "
                  << result.shards_stolen << " stolen, "
                  << result.shards_reassigned << " reassigned, "
                  << result.worker_restarts << " restarts\n";
        if (result.heartbeat_misses + result.liveness_kills +
                result.deadline_kills + result.speculations +
                result.duplicates_discarded + result.protocol_errors +
                result.chaos_faults_injected >
            0)
            std::cerr << "campaignd: liveness: " << result.heartbeat_misses
                      << " heartbeat misses, " << result.liveness_kills
                      << " liveness kills, " << result.deadline_kills
                      << " deadline kills, " << result.speculations
                      << " speculations, " << result.duplicates_discarded
                      << " duplicates discarded, " << result.protocol_errors
                      << " protocol errors, " << result.chaos_faults_injected
                      << " chaos faults\n";
        if (result.partial)
            std::cerr << "campaignd: PARTIAL result accepted under "
                         "--partial-ok; missing ranges are listed in the "
                         "report\n";
        else if (!result.completed)
            std::cerr << "campaignd: incomplete: " << result.error << "\n";

        const std::string report = json ? coordinator.report().render_json()
                                        : coordinator.report().render_text();
        if (out_path.empty()) {
            std::cout << report << "\n";
        } else {
            std::ofstream out(out_path);
            if (!out) {
                std::cerr << "cannot write " << out_path << "\n";
                return 2;
            }
            out << report << "\n";
        }
        if (!metrics_path.empty()) {
            std::ofstream metrics_out(metrics_path);
            if (!metrics_out) {
                std::cerr << "cannot write " << metrics_path << "\n";
                return 2;
            }
            metrics_out << recorder.metrics().render_json() << "\n";
        }
        // A partial result under --partial-ok is the requested behavior, not
        // an error: exit reflects scenario failures only. Anything else
        // short of completion is a failure exit so scripts notice.
        if (result.partial)
            return coordinator.report().failure_count() == 0 ? 0 : 1;
        if (!result.completed) return 1;
        return coordinator.report().failure_count() == 0 ? 0 : 1;
    } catch (const std::exception& e) {
        std::cerr << "campaignd: " << e.what() << "\n";
        return 2;
    }
}
