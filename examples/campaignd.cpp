// Sharded campaign service driver: runs a JSON-specified sweep across N
// worker processes with streaming aggregation, work stealing and
// checkpoint/resume.
//
//   ./build/examples/campaignd --spec job.json --workers 4
//   ./build/examples/campaignd --spec job.json --checkpoint run.ckpt
//   ./build/examples/campaignd --spec job.json --checkpoint run.ckpt --resume
//   ./build/examples/campaignd --spec job.json --http-port 9464   # /metrics
//   ./build/examples/campaignd --spec job.json --json --out report.json
//
// The merged report is byte-identical to a single-process `campaign` run of
// the same job: outcomes are deterministic per scenario seed and the
// streaming accumulator renders them in sweep order, so neither worker
// count, batch interleaving, a crashed-and-reassigned worker nor a
// checkpoint resume can change a byte of the output.
//
// SIGINT/SIGTERM stop dispatch, drain in-flight batches into the checkpoint
// and report what completed; the exit code is then non-zero and a --resume
// run finishes the sweep without recomputing.
//
// The hidden --campaign-worker mode is how the coordinator re-executes this
// binary as a worker (wire protocol on fds 3/4); it is not for interactive
// use.
#include <atomic>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "refpga/svc/coordinator.hpp"
#include "refpga/svc/http.hpp"
#include "refpga/svc/job.hpp"
#include "refpga/svc/worker.hpp"

namespace {

std::atomic<bool> g_stop{false};

extern "C" void handle_stop_signal(int) { g_stop.store(true); }

int parse_int(const char* text, const char* flag) {
    char* end = nullptr;
    const long v = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || v < 0) {
        std::cerr << "invalid value for " << flag << ": " << text << "\n";
        std::exit(2);
    }
    return static_cast<int>(v);
}

int usage() {
    std::cerr << "usage: campaignd --spec FILE [--workers N] [--threads N]\n"
                 "                 [--batch N] [--shard N]\n"
                 "                 [--checkpoint FILE [--resume]]\n"
                 "                 [--spool FILE] [--http-port P]\n"
                 "                 [--json] [--out FILE] [--no-restart]\n";
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace refpga;

    // Worker mode: this process was forked+exec'd by a coordinator with the
    // wire protocol pinned to fds 3 (in) and 4 (out). No CLI, no stdout.
    if (argc == 2 && std::string(argv[1]) == "--campaign-worker")
        return svc::worker_main(3, 4);

    std::string spec_path;
    std::string checkpoint_path;
    std::string spool_path;
    std::string out_path;
    bool resume = false;
    bool json = false;
    bool restart = true;
    int http_port = -1;
    svc::CoordinatorOptions options;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--spec" && i + 1 < argc) {
            spec_path = argv[++i];
        } else if (arg == "--workers" && i + 1 < argc) {
            options.workers = parse_int(argv[++i], "--workers");
        } else if (arg == "--threads" && i + 1 < argc) {
            options.worker_threads = parse_int(argv[++i], "--threads");
        } else if (arg == "--batch" && i + 1 < argc) {
            options.batch =
                static_cast<std::uint64_t>(parse_int(argv[++i], "--batch"));
        } else if (arg == "--shard" && i + 1 < argc) {
            options.shard =
                static_cast<std::uint64_t>(parse_int(argv[++i], "--shard"));
        } else if (arg == "--checkpoint" && i + 1 < argc) {
            checkpoint_path = argv[++i];
        } else if (arg == "--resume") {
            resume = true;
        } else if (arg == "--spool" && i + 1 < argc) {
            spool_path = argv[++i];
        } else if (arg == "--http-port" && i + 1 < argc) {
            http_port = parse_int(argv[++i], "--http-port");
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--no-restart") {
            restart = false;
        } else {
            return usage();
        }
    }
    if (spec_path.empty()) return usage();
    if (options.workers < 1 || options.worker_threads < 1 ||
        options.batch < 1) {
        std::cerr << "--workers, --threads and --batch must be >= 1\n";
        return 2;
    }
    if (resume && checkpoint_path.empty()) {
        std::cerr << "--resume requires --checkpoint\n";
        return 2;
    }

    std::ifstream spec_in(spec_path);
    if (!spec_in) {
        std::cerr << "cannot read job spec " << spec_path << "\n";
        return 2;
    }
    std::ostringstream spec_text;
    spec_text << spec_in.rdbuf();

    try {
        const svc::JobSpec spec = svc::JobSpec::from_json(spec_text.str());

        std::signal(SIGINT, handle_stop_signal);
        std::signal(SIGTERM, handle_stop_signal);

        obs::Recorder recorder;
        svc::HttpEndpoint http;
        options.checkpoint_path = checkpoint_path;
        options.resume = resume;
        options.spool_path =
            spool_path.empty() ? spec_path + ".spool" : spool_path;
        options.restart_dead_workers = restart;
        options.recorder = &recorder;
        options.stop = &g_stop;
        options.launch = svc::CoordinatorOptions::Launch::Exec;
        options.exec_path = argv[0];
        if (http_port >= 0) {
            http.listen(static_cast<std::uint16_t>(http_port));
            options.http = &http;
            std::cerr << "campaignd: serving /metrics on 127.0.0.1:"
                      << http.port() << "\n";
        }

        svc::Coordinator coordinator(spec, options);
        const svc::CoordinatorResult result = coordinator.run();

        std::cerr << "campaignd: " << result.scenarios_committed << "/"
                  << spec.grid_size() << " scenarios ("
                  << result.scenarios_resumed << " resumed), "
                  << result.shards_dispatched << " shards, "
                  << result.shards_stolen << " stolen, "
                  << result.shards_reassigned << " reassigned, "
                  << result.worker_restarts << " restarts\n";
        if (!result.completed)
            std::cerr << "campaignd: incomplete: " << result.error << "\n";

        const std::string report = json ? coordinator.report().render_json()
                                        : coordinator.report().render_text();
        if (out_path.empty()) {
            std::cout << report << "\n";
        } else {
            std::ofstream out(out_path);
            if (!out) {
                std::cerr << "cannot write " << out_path << "\n";
                return 2;
            }
            out << report << "\n";
        }
        if (!result.completed) return 1;
        return coordinator.report().failure_count() == 0 ? 0 : 1;
    } catch (const std::exception& e) {
        std::cerr << "campaignd: " << e.what() << "\n";
        return 2;
    }
}
