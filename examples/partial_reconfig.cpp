// Partial reconfiguration walk-through: slots, partial bitstreams, bus-macro
// discipline and the JCAP-vs-ICAP trade-off, on a toy two-module design.
//
//   ./build/examples/partial_reconfig
#include <iostream>

#include "refpga/common/table.hpp"
#include "refpga/netlist/builder.hpp"
#include "refpga/reconfig/bitstream.hpp"
#include "refpga/reconfig/busmacro.hpp"
#include "refpga/reconfig/config_port.hpp"
#include "refpga/reconfig/controller.hpp"

int main() {
    using namespace refpga;

    const fabric::Device device(fabric::PartName::XC3S400);
    std::cout << "device: " << device.part().id << ", " << device.cols()
              << " CLB columns, full bitstream "
              << device.full_bits() / 8 / 1024 << " KiB\n";
    std::cout << "frames span the full column height, so partial bitstreams "
                 "cover whole-column ranges\n\n";

    // 1. A static half and a reconfigurable slot, with bus macros carrying
    //    the boundary signals.
    netlist::Netlist nl;
    const auto clk = nl.add_input_port("clk", 1)[0];
    netlist::Builder b(nl, clk);
    const auto filter_a = nl.add_partition("filter_a");

    const netlist::Bus data = nl.add_input_port("data", 8);
    // Static side pre-processing...
    const netlist::Bus staged = b.reg(data, netlist::NetId{}, "stage");
    // ...bridged into the slot through a bus macro...
    const netlist::Bus into_slot =
        reconfig::bus_macro(b, staged, netlist::PartitionId{0}, filter_a, "in");
    // ...module logic inside the slot...
    nl.set_current_partition(filter_a);
    const netlist::Bus processed = b.add(into_slot, b.constant(7, 8));
    // ...and back out again.
    const netlist::Bus out = reconfig::bus_macro(b, processed, filter_a,
                                                 netlist::PartitionId{0}, "out");
    nl.set_current_partition(netlist::PartitionId{0});
    nl.add_output_port("result", b.reg(out, netlist::NetId{}, "res"));

    const auto violations = reconfig::check_boundaries(nl);
    std::cout << "boundary check: " << violations.size()
              << " nets cross without a bus macro (must be 0)\n\n";

    // 2. Partial bitstreams for a 6-column slot.
    const auto slot_bits = reconfig::Bitstream::partial(device, "filter_a", 22, 28);
    std::cout << "slot bitstream (6 columns): " << slot_bits.bytes() / 1024
              << " KiB vs " << device.full_bits() / 8 / 1024 << " KiB full device\n\n";

    // 3. Swap two modules through every configuration port model.
    Table table({"port", "swap time (ms)", "swaps/second", "energy/swap (mJ)"});
    for (const auto& port :
         {reconfig::jcap_port(), reconfig::jcap_accelerated_port(),
          reconfig::selectmap_port(), reconfig::icap_port()}) {
        reconfig::ReconfigController ctrl(device, port);
        ctrl.add_slot("slot", {22, 28, 0, device.rows()});
        ctrl.register_module("slot", "filter_a");
        ctrl.register_module("slot", "filter_b");
        (void)ctrl.load("slot", "filter_a");
        const reconfig::ReconfigEvent swap = ctrl.load("slot", "filter_b");
        table.add_row({port.name, Table::num(swap.time_s * 1e3, 2),
                       Table::num(1.0 / swap.time_s, 1),
                       Table::num(swap.energy_mj, 3)});
    }
    std::cout << table.render();
    std::cout << "Spartan-3 has no ICAP: the paper used the JCAP [11], a "
                 "virtual internal configuration port over JTAG\n";
    return 0;
}
