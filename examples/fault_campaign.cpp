// Fault-injection campaign driver: sweeps configuration-upset rates against
// the configuration ports and reports how well the self-healing pipeline
// (readback scrubbing + verified loads + plausibility guard + software
// fallback) holds availability.
//
//   ./build/examples/fault_campaign                 # default sweep
//   ./build/examples/fault_campaign --threads 4     # same results, faster
//   ./build/examples/fault_campaign --json          # machine-readable report
//   ./build/examples/fault_campaign --harsh         # add load/flash/glitch faults
//   ./build/examples/fault_campaign --metrics-json FILE  # obs metrics to FILE
//
// The report is byte-identical for any --threads value: fault schedules are
// derived from per-scenario seeds, so scheduling cannot change the results.
// --metrics-json arms the refpga::obs recorder (scrub hits, load retries,
// per-scenario wall time); FILE of "-" writes to stdout, and the --json
// report gains an "observability" block.
#include <atomic>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "refpga/fleet/campaign.hpp"
#include "refpga/fleet/report.hpp"
#include "refpga/obs/obs.hpp"

namespace {

// SIGINT/SIGTERM flip this flag; unstarted scenarios become "cancelled
// before start" failures and the run exits non-zero on an incomplete sweep.
std::atomic<bool> g_stop{false};

extern "C" void handle_stop_signal(int) { g_stop.store(true); }

int parse_int(const char* text, const char* flag) {
    char* end = nullptr;
    const long v = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || v < 0) {
        std::cerr << "invalid value for " << flag << ": " << text << "\n";
        std::exit(2);
    }
    return static_cast<int>(v);
}

}  // namespace

int main(int argc, char** argv) {
    using namespace refpga;

    int threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads < 1) threads = 1;
    int cycles = 20;
    std::uint64_t seed = 2008;
    bool json = false;
    bool harsh = false;
    std::string metrics_path;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            json = true;
        } else if (arg == "--harsh") {
            harsh = true;
        } else if (arg == "--threads" && i + 1 < argc) {
            threads = parse_int(argv[++i], "--threads");
        } else if (arg == "--cycles" && i + 1 < argc) {
            cycles = parse_int(argv[++i], "--cycles");
        } else if (arg == "--seed" && i + 1 < argc) {
            seed = static_cast<std::uint64_t>(parse_int(argv[++i], "--seed"));
        } else if (arg == "--metrics-json" && i + 1 < argc) {
            metrics_path = argv[++i];
        } else {
            std::cerr << "usage: fault_campaign [--threads N] [--cycles N] "
                         "[--seed S] [--json] [--harsh] [--metrics-json FILE]\n";
            return 2;
        }
    }

    // --harsh layers the other fault sources (corrupted transfers, flash CRC
    // errors, analog glitches) on top of the swept upset rate, exercising
    // retry, fallback and the plausibility guard as well as the scrubber.
    fault::FaultSpec defaults;
    if (harsh) {
        defaults.load_corruption_prob = 0.10;
        defaults.flash_error_prob = 0.05;
        defaults.glitch_prob_per_cycle = 0.10;
    }

    const std::vector<fleet::Scenario> sweep =
        fleet::SweepBuilder{}
            .variants({app::SystemVariant::ReconfiguredHw})
            .ports({fleet::PortKind::Jcap, fleet::PortKind::JcapAccelerated,
                    fleet::PortKind::Icap})
            .upset_rates({0.0, 0.05, 0.2, 1.0})
            .fault_defaults(defaults)
            .cycles(cycles)
            .campaign_seed(seed)
            .build();

    if (!json)
        std::cout << "running " << sweep.size() << " fault scenarios on "
                  << threads << " thread(s), " << cycles
                  << " cycles each (seed " << seed << ")\n"
                  << "upset rates in events per CLB-column-second; see the "
                     "upset_rate axis group for\navailability vs rate and the "
                     "port axis group for scrub-bandwidth effects\n\n";

    std::signal(SIGINT, handle_stop_signal);
    std::signal(SIGTERM, handle_stop_signal);

    obs::Recorder recorder;
    fleet::CampaignOptions options(threads);
    options.stop = &g_stop;
    if (!metrics_path.empty()) options.recorder = &recorder;

    const fleet::CampaignResult result =
        fleet::CampaignRunner(options).run(sweep);
    fleet::CampaignReport report = fleet::CampaignReport::from(result);

    if (!metrics_path.empty()) {
        const std::string obs_json = recorder.render_json();
        report.attach_metrics_json(obs_json);
        if (metrics_path == "-") {
            std::cout << obs_json << "\n";
        } else {
            std::ofstream out(metrics_path);
            if (!out) {
                std::cerr << "cannot write " << metrics_path << "\n";
                return 2;
            }
            out << obs_json << "\n";
        }
    }

    std::cout << (json ? report.render_json() : report.render_text()) << "\n";
    if (g_stop.load() && !json)
        std::cerr << "interrupted: unstarted scenarios reported as "
                     "\"cancelled before start\"\n";
    return result.failure_count() == 0 ? 0 : 1;
}
