#include "refpga/obs/obs.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "refpga/common/contracts.hpp"

namespace refpga::obs {

namespace {

// Shortest round-trippable formatting, matching fleet::report's convention.
std::string fmt(double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    return buf;
}

std::string json_escape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

// Prometheus metric names allow [a-zA-Z0-9_:]; the registry's dotted names
// map '.' (and anything else) to '_'.
std::string prometheus_name(std::string_view name) {
    std::string out;
    out.reserve(name.size());
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == ':';
        out += ok ? c : '_';
    }
    if (!out.empty() && out.front() >= '0' && out.front() <= '9')
        out.insert(out.begin(), '_');
    return out;
}

}  // namespace

const char* metric_kind_name(MetricKind kind) {
    switch (kind) {
        case MetricKind::Counter: return "counter";
        case MetricKind::Gauge: return "gauge";
        case MetricKind::Histogram: return "histogram";
    }
    return "?";
}

MetricId MetricRegistry::intern(std::string_view name, MetricKind kind,
                                std::vector<double> bounds) {
    REFPGA_EXPECTS(!name.empty());
    REFPGA_EXPECTS(bounds.size() <= kMaxBuckets);
    for (std::size_t i = 0; i + 1 < bounds.size(); ++i)
        REFPGA_EXPECTS(bounds[i] < bounds[i + 1] &&
                       "histogram bounds must be strictly increasing");
    for (const double b : bounds) REFPGA_EXPECTS(std::isfinite(b));

    const std::lock_guard<std::mutex> lock(mutex_);
    const std::uint32_t n = size_.load(std::memory_order_relaxed);
    for (std::uint32_t i = 0; i < n; ++i) {
        if (slots_[i].name == name) {
            REFPGA_EXPECTS(slots_[i].kind == kind &&
                           "metric re-registered with a different kind");
            return MetricId{i};
        }
    }
    if (n == kMaxMetrics)
        throw ContractViolation("obs: metric registry is full");
    Slot& slot = slots_[n];
    slot.name.assign(name.begin(), name.end());
    slot.kind = kind;
    slot.bounds = std::move(bounds);
    // Release-publish: a hot-path add() that acquires `size_` > n sees the
    // fully constructed slot without taking the mutex.
    size_.store(n + 1, std::memory_order_release);
    return MetricId{n};
}

MetricId MetricRegistry::counter(std::string_view name) {
    return intern(name, MetricKind::Counter, {});
}

MetricId MetricRegistry::gauge(std::string_view name) {
    return intern(name, MetricKind::Gauge, {});
}

MetricId MetricRegistry::histogram(std::string_view name,
                                   std::vector<double> upper_bounds) {
    return intern(name, MetricKind::Histogram, std::move(upper_bounds));
}

void MetricRegistry::add(MetricId id, double delta) {
    if (!enabled() || !id.valid()) return;
    REFPGA_EXPECTS(id.index < size_.load(std::memory_order_acquire));
    slots_[id.index].value.add(delta);
}

void MetricRegistry::set(MetricId id, double value) {
    if (!enabled() || !id.valid()) return;
    REFPGA_EXPECTS(id.index < size_.load(std::memory_order_acquire));
    slots_[id.index].value.store(value);
}

void MetricRegistry::observe(MetricId id, double value) {
    if (!enabled() || !id.valid()) return;
    REFPGA_EXPECTS(id.index < size_.load(std::memory_order_acquire));
    Slot& slot = slots_[id.index];
    slot.value.add(value);
    slot.count.fetch_add(1, std::memory_order_relaxed);
    std::size_t bucket = slot.bounds.size();  // overflow by default
    for (std::size_t i = 0; i < slot.bounds.size(); ++i) {
        if (value <= slot.bounds[i]) {
            bucket = i;
            break;
        }
    }
    slot.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
}

std::size_t MetricRegistry::size() const {
    return size_.load(std::memory_order_acquire);
}

MetricId MetricRegistry::find(std::string_view name) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    const std::uint32_t n = size_.load(std::memory_order_relaxed);
    for (std::uint32_t i = 0; i < n; ++i)
        if (slots_[i].name == name) return MetricId{i};
    return MetricId{};
}

MetricRegistry::Snapshot MetricRegistry::snapshot(MetricId id) const {
    REFPGA_EXPECTS(id.valid() &&
                   id.index < size_.load(std::memory_order_acquire));
    const std::lock_guard<std::mutex> lock(mutex_);
    const Slot& slot = slots_[id.index];
    Snapshot snap;
    snap.name = slot.name;
    snap.kind = slot.kind;
    snap.value = slot.value.load();
    snap.count = slot.count.load(std::memory_order_relaxed);
    snap.bounds = slot.bounds;
    if (slot.kind == MetricKind::Histogram) {
        snap.buckets.resize(slot.bounds.size() + 1);
        for (std::size_t i = 0; i < snap.buckets.size(); ++i)
            snap.buckets[i] = slot.buckets[i].load(std::memory_order_relaxed);
    }
    return snap;
}

double MetricRegistry::value(std::string_view name) const {
    const MetricId id = find(name);
    if (!id.valid()) return 0.0;
    return slots_[id.index].value.load();
}

std::vector<MetricRegistry::Snapshot> MetricRegistry::snapshot_all() const {
    const std::uint32_t n = size_.load(std::memory_order_acquire);
    std::vector<Snapshot> out;
    out.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) out.push_back(snapshot(MetricId{i}));
    return out;
}

std::string MetricRegistry::render_text() const {
    std::ostringstream os;
    for (const Snapshot& s : snapshot_all()) {
        os << metric_kind_name(s.kind) << ' ' << s.name << ' ';
        if (s.kind == MetricKind::Histogram) {
            os << "count=" << s.count << " sum=" << fmt(s.value);
        } else {
            os << fmt(s.value);
        }
        os << '\n';
    }
    return os.str();
}

std::string MetricRegistry::render_json() const {
    std::ostringstream os;
    os << '[';
    bool first = true;
    for (const Snapshot& s : snapshot_all()) {
        if (!first) os << ',';
        first = false;
        os << "{\"name\":\"" << json_escape(s.name) << "\",\"kind\":\""
           << metric_kind_name(s.kind) << "\"";
        if (s.kind == MetricKind::Histogram) {
            os << ",\"sum\":" << fmt(s.value) << ",\"count\":" << s.count
               << ",\"bounds\":[";
            for (std::size_t i = 0; i < s.bounds.size(); ++i)
                os << (i != 0 ? "," : "") << fmt(s.bounds[i]);
            os << "],\"buckets\":[";
            for (std::size_t i = 0; i < s.buckets.size(); ++i)
                os << (i != 0 ? "," : "") << s.buckets[i];
            os << ']';
        } else {
            os << ",\"value\":" << fmt(s.value);
        }
        os << '}';
    }
    os << ']';
    return os.str();
}

std::string MetricRegistry::render_prometheus() const {
    std::ostringstream os;
    for (const Snapshot& s : snapshot_all()) {
        const std::string name = prometheus_name(s.name);
        os << "# TYPE " << name << ' ' << metric_kind_name(s.kind) << '\n';
        if (s.kind == MetricKind::Histogram) {
            std::int64_t cumulative = 0;
            for (std::size_t i = 0; i < s.bounds.size(); ++i) {
                cumulative += s.buckets[i];
                os << name << "_bucket{le=\"" << fmt(s.bounds[i]) << "\"} "
                   << cumulative << '\n';
            }
            cumulative += s.buckets.empty() ? 0 : s.buckets.back();
            os << name << "_bucket{le=\"+Inf\"} " << cumulative << '\n';
            os << name << "_sum " << fmt(s.value) << '\n';
            os << name << "_count " << s.count << '\n';
        } else {
            os << name << ' ' << fmt(s.value) << '\n';
        }
    }
    return os.str();
}

TraceRing::TraceRing(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      epoch_(std::chrono::steady_clock::now()) {
    ring_.reserve(capacity_);
}

std::uint32_t TraceRing::intern(std::string_view name) {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (std::uint32_t i = 0; i < names_.size(); ++i)
        if (names_[i] == name) return i;
    names_.emplace_back(name);
    return static_cast<std::uint32_t>(names_.size() - 1);
}

std::string TraceRing::name(std::uint32_t id) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return id < names_.size() ? names_[id] : std::string("?");
}

std::uint64_t TraceRing::now_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
}

std::uint32_t TraceRing::thread_ordinal_locked() {
    const std::thread::id self = std::this_thread::get_id();
    for (const auto& [tid, ordinal] : thread_ids_)
        if (tid == self) return ordinal;
    const auto ordinal = static_cast<std::uint32_t>(thread_ids_.size());
    thread_ids_.emplace_back(self, ordinal);
    return ordinal;
}

void TraceRing::push(std::uint32_t name_id, std::uint64_t start_ns,
                     std::uint64_t duration_ns) {
    const std::lock_guard<std::mutex> lock(mutex_);
    TraceEvent ev;
    ev.name = name_id;
    ev.thread = thread_ordinal_locked();
    ev.seq = next_seq_++;
    ev.start_ns = start_ns;
    ev.duration_ns = duration_ns;
    if (ring_.size() < capacity_) {
        ring_.push_back(ev);
    } else {
        ring_[ev.seq % capacity_] = ev;
    }
}

std::uint64_t TraceRing::pushed() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return next_seq_;
}

std::uint64_t TraceRing::dropped() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return next_seq_ > capacity_ ? next_seq_ - capacity_ : 0;
}

std::vector<TraceEvent> TraceRing::snapshot() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<TraceEvent> out;
    out.reserve(ring_.size());
    if (next_seq_ <= capacity_) {
        out = ring_;
    } else {
        // The ring wrapped: slot seq % capacity holds the event; oldest
        // retained seq is next_seq_ - capacity_.
        for (std::uint64_t seq = next_seq_ - capacity_; seq < next_seq_; ++seq)
            out.push_back(ring_[seq % capacity_]);
    }
    return out;
}

std::string TraceRing::render_text() const {
    std::ostringstream os;
    os << "trace: pushed=" << pushed() << " dropped=" << dropped()
       << " capacity=" << capacity_ << '\n';
    for (const TraceEvent& ev : snapshot())
        os << "  [" << ev.seq << "] " << name(ev.name) << " t" << ev.thread
           << " start_ns=" << ev.start_ns << " dur_ns=" << ev.duration_ns
           << '\n';
    return os.str();
}

std::string TraceRing::render_json() const {
    std::ostringstream os;
    os << "{\"capacity\":" << capacity_ << ",\"pushed\":" << pushed()
       << ",\"dropped\":" << dropped() << ",\"events\":[";
    bool first = true;
    for (const TraceEvent& ev : snapshot()) {
        if (!first) os << ',';
        first = false;
        os << "{\"name\":\"" << json_escape(name(ev.name))
           << "\",\"thread\":" << ev.thread << ",\"seq\":" << ev.seq
           << ",\"start_ns\":" << ev.start_ns
           << ",\"duration_ns\":" << ev.duration_ns << '}';
    }
    os << "]}";
    return os.str();
}

std::string Recorder::render_text() const {
    return metrics_.render_text() + trace_.render_text();
}

std::string Recorder::render_json() const {
    return "{\"metrics\":" + metrics_.render_json() +
           ",\"trace\":" + trace_.render_json() + "}";
}

double ScopedTimer::stop() {
    if (metrics_ == nullptr) return 0.0;
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start_;
    metrics_->observe(hist_, elapsed.count());
    metrics_ = nullptr;
    return elapsed.count();
}

ScopedSpan::ScopedSpan(Recorder* recorder, std::uint32_t span_name,
                       MetricId hist_seconds)
    : recorder_(recorder != nullptr && recorder->enabled() ? recorder : nullptr),
      name_(span_name),
      hist_(hist_seconds) {
    if (recorder_ != nullptr) start_ns_ = recorder_->trace().now_ns();
}

void ScopedSpan::finish() {
    if (recorder_ == nullptr) return;
    const std::uint64_t end_ns = recorder_->trace().now_ns();
    const std::uint64_t dur = end_ns > start_ns_ ? end_ns - start_ns_ : 0;
    recorder_->trace().push(name_, start_ns_, dur);
    if (hist_.valid()) recorder_->metrics().observe(hist_, 1e-9 * static_cast<double>(dur));
    recorder_ = nullptr;
}

}  // namespace refpga::obs
