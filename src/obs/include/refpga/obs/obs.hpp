// refpga::obs — in-process observability for the reproduction: a thread-safe
// metric registry (counters, gauges, fixed-bucket histograms), RAII scoped
// timers, and span-style trace events in a bounded ring buffer. Everything is
// keyed by interned ids so the hot paths never hash or compare strings.
//
// Overhead contract: instrumentation sites hold a non-owning `Recorder*`
// (default nullptr). With no recorder attached — or with one attached but
// disabled — the per-event cost is a null/flag check and nothing else: no
// clock reads, no atomics, no allocation. bench_obs_overhead gates the
// compiled-in-but-disabled cost at <= 2% on the streaming front-end path.
//
// Thread safety: registration (interning a name) takes a mutex; recording on
// an already-registered id is lock-free (relaxed atomics). Metric slots are
// pre-allocated at a fixed capacity, so registration never moves a slot out
// from under a concurrent recorder. The trace ring takes a mutex per span —
// spans mark phase-level work (a sample window, a reconfiguration, a
// campaign scenario), not per-tick events.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace refpga::obs {

enum class MetricKind { Counter, Gauge, Histogram };

const char* metric_kind_name(MetricKind kind);

/// Handle to a registered metric. Cheap to copy; invalid by default.
struct MetricId {
    static constexpr std::uint32_t kInvalid = 0xffffffffU;
    std::uint32_t index = kInvalid;
    [[nodiscard]] bool valid() const { return index != kInvalid; }
};

/// Atomic double accumulator. fetch_add on std::atomic<double> is C++20 but
/// patchily implemented; a CAS loop is portable and contention here is low
/// (a handful of instrumented sites, not per-sample work).
class AtomicDouble {
public:
    void add(double delta) {
        double cur = value_.load(std::memory_order_relaxed);
        while (!value_.compare_exchange_weak(cur, cur + delta,
                                             std::memory_order_relaxed)) {
        }
    }
    void store(double v) { value_.store(v, std::memory_order_relaxed); }
    [[nodiscard]] double load() const {
        return value_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<double> value_{0.0};
};

/// Fixed-capacity registry of named counters, gauges and histograms.
class MetricRegistry {
public:
    /// Slots are pre-allocated so a concurrent add() never races a vector
    /// reallocation from another thread's register call.
    static constexpr std::size_t kMaxMetrics = 256;
    /// Histogram bucket bounds per metric (plus one implicit overflow bucket).
    static constexpr std::size_t kMaxBuckets = 16;

    explicit MetricRegistry(bool enabled = true) : enabled_(enabled) {
        slots_ = std::make_unique<Slot[]>(kMaxMetrics);
    }

    void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
    [[nodiscard]] bool enabled() const {
        return enabled_.load(std::memory_order_relaxed);
    }

    /// Registration interns by name and is idempotent: re-registering the
    /// same name with the same kind returns the existing id. A kind clash or
    /// exceeding kMaxMetrics throws ContractViolation. Registration works
    /// even while disabled so ids can be created once up front.
    MetricId counter(std::string_view name);
    MetricId gauge(std::string_view name);
    /// `upper_bounds` must be finite, strictly increasing, and at most
    /// kMaxBuckets long; observations above the last bound land in an
    /// implicit overflow bucket.
    MetricId histogram(std::string_view name, std::vector<double> upper_bounds);

    /// Hot-path recorders: no-ops when disabled or when `id` is invalid.
    void add(MetricId id, double delta = 1.0);
    void set(MetricId id, double value);
    void observe(MetricId id, double value);

    /// Point-in-time copy of one metric (histogram buckets include the
    /// overflow bucket as the last element).
    struct Snapshot {
        std::string name;
        MetricKind kind = MetricKind::Counter;
        double value = 0.0;       ///< counter/gauge value; histogram sum
        std::int64_t count = 0;   ///< histogram observation count
        std::vector<double> bounds;
        std::vector<std::int64_t> buckets;
    };

    [[nodiscard]] std::size_t size() const;
    [[nodiscard]] MetricId find(std::string_view name) const;
    [[nodiscard]] Snapshot snapshot(MetricId id) const;
    /// Convenience lookup: counter/gauge value (histogram sum) by name;
    /// 0.0 when the name is unknown.
    [[nodiscard]] double value(std::string_view name) const;

    [[nodiscard]] std::string render_text() const;
    [[nodiscard]] std::string render_json() const;
    [[nodiscard]] std::string render_prometheus() const;

private:
    struct Slot {
        std::string name;
        MetricKind kind = MetricKind::Counter;
        AtomicDouble value;  ///< counter/gauge value; histogram sum
        std::atomic<std::int64_t> count{0};
        std::array<std::atomic<std::int64_t>, kMaxBuckets + 1> buckets{};
        std::vector<double> bounds;
    };

    MetricId intern(std::string_view name, MetricKind kind,
                    std::vector<double> bounds);
    [[nodiscard]] std::vector<Snapshot> snapshot_all() const;

    std::atomic<bool> enabled_;
    mutable std::mutex mutex_;          ///< guards registration + snapshots
    std::atomic<std::uint32_t> size_{0};  ///< published with release ordering
    std::unique_ptr<Slot[]> slots_;
};

/// One completed span in the trace ring. Times are nanoseconds on the steady
/// clock relative to the ring's construction.
struct TraceEvent {
    std::uint32_t name = 0;       ///< interned via TraceRing::intern
    std::uint32_t thread = 0;     ///< small per-thread ordinal
    std::uint64_t seq = 0;        ///< monotone push order
    std::uint64_t start_ns = 0;
    std::uint64_t duration_ns = 0;
};

/// Bounded in-memory ring of trace events. When full, the oldest events are
/// overwritten and counted as dropped.
class TraceRing {
public:
    explicit TraceRing(std::size_t capacity = 4096);

    std::uint32_t intern(std::string_view name);
    [[nodiscard]] std::string name(std::uint32_t id) const;

    [[nodiscard]] std::uint64_t now_ns() const;
    void push(std::uint32_t name_id, std::uint64_t start_ns,
              std::uint64_t duration_ns);

    [[nodiscard]] std::size_t capacity() const { return capacity_; }
    [[nodiscard]] std::uint64_t pushed() const;
    [[nodiscard]] std::uint64_t dropped() const;
    /// Retained events, oldest first.
    [[nodiscard]] std::vector<TraceEvent> snapshot() const;

    [[nodiscard]] std::string render_text() const;
    [[nodiscard]] std::string render_json() const;

private:
    mutable std::mutex mutex_;
    std::size_t capacity_;
    std::vector<TraceEvent> ring_;
    std::vector<std::string> names_;
    std::vector<std::pair<std::thread::id, std::uint32_t>> thread_ids_;
    std::uint64_t next_seq_ = 0;
    std::chrono::steady_clock::time_point epoch_;

    std::uint32_t thread_ordinal_locked();
};

/// Facade bundling one metric registry and one trace ring behind a shared
/// enabled toggle. Instrumented subsystems hold a non-owning `Recorder*`
/// (nullptr = observability off); the owner (a CLI, a test, a bench) decides
/// lifetime and export format.
class Recorder {
public:
    explicit Recorder(bool enabled = true, std::size_t trace_capacity = 4096)
        : metrics_(enabled), trace_(trace_capacity) {}

    [[nodiscard]] bool enabled() const { return metrics_.enabled(); }
    void set_enabled(bool on) { metrics_.set_enabled(on); }

    [[nodiscard]] MetricRegistry& metrics() { return metrics_; }
    [[nodiscard]] const MetricRegistry& metrics() const { return metrics_; }
    [[nodiscard]] TraceRing& trace() { return trace_; }
    [[nodiscard]] const TraceRing& trace() const { return trace_; }

    /// Human-readable dump: metrics table + trace summary.
    [[nodiscard]] std::string render_text() const;
    /// {"metrics":[...],"trace":{...}} — embedded verbatim by the campaign
    /// report's metrics block and written by the CLIs' --metrics-json.
    [[nodiscard]] std::string render_json() const;

private:
    MetricRegistry metrics_;
    TraceRing trace_;
};

/// RAII wall-clock timer feeding a histogram (seconds). Inert — no clock
/// read at all — when the registry is null or disabled at construction.
class ScopedTimer {
public:
    ScopedTimer() = default;
    ScopedTimer(MetricRegistry* metrics, MetricId hist_seconds)
        : metrics_(metrics != nullptr && metrics->enabled() && hist_seconds.valid()
                       ? metrics
                       : nullptr),
          hist_(hist_seconds) {
        if (metrics_ != nullptr) start_ = std::chrono::steady_clock::now();
    }
    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;
    ~ScopedTimer() { stop(); }

    /// Records the elapsed time now (idempotent) and returns it in seconds;
    /// returns 0.0 when inert.
    double stop();

private:
    MetricRegistry* metrics_ = nullptr;
    MetricId hist_{};
    std::chrono::steady_clock::time_point start_{};
};

/// RAII span: on destruction pushes a trace event and (optionally) observes
/// the duration into a seconds histogram. Inert when the recorder is null or
/// disabled at construction.
class ScopedSpan {
public:
    ScopedSpan() = default;
    ScopedSpan(Recorder* recorder, std::uint32_t span_name,
               MetricId hist_seconds = {});
    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;
    ~ScopedSpan() { finish(); }

    /// Ends the span now (idempotent).
    void finish();

private:
    Recorder* recorder_ = nullptr;
    std::uint32_t name_ = 0;
    MetricId hist_{};
    std::uint64_t start_ns_ = 0;
};

}  // namespace refpga::obs
