#include "refpga/fault/fault.hpp"

#include <cmath>
#include <limits>

#include "refpga/common/contracts.hpp"

namespace refpga::fault {

namespace {

// SplitMix64 step: derives independent per-category seeds from the plan seed
// so fault categories never share an RNG stream (same mixing as scenario
// seeding in refpga::fleet).
std::uint64_t mix(std::uint64_t seed, std::uint64_t salt) {
    std::uint64_t z = seed + salt * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

}  // namespace

FaultPlan::FaultPlan(FaultSpec spec, int columns, std::uint64_t seed)
    : spec_(spec),
      columns_(columns),
      upset_rng_(mix(seed, 1)),
      load_rng_(mix(seed, 2)),
      glitch_rng_(mix(seed, 3)),
      bit_rng_(mix(seed, 4)),
      next_upset_s_(std::numeric_limits<double>::infinity()) {
    REFPGA_EXPECTS(columns_ > 0);
    REFPGA_EXPECTS(spec_.upset_rate_per_column_s >= 0.0);
    REFPGA_EXPECTS(spec_.load_corruption_prob >= 0.0 && spec_.load_corruption_prob <= 1.0);
    REFPGA_EXPECTS(spec_.flash_error_prob >= 0.0 && spec_.flash_error_prob <= 1.0);
    REFPGA_EXPECTS(spec_.glitch_prob_per_cycle >= 0.0 && spec_.glitch_prob_per_cycle <= 1.0);
    if (spec_.upset_rate_per_column_s > 0.0) next_upset_s_ = draw_interarrival_s();
}

double FaultPlan::draw_interarrival_s() {
    // Exponential inter-arrival for a Poisson process over the whole device:
    // aggregate rate = per-column rate x columns. next_double() < 1, so the
    // log argument stays positive.
    const double lambda = spec_.upset_rate_per_column_s * columns_;
    return -std::log(1.0 - upset_rng_.next_double()) / lambda;
}

std::vector<UpsetEvent> FaultPlan::upsets_until(double t_s) {
    std::vector<UpsetEvent> events;
    while (next_upset_s_ < t_s) {
        events.push_back({next_upset_s_,
                          static_cast<int>(upset_rng_.next_below(
                              static_cast<std::uint32_t>(columns_)))});
        next_upset_s_ += draw_interarrival_s();
    }
    return events;
}

LoadFault FaultPlan::next_load_fault() {
    LoadFault fault;
    // Each category draws only when enabled, so arming one fault source
    // never perturbs another's stream.
    if (spec_.flash_error_prob > 0.0)
        fault.flash_error = load_rng_.next_double() < spec_.flash_error_prob;
    if (spec_.load_corruption_prob > 0.0)
        fault.corrupt_transfer = load_rng_.next_double() < spec_.load_corruption_prob;
    return fault;
}

Glitch FaultPlan::next_glitch() {
    Glitch glitch;
    if (spec_.glitch_prob_per_cycle <= 0.0) return glitch;
    if (glitch_rng_.next_double() < spec_.glitch_prob_per_cycle) {
        glitch.kind = (glitch_rng_.next_u64() & 1) ? GlitchKind::SpikingChannel
                                                   : GlitchKind::StuckChannel;
        glitch.on_reference = (glitch_rng_.next_u64() & 1) != 0;
    }
    return glitch;
}

}  // namespace refpga::fault
