// Deterministic, seed-driven fault injection for the self-healing pipeline.
//
// The paper motivates FPGAs for this application with upcoming requirements
// on "failure detection and recovery" (§1, §5); on SRAM FPGAs the partial
// reconfiguration machinery that saves power (§4.2) doubles as the repair
// path for configuration upsets. A FaultPlan schedules every modelled fault
// source from independent RNG streams derived from one per-scenario seed:
//
//   - configuration-SRAM upsets, Poisson at a rate per column-second
//   - config-port transfer corruption (a load lands with a wrong signature)
//   - flash read errors (the bitstream fetch fails its CRC)
//   - analog front-end glitches (a tank channel stuck or spiking)
//
// Determinism contract: a plan is a pure function of (spec, columns, seed).
// Fault categories draw from separate streams, so e.g. raising the upset
// rate never shifts which loads get corrupted. An all-zero spec draws no
// entropy at all — the fault layer is then a strict no-op and every result
// stays bit-identical to the fault-free system (refpga::fleet relies on
// this for its thread-count-independent reports).
#pragma once

#include <cstdint>
#include <vector>

#include "refpga/common/rng.hpp"

namespace refpga::fault {

/// Fault environment of one scenario. All rates/probabilities default to
/// zero: the default spec injects nothing.
struct FaultSpec {
    /// Configuration-SRAM upset rate, events per CLB-column-second (Poisson).
    double upset_rate_per_column_s = 0.0;
    /// Probability that one configuration-load attempt lands corrupted.
    double load_corruption_prob = 0.0;
    /// Probability that one bitstream fetch from flash fails its CRC.
    double flash_error_prob = 0.0;
    /// Probability that a measurement cycle's analog window is glitched.
    double glitch_prob_per_cycle = 0.0;

    [[nodiscard]] bool any() const {
        return upset_rate_per_column_s > 0.0 || load_corruption_prob > 0.0 ||
               flash_error_prob > 0.0 || glitch_prob_per_cycle > 0.0;
    }

    friend constexpr bool operator==(const FaultSpec&, const FaultSpec&) = default;
};

/// One scheduled configuration upset.
struct UpsetEvent {
    double at_s = 0.0;  ///< absolute simulation time of the hit
    int column = 0;     ///< CLB column struck
};

/// Faults afflicting one configuration-load attempt.
struct LoadFault {
    bool flash_error = false;       ///< fetch aborts at the flash CRC check
    bool corrupt_transfer = false;  ///< transfer completes but lands wrong

    [[nodiscard]] bool any() const { return flash_error || corrupt_transfer; }
};

/// Analog front-end glitch afflicting one cycle's sample window.
enum class GlitchKind { None, StuckChannel, SpikingChannel };

struct Glitch {
    GlitchKind kind = GlitchKind::None;
    bool on_reference = false;  ///< which tank channel is afflicted
};

/// Per-scenario fault schedule. Not thread-safe; confine to one thread like
/// the MeasurementSystem that owns it.
class FaultPlan {
public:
    /// `columns` is the device width upsets are spread over (must be > 0).
    FaultPlan(FaultSpec spec, int columns, std::uint64_t seed);

    [[nodiscard]] const FaultSpec& spec() const { return spec_; }
    [[nodiscard]] int columns() const { return columns_; }

    /// Consumes and returns every upset scheduled strictly before `t_s`
    /// (absolute time, monotonically increasing calls). Times ascend.
    [[nodiscard]] std::vector<UpsetEvent> upsets_until(double t_s);

    /// Draws the fault outcome of the next configuration-load attempt.
    [[nodiscard]] LoadFault next_load_fault();

    /// Draws the glitch outcome of the next measurement cycle.
    [[nodiscard]] Glitch next_glitch();

    /// Stream for upset bit selection (ConfigMemory::inject_upset).
    [[nodiscard]] Rng& bit_rng() { return bit_rng_; }

private:
    [[nodiscard]] double draw_interarrival_s();

    FaultSpec spec_;
    int columns_;
    Rng upset_rng_;   ///< arrival times and column choice
    Rng load_rng_;    ///< flash/transfer fault outcomes
    Rng glitch_rng_;  ///< analog glitch outcomes
    Rng bit_rng_;     ///< which configuration bit an upset flips
    double next_upset_s_;  ///< +inf when the upset rate is zero
};

/// Running tally of injected faults and the system's response, kept by
/// app::MeasurementSystem and harvested into fleet::ScenarioOutcome.
struct FaultStats {
    long cycles = 0;
    long upsets_injected = 0;
    long upsets_detected = 0;   ///< found by readback scrubbing
    long columns_repaired = 0;  ///< rewritten from the golden store
    long glitches_injected = 0;
    long load_retries = 0;      ///< extra transfer attempts beyond the first
    long load_failures = 0;     ///< loads that exhausted their retry budget
    long rejected_cycles = 0;   ///< plausibility guard held last-good value
    long fallback_cycles = 0;   ///< served by the resident software path
    long corrupted_cycles = 0;  ///< processed while fabric columns were bad
    long degraded_cycles = 0;   ///< any of the three conditions above

    double scrub_s = 0.0;   ///< cumulative readback time
    double repair_s = 0.0;  ///< cumulative column-rewrite time

    // Detect/repair latency, summed over upsets the scrubber found.
    double detect_latency_sum_s = 0.0;
    long detect_latency_count = 0;
    double repair_latency_sum_s = 0.0;
    long repair_latency_count = 0;

    /// Fraction of cycles that delivered an undegraded measurement (the
    /// oracle view: a cycle counts as unavailable when it fell back to
    /// software, was vetoed by the plausibility guard, or was processed on
    /// corrupted fabric).
    [[nodiscard]] double availability() const {
        if (cycles == 0) return 1.0;
        return 1.0 - static_cast<double>(degraded_cycles) /
                         static_cast<double>(cycles);
    }

    [[nodiscard]] double mean_time_to_detect_s() const {
        return detect_latency_count == 0
                   ? 0.0
                   : detect_latency_sum_s / static_cast<double>(detect_latency_count);
    }

    [[nodiscard]] double mean_time_to_repair_s() const {
        return repair_latency_count == 0
                   ? 0.0
                   : repair_latency_sum_s / static_cast<double>(repair_latency_count);
    }
};

}  // namespace refpga::fault
