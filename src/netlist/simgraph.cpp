#include "refpga/netlist/simgraph.hpp"

#include <algorithm>

#include "refpga/common/contracts.hpp"

namespace refpga::netlist {

namespace {

bool is_comb(const Cell& c) {
    return c.kind == CellKind::Lut || c.kind == CellKind::Mult18;
}

/// Sorts and deduplicates the tail of `items` starting at `begin`.
void sort_unique_tail(std::vector<std::uint32_t>& items, std::size_t begin) {
    std::sort(items.begin() + static_cast<std::ptrdiff_t>(begin), items.end());
    items.erase(std::unique(items.begin() + static_cast<std::ptrdiff_t>(begin),
                            items.end()),
                items.end());
}

}  // namespace

SimGraph::SimGraph(const Netlist& nl) {
    const std::size_t cells = nl.cell_count();
    const std::size_t nets = nl.net_count();

    // Per-net consumer CSR, split by consumer kind. Sinks come straight from
    // the nets' sink lists, so one pass over nets fills both tables.
    comb_offsets_.reserve(nets + 1);
    seq_offsets_.reserve(nets + 1);
    comb_offsets_.push_back(0);
    seq_offsets_.push_back(0);
    for (std::uint32_t ni = 0; ni < nets; ++ni) {
        const Net& n = nl.net(NetId{ni});
        const std::size_t comb_begin = comb_sinks_.size();
        const std::size_t seq_begin = seq_sinks_.size();
        for (const PinRef sink : n.sinks) {
            const Cell& c = nl.cell(sink.cell);
            if (is_comb(c))
                comb_sinks_.push_back(sink.cell.value());
            else if (c.sequential())
                seq_sinks_.push_back(sink.cell.value());
            // Pads and constants have no evaluation to schedule.
        }
        sort_unique_tail(comb_sinks_, comb_begin);
        sort_unique_tail(seq_sinks_, seq_begin);
        comb_offsets_.push_back(static_cast<std::uint32_t>(comb_sinks_.size()));
        seq_offsets_.push_back(static_cast<std::uint32_t>(seq_sinks_.size()));
    }

    // Levelize combinational cells (Kahn over comb->comb edges). level(cell)
    // is the longest chain of combinational drivers feeding it, so draining
    // levels in ascending order evaluates every cell after all its inputs.
    levels_.assign(cells, 0);
    std::vector<std::uint32_t> pending(cells, 0);
    std::size_t comb_count = 0;
    std::vector<std::uint32_t> distinct;
    for (std::uint32_t ci = 0; ci < cells; ++ci) {
        const Cell& c = nl.cell(CellId{ci});
        if (c.sequential()) seq_cells_.push_back(ci);
        if (!is_comb(c)) continue;
        ++comb_count;
        // The drain below decrements once per distinct comb-driven input net
        // (the consumer CSR is deduplicated), so a cell wired to the same
        // net through several pins must count that net once.
        distinct.clear();
        for (const NetId in : c.inputs) {
            if (!in.valid()) continue;
            const Net& n = nl.net(in);
            if (n.driven() && is_comb(nl.cell(n.driver.cell)))
                distinct.push_back(in.value());
        }
        sort_unique_tail(distinct, 0);
        pending[ci] = static_cast<std::uint32_t>(distinct.size());
    }

    std::vector<std::uint32_t> ready;
    for (std::uint32_t ci = 0; ci < cells; ++ci)
        if (is_comb(nl.cell(CellId{ci})) && pending[ci] == 0) ready.push_back(ci);

    comb_order_.reserve(comb_count);
    std::size_t head = 0;  // FIFO drain keeps the frontier in level waves
    std::vector<std::uint32_t> queue = std::move(ready);
    while (head < queue.size()) {
        const std::uint32_t ci = queue[head++];
        comb_order_.push_back(ci);
        const Cell& c = nl.cell(CellId{ci});
        for (const NetId out : c.outputs) {
            if (!out.valid()) continue;
            for (const std::uint32_t dep : comb_consumers(out)) {
                levels_[dep] = std::max(levels_[dep], levels_[ci] + 1);
                if (--pending[dep] == 0) queue.push_back(dep);
            }
        }
    }
    REFPGA_EXPECTS(comb_order_.size() == comb_count);  // no combinational loop

    // comb_order_ is currently in Kahn completion order; make it strictly
    // level-ascending (stable within a level by cell index for determinism).
    std::stable_sort(comb_order_.begin(), comb_order_.end(),
                     [this](std::uint32_t a, std::uint32_t b) {
                         if (levels_[a] != levels_[b]) return levels_[a] < levels_[b];
                         return a < b;
                     });
    if (!comb_order_.empty()) level_count_ = levels_[comb_order_.back()] + 1;
}

}  // namespace refpga::netlist
