#include "refpga/netlist/netlist.hpp"

namespace refpga::netlist {

const char* cell_kind_name(CellKind kind) {
    switch (kind) {
        case CellKind::Lut: return "LUT";
        case CellKind::Ff: return "FF";
        case CellKind::Bram: return "BRAM";
        case CellKind::Mult18: return "MULT18";
        case CellKind::Inpad: return "INPAD";
        case CellKind::Outpad: return "OUTPAD";
        case CellKind::Gnd: return "GND";
        case CellKind::Vcc: return "VCC";
    }
    return "?";
}

Netlist::Netlist() {
    partition_names_.push_back("static");
    current_partition_ = PartitionId{0};
}

NetId Netlist::add_net(std::string name) {
    nets_.push_back(Net{std::move(name), PinRef{}, {}, false});
    return NetId{static_cast<std::uint32_t>(nets_.size() - 1)};
}

CellId Netlist::new_cell(Cell cell) {
    cell.partition = current_partition_;
    cells_.push_back(std::move(cell));
    return CellId{static_cast<std::uint32_t>(cells_.size() - 1)};
}

void Netlist::connect_input(CellId cell_id, std::uint16_t pin, NetId net_id) {
    REFPGA_EXPECTS(net_id.valid());
    Cell& c = cell(cell_id);
    if (c.inputs.size() <= pin) c.inputs.resize(pin + 1);
    c.inputs[pin] = net_id;
    net(net_id).sinks.push_back(PinRef{cell_id, pin});
}

NetId Netlist::new_output(CellId cell_id, std::uint16_t pin, std::string name) {
    const NetId out = add_net(std::move(name));
    Cell& c = cell(cell_id);
    if (c.outputs.size() <= pin) c.outputs.resize(pin + 1);
    c.outputs[pin] = out;
    net(out).driver = PinRef{cell_id, pin};
    return out;
}

NetId Netlist::add_lut(std::uint16_t mask, std::span<const NetId> inputs, std::string name) {
    REFPGA_EXPECTS(!inputs.empty() && inputs.size() <= 4);
    Cell c;
    c.kind = CellKind::Lut;
    c.name = name;
    c.lut_mask = mask;
    const CellId id = new_cell(std::move(c));
    for (std::size_t i = 0; i < inputs.size(); ++i)
        connect_input(id, static_cast<std::uint16_t>(i), inputs[i]);
    return new_output(id, 0, name + ".o");
}

NetId Netlist::add_ff(NetId d, NetId clock, NetId ce, std::string name) {
    REFPGA_EXPECTS(d.valid() && clock.valid());
    Cell c;
    c.kind = CellKind::Ff;
    c.name = name;
    c.clock = clock;
    const CellId id = new_cell(std::move(c));
    connect_input(id, 0, d);
    if (ce.valid()) connect_input(id, 1, ce);
    net(clock).is_clock = true;
    return new_output(id, 0, name + ".q");
}

std::vector<NetId> Netlist::add_bram(const BramConfig& cfg, std::span<const NetId> addr,
                                     NetId clock, NetId we, std::span<const NetId> wdata,
                                     std::string name) {
    REFPGA_EXPECTS(cfg.addr_bits >= 1 && cfg.addr_bits <= 14);
    REFPGA_EXPECTS(cfg.data_bits >= 1 && cfg.data_bits <= 32);
    REFPGA_EXPECTS(addr.size() == static_cast<std::size_t>(cfg.addr_bits));
    REFPGA_EXPECTS(!cfg.writable || wdata.size() == static_cast<std::size_t>(cfg.data_bits));
    REFPGA_EXPECTS(clock.valid());

    Cell c;
    c.kind = CellKind::Bram;
    c.name = name;
    c.clock = clock;
    c.bram_index = static_cast<std::uint32_t>(bram_configs_.size());
    bram_configs_.push_back(cfg);
    bram_configs_.back().init.resize(bram_configs_.back().depth(), 0);

    const CellId id = new_cell(std::move(c));
    // Input pin layout: [addr..., we, wdata...]
    std::uint16_t pin = 0;
    for (const NetId a : addr) connect_input(id, pin++, a);
    if (cfg.writable) {
        REFPGA_EXPECTS(we.valid());
        connect_input(id, pin++, we);
        for (const NetId w : wdata) connect_input(id, pin++, w);
    }
    net(clock).is_clock = true;

    std::vector<NetId> out;
    out.reserve(static_cast<std::size_t>(cfg.data_bits));
    for (int i = 0; i < cfg.data_bits; ++i)
        out.push_back(new_output(id, static_cast<std::uint16_t>(i),
                                 name + ".do" + std::to_string(i)));
    return out;
}

std::vector<NetId> Netlist::add_mult18(std::span<const NetId> a, std::span<const NetId> b,
                                       std::string name) {
    REFPGA_EXPECTS(!a.empty() && a.size() <= 18);
    REFPGA_EXPECTS(!b.empty() && b.size() <= 18);
    Cell c;
    c.kind = CellKind::Mult18;
    c.name = name;
    const CellId id = new_cell(std::move(c));
    std::uint16_t pin = 0;
    for (const NetId n : a) connect_input(id, pin++, n);
    for (const NetId n : b) connect_input(id, pin++, n);
    // Record the operand split so evaluators can reconstruct it.
    cell(id).lut_mask = static_cast<std::uint16_t>(a.size());

    std::vector<NetId> out;
    out.reserve(36);
    for (int i = 0; i < 36; ++i)
        out.push_back(new_output(id, static_cast<std::uint16_t>(i),
                                 name + ".p" + std::to_string(i)));
    return out;
}

NetId Netlist::add_gnd() {
    if (gnd_net_.valid()) return gnd_net_;
    Cell c;
    c.kind = CellKind::Gnd;
    c.name = "gnd";
    const CellId id = new_cell(std::move(c));
    gnd_net_ = new_output(id, 0, "gnd");
    return gnd_net_;
}

NetId Netlist::add_vcc() {
    if (vcc_net_.valid()) return vcc_net_;
    Cell c;
    c.kind = CellKind::Vcc;
    c.name = "vcc";
    const CellId id = new_cell(std::move(c));
    vcc_net_ = new_output(id, 0, "vcc");
    return vcc_net_;
}

std::vector<NetId> Netlist::add_input_port(const std::string& name, int width) {
    REFPGA_EXPECTS(width >= 1);
    REFPGA_EXPECTS(find_port(name) == nullptr);
    Port port;
    port.name = name;
    port.dir = PortDir::Input;
    for (int i = 0; i < width; ++i) {
        Cell c;
        c.kind = CellKind::Inpad;
        c.name = name + "[" + std::to_string(i) + "]";
        const CellId id = new_cell(std::move(c));
        port.pads.push_back(id);
        port.nets.push_back(new_output(id, 0, name + "_" + std::to_string(i)));
    }
    ports_.push_back(std::move(port));
    return ports_.back().nets;
}

void Netlist::add_output_port(const std::string& name, std::span<const NetId> bits) {
    REFPGA_EXPECTS(!bits.empty());
    REFPGA_EXPECTS(find_port(name) == nullptr);
    Port port;
    port.name = name;
    port.dir = PortDir::Output;
    for (std::size_t i = 0; i < bits.size(); ++i) {
        Cell c;
        c.kind = CellKind::Outpad;
        c.name = name + "[" + std::to_string(i) + "]";
        const CellId id = new_cell(std::move(c));
        connect_input(id, 0, bits[i]);
        port.pads.push_back(id);
        port.nets.push_back(bits[i]);
    }
    ports_.push_back(std::move(port));
}

PartitionId Netlist::add_partition(std::string name) {
    partition_names_.push_back(std::move(name));
    return PartitionId{static_cast<std::uint32_t>(partition_names_.size() - 1)};
}

void Netlist::set_current_partition(PartitionId p) {
    REFPGA_EXPECTS(p.value() < partition_names_.size());
    current_partition_ = p;
}

const Cell& Netlist::cell(CellId id) const {
    REFPGA_EXPECTS(id.value() < cells_.size());
    return cells_[id.value()];
}

Cell& Netlist::cell(CellId id) {
    REFPGA_EXPECTS(id.value() < cells_.size());
    return cells_[id.value()];
}

const Net& Netlist::net(NetId id) const {
    REFPGA_EXPECTS(id.value() < nets_.size());
    return nets_[id.value()];
}

Net& Netlist::net(NetId id) {
    REFPGA_EXPECTS(id.value() < nets_.size());
    return nets_[id.value()];
}

const Port* Netlist::find_port(const std::string& name) const {
    for (const Port& p : ports_)
        if (p.name == name) return &p;
    return nullptr;
}

const BramConfig& Netlist::bram_config(const Cell& cell) const {
    REFPGA_EXPECTS(cell.kind == CellKind::Bram);
    return bram_configs_[cell.bram_index];
}

BramConfig& Netlist::bram_config(const Cell& cell) {
    REFPGA_EXPECTS(cell.kind == CellKind::Bram);
    return bram_configs_[cell.bram_index];
}

std::vector<NetId> Netlist::clock_nets() const {
    std::vector<NetId> clocks;
    for (std::size_t i = 0; i < nets_.size(); ++i)
        if (nets_[i].is_clock) clocks.push_back(NetId{static_cast<std::uint32_t>(i)});
    return clocks;
}

}  // namespace refpga::netlist
