#include "refpga/netlist/drc.hpp"

#include <cstdint>

namespace refpga::netlist {

const char* drc_issue_name(DrcIssue::Kind kind) {
    switch (kind) {
        case DrcIssue::Kind::UndrivenNet: return "undriven-net";
        case DrcIssue::Kind::DanglingInput: return "dangling-input";
        case DrcIssue::Kind::CombinationalLoop: return "combinational-loop";
        case DrcIssue::Kind::ClockUsedAsData: return "clock-used-as-data";
    }
    return "?";
}

namespace {

// Detects a cycle through combinational cells with an iterative DFS.
bool has_combinational_loop(const Netlist& nl, std::string* where) {
    enum class Mark : std::uint8_t { White, Grey, Black };
    std::vector<Mark> mark(nl.cell_count(), Mark::White);

    struct Frame {
        std::uint32_t cell;
        std::size_t next_out = 0;   ///< next output net to expand
        std::size_t next_sink = 0;  ///< next sink within that net
    };

    for (std::uint32_t start = 0; start < nl.cell_count(); ++start) {
        if (mark[start] != Mark::White) continue;
        if (nl.cell(CellId{start}).sequential()) continue;

        std::vector<Frame> stack{{start}};
        mark[start] = Mark::Grey;
        while (!stack.empty()) {
            Frame& f = stack.back();
            const Cell& c = nl.cell(CellId{f.cell});
            bool descended = false;
            while (f.next_out < c.outputs.size()) {
                const NetId out = c.outputs[f.next_out];
                if (!out.valid()) {
                    ++f.next_out;
                    continue;
                }
                const Net& n = nl.net(out);
                if (f.next_sink >= n.sinks.size()) {
                    ++f.next_out;
                    f.next_sink = 0;
                    continue;
                }
                const PinRef sink = n.sinks[f.next_sink++];
                const Cell& sc = nl.cell(sink.cell);
                if (sc.sequential()) continue;  // FF/BRAM breaks the cycle
                const auto v = sink.cell.value();
                if (mark[v] == Mark::Grey) {
                    if (where) *where = sc.name;
                    return true;
                }
                if (mark[v] == Mark::White) {
                    mark[v] = Mark::Grey;
                    stack.push_back({v});
                    descended = true;
                    break;
                }
            }
            if (!descended && stack.back().next_out >= c.outputs.size()) {
                mark[f.cell] = Mark::Black;
                stack.pop_back();
            }
        }
    }
    return false;
}

}  // namespace

std::vector<DrcIssue> run_drc(const Netlist& nl) {
    std::vector<DrcIssue> issues;

    for (std::size_t i = 0; i < nl.net_count(); ++i) {
        const Net& n = nl.net(NetId{static_cast<std::uint32_t>(i)});
        if (!n.driven() && !n.sinks.empty())
            issues.push_back({DrcIssue::Kind::UndrivenNet, n.name});
        if (n.is_clock && n.driven()) {
            // A clock may fan out to data inputs only through explicit use;
            // flag cases where the same net is both a clock and a LUT input.
            for (const PinRef& sink : n.sinks) {
                const Cell& c = nl.cell(sink.cell);
                if (c.kind == CellKind::Lut)
                    issues.push_back({DrcIssue::Kind::ClockUsedAsData,
                                      n.name + " -> " + c.name});
            }
        }
    }

    for (std::size_t i = 0; i < nl.cell_count(); ++i) {
        const Cell& c = nl.cell(CellId{static_cast<std::uint32_t>(i)});
        for (std::size_t pin = 0; pin < c.inputs.size(); ++pin) {
            // FF pin 1 (CE) is optional; all other pins must be wired.
            if (!c.inputs[pin].valid() && !(c.kind == CellKind::Ff && pin == 1))
                issues.push_back({DrcIssue::Kind::DanglingInput,
                                  c.name + " pin " + std::to_string(pin)});
        }
    }

    std::string where;
    if (has_combinational_loop(nl, &where))
        issues.push_back({DrcIssue::Kind::CombinationalLoop, where});

    return issues;
}

void require_clean(const Netlist& nl) {
    const auto issues = run_drc(nl);
    if (!issues.empty())
        throw ContractViolation(std::string("netlist DRC failed: ") +
                                drc_issue_name(issues.front().kind) + " (" +
                                issues.front().detail + "), " +
                                std::to_string(issues.size()) + " issue(s) total");
}

}  // namespace refpga::netlist
