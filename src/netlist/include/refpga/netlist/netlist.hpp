// Technology-mapped netlist for the Spartan-3 fabric model.
//
// Cells are the primitives the fabric offers (4-input LUTs, flip-flops,
// 18-kbit BRAMs, MULT18 multipliers, pads, constants); nets connect exactly
// one driver pin to any number of sink pins. The netlist is the common
// exchange format between the generators (app), the simulator (sim), the
// placer/router (par) and the power estimator (power).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "refpga/common/contracts.hpp"
#include "refpga/common/strong_id.hpp"

namespace refpga::netlist {

struct CellIdTag {};
struct NetIdTag {};
struct PartitionIdTag {};
using CellId = StrongId<CellIdTag>;
using NetId = StrongId<NetIdTag>;
using PartitionId = StrongId<PartitionIdTag>;

enum class CellKind : std::uint8_t {
    Lut,     ///< 1..4-input LUT with 16-bit truth table
    Ff,      ///< D flip-flop with optional clock enable
    Bram,    ///< 18-kbit block RAM, single synchronous read/write port
    Mult18,  ///< combinational 18x18 signed multiplier
    Inpad,   ///< top-level input (drives one net)
    Outpad,  ///< top-level output (observes one net)
    Gnd,     ///< constant 0 driver
    Vcc,     ///< constant 1 driver
};

[[nodiscard]] const char* cell_kind_name(CellKind kind);

/// Reference to one pin of a cell. For sinks `pin` indexes the cell's input
/// list; for drivers it indexes the cell's output list.
struct PinRef {
    CellId cell;
    std::uint16_t pin = 0;

    friend constexpr bool operator==(const PinRef&, const PinRef&) = default;
};

/// Block-RAM configuration and initial contents.
struct BramConfig {
    int addr_bits = 10;
    int data_bits = 18;
    bool writable = false;
    std::vector<std::uint32_t> init;  ///< word-per-address initial contents

    [[nodiscard]] std::size_t depth() const { return std::size_t{1} << addr_bits; }
};

struct Cell {
    CellKind kind = CellKind::Lut;
    std::string name;
    PartitionId partition;          ///< which floorplan partition the cell belongs to
    std::uint16_t lut_mask = 0;     ///< truth table, LUT cells only
    std::vector<NetId> inputs;      ///< data inputs (FF: [D] or [D, CE])
    std::vector<NetId> outputs;     ///< driven nets
    NetId clock;                    ///< FF/BRAM clock net (invalid for others)
    std::uint32_t bram_index = 0;   ///< index into Netlist bram configs, BRAM only

    [[nodiscard]] bool sequential() const {
        return kind == CellKind::Ff || kind == CellKind::Bram;
    }
};

struct Net {
    std::string name;
    PinRef driver;                ///< invalid cell id until a driver connects
    std::vector<PinRef> sinks;
    bool is_clock = false;        ///< marked when any FF/BRAM uses it as clock

    [[nodiscard]] bool driven() const { return driver.cell.valid(); }
    [[nodiscard]] std::size_t fanout() const { return sinks.size(); }
};

enum class PortDir : std::uint8_t { Input, Output };

/// Top-level port: a named bus of pad cells.
struct Port {
    std::string name;
    PortDir dir = PortDir::Input;
    std::vector<CellId> pads;  ///< one pad cell per bit, LSB first
    std::vector<NetId> nets;   ///< the nets at the fabric side of the pads
};

class Netlist {
public:
    Netlist();

    // --- construction -------------------------------------------------------

    NetId add_net(std::string name);

    /// LUT with `inputs.size()` inputs (1..4). Bit i of `mask` is the output
    /// for input vector i (inputs[0] = LSB of the index). Returns output net.
    NetId add_lut(std::uint16_t mask, std::span<const NetId> inputs, std::string name);

    /// D flip-flop. `ce` may be invalid (always enabled). Returns Q net.
    NetId add_ff(NetId d, NetId clock, NetId ce, std::string name);

    /// Synchronous BRAM port: reads cfg.data_bits at `addr` every clock; when
    /// writable and `we`=1, writes `wdata` first. Returns the read-data nets.
    std::vector<NetId> add_bram(const BramConfig& cfg, std::span<const NetId> addr,
                                NetId clock, NetId we, std::span<const NetId> wdata,
                                std::string name);

    /// 18x18 signed multiplier; a/b are sign-extended to 18 bits. Returns 36
    /// product nets.
    std::vector<NetId> add_mult18(std::span<const NetId> a, std::span<const NetId> b,
                                  std::string name);

    NetId add_gnd();
    NetId add_vcc();

    std::vector<NetId> add_input_port(const std::string& name, int width);
    void add_output_port(const std::string& name, std::span<const NetId> bits);

    PartitionId add_partition(std::string name);
    void set_current_partition(PartitionId p);
    [[nodiscard]] PartitionId current_partition() const { return current_partition_; }

    // --- access --------------------------------------------------------------

    [[nodiscard]] std::size_t cell_count() const { return cells_.size(); }
    [[nodiscard]] std::size_t net_count() const { return nets_.size(); }

    [[nodiscard]] const Cell& cell(CellId id) const;
    [[nodiscard]] Cell& cell(CellId id);
    [[nodiscard]] const Net& net(NetId id) const;
    [[nodiscard]] Net& net(NetId id);

    [[nodiscard]] const std::vector<Cell>& cells() const { return cells_; }
    [[nodiscard]] const std::vector<Net>& nets() const { return nets_; }
    [[nodiscard]] const std::vector<Port>& ports() const { return ports_; }
    [[nodiscard]] const Port* find_port(const std::string& name) const;

    [[nodiscard]] const std::vector<std::string>& partitions() const { return partition_names_; }
    [[nodiscard]] const BramConfig& bram_config(const Cell& cell) const;
    [[nodiscard]] BramConfig& bram_config(const Cell& cell);

    /// All nets used as clocks by at least one sequential cell.
    [[nodiscard]] std::vector<NetId> clock_nets() const;

private:
    CellId new_cell(Cell cell);
    void connect_input(CellId cell, std::uint16_t pin, NetId net);
    NetId new_output(CellId cell, std::uint16_t pin, std::string name);

    std::vector<Cell> cells_;
    std::vector<Net> nets_;
    std::vector<Port> ports_;
    std::vector<BramConfig> bram_configs_;
    std::vector<std::string> partition_names_;
    PartitionId current_partition_;
    NetId gnd_net_;
    NetId vcc_net_;
};

}  // namespace refpga::netlist
