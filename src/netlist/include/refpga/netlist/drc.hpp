// Design-rule checks over a netlist.
//
// Run before simulation or place & route: catches undriven nets feeding logic,
// multiply-driven nets, out-of-range LUT masks, and combinational loops (which
// the levelized simulator cannot evaluate).
#pragma once

#include <string>
#include <vector>

#include "refpga/netlist/netlist.hpp"

namespace refpga::netlist {

struct DrcIssue {
    enum class Kind {
        UndrivenNet,        ///< net has sinks but no driver
        DanglingInput,      ///< cell input pin references an invalid net
        CombinationalLoop,  ///< cycle through only combinational cells
        ClockUsedAsData,    ///< clock net also feeds a data input
    };
    Kind kind;
    std::string detail;
};

[[nodiscard]] const char* drc_issue_name(DrcIssue::Kind kind);

/// All issues found; empty means clean.
[[nodiscard]] std::vector<DrcIssue> run_drc(const Netlist& nl);

/// Throws ContractViolation listing the first issue if the netlist is unclean.
void require_clean(const Netlist& nl);

}  // namespace refpga::netlist
