// Per-partition resource statistics (the raw material for Table 1).
#pragma once

#include <string>
#include <vector>

#include "refpga/netlist/netlist.hpp"

namespace refpga::netlist {

struct PartitionStats {
    std::string name;
    std::size_t luts = 0;
    std::size_t ffs = 0;
    std::size_t brams = 0;
    std::size_t mults = 0;
    std::size_t pads = 0;

    /// Slices needed assuming 2 LUTs + 2 FFs per slice with LUT/FF pairing.
    [[nodiscard]] std::size_t slices() const {
        const std::size_t lut_slices = (luts + 1) / 2;
        const std::size_t ff_slices = (ffs + 1) / 2;
        return lut_slices > ff_slices ? lut_slices : ff_slices;
    }
};

/// One entry per partition, in partition order.
[[nodiscard]] std::vector<PartitionStats> partition_stats(const Netlist& nl);

/// Whole-netlist totals.
[[nodiscard]] PartitionStats total_stats(const Netlist& nl);

}  // namespace refpga::netlist
