// Precomputed cell<->net adjacency in CSR (compressed sparse row) layout.
//
// The §4.3 reallocation loop needs, for every candidate move, "which nets
// touch this cell" and "which cells sit on this net". Building those with
// per-call std::set scans is O(pins log pins) per query and dominated the
// hot loop; this index computes both directions once and answers queries as
// contiguous, sorted, duplicate-free spans. Membership depends only on the
// netlist's connectivity, so the index stays valid across placement moves
// and re-routes; rebuild only when the netlist itself changes.
#pragma once

#include <span>
#include <vector>

#include "refpga/netlist/netlist.hpp"

namespace refpga::netlist {

class CellNetIndex {
public:
    explicit CellNetIndex(const Netlist& nl);

    /// Nets incident to `cell` (inputs, outputs and clock), sorted, unique.
    [[nodiscard]] std::span<const NetId> nets_of(CellId cell) const;

    /// Cells on `net` (driver and sinks), sorted, unique.
    [[nodiscard]] std::span<const CellId> cells_of(NetId net) const;

private:
    std::vector<std::uint32_t> cell_offsets_;  ///< cell_count + 1 entries
    std::vector<NetId> cell_nets_;
    std::vector<std::uint32_t> net_offsets_;   ///< net_count + 1 entries
    std::vector<CellId> net_cells_;
};

}  // namespace refpga::netlist
