// Precomputed simulation graph: fanout and level CSR for event-driven
// evaluation.
//
// The event-driven simulator (refpga::sim::EventSimulator) needs two
// net-indexed queries on its hottest path: "which combinational cells consume
// this net" (to schedule re-evaluation when the net flips) and "which
// sequential cells sample this net" (to arm flip-flops/BRAMs for the next
// clock edge). Both are answered from CSR arrays built once here, together
// with a levelization of the combinational cells (level = longest
// combinational-driver chain feeding the cell), so pending work can be
// drained strictly level-by-level — each dirty cell evaluates at most once
// per settle, which is what keeps event-driven toggle counts bit-identical
// to the full cycle engine's.
//
// Like CellNetIndex, membership depends only on connectivity: the graph stays
// valid until the netlist itself changes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "refpga/netlist/netlist.hpp"

namespace refpga::netlist {

class SimGraph {
public:
    /// The netlist must be free of combinational loops (DRC-clean designs
    /// are); construction levelizes with Kahn's algorithm and throws a
    /// ContractViolation if a loop prevents complete levelization.
    explicit SimGraph(const Netlist& nl);

    /// Combinational cells (LUT/MULT18) with `net` among their inputs,
    /// sorted, unique. Outpads are observation-only and excluded.
    [[nodiscard]] std::span<const std::uint32_t> comb_consumers(NetId net) const {
        return {comb_sinks_.data() + comb_offsets_[net.value()],
                comb_sinks_.data() + comb_offsets_[net.value() + 1]};
    }

    /// Sequential cells (FF/BRAM) sampling `net` through a data pin (D, CE,
    /// address, write-enable or write-data — not the clock), sorted, unique.
    [[nodiscard]] std::span<const std::uint32_t> seq_consumers(NetId net) const {
        return {seq_sinks_.data() + seq_offsets_[net.value()],
                seq_sinks_.data() + seq_offsets_[net.value() + 1]};
    }

    /// Evaluation level of a combinational cell: 0 when no combinational
    /// cell drives any of its inputs, otherwise 1 + max over such drivers.
    /// Meaningless (0) for sequential cells and pads.
    [[nodiscard]] std::uint32_t level_of(std::uint32_t cell_index) const {
        return levels_[cell_index];
    }

    /// Number of distinct levels (max level + 1; 0 for a netlist with no
    /// combinational cells).
    [[nodiscard]] std::uint32_t level_count() const { return level_count_; }

    /// All combinational cells in ascending level order (a valid topological
    /// evaluation order).
    [[nodiscard]] const std::vector<std::uint32_t>& comb_order() const {
        return comb_order_;
    }

    /// All sequential cells (FF + BRAM), ascending cell index.
    [[nodiscard]] const std::vector<std::uint32_t>& seq_cells() const {
        return seq_cells_;
    }

private:
    std::vector<std::uint32_t> comb_offsets_;  ///< net_count + 1 entries
    std::vector<std::uint32_t> comb_sinks_;
    std::vector<std::uint32_t> seq_offsets_;   ///< net_count + 1 entries
    std::vector<std::uint32_t> seq_sinks_;
    std::vector<std::uint32_t> levels_;        ///< cell_count entries
    std::vector<std::uint32_t> comb_order_;
    std::vector<std::uint32_t> seq_cells_;
    std::uint32_t level_count_ = 0;
};

}  // namespace refpga::netlist
