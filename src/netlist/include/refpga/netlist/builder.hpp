// Word-level netlist construction.
//
// Builder wraps a Netlist with bus-valued operators (add, mul, mux, compare,
// registers, counters, ROMs) so the application's hardware modules can be
// generated compactly while still elaborating down to LUT/FF/BRAM/MULT18
// primitives with realistic resource counts.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "refpga/netlist/netlist.hpp"

namespace refpga::netlist {

/// A little-endian bus of nets (bit 0 first).
using Bus = std::vector<NetId>;

class Builder {
public:
    /// All sequential cells created through this builder use `clock`.
    Builder(Netlist& nl, NetId clock);

    [[nodiscard]] Netlist& netlist() { return nl_; }
    [[nodiscard]] NetId clock() const { return clock_; }
    [[nodiscard]] NetId gnd() { return nl_.add_gnd(); }
    [[nodiscard]] NetId vcc() { return nl_.add_vcc(); }

    /// Hierarchical name scoping: names of cells created inside a scope are
    /// prefixed with "<scope>/"; scopes nest.
    void push_scope(const std::string& name);
    void pop_scope();

    // --- bit-level ----------------------------------------------------------

    NetId lut(std::uint16_t mask, std::initializer_list<NetId> inputs,
              const std::string& name = "lut");
    NetId not_(NetId a);
    NetId and_(NetId a, NetId b);
    NetId or_(NetId a, NetId b);
    NetId xor_(NetId a, NetId b);
    NetId xnor_(NetId a, NetId b);
    NetId mux(NetId sel, NetId when0, NetId when1);
    NetId ff(NetId d, NetId ce = NetId{}, const std::string& name = "ff");

    // --- word-level ---------------------------------------------------------

    /// Bus holding a compile-time constant (wired to GND/VCC).
    Bus constant(std::uint64_t value, int width);

    Bus not_bus(const Bus& a);
    Bus and_bus(const Bus& a, const Bus& b);
    Bus or_bus(const Bus& a, const Bus& b);
    Bus xor_bus(const Bus& a, const Bus& b);
    Bus mux_bus(NetId sel, const Bus& when0, const Bus& when1);

    /// Ripple-carry add; result has max(|a|,|b|) bits (carry-out dropped)
    /// unless `keep_carry`, which appends it.
    Bus add(const Bus& a, const Bus& b, bool keep_carry = false);
    Bus sub(const Bus& a, const Bus& b);  ///< a - b, two's complement
    Bus negate(const Bus& a);

    /// Selectable adder/subtractor: subtract ? a - b : a + b (one adder with
    /// XOR-conditioned operand and carry-in, as fabric add/sub units do).
    Bus addsub(const Bus& a, const Bus& b, NetId subtract);

    /// Increment-by-one (half-adder chain), same width as a.
    Bus increment(const Bus& a);

    NetId eq(const Bus& a, const Bus& b);
    NetId lt_unsigned(const Bus& a, const Bus& b);
    NetId lt_signed(const Bus& a, const Bus& b);

    /// Registers every bit of `d`; optional clock enable.
    Bus reg(const Bus& d, NetId ce = NetId{}, const std::string& name = "reg");

    /// Free-running (or ce-gated) up counter of `width` bits.
    Bus counter(int width, NetId ce = NetId{}, const std::string& name = "cnt");

    /// State register with feedback: creates `width` FFs, calls `next(q)` to
    /// build the next-state logic, and closes the loop. Returns q.
    Bus feedback_reg(int width, const std::function<Bus(const Bus&)>& next,
                     NetId ce = NetId{}, const std::string& name = "state");

    /// Combinational LUT ROM: contents[i] is the word at address i. Built
    /// from LUT4 trees (one tree per output bit), mirroring distributed RAM.
    Bus rom_lut(const Bus& addr, const std::vector<std::uint32_t>& contents,
                int data_bits, const std::string& name = "rom");

    /// Synchronous BRAM ROM (read-only port).
    Bus rom_bram(const Bus& addr, const std::vector<std::uint32_t>& contents,
                 int data_bits, const std::string& name = "bram_rom");

    /// Signed multiply via a MULT18 block (operand widths <= 18); returns
    /// `out_bits` product bits starting at `shift` (fixed-point rescaling).
    Bus mul_mult18(const Bus& a, const Bus& b, int out_bits, int shift = 0,
                   const std::string& name = "mul");

    // --- wiring helpers (no hardware cost) -----------------------------------

    static Bus slice(const Bus& a, int lsb, int width);
    static Bus concat(const Bus& low, const Bus& high);
    Bus zero_extend(const Bus& a, int width);
    Bus sign_extend(const Bus& a, int width);

private:
    [[nodiscard]] std::string scoped(const std::string& name) const;
    NetId rom_bit(const Bus& addr, const std::vector<bool>& column, const std::string& name);

    Netlist& nl_;
    NetId clock_;
    std::vector<std::string> scopes_;
    std::uint64_t unique_ = 0;
};

/// Number of LUT cells in the netlist (diagnostics).
[[nodiscard]] std::size_t count_kind(const Netlist& nl, CellKind kind);

}  // namespace refpga::netlist
