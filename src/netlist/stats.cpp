#include "refpga/netlist/stats.hpp"

namespace refpga::netlist {

namespace {
void accumulate(PartitionStats& s, const Cell& c) {
    switch (c.kind) {
        case CellKind::Lut: ++s.luts; break;
        case CellKind::Ff: ++s.ffs; break;
        case CellKind::Bram: ++s.brams; break;
        case CellKind::Mult18: ++s.mults; break;
        case CellKind::Inpad:
        case CellKind::Outpad: ++s.pads; break;
        case CellKind::Gnd:
        case CellKind::Vcc: break;
    }
}
}  // namespace

std::vector<PartitionStats> partition_stats(const Netlist& nl) {
    std::vector<PartitionStats> stats(nl.partitions().size());
    for (std::size_t i = 0; i < stats.size(); ++i) stats[i].name = nl.partitions()[i];
    for (const Cell& c : nl.cells()) {
        if (c.partition.value() < stats.size()) accumulate(stats[c.partition.value()], c);
    }
    return stats;
}

PartitionStats total_stats(const Netlist& nl) {
    PartitionStats total;
    total.name = "total";
    for (const Cell& c : nl.cells()) accumulate(total, c);
    return total;
}

}  // namespace refpga::netlist
