#include "refpga/netlist/adjacency.hpp"

#include <algorithm>

namespace refpga::netlist {

namespace {

/// Sorts and deduplicates the tail of `items` starting at `begin`.
template <typename Id>
void sort_unique_tail(std::vector<Id>& items, std::size_t begin) {
    std::sort(items.begin() + static_cast<std::ptrdiff_t>(begin), items.end());
    items.erase(std::unique(items.begin() + static_cast<std::ptrdiff_t>(begin),
                            items.end()),
                items.end());
}

}  // namespace

CellNetIndex::CellNetIndex(const Netlist& nl) {
    cell_offsets_.reserve(nl.cell_count() + 1);
    cell_offsets_.push_back(0);
    for (std::uint32_t ci = 0; ci < nl.cell_count(); ++ci) {
        const Cell& c = nl.cell(CellId{ci});
        const std::size_t begin = cell_nets_.size();
        for (const NetId in : c.inputs)
            if (in.valid()) cell_nets_.push_back(in);
        for (const NetId out : c.outputs)
            if (out.valid()) cell_nets_.push_back(out);
        if (c.clock.valid()) cell_nets_.push_back(c.clock);
        sort_unique_tail(cell_nets_, begin);
        cell_offsets_.push_back(static_cast<std::uint32_t>(cell_nets_.size()));
    }

    net_offsets_.reserve(nl.net_count() + 1);
    net_offsets_.push_back(0);
    for (std::uint32_t ni = 0; ni < nl.net_count(); ++ni) {
        const Net& n = nl.net(NetId{ni});
        const std::size_t begin = net_cells_.size();
        if (n.driven()) net_cells_.push_back(n.driver.cell);
        for (const PinRef& sink : n.sinks)
            if (sink.cell.valid()) net_cells_.push_back(sink.cell);
        sort_unique_tail(net_cells_, begin);
        net_offsets_.push_back(static_cast<std::uint32_t>(net_cells_.size()));
    }
}

std::span<const NetId> CellNetIndex::nets_of(CellId cell) const {
    REFPGA_EXPECTS(cell.value() + 1 < cell_offsets_.size());
    return {cell_nets_.data() + cell_offsets_[cell.value()],
            cell_nets_.data() + cell_offsets_[cell.value() + 1]};
}

std::span<const CellId> CellNetIndex::cells_of(NetId net) const {
    REFPGA_EXPECTS(net.value() + 1 < net_offsets_.size());
    return {net_cells_.data() + net_offsets_[net.value()],
            net_cells_.data() + net_offsets_[net.value() + 1]};
}

}  // namespace refpga::netlist
