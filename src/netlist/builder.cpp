#include "refpga/netlist/builder.hpp"

#include <algorithm>

namespace refpga::netlist {

namespace {
// Truth-table masks, input 0 = LSB of the index.
constexpr std::uint16_t kMaskNot = 0x1;
constexpr std::uint16_t kMaskAnd2 = 0x8;
constexpr std::uint16_t kMaskOr2 = 0xE;
constexpr std::uint16_t kMaskXor2 = 0x6;
constexpr std::uint16_t kMaskXnor2 = 0x9;
constexpr std::uint16_t kMaskMux = 0xCA;    ///< (a, b, sel): sel ? b : a
constexpr std::uint16_t kMaskSum3 = 0x96;   ///< parity(a, b, cin)
constexpr std::uint16_t kMaskCarry3 = 0xE8; ///< majority(a, b, cin)
constexpr std::uint16_t kMaskLt = 0xD4;     ///< (a, b, lt_prev): a<b | (a==b & lt_prev)
}  // namespace

Builder::Builder(Netlist& nl, NetId clock) : nl_(nl), clock_(clock) {
    REFPGA_EXPECTS(clock.valid());
}

void Builder::push_scope(const std::string& name) { scopes_.push_back(name); }

void Builder::pop_scope() {
    REFPGA_EXPECTS(!scopes_.empty());
    scopes_.pop_back();
}

std::string Builder::scoped(const std::string& name) const {
    std::string full;
    for (const auto& s : scopes_) {
        full += s;
        full += '/';
    }
    full += name;
    return full;
}

NetId Builder::lut(std::uint16_t mask, std::initializer_list<NetId> inputs,
                   const std::string& name) {
    const std::vector<NetId> ins(inputs);
    return nl_.add_lut(mask, ins, scoped(name) + "_" + std::to_string(unique_++));
}

NetId Builder::not_(NetId a) { return lut(kMaskNot, {a}, "not"); }
NetId Builder::and_(NetId a, NetId b) { return lut(kMaskAnd2, {a, b}, "and"); }
NetId Builder::or_(NetId a, NetId b) { return lut(kMaskOr2, {a, b}, "or"); }
NetId Builder::xor_(NetId a, NetId b) { return lut(kMaskXor2, {a, b}, "xor"); }
NetId Builder::xnor_(NetId a, NetId b) { return lut(kMaskXnor2, {a, b}, "xnor"); }

NetId Builder::mux(NetId sel, NetId when0, NetId when1) {
    return lut(kMaskMux, {when0, when1, sel}, "mux");
}

NetId Builder::ff(NetId d, NetId ce, const std::string& name) {
    return nl_.add_ff(d, clock_, ce, scoped(name) + "_" + std::to_string(unique_++));
}

Bus Builder::constant(std::uint64_t value, int width) {
    REFPGA_EXPECTS(width >= 1 && width <= 64);
    Bus out;
    out.reserve(static_cast<std::size_t>(width));
    for (int i = 0; i < width; ++i)
        out.push_back(((value >> i) & 1) != 0 ? vcc() : gnd());
    return out;
}

Bus Builder::not_bus(const Bus& a) {
    Bus out;
    out.reserve(a.size());
    for (const NetId n : a) out.push_back(not_(n));
    return out;
}

Bus Builder::and_bus(const Bus& a, const Bus& b) {
    REFPGA_EXPECTS(a.size() == b.size());
    Bus out;
    out.reserve(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) out.push_back(and_(a[i], b[i]));
    return out;
}

Bus Builder::or_bus(const Bus& a, const Bus& b) {
    REFPGA_EXPECTS(a.size() == b.size());
    Bus out;
    out.reserve(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) out.push_back(or_(a[i], b[i]));
    return out;
}

Bus Builder::xor_bus(const Bus& a, const Bus& b) {
    REFPGA_EXPECTS(a.size() == b.size());
    Bus out;
    out.reserve(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) out.push_back(xor_(a[i], b[i]));
    return out;
}

Bus Builder::mux_bus(NetId sel, const Bus& when0, const Bus& when1) {
    REFPGA_EXPECTS(when0.size() == when1.size());
    Bus out;
    out.reserve(when0.size());
    for (std::size_t i = 0; i < when0.size(); ++i)
        out.push_back(mux(sel, when0[i], when1[i]));
    return out;
}

Bus Builder::add(const Bus& a, const Bus& b, bool keep_carry) {
    const int width = static_cast<int>(std::max(a.size(), b.size()));
    const Bus ax = zero_extend(a, width);
    const Bus bx = zero_extend(b, width);
    Bus out;
    out.reserve(static_cast<std::size_t>(width) + 1);
    NetId carry = gnd();
    for (int i = 0; i < width; ++i) {
        out.push_back(lut(kMaskSum3, {ax[i], bx[i], carry}, "sum"));
        if (i + 1 < width || keep_carry)
            carry = lut(kMaskCarry3, {ax[i], bx[i], carry}, "carry");
    }
    if (keep_carry) out.push_back(carry);
    return out;
}

Bus Builder::negate(const Bus& a) { return increment(not_bus(a)); }

Bus Builder::sub(const Bus& a, const Bus& b) {
    REFPGA_EXPECTS(a.size() == b.size());
    // a + ~b + 1 via an adder with carry-in forced to 1.
    const Bus nb = not_bus(b);
    Bus out;
    out.reserve(a.size());
    NetId carry = vcc();
    for (std::size_t i = 0; i < a.size(); ++i) {
        out.push_back(lut(kMaskSum3, {a[i], nb[i], carry}, "diff"));
        if (i + 1 < a.size()) carry = lut(kMaskCarry3, {a[i], nb[i], carry}, "borrow");
    }
    return out;
}

Bus Builder::addsub(const Bus& a, const Bus& b, NetId subtract) {
    REFPGA_EXPECTS(a.size() == b.size() && !a.empty());
    Bus out;
    out.reserve(a.size());
    NetId carry = subtract;  // two's complement: +1 when subtracting
    for (std::size_t i = 0; i < a.size(); ++i) {
        const NetId bx = xor_(b[i], subtract);
        out.push_back(lut(kMaskSum3, {a[i], bx, carry}, "as_sum"));
        if (i + 1 < a.size()) carry = lut(kMaskCarry3, {a[i], bx, carry}, "as_carry");
    }
    return out;
}

Bus Builder::increment(const Bus& a) {
    Bus out;
    out.reserve(a.size());
    NetId carry = vcc();
    for (std::size_t i = 0; i < a.size(); ++i) {
        out.push_back(xor_(a[i], carry));
        if (i + 1 < a.size()) carry = and_(a[i], carry);
    }
    return out;
}

NetId Builder::eq(const Bus& a, const Bus& b) {
    REFPGA_EXPECTS(a.size() == b.size() && !a.empty());
    std::vector<NetId> terms;
    terms.reserve(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) terms.push_back(xnor_(a[i], b[i]));
    // AND reduction tree.
    while (terms.size() > 1) {
        std::vector<NetId> next;
        for (std::size_t i = 0; i + 1 < terms.size(); i += 2)
            next.push_back(and_(terms[i], terms[i + 1]));
        if (terms.size() % 2 == 1) next.push_back(terms.back());
        terms = std::move(next);
    }
    return terms.front();
}

NetId Builder::lt_unsigned(const Bus& a, const Bus& b) {
    REFPGA_EXPECTS(a.size() == b.size() && !a.empty());
    NetId lt = gnd();
    for (std::size_t i = 0; i < a.size(); ++i)
        lt = lut(kMaskLt, {a[i], b[i], lt}, "lt");
    return lt;
}

NetId Builder::lt_signed(const Bus& a, const Bus& b) {
    REFPGA_EXPECTS(a.size() == b.size() && !a.empty());
    // Flip sign bits, then compare unsigned.
    Bus af = a;
    Bus bf = b;
    af.back() = not_(a.back());
    bf.back() = not_(b.back());
    return lt_unsigned(af, bf);
}

Bus Builder::reg(const Bus& d, NetId ce, const std::string& name) {
    Bus out;
    out.reserve(d.size());
    for (std::size_t i = 0; i < d.size(); ++i)
        out.push_back(ff(d[i], ce, name + std::to_string(i)));
    return out;
}

Bus Builder::counter(int width, NetId ce, const std::string& name) {
    return feedback_reg(width, [this](const Bus& q) { return increment(q); }, ce,
                        name);
}

Bus Builder::feedback_reg(int width, const std::function<Bus(const Bus&)>& next,
                          NetId ce, const std::string& name) {
    REFPGA_EXPECTS(width >= 1);
    // The feedback loop (Q -> logic -> D) needs the FFs before their D cones
    // exist: create FFs on placeholder D nets, build the next-state logic
    // from Q, then splice its outputs into the D pins.
    Bus d_placeholder;
    Bus q;
    for (int i = 0; i < width; ++i)
        d_placeholder.push_back(nl_.add_net(scoped(name) + "_d" + std::to_string(i)));
    for (int i = 0; i < width; ++i)
        q.push_back(nl_.add_ff(d_placeholder[i], clock_, ce,
                               scoped(name) + std::to_string(i) + "_" +
                                   std::to_string(unique_++)));
    const Bus nx = next(q);
    REFPGA_EXPECTS(static_cast<int>(nx.size()) == width);
    for (int i = 0; i < width; ++i) {
        Net& ph = nl_.net(d_placeholder[i]);
        REFPGA_EXPECTS(ph.sinks.size() == 1);
        const PinRef sink = ph.sinks.front();
        ph.sinks.clear();
        Cell& ffc = nl_.cell(sink.cell);
        ffc.inputs[sink.pin] = nx[i];
        nl_.net(nx[i]).sinks.push_back(sink);
    }
    return q;
}

NetId Builder::rom_bit(const Bus& addr, const std::vector<bool>& column,
                       const std::string& name) {
    REFPGA_EXPECTS(column.size() == (std::size_t{1} << addr.size()));
    if (addr.size() <= 4) {
        std::uint16_t mask = 0;
        for (std::size_t i = 0; i < column.size(); ++i)
            if (column[i]) mask |= static_cast<std::uint16_t>(1u << i);
        std::vector<NetId> ins(addr.begin(), addr.end());
        return nl_.add_lut(mask, ins, scoped(name) + "_" + std::to_string(unique_++));
    }
    // Split on the MSB: two half-size ROMs plus a 2:1 mux.
    const Bus low_addr(addr.begin(), addr.end() - 1);
    const std::size_t half = column.size() / 2;
    const std::vector<bool> lo(column.begin(), column.begin() + static_cast<std::ptrdiff_t>(half));
    const std::vector<bool> hi(column.begin() + static_cast<std::ptrdiff_t>(half), column.end());
    const NetId lo_bit = rom_bit(low_addr, lo, name + "_l");
    const NetId hi_bit = rom_bit(low_addr, hi, name + "_h");
    return mux(addr.back(), lo_bit, hi_bit);
}

Bus Builder::rom_lut(const Bus& addr, const std::vector<std::uint32_t>& contents,
                     int data_bits, const std::string& name) {
    REFPGA_EXPECTS(!addr.empty() && addr.size() <= 12);
    const std::size_t depth = std::size_t{1} << addr.size();
    REFPGA_EXPECTS(contents.size() <= depth);
    Bus out;
    out.reserve(static_cast<std::size_t>(data_bits));
    for (int bit = 0; bit < data_bits; ++bit) {
        std::vector<bool> column(depth, false);
        for (std::size_t i = 0; i < contents.size(); ++i)
            column[i] = ((contents[i] >> bit) & 1) != 0;
        out.push_back(rom_bit(addr, column, name + "_b" + std::to_string(bit)));
    }
    return out;
}

Bus Builder::rom_bram(const Bus& addr, const std::vector<std::uint32_t>& contents,
                      int data_bits, const std::string& name) {
    BramConfig cfg;
    cfg.addr_bits = static_cast<int>(addr.size());
    cfg.data_bits = data_bits;
    cfg.writable = false;
    cfg.init = contents;
    auto out = nl_.add_bram(cfg, addr, clock_, NetId{}, {},
                            scoped(name) + "_" + std::to_string(unique_++));
    return out;
}

Bus Builder::mul_mult18(const Bus& a, const Bus& b, int out_bits, int shift,
                        const std::string& name) {
    REFPGA_EXPECTS(a.size() <= 18 && b.size() <= 18);
    REFPGA_EXPECTS(shift >= 0 && shift + out_bits <= 36);
    const Bus a18 = sign_extend(a, 18);
    const Bus b18 = sign_extend(b, 18);
    const auto product =
        nl_.add_mult18(a18, b18, scoped(name) + "_" + std::to_string(unique_++));
    return {product.begin() + shift, product.begin() + shift + out_bits};
}

Bus Builder::slice(const Bus& a, int lsb, int width) {
    REFPGA_EXPECTS(lsb >= 0 && lsb + width <= static_cast<int>(a.size()));
    return {a.begin() + lsb, a.begin() + lsb + width};
}

Bus Builder::concat(const Bus& low, const Bus& high) {
    Bus out = low;
    out.insert(out.end(), high.begin(), high.end());
    return out;
}

Bus Builder::zero_extend(const Bus& a, int width) {
    REFPGA_EXPECTS(static_cast<int>(a.size()) <= width);
    Bus out = a;
    while (static_cast<int>(out.size()) < width) out.push_back(gnd());
    return out;
}

Bus Builder::sign_extend(const Bus& a, int width) {
    REFPGA_EXPECTS(!a.empty() && static_cast<int>(a.size()) <= width);
    Bus out = a;
    while (static_cast<int>(out.size()) < width) out.push_back(a.back());
    return out;
}

std::size_t count_kind(const Netlist& nl, CellKind kind) {
    std::size_t n = 0;
    for (const Cell& c : nl.cells())
        if (c.kind == kind) ++n;
    return n;
}

}  // namespace refpga::netlist
