#include "refpga/common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "refpga/common/contracts.hpp"

namespace refpga {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
    REFPGA_EXPECTS(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
    REFPGA_EXPECTS(cells.size() == header_.size());
    rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::vector<std::size_t> Table::widths_of(const std::vector<std::string>& header) {
    std::vector<std::size_t> widths(header.size());
    for (std::size_t c = 0; c < header.size(); ++c) widths[c] = header[c].size();
    return widths;
}

void Table::grow_widths(std::vector<std::size_t>& widths,
                        const std::vector<std::string>& cells) {
    REFPGA_EXPECTS(cells.size() == widths.size());
    for (std::size_t c = 0; c < cells.size(); ++c)
        widths[c] = std::max(widths[c], cells[c].size());
}

void Table::emit_row(std::ostream& os, const std::vector<std::size_t>& widths,
                     const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c)
        os << ' ' << std::setw(static_cast<int>(widths[c])) << std::left << cells[c]
           << " |";
    os << '\n';
}

void Table::emit_rule(std::ostream& os, const std::vector<std::size_t>& widths) {
    os << '+';
    for (std::size_t c = 0; c < widths.size(); ++c)
        os << std::string(widths[c] + 2, '-') << '+';
    os << '\n';
}

std::string Table::render() const {
    std::vector<std::size_t> width = widths_of(header_);
    for (const auto& row : rows_) grow_widths(width, row);

    std::ostringstream os;
    emit_rule(os, width);
    emit_row(os, width, header_);
    emit_rule(os, width);
    for (const auto& row : rows_) emit_row(os, width, row);
    emit_rule(os, width);
    return os.str();
}

}  // namespace refpga
