#include "refpga/common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "refpga/common/contracts.hpp"

namespace refpga {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
    REFPGA_EXPECTS(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
    REFPGA_EXPECTS(cells.size() == header_.size());
    rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string Table::render() const {
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string>& row) {
        os << '|';
        for (std::size_t c = 0; c < row.size(); ++c)
            os << ' ' << std::setw(static_cast<int>(width[c])) << std::left << row[c] << " |";
        os << '\n';
    };
    auto emit_rule = [&] {
        os << '+';
        for (std::size_t c = 0; c < width.size(); ++c)
            os << std::string(width[c] + 2, '-') << '+';
        os << '\n';
    };

    emit_rule();
    emit_row(header_);
    emit_rule();
    for (const auto& row : rows_) emit_row(row);
    emit_rule();
    return os.str();
}

}  // namespace refpga
