#include "refpga/common/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace refpga {

namespace {
// The threshold is read on every log call, possibly from many campaign
// worker threads at once; relaxed atomics keep that race-free (ordering of
// a level change vs in-flight messages is intentionally unspecified).
std::atomic<LogLevel> g_level{LogLevel::Warning};

// Serializes whole messages so concurrent workers never interleave output.
std::mutex g_sink_mutex;

const char* level_name(LogLevel level) {
    switch (level) {
        case LogLevel::Debug: return "DEBUG";
        case LogLevel::Info: return "INFO";
        case LogLevel::Warning: return "WARN";
        case LogLevel::Error: return "ERROR";
        case LogLevel::Off: return "OFF";
    }
    return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_message(LogLevel level, const std::string& msg) {
    if (level < log_level()) return;
    const std::lock_guard<std::mutex> lock(g_sink_mutex);
    std::cerr << "[refpga:" << level_name(level) << "] " << msg << '\n';
}

}  // namespace refpga
