// Strongly-typed integer identifiers.
//
// Index-like handles (cells, nets, tiles, wires, ...) are all integers at heart;
// StrongId prevents mixing a NetId where a CellId is expected while staying a
// zero-overhead wrapper usable as a vector index.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

namespace refpga {

template <typename Tag>
class StrongId {
public:
    using value_type = std::uint32_t;
    static constexpr value_type kInvalid = std::numeric_limits<value_type>::max();

    constexpr StrongId() = default;
    constexpr explicit StrongId(value_type v) : value_(v) {}

    [[nodiscard]] constexpr value_type value() const { return value_; }
    [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

    friend constexpr bool operator==(StrongId, StrongId) = default;
    friend constexpr auto operator<=>(StrongId, StrongId) = default;

private:
    value_type value_ = kInvalid;
};

}  // namespace refpga

template <typename Tag>
struct std::hash<refpga::StrongId<Tag>> {
    std::size_t operator()(refpga::StrongId<Tag> id) const noexcept {
        return std::hash<std::uint32_t>{}(id.value());
    }
};
