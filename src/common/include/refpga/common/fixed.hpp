// Compile-time Q-format fixed-point arithmetic.
//
// The measurement algorithms (Goertzel correlation, capacity computation,
// filtering) run in fixed point both in the hardware modules and in the
// soft-core software, mirroring how the original system avoids an FPU.
// Fixed<I, F> holds a signed value with I integer bits and F fraction bits
// in a 64-bit container; arithmetic saturates rather than wrapping so that
// overflow bugs surface as clamped levels, not garbage.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <ostream>

#include "refpga/common/contracts.hpp"

namespace refpga {

template <int IntBits, int FracBits>
class Fixed {
    static_assert(IntBits >= 1, "need at least a sign bit");
    static_assert(FracBits >= 0);
    static_assert(IntBits + FracBits <= 63, "must fit in int64 container");

public:
    static constexpr int kIntBits = IntBits;
    static constexpr int kFracBits = FracBits;
    static constexpr std::int64_t kOne = std::int64_t{1} << FracBits;
    static constexpr std::int64_t kMaxRaw =
        (std::int64_t{1} << (IntBits + FracBits - 1)) - 1;
    static constexpr std::int64_t kMinRaw = -(std::int64_t{1} << (IntBits + FracBits - 1));

    constexpr Fixed() = default;

    static constexpr Fixed from_raw(std::int64_t raw) {
        Fixed f;
        f.raw_ = saturate(raw);
        return f;
    }

    static Fixed from_double(double v) {
        return from_raw(static_cast<std::int64_t>(std::llround(v * static_cast<double>(kOne))));
    }

    static constexpr Fixed from_int(std::int64_t v) { return from_raw(v << FracBits); }

    [[nodiscard]] constexpr std::int64_t raw() const { return raw_; }
    [[nodiscard]] double to_double() const {
        return static_cast<double>(raw_) / static_cast<double>(kOne);
    }

    friend constexpr Fixed operator+(Fixed a, Fixed b) { return from_raw(a.raw_ + b.raw_); }
    friend constexpr Fixed operator-(Fixed a, Fixed b) { return from_raw(a.raw_ - b.raw_); }
    friend constexpr Fixed operator-(Fixed a) { return from_raw(-a.raw_); }

    friend constexpr Fixed operator*(Fixed a, Fixed b) {
        // 128-bit intermediate keeps full precision before rescaling.
        __int128 p = static_cast<__int128>(a.raw_) * b.raw_;
        p >>= FracBits;
        return from_raw(clamp128(p));
    }

    friend constexpr Fixed operator/(Fixed a, Fixed b) {
        REFPGA_EXPECTS(b.raw_ != 0);
        __int128 n = static_cast<__int128>(a.raw_) << FracBits;
        return from_raw(clamp128(n / b.raw_));
    }

    friend constexpr bool operator==(Fixed, Fixed) = default;
    friend constexpr auto operator<=>(Fixed, Fixed) = default;

    friend std::ostream& operator<<(std::ostream& os, Fixed f) { return os << f.to_double(); }

private:
    static constexpr std::int64_t saturate(std::int64_t raw) {
        return std::clamp(raw, kMinRaw, kMaxRaw);
    }
    static constexpr std::int64_t clamp128(__int128 v) {
        if (v > kMaxRaw) return kMaxRaw;
        if (v < kMinRaw) return kMinRaw;
        return static_cast<std::int64_t>(v);
    }

    std::int64_t raw_ = 0;
};

/// Q16.16: the working format of the data-processing pipeline.
using Q16 = Fixed<16, 16>;
/// Q8.24: higher-precision accumulator format for Goertzel sums.
using Q8_24 = Fixed<8, 24>;

}  // namespace refpga
