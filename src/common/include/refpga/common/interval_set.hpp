// Merged set of disjoint half-open index intervals [first, last).
//
// Used by the campaign service to track which scenario indices have been
// committed (streaming aggregation, checkpoint/resume) and to compute the
// ranges still missing. Intervals are kept sorted and coalesced, so the
// memory footprint is O(fragments), not O(indices) — a resumed sweep with
// contiguous batches holds a handful of entries however large the grid is.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "refpga/common/contracts.hpp"

namespace refpga {

class IntervalSet {
public:
    struct Interval {
        std::size_t first = 0;
        std::size_t last = 0;  ///< exclusive

        [[nodiscard]] std::size_t count() const { return last - first; }
        friend constexpr bool operator==(const Interval&, const Interval&) = default;
    };

    /// True if [first, first+count) overlaps nothing already present.
    [[nodiscard]] bool disjoint(std::size_t first, std::size_t count) const {
        const std::size_t last = first + count;
        for (const Interval& iv : intervals_) {
            if (iv.first >= last) break;
            if (iv.last > first) return false;
        }
        return true;
    }

    /// Inserts [first, first+count); the range must be disjoint from the set
    /// (a duplicate commit is a protocol violation, not a mergeable event).
    void add(std::size_t first, std::size_t count) {
        REFPGA_EXPECTS(count > 0);
        REFPGA_EXPECTS(first + count > first);  // no wraparound
        REFPGA_EXPECTS(disjoint(first, count));
        const std::size_t last = first + count;
        // Find insertion point, then coalesce with touching neighbours.
        std::size_t i = 0;
        while (i < intervals_.size() && intervals_[i].last < first) ++i;
        if (i < intervals_.size() && intervals_[i].last == first) {
            intervals_[i].last = last;
            if (i + 1 < intervals_.size() && intervals_[i + 1].first == last) {
                intervals_[i].last = intervals_[i + 1].last;
                intervals_.erase(intervals_.begin() +
                                 static_cast<std::ptrdiff_t>(i) + 1);
            }
        } else if (i < intervals_.size() && intervals_[i].first == last) {
            intervals_[i].first = first;
        } else {
            intervals_.insert(intervals_.begin() + static_cast<std::ptrdiff_t>(i),
                              Interval{first, last});
        }
        total_ += count;
    }

    [[nodiscard]] bool contains(std::size_t index) const {
        for (const Interval& iv : intervals_) {
            if (iv.first > index) break;
            if (index < iv.last) return true;
        }
        return false;
    }

    /// Total indices covered.
    [[nodiscard]] std::size_t count() const { return total_; }
    /// True when the set covers exactly [0, n).
    [[nodiscard]] bool covers_exactly(std::size_t n) const {
        if (n == 0) return intervals_.empty();
        return intervals_.size() == 1 && intervals_[0].first == 0 &&
               intervals_[0].last == n;
    }

    /// Sorted disjoint intervals.
    [[nodiscard]] const std::vector<Interval>& intervals() const {
        return intervals_;
    }

    /// Ranges of [0, n) not covered by the set, in ascending order.
    [[nodiscard]] std::vector<Interval> missing(std::size_t n) const {
        std::vector<Interval> gaps;
        std::size_t cursor = 0;
        for (const Interval& iv : intervals_) {
            if (iv.first >= n) break;
            if (iv.first > cursor) gaps.push_back({cursor, iv.first});
            cursor = iv.last;
        }
        if (cursor < n) gaps.push_back({cursor, n});
        return gaps;
    }

private:
    std::vector<Interval> intervals_;  ///< sorted, disjoint, non-touching
    std::size_t total_ = 0;
};

}  // namespace refpga
