// Deterministic pseudo-random source for placement, noise injection and tests.
//
// A thin wrapper over a SplitMix64/xoshiro256** pair so results are exactly
// reproducible across platforms and standard-library versions (std::mt19937
// distributions are not portable across implementations).
//
// Thread-safety: there is no global generator state anywhere in the library.
// An Rng instance is not synchronized — confine it to one thread — but
// independently seeded instances are fully isolated, which is what makes
// per-scenario deterministic seeding (refpga::fleet) possible.
#pragma once

#include <cstdint>

namespace refpga {

class Rng {
public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
        // SplitMix64 expansion of the seed into xoshiro state.
        std::uint64_t x = seed;
        for (auto& s : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            s = z ^ (z >> 31);
        }
    }

    std::uint64_t next_u64() {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform integer in [0, bound). bound must be > 0.
    std::uint32_t next_below(std::uint32_t bound) {
        return static_cast<std::uint32_t>(next_u64() % bound);
    }

    /// Uniform double in [0, 1).
    double next_double() {
        return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
    }

    /// Approximately standard-normal variate (sum of uniforms, Irwin-Hall 12).
    double next_gaussian() {
        double s = 0.0;
        for (int i = 0; i < 12; ++i) s += next_double();
        return s - 6.0;
    }

private:
    static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
    std::uint64_t state_[4]{};
};

}  // namespace refpga
