// Fixed-size worker pool over a mutex/condvar job queue (no external deps).
//
// Jobs are opaque void() callables; anything they compute must be written to
// storage the submitter owns (the campaign runner gives each job its own
// result slot, and the §4.3 reallocation engine gives each candidate its own
// gain slot, so workers never contend). A job that lets an exception escape
// is a programming error at this layer — the pool swallows it and logs, to
// keep one bad job from taking down the process; error *reporting* belongs
// to the job itself (see CampaignRunner).
//
// Thread-safety: submit() and wait_idle() may be called from any thread.
// wait_idle() is a whole-pool barrier: it waits for *every* queued job, not
// just the caller's, so callers that share a pool with unrelated work should
// account for that. The destructor drains the queue, then joins all workers.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace refpga {

class ThreadPool {
public:
    /// Spawns `threads` workers (at least 1).
    explicit ThreadPool(int threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] int thread_count() const { return static_cast<int>(workers_.size()); }

    /// Enqueues a job; a sleeping worker picks it up.
    void submit(std::function<void()> job);

    /// Blocks until the queue is empty and no job is executing.
    void wait_idle();

private:
    void worker_loop();

    std::mutex mutex_;
    std::condition_variable work_available_;
    std::condition_variable all_done_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    int active_jobs_ = 0;
    bool stopping_ = false;
};

}  // namespace refpga
