// Plain-text table rendering for the benchmark harness.
//
// Every bench binary reproduces a paper table/figure as rows on stdout; this
// keeps the formatting consistent and the bench code focused on content.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace refpga {

class Table {
public:
    explicit Table(std::vector<std::string> header);

    void add_row(std::vector<std::string> cells);

    /// Convenience: formats doubles with the given precision.
    static std::string num(double v, int precision = 2);

    [[nodiscard]] std::string render() const;

    [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

    // Streaming primitives: render() is a composition of these, so a caller
    // that cannot hold all rows at once (the campaign service's streaming
    // report merge) can grow widths incrementally and emit rows later with
    // byte-identical formatting.
    [[nodiscard]] static std::vector<std::size_t> widths_of(
        const std::vector<std::string>& header);
    static void grow_widths(std::vector<std::size_t>& widths,
                            const std::vector<std::string>& cells);
    static void emit_row(std::ostream& os, const std::vector<std::size_t>& widths,
                         const std::vector<std::string>& cells);
    static void emit_rule(std::ostream& os, const std::vector<std::size_t>& widths);

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace refpga
