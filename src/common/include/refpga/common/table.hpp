// Plain-text table rendering for the benchmark harness.
//
// Every bench binary reproduces a paper table/figure as rows on stdout; this
// keeps the formatting consistent and the bench code focused on content.
#pragma once

#include <string>
#include <vector>

namespace refpga {

class Table {
public:
    explicit Table(std::vector<std::string> header);

    void add_row(std::vector<std::string> cells);

    /// Convenience: formats doubles with the given precision.
    static std::string num(double v, int precision = 2);

    [[nodiscard]] std::string render() const;

    [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace refpga
