// Precondition/postcondition contract checks (GSL Expects/Ensures style).
//
// Violations indicate programming errors, not recoverable runtime conditions,
// so they throw ContractViolation carrying the failed expression and location;
// callers are not expected to catch it outside of tests.
#pragma once

#include <stdexcept>
#include <string>

namespace refpga {

class ContractViolation : public std::logic_error {
public:
    explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
    throw ContractViolation(std::string(kind) + " failed: " + expr + " at " + file +
                            ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace refpga

#define REFPGA_EXPECTS(cond)                                                     \
    ((cond) ? static_cast<void>(0)                                               \
            : ::refpga::detail::contract_fail("precondition", #cond, __FILE__, __LINE__))

#define REFPGA_ENSURES(cond)                                                     \
    ((cond) ? static_cast<void>(0)                                               \
            : ::refpga::detail::contract_fail("postcondition", #cond, __FILE__, __LINE__))
