// Minimal leveled logging to stderr.
//
// The library is quiet by default (Level::Warning); tools raise verbosity.
//
// Thread-safety: all functions here may be called from any thread. The
// level is an atomic (set_log_level from one thread is visible to loggers on
// others) and messages are emitted whole under an internal lock, so
// concurrent log lines never interleave.
#pragma once

#include <sstream>
#include <string>

namespace refpga {

enum class LogLevel { Debug, Info, Warning, Error, Off };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

void log_message(LogLevel level, const std::string& msg);

namespace detail {
template <typename... Args>
void log_fmt(LogLevel level, const Args&... args) {
    if (level < log_level()) return;
    std::ostringstream os;
    (os << ... << args);
    log_message(level, os.str());
}
}  // namespace detail

template <typename... Args>
void log_debug(const Args&... args) { detail::log_fmt(LogLevel::Debug, args...); }
template <typename... Args>
void log_info(const Args&... args) { detail::log_fmt(LogLevel::Info, args...); }
template <typename... Args>
void log_warning(const Args&... args) { detail::log_fmt(LogLevel::Warning, args...); }
template <typename... Args>
void log_error(const Args&... args) { detail::log_fmt(LogLevel::Error, args...); }

}  // namespace refpga
