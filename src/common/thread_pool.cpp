#include "refpga/common/thread_pool.hpp"

#include <exception>

#include "refpga/common/log.hpp"

namespace refpga {

ThreadPool::ThreadPool(int threads) {
    const int count = threads < 1 ? 1 : threads;
    workers_.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    work_available_.notify_all();
    for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(job));
    }
    work_available_.notify_one();
}

void ThreadPool::wait_idle() {
    std::unique_lock<std::mutex> lock(mutex_);
    all_done_.wait(lock, [this] { return queue_.empty() && active_jobs_ == 0; });
}

void ThreadPool::worker_loop() {
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) return;  // stopping_ with a drained queue
            job = std::move(queue_.front());
            queue_.pop_front();
            ++active_jobs_;
        }
        try {
            job();
        } catch (const std::exception& e) {
            log_error("thread_pool: job escaped with exception: ", e.what());
        } catch (...) {
            log_error("thread_pool: job escaped with non-std exception");
        }
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            --active_jobs_;
            if (queue_.empty() && active_jobs_ == 0) all_done_.notify_all();
        }
    }
}

}  // namespace refpga
