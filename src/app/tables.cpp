#include "refpga/app/tables.hpp"

#include <cmath>

#include "refpga/common/contracts.hpp"

namespace refpga::app {

std::vector<std::int32_t> sine_table(int size, int bits) {
    REFPGA_EXPECTS(size >= 2 && bits >= 2 && bits <= 18);
    const double amp = static_cast<double>((1 << (bits - 1)) - 1);
    std::vector<std::int32_t> table(static_cast<std::size_t>(size));
    for (int i = 0; i < size; ++i)
        table[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(
            std::lround(amp * std::sin(2.0 * M_PI * i / size)));
    return table;
}

std::vector<std::int32_t> cosine_table(int size, int bits) {
    REFPGA_EXPECTS(size >= 2 && bits >= 2 && bits <= 18);
    const double amp = static_cast<double>((1 << (bits - 1)) - 1);
    std::vector<std::int32_t> table(static_cast<std::size_t>(size));
    for (int i = 0; i < size; ++i)
        table[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(
            std::lround(amp * std::cos(2.0 * M_PI * i / size)));
    return table;
}

std::vector<std::uint32_t> sinus_dac_codes() {
    const auto sine = sine_table(32, 9);  // +-255
    std::vector<std::uint32_t> codes;
    codes.reserve(32);
    for (const std::int32_t s : sine)
        codes.push_back(static_cast<std::uint32_t>(128 + (s * 2) / 5));  // +-102
    return codes;
}

std::vector<std::int32_t> cordic_atan_table(int stages, int angle_bits) {
    REFPGA_EXPECTS(stages >= 1 && stages <= 24);
    REFPGA_EXPECTS(angle_bits >= 8 && angle_bits <= 24);
    std::vector<std::int32_t> table(static_cast<std::size_t>(stages));
    const double scale = std::pow(2.0, angle_bits) / (2.0 * M_PI);
    for (int i = 0; i < stages; ++i)
        table[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(
            std::lround(std::atan(std::pow(2.0, -i)) * scale));
    return table;
}

std::int32_t cordic_inv_gain_q15(int stages) {
    double k = 1.0;
    for (int i = 0; i < stages; ++i) k *= std::sqrt(1.0 + std::pow(2.0, -2 * i));
    return static_cast<std::int32_t>(std::lround(32768.0 / k));
}

std::uint32_t encode_signed(std::int32_t value, int bits) {
    REFPGA_EXPECTS(bits >= 1 && bits <= 32);
    const std::uint32_t mask =
        bits == 32 ? 0xFFFFFFFFu : ((std::uint32_t{1} << bits) - 1);
    return static_cast<std::uint32_t>(value) & mask;
}

std::int32_t decode_signed(std::uint32_t word, int bits) {
    REFPGA_EXPECTS(bits >= 1 && bits <= 32);
    const std::uint32_t mask =
        bits == 32 ? 0xFFFFFFFFu : ((std::uint32_t{1} << bits) - 1);
    const std::uint32_t v = word & mask;
    const std::uint32_t sign = std::uint32_t{1} << (bits - 1);
    return static_cast<std::int32_t>((v ^ sign)) - static_cast<std::int32_t>(sign);
}

}  // namespace refpga::app
