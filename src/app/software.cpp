#include "refpga/app/software.hpp"

#include <sstream>

#include "refpga/app/tables.hpp"
#include "refpga/common/contracts.hpp"
#include "refpga/soc/assembler.hpp"

namespace refpga::app {

namespace {

void emit_words(std::ostringstream& os, const std::vector<std::int32_t>& values) {
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i % 8 == 0) os << "    .word ";
        os << values[i];
        os << ((i % 8 == 7 || i + 1 == values.size()) ? "\n" : ", ");
    }
}

}  // namespace

std::string measurement_source(const AppParams& params, const SoftwareConfig& config,
                               const SoftwareLayout& layout) {
    REFPGA_EXPECTS(params.window == 256 && params.angle_bits == 16);
    std::ostringstream os;
    const std::int32_t inv_k = cordic_inv_gain_q15(params.cordic_stages);
    const int span = params.c_full_q4() - params.c_empty_q4();
    const std::int64_t slope = (32768LL * 1024 + span / 2) / span;

    os << "; capacity-measurement firmware (generated)\n";
    os << "; register use: r1 meas, r2 ref, r3 sin, r4 cos, r5/r6 loop,\n";
    os << ";   r7 sample, r8 table, r20-r23 I/Q accs, r24 results, r15 link\n";
    if (config.code_in_sram)
        os << "    .org " << layout.code_base << "\n";

    // ----- main ------------------------------------------------------------
    os << "main:\n";
    auto load_addr = [&](const char* reg, const std::string& what) {
        os << "    lui  " << reg << ", hi(" << what << ")\n";
        os << "    ori  " << reg << ", " << reg << ", lo(" << what << ")\n";
    };
    load_addr("r1", std::to_string(layout.meas_buf));
    load_addr("r2", std::to_string(layout.ref_buf));
    load_addr("r3", "sin_tab");
    load_addr("r4", "cos_tab");
    load_addr("r24", std::to_string(layout.result_base));
    os << "    addi r5, r0, 0\n    addi r6, r0, 0\n";
    os << "    addi r20, r0, 0\n    addi r21, r0, 0\n";
    os << "    addi r22, r0, 0\n    addi r23, r0, 0\n";

    // MAC loop: 4 products per sample (meas/ref x sin/cos).
    os << "mac_loop:\n";
    os << "    slli r9, r6, 2\n";
    auto product = [&](const char* sample_ptr, const char* table_ptr,
                       const char* acc) {
        os << "    add  r13, " << sample_ptr << ", r9\n";
        os << "    lw   r7, r13, 0\n";
        os << "    slli r14, r5, 2\n";
        os << "    add  r13, " << table_ptr << ", r14\n";
        os << "    lw   r8, r13, 0\n";
        os << "    add  r10, r7, r0\n";
        os << "    add  r11, r8, r0\n";
        os << "    brl  mul\n";
        os << "    add  " << acc << ", " << acc << ", r12\n";
    };
    product("r1", "r3", "r21");  // Q_m += meas * sin
    product("r1", "r4", "r20");  // I_m += meas * cos
    product("r2", "r3", "r23");  // Q_r += ref * sin
    product("r2", "r4", "r22");  // I_r += ref * cos
    os << "    addi r5, r5, " << params.bin << "\n";
    os << "    andi r5, r5, " << (params.window - 1) << "\n";
    os << "    addi r6, r6, 1\n";
    os << "    addi r14, r0, " << params.window << "\n";
    os << "    bne  r6, r14, mac_loop\n";

    // Truncate accumulators to the CORDIC input scale.
    for (const char* acc : {"r20", "r21", "r22", "r23"})
        os << "    srai " << acc << ", " << acc << ", " << params.acc_shift << "\n";

    // Measurement channel: CORDIC + gain correction.
    auto channel = [&](const char* acc_i, const char* acc_q, int amp_word,
                       int phase_word) {
        os << "    add  r25, " << acc_i << ", r0\n";
        os << "    add  r26, " << acc_q << ", r0\n";
        os << "    brl  cordic\n";
        if (config.hw_multiplier) {
            os << "    addi r11, r0, " << inv_k << "\n";
            os << "    mul  r12, r27, r11\n";
            os << "    mulh r13, r27, r11\n";
            os << "    srli r12, r12, 15\n";
            os << "    slli r13, r13, 17\n";
            os << "    or   r12, r12, r13\n";
        } else {
            // Soft-multiply route: pre-shift to keep the product in 31 bits.
            os << "    srai r10, r27, 2\n";
            os << "    addi r11, r0, " << inv_k << "\n";
            os << "    brl  mul\n";
            os << "    srai r12, r12, 13\n";
        }
        os << "    andi r12, r12, 65535\n";
        os << "    sw   r12, r24, " << amp_word * 4 << "\n";
        os << "    sw   r28, r24, " << phase_word * 4 << "\n";
    };
    channel("r20", "r21", static_cast<int>(SwResult::AmpMeas),
            static_cast<int>(SwResult::PhaseMeas));
    channel("r22", "r23", static_cast<int>(SwResult::AmpRef),
            static_cast<int>(SwResult::PhaseRef));

    // Ratio = (amp_m << 12) / amp_r (restoring division, saturated Q12).
    os << "    lw   r10, r24, " << static_cast<int>(SwResult::AmpMeas) * 4 << "\n";
    os << "    lw   r11, r24, " << static_cast<int>(SwResult::AmpRef) * 4 << "\n";
    os << "    brl  divide\n";
    os << "    sw   r12, r24, " << static_cast<int>(SwResult::RatioQ12) * 4 << "\n";
    os << "    add  r20, r12, r0\n";  // keep ratio

    // cos(delta phi) lookup.
    os << "    lw   r13, r24, " << static_cast<int>(SwResult::PhaseMeas) * 4 << "\n";
    os << "    lw   r14, r24, " << static_cast<int>(SwResult::PhaseRef) * 4 << "\n";
    os << "    sub  r13, r13, r14\n";
    os << "    andi r13, r13, 65535\n";
    os << "    srli r13, r13, 8\n";
    os << "    slli r13, r13, 2\n";
    load_addr("r14", "cosq_tab");
    os << "    add  r13, r14, r13\n";
    os << "    lw   r8, r13, 0\n";

    // c_rel = clamp0((ratio * cos) >> 11); cap = (c_rel * c_ref_q4) >> 12.
    os << "    add  r10, r20, r0\n";
    os << "    add  r11, r8, r0\n";
    os << "    brl  mul\n";
    os << "    srai r12, r12, 11\n";
    os << "    bge  r12, r0, crel_ok\n";
    os << "    addi r12, r0, 0\n";
    os << "crel_ok:\n";
    os << "    add  r10, r12, r0\n";
    os << "    addi r11, r0, " << params.c_ref_q4() << "\n";
    os << "    brl  mul\n";
    os << "    srli r12, r12, 12\n";
    os << "    sw   r12, r24, " << static_cast<int>(SwResult::CapPfQ4) * 4 << "\n";
    os << "    add  r7, r12, r0\n";  // cap for the filter

    // Filter: 64 steps of median-3 + EMA (converges to steady state within
    // 0.1 %), then linearization — register allocation reuses MAC registers.
    os << "    addi r5, r0, 0\n    addi r6, r0, 0\n    addi r9, r0, 0\n";
    os << "    addi r18, r0, 0\n    addi r19, r0, 0\n";
    os << "filt_loop:\n";
    os << "    add  r9, r6, r0\n";   // h2 = h1
    os << "    add  r6, r5, r0\n";   // h1 = h0
    os << "    add  r5, r7, r0\n";   // h0 = cap
    os << "    add  r13, r6, r0\n";  // r13 = min(h0, h1)
    os << "    bgeu r5, r6, fmin1\n";
    os << "    add  r13, r5, r0\n";
    os << "fmin1:\n";
    os << "    add  r14, r5, r0\n";  // r14 = max(h0, h1)
    os << "    bgeu r5, r6, fmax1\n";
    os << "    add  r14, r6, r0\n";
    os << "fmax1:\n";
    os << "    add  r16, r9, r0\n";  // r16 = min(r14, h2)
    os << "    bgeu r14, r9, fmin2\n";
    os << "    add  r16, r14, r0\n";
    os << "fmin2:\n";
    os << "    add  r17, r16, r0\n";  // median = max(r13, r16)
    os << "    bgeu r16, r13, fmax2\n";
    os << "    add  r17, r13, r0\n";
    os << "fmax2:\n";
    os << "    sub  r13, r17, r18\n";
    os << "    srai r13, r13, " << params.ema_shift << "\n";
    os << "    add  r18, r18, r13\n";
    os << "    andi r18, r18, 65535\n";
    os << "    addi r19, r19, 1\n";
    os << "    addi r13, r0, 64\n";
    os << "    bne  r19, r13, filt_loop\n";

    os << "    addi r13, r0, " << params.c_empty_q4() << "\n";
    os << "    sub  r13, r18, r13\n";
    os << "    bge  r13, r0, delta_ok\n";
    os << "    addi r13, r0, 0\n";
    os << "delta_ok:\n";
    os << "    add  r10, r13, r0\n";
    os << "    addi r11, r0, " << slope << "\n";
    os << "    brl  mul\n";
    os << "    srli r12, r12, 10\n";
    os << "    addi r13, r0, 32767\n";
    os << "    bltu r12, r13, level_ok\n";
    os << "    add  r12, r13, r0\n";
    os << "level_ok:\n";
    os << "    sw   r12, r24, " << static_cast<int>(SwResult::LevelQ15) * 4 << "\n";
    os << "    halt\n";

    // ----- mul: r12 = r10 * r11 (signed) ------------------------------------
    if (config.hw_multiplier) {
        os << "mul:\n    mul  r12, r10, r11\n    jr   r15\n";
    } else {
        os << "mul:\n";
        os << "    addi r12, r0, 0\n";
        os << "    addi r14, r0, 0\n";
        os << "    bge  r11, r0, mul_abs\n";
        os << "    sub  r11, r0, r11\n";
        os << "    addi r14, r0, 1\n";
        os << "mul_abs:\n";
        os << "    beq  r11, r0, mul_fix\n";
        os << "mul_loop:\n";
        os << "    andi r13, r11, 1\n";
        os << "    beq  r13, r0, mul_skip\n";
        os << "    add  r12, r12, r10\n";
        os << "mul_skip:\n";
        os << "    slli r10, r10, 1\n";
        os << "    srli r11, r11, 1\n";
        os << "    bne  r11, r0, mul_loop\n";
        os << "mul_fix:\n";
        os << "    beq  r14, r0, mul_ret\n";
        os << "    sub  r12, r0, r12\n";
        os << "mul_ret:\n";
        os << "    jr   r15\n";
    }

    // ----- cordic: (r25, r26) -> r27 magnitude, r28 angle --------------------
    os << "cordic:\n";
    load_addr("r16", "atan_tab");
    os << "    addi r17, r0, 0\n";
    os << "    addi r28, r0, 0\n";
    os << "    bge  r25, r0, cordic_loop\n";
    os << "    sub  r25, r0, r25\n";
    os << "    sub  r26, r0, r26\n";
    os << "    addi r28, r0, 32768\n";
    os << "cordic_loop:\n";
    os << "    sra  r18, r25, r17\n";
    os << "    sra  r19, r26, r17\n";
    os << "    lw   r13, r16, 0\n";
    os << "    bge  r26, r0, cordic_pos\n";
    os << "    sub  r25, r25, r19\n";
    os << "    add  r26, r26, r18\n";
    os << "    sub  r28, r28, r13\n";
    os << "    br   cordic_next\n";
    os << "cordic_pos:\n";
    os << "    add  r25, r25, r19\n";
    os << "    sub  r26, r26, r18\n";
    os << "    add  r28, r28, r13\n";
    os << "cordic_next:\n";
    os << "    addi r16, r16, 4\n";
    os << "    addi r17, r17, 1\n";
    os << "    addi r14, r0, " << params.cordic_stages << "\n";
    os << "    bne  r17, r14, cordic_loop\n";
    os << "    andi r28, r28, 65535\n";
    os << "    add  r27, r25, r0\n";
    os << "    jr   r15\n";

    // ----- divide: r12 = sat14((r10 << 12) / r11) ----------------------------
    os << "divide:\n";
    os << "    bne  r11, r0, div_go\n";
    os << "    addi r12, r0, " << ((1 << params.ratio_bits) - 1) << "\n";
    os << "    jr   r15\n";
    os << "div_go:\n";
    os << "    slli r13, r10, " << params.ratio_frac_bits << "\n";  // dividend
    os << "    addi r12, r0, 0\n";
    os << "    addi r16, r0, 0\n";   // remainder
    os << "    addi r17, r0, " << (16 + params.ratio_frac_bits - 1) << "\n";
    os << "div_loop:\n";
    os << "    slli r16, r16, 1\n";
    os << "    srl  r14, r13, r17\n";
    os << "    andi r14, r14, 1\n";
    os << "    or   r16, r16, r14\n";
    os << "    slli r12, r12, 1\n";
    os << "    bltu r16, r11, div_skip\n";
    os << "    sub  r16, r16, r11\n";
    os << "    ori  r12, r12, 1\n";
    os << "div_skip:\n";
    os << "    addi r17, r17, -1\n";
    os << "    bge  r17, r0, div_loop\n";
    os << "    srli r14, r12, " << params.ratio_bits << "\n";
    os << "    beq  r14, r0, div_ret\n";
    os << "    addi r12, r0, " << ((1 << params.ratio_bits) - 1) << "\n";
    os << "div_ret:\n";
    os << "    jr   r15\n";

    // ----- tables ------------------------------------------------------------
    os << "sin_tab:\n";
    emit_words(os, sine_table(params.window, params.table_bits));
    os << "cos_tab:\n";
    emit_words(os, cosine_table(params.window, params.table_bits));
    os << "cosq_tab:\n";
    emit_words(os, cosine_table(256, params.cos_table_bits));
    os << "atan_tab:\n";
    emit_words(os, cordic_atan_table(params.cordic_stages, params.angle_bits));

    // Firmware bulk: drivers, fieldbus stack, calibration and service code of
    // the original product, represented as reserved image space.
    if (config.code_in_sram && config.padding_bytes > 0)
        os << "firmware_bulk:\n    .space " << (config.padding_bytes & ~3u) << "\n";

    return os.str();
}

SoftwareRun run_software_cycle(std::span<const std::int32_t> meas,
                               std::span<const std::int32_t> ref,
                               const AppParams& params, const SoftwareConfig& config,
                               const soc::MemoryConfig& mem_config) {
    REFPGA_EXPECTS(meas.size() == static_cast<std::size_t>(params.window));
    REFPGA_EXPECTS(ref.size() == meas.size());

    const SoftwareLayout layout;
    const soc::Program program =
        soc::assemble(measurement_source(params, config, layout));

    soc::MemorySystem memory(mem_config);
    memory.load(program);
    for (std::size_t i = 0; i < meas.size(); ++i) {
        memory.poke(layout.meas_buf + static_cast<std::uint32_t>(4 * i),
                    static_cast<std::uint32_t>(meas[i]));
        memory.poke(layout.ref_buf + static_cast<std::uint32_t>(4 * i),
                    static_cast<std::uint32_t>(ref[i]));
    }

    soc::Cpu cpu(memory);
    cpu.reset(config.code_in_sram ? layout.code_base : 0);
    const soc::CpuState state = cpu.run(500'000'000);
    REFPGA_EXPECTS(state == soc::CpuState::Halted);

    auto result_word = [&](SwResult r) {
        return memory.peek(layout.result_base +
                           static_cast<std::uint32_t>(4 * static_cast<int>(r)));
    };
    SoftwareRun run;
    run.amp_meas = result_word(SwResult::AmpMeas);
    run.phase_meas = result_word(SwResult::PhaseMeas);
    run.amp_ref = result_word(SwResult::AmpRef);
    run.phase_ref = result_word(SwResult::PhaseRef);
    run.ratio_q12 = result_word(SwResult::RatioQ12);
    run.cap_pf_q4 = result_word(SwResult::CapPfQ4);
    run.level_q15 = result_word(SwResult::LevelQ15);
    run.cycles = cpu.cycles();
    run.code_bytes = program.size_bytes() -
                     (config.code_in_sram ? layout.code_base : 0);
    return run;
}

}  // namespace refpga::app
