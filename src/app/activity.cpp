#include "refpga/app/activity.hpp"

#include <sstream>
#include <vector>

#include "refpga/common/contracts.hpp"
#include "refpga/common/rng.hpp"
#include "refpga/sim/vcd.hpp"

namespace refpga::app {

sim::ActivityMap system_activity(const netlist::Netlist& nl, double clock_hz,
                                 const ActivityOptions& opts) {
    REFPGA_EXPECTS(clock_hz > 0.0 && opts.cycles > 0);
    const auto engine = sim::make_engine(opts.engine, nl);

    std::ostringstream vcd_text;
    std::vector<netlist::NetId> all_nets;
    std::unique_ptr<sim::VcdWriter> writer;
    if (opts.via_vcd) {
        all_nets.reserve(nl.net_count());
        for (std::uint32_t i = 0; i < nl.net_count(); ++i)
            all_nets.push_back(netlist::NetId{i});
        writer = std::make_unique<sim::VcdWriter>(vcd_text, *engine, all_nets);
    }
    const double period_ps = 1e12 / clock_hz;

    if (nl.find_port("tick_16mhz") != nullptr) engine->set_input("tick_16mhz", 1);
    if (nl.find_port("adc_valid") != nullptr) engine->set_input("adc_valid", 1);

    if (writer) writer->sample(1);
    Rng rng(2024);
    for (int t = 1; t <= opts.cycles; ++t) {
        if (nl.find_port("adc_meas") != nullptr)
            engine->set_input("adc_meas", rng.next_below(4096));
        if (nl.find_port("adc_ref") != nullptr)
            engine->set_input("adc_ref", rng.next_below(4096));
        engine->tick();
        if (writer) writer->sample(static_cast<std::int64_t>(t * period_ps));
    }

    if (!writer) return sim::activity_from_simulation(*engine, clock_hz);
    std::istringstream is(vcd_text.str());
    return sim::activity_from_vcd(nl, sim::parse_vcd(is));
}

}  // namespace refpga::app
