#include "refpga/app/golden.hpp"

#include <algorithm>

#include "refpga/app/tables.hpp"
#include "refpga/common/contracts.hpp"

namespace refpga::app::golden {

namespace {

/// Wraps a value to `bits` two's-complement bits (signed result).
std::int32_t wrap(std::int64_t v, int bits) {
    return decode_signed(static_cast<std::uint32_t>(v), bits);
}

}  // namespace

WindowAccumulators accumulate_window(std::span<const std::int32_t> meas,
                                     std::span<const std::int32_t> ref,
                                     const AppParams& params) {
    REFPGA_EXPECTS(meas.size() == static_cast<std::size_t>(params.window));
    REFPGA_EXPECTS(ref.size() == meas.size());
    const auto sin_t = sine_table(params.window, params.table_bits);
    const auto cos_t = cosine_table(params.window, params.table_bits);

    WindowAccumulators acc;
    std::uint32_t phase = 0;  // DDS phase accumulator, mod window
    const auto mask = static_cast<std::uint32_t>(params.window - 1);
    for (int n = 0; n < params.window; ++n) {
        const std::int32_t s = sin_t[phase];
        const std::int32_t c = cos_t[phase];
        // Product truncated to 22 bits (matches the MULT18 output slice).
        auto mac = [&](std::int32_t accv, std::int32_t x, std::int32_t t) {
            const std::int32_t prod =
                wrap(static_cast<std::int64_t>(x) * t, params.sample_bits +
                                                           params.table_bits);
            return wrap(static_cast<std::int64_t>(accv) + prod, params.acc_bits);
        };
        acc.i_meas = mac(acc.i_meas, meas[static_cast<std::size_t>(n)], c);
        acc.q_meas = mac(acc.q_meas, meas[static_cast<std::size_t>(n)], s);
        acc.i_ref = mac(acc.i_ref, ref[static_cast<std::size_t>(n)], c);
        acc.q_ref = mac(acc.q_ref, ref[static_cast<std::size_t>(n)], s);
        phase = (phase + static_cast<std::uint32_t>(params.bin)) & mask;
    }
    return acc;
}

CordicVector cordic_vector(std::int32_t x0, std::int32_t y0, const AppParams& params) {
    const int w = params.cordic_bits;
    const auto atan_t = cordic_atan_table(params.cordic_stages, params.angle_bits);
    const std::uint32_t angle_mask =
        (params.angle_bits == 32) ? 0xFFFFFFFFu
                                  : ((std::uint32_t{1} << params.angle_bits) - 1);

    std::int32_t x = wrap(x0, w);
    std::int32_t y = wrap(y0, w);
    std::uint32_t z = 0;

    // Pre-rotation: x < 0 => negate both, z0 = half a turn (mod 2^bits the
    // sign of pi does not matter).
    if (x < 0) {
        x = wrap(-static_cast<std::int64_t>(x), w);
        y = wrap(-static_cast<std::int64_t>(y), w);
        z = std::uint32_t{1} << (params.angle_bits - 1);
    }

    for (int i = 0; i < params.cordic_stages; ++i) {
        const std::int32_t xs = x >> i;  // arithmetic shift
        const std::int32_t ys = y >> i;
        const auto a = static_cast<std::uint32_t>(atan_t[static_cast<std::size_t>(i)]);
        if (y >= 0) {
            const std::int32_t nx = wrap(static_cast<std::int64_t>(x) + ys, w);
            const std::int32_t ny = wrap(static_cast<std::int64_t>(y) - xs, w);
            x = nx;
            y = ny;
            z = (z + a) & angle_mask;
        } else {
            const std::int32_t nx = wrap(static_cast<std::int64_t>(x) - ys, w);
            const std::int32_t ny = wrap(static_cast<std::int64_t>(y) + xs, w);
            x = nx;
            y = ny;
            z = (z - a) & angle_mask;
        }
    }
    return {x, z};
}

ChannelResult amp_phase(std::int32_t acc_i, std::int32_t acc_q, const AppParams& params) {
    // Truncate accumulators to the CORDIC lane width.
    const std::int32_t x = acc_i >> params.acc_shift;
    const std::int32_t y = acc_q >> params.acc_shift;
    const CordicVector v = cordic_vector(x, y, params);

    // Gain correction: amp = (magnitude * invK) >> 15, 16-bit truncation.
    const std::int64_t scaled =
        static_cast<std::int64_t>(v.magnitude) * cordic_inv_gain_q15(params.cordic_stages);
    ChannelResult result;
    result.amplitude = static_cast<std::uint32_t>(scaled >> 15) & 0xFFFFu;
    result.phase = v.angle;
    return result;
}

std::uint32_t divide_sat(std::uint32_t num, std::uint32_t den, int frac_bits,
                         int out_bits) {
    REFPGA_EXPECTS(frac_bits >= 0 && frac_bits <= 16);
    REFPGA_EXPECTS(out_bits >= 1 && out_bits <= 28);
    const std::uint32_t max_out = (std::uint32_t{1} << out_bits) - 1;
    if (den == 0) return max_out;
    const std::uint64_t q = (static_cast<std::uint64_t>(num) << frac_bits) / den;
    return q > max_out ? max_out : static_cast<std::uint32_t>(q);
}

CapacityResult capacity(const ChannelResult& meas, const ChannelResult& ref,
                        const AppParams& params) {
    CapacityResult result;
    result.ratio_q12 = divide_sat(meas.amplitude, ref.amplitude,
                                  params.ratio_frac_bits, params.ratio_bits);

    const std::uint32_t angle_mask = (std::uint32_t{1} << params.angle_bits) - 1;
    const std::uint32_t dphi = (meas.phase - ref.phase) & angle_mask;
    const auto cos_t = cosine_table(256, params.cos_table_bits);
    const std::uint32_t addr = dphi >> (params.angle_bits - 8);
    result.cos_q11 = cos_t[addr];

    // C/C_ref in Q12: (ratio_q12 * cos_q11) >> 11, clamped at 0.
    const std::int64_t scaled =
        static_cast<std::int64_t>(result.ratio_q12) * result.cos_q11;
    std::int64_t c_rel_q12 = scaled >> 11;
    if (c_rel_q12 < 0) c_rel_q12 = 0;

    // pF in Q4: (c_rel_q12 * c_ref_q4) >> 12, 16-bit saturation.
    std::int64_t pf_q4 = (c_rel_q12 * params.c_ref_q4()) >> 12;
    if (pf_q4 > 0xFFFF) pf_q4 = 0xFFFF;
    result.cap_pf_q4 = static_cast<std::uint32_t>(pf_q4);
    return result;
}

std::int32_t level_slope_q10(const AppParams& params) {
    const int span = params.c_full_q4() - params.c_empty_q4();
    REFPGA_EXPECTS(span > 0);
    return static_cast<std::int32_t>((32768LL * 1024 + span / 2) / span);
}

FilterState::Output FilterState::step(std::uint32_t cap_pf_q4) {
    // Median-of-3 over the most recent samples. State starts at zero exactly
    // like the hardware registers, so golden and netlist stay bit-identical
    // from reset onward.
    history_[2] = history_[1];
    history_[1] = history_[0];
    history_[0] = cap_pf_q4;
    const std::uint32_t a = history_[0];
    const std::uint32_t b = history_[1];
    const std::uint32_t c = history_[2];
    const std::uint32_t median = std::max(std::min(a, b), std::min(std::max(a, b), c));

    // EMA: y += (x - y) >> k, computed in signed arithmetic.
    const std::int32_t diff =
        static_cast<std::int32_t>(median) - static_cast<std::int32_t>(ema_);
    ema_ = static_cast<std::uint32_t>(static_cast<std::int32_t>(ema_) +
                                      (diff >> params_.ema_shift)) &
           0xFFFFu;

    // Linearization to level Q15.
    Output out;
    std::int64_t delta =
        static_cast<std::int64_t>(ema_) - params_.c_empty_q4();
    if (delta < 0) delta = 0;
    std::int64_t level = (delta * level_slope_q10(params_)) >> 10;
    if (level > 32767) level = 32767;
    out.level_q15 = static_cast<std::uint32_t>(level);
    out.alarm_high = out.level_q15 > static_cast<std::uint32_t>(params_.level_alarm_high);
    out.alarm_low = out.level_q15 < static_cast<std::uint32_t>(params_.level_alarm_low);
    return out;
}

CycleResult process_window(std::span<const std::int32_t> meas,
                           std::span<const std::int32_t> ref, FilterState& filter,
                           const AppParams& params) {
    const WindowAccumulators acc = accumulate_window(meas, ref, params);
    CycleResult result;
    result.meas = amp_phase(acc.i_meas, acc.q_meas, params);
    result.ref = amp_phase(acc.i_ref, acc.q_ref, params);
    result.cap = capacity(result.meas, result.ref, params);
    result.level = filter.step(result.cap.cap_pf_q4);
    return result;
}

}  // namespace refpga::app::golden
