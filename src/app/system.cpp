#include "refpga/app/system.hpp"

#include "refpga/common/contracts.hpp"
#include "refpga/reconfig/busmacro.hpp"

namespace refpga::app {

const char* variant_name(SystemVariant variant) {
    switch (variant) {
        case SystemVariant::Software: return "software";
        case SystemVariant::MonolithicHw: return "monolithic-hw";
        case SystemVariant::ReconfiguredHw: return "reconfigured-hw";
    }
    return "?";
}

SystemOptions::SystemOptions() : port(reconfig::jcap_port()) {}

namespace {

analog::FrontEndConfig frontend_config(const SystemOptions& options) {
    const AppParams& params = options.params;
    analog::FrontEndConfig cfg;
    cfg.modulator_hz = params.modulator_hz;
    cfg.signal_hz = params.signal_hz;
    cfg.adc_decimation = params.adc_decimation;
    cfg.tank.c_ref_pf = params.c_ref_pf;
    cfg.tank.c_empty_pf = params.c_empty_pf;
    cfg.tank.c_full_pf = params.c_full_pf;
    cfg.tank.noise_rms_v = options.tank_noise_rms_v;
    return cfg;
}

}  // namespace

MeasurementSystem::MeasurementSystem(SystemOptions options, std::uint64_t noise_seed)
    : options_(std::move(options)),
      frontend_(frontend_config(options_), noise_seed),
      sinusgen_(options_.params),
      filter_(options_.params),
      controller_(fabric::Device(options_.part), options_.port) {
    if (options_.variant == SystemVariant::ReconfiguredHw) {
        // One reconfigurable slot sized for the largest module (Fig. 2);
        // geometry refined by the floorplanning benches — here the slot only
        // needs a column range for bitstream sizing. A third of the device
        // matches the measured module sizes on the XC3S400.
        const fabric::Device dev(options_.part);
        const int slot_cols = dev.cols() / 3;
        controller_.add_slot("slot0", {dev.cols() - slot_cols, dev.cols(), 0,
                                       dev.rows()});
        controller_.register_module("slot0", "amp_phase");
        controller_.register_module("slot0", "capacity");
        controller_.register_module("slot0", "filter");
    }
}

void MeasurementSystem::set_true_level(double level) {
    frontend_.tank().set_level(level);
}

double MeasurementSystem::true_level() const { return frontend_.tank().level(); }

void MeasurementSystem::collect_window(std::vector<std::int32_t>& meas,
                                       std::vector<std::int32_t>& ref) {
    const AppParams& p = options_.params;
    meas.clear();
    ref.clear();
    const int needed = p.window * (1 + options_.settle_windows);
    int collected = 0;
    while (collected < needed) {
        const SinusGenModel::Step drive = sinusgen_.step();
        const auto pcm = options_.use_ds_dac
                             ? frontend_.step_ds_bit(drive.ds_bit)
                             : frontend_.step_code8(
                                   static_cast<std::uint8_t>(drive.code8));
        if (!pcm) continue;
        ++collected;
        if (collected > options_.settle_windows * p.window) {
            meas.push_back(pcm->meas);
            ref.push_back(pcm->ref);
        }
    }
}

CycleReport MeasurementSystem::run_cycle() {
    const AppParams& p = options_.params;
    CycleReport report;
    double t = 0.0;

    // --- Phase 1: AD conversion of the measurement/reference signals --------
    std::vector<std::int32_t> meas;
    std::vector<std::int32_t> ref;
    collect_window(meas, ref);
    report.sampling_s = static_cast<double>(p.window * (1 + options_.settle_windows)) /
                        p.pcm_rate_hz();
    report.phases.push_back({"AD conversion (sample window)", t, report.sampling_s});
    t += report.sampling_s;

    auto add_reconfig = [&](const char* module) {
        if (options_.variant != SystemVariant::ReconfiguredHw) return;
        const reconfig::ReconfigEvent ev = controller_.load("slot0", module);
        if (ev.time_s > 0.0) {
            report.phases.push_back({std::string("reconfig: ") + module, t, ev.time_s});
            report.reconfig_s += ev.time_s;
            t += ev.time_s;
        }
    };
    auto add_processing = [&](const char* name, double seconds) {
        report.phases.push_back({name, t, seconds});
        report.processing_s += seconds;
        t += seconds;
    };

    if (options_.variant == SystemVariant::Software) {
        // The MicroBlaze executes the full pipeline from the sample buffers.
        const SoftwareRun run =
            run_software_cycle(meas, ref, p, options_.software);
        add_processing("software data processing (MicroBlaze)",
                       run.seconds(p.system_clock_hz));
        report.result.meas = {run.amp_meas, run.phase_meas};
        report.result.ref = {run.amp_ref, run.phase_ref};
        report.result.cap.ratio_q12 = run.ratio_q12;
        report.result.cap.cap_pf_q4 = run.cap_pf_q4;
        report.result.level.level_q15 = run.level_q15;
    } else {
        // Hardware modules replay the buffered window at the system clock:
        // N cycles of streaming MAC, then the combinational tail registered
        // over a handful of cycles per stage.
        const golden::WindowAccumulators acc = golden::accumulate_window(meas, ref, p);
        add_reconfig("amp_phase");
        report.result.meas = golden::amp_phase(acc.i_meas, acc.q_meas, p);
        report.result.ref = golden::amp_phase(acc.i_ref, acc.q_ref, p);
        add_processing("amplitude & phase (HW module)",
                       static_cast<double>(p.window + 4) / p.system_clock_hz);

        add_reconfig("capacity");
        report.result.cap = golden::capacity(report.result.meas, report.result.ref, p);
        add_processing("capacity computation (HW module)", 4.0 / p.system_clock_hz);

        add_reconfig("filter");
        report.result.level = filter_.step(report.result.cap.cap_pf_q4);
        add_processing("filter & level (HW module)", 4.0 / p.system_clock_hz);
    }

    report.level = static_cast<double>(report.result.level.level_q15) / 32768.0;
    report.capacitance_pf = static_cast<double>(report.result.cap.cap_pf_q4) / 16.0;
    ++cycles_run_;
    return report;
}

// ---------------------------------------------------------------------------
// Structural system netlist
// ---------------------------------------------------------------------------

SystemNetlist build_system_netlist(const SystemNetlistOptions& options) {
    using netlist::Builder;
    using netlist::Bus;
    using netlist::NetId;
    const AppParams& p = options.params;

    SystemNetlist sys;
    sys.static_part = netlist::PartitionId{0};
    sys.amp_part = sys.nl.add_partition("amp_phase");
    sys.cap_part = sys.nl.add_partition("capacity");
    sys.filt_part = sys.nl.add_partition("filter");

    const Bus clk_port = sys.nl.add_input_port("clk", 1);
    Builder b(sys.nl, clk_port[0]);

    // ---- static area --------------------------------------------------------
    const Bus meas_in = sys.nl.add_input_port("adc_meas", p.sample_bits);
    const Bus ref_in = sys.nl.add_input_port("adc_ref", p.sample_bits);
    const Bus valid_in = sys.nl.add_input_port("adc_valid", 1);
    const Bus clear_in = sys.nl.add_input_port("window_clear", 1);
    const Bus chan_in = sys.nl.add_input_port("chan_sel", 1);
    const Bus tick16 = sys.nl.add_input_port("tick_16mhz", 1);

    if (options.include_soft_ip) soc::emit_static_soft_ip(b, options.soft_ip);

    const SinusGeneratorIo sinus = make_sinus_generator(b, tick16[0], p);
    sys.nl.add_output_port("dac_code", sinus.code8);
    sys.nl.add_output_port("dac_ds_bit", Bus{sinus.ds_bit});

    const AdcInterfaceIo adc = make_adc_interface(b, meas_in, ref_in, valid_in[0], p);

    // ---- amp/phase module (reconfigurable) ----------------------------------
    // All boundary signals pass through slice-based bus macros. When a module
    // is not resident, its result staging is tied off (the slot is empty).
    Bus amp_back;
    if (options.include_amp) {
        Bus amp_in_m = reconfig::bus_macro(b, adc.meas, sys.static_part,
                                           sys.amp_part, "meas");
        Bus amp_in_r = reconfig::bus_macro(b, adc.ref, sys.static_part,
                                           sys.amp_part, "ref");
        Bus amp_ctrl = reconfig::bus_macro(
            b, Bus{adc.valid, clear_in[0], chan_in[0]}, sys.static_part,
            sys.amp_part, "ctl");
        sys.nl.set_current_partition(sys.amp_part);
        const AmpPhaseIo amp = make_amp_phase(b, amp_in_m, amp_in_r, amp_ctrl[0],
                                              amp_ctrl[1], amp_ctrl[2], p);
        // Results return to the static side and are registered there (the
        // module can be swapped out afterwards).
        amp_back = reconfig::bus_macro(
            b, Builder::concat(Builder::concat(amp.amp, amp.phase), Bus{amp.done}),
            sys.amp_part, sys.static_part, "ampres");
    } else {
        amp_back = b.constant(0, 16 + p.angle_bits + 1);
    }
    sys.nl.set_current_partition(sys.static_part);
    const Bus amp_store = b.reg(amp_back, NetId{}, "amp_store");
    const Bus amp_m_s = Builder::slice(amp_store, 0, 16);
    const Bus ph_m_s = Builder::slice(amp_store, 16, p.angle_bits);
    const NetId done_s = amp_store[16 + static_cast<std::size_t>(p.angle_bits)];
    sys.nl.add_output_port("window_done", Bus{done_s});
    // Second channel registers (static side latches both channel readouts).
    const Bus amp_r_s = b.reg(amp_m_s, NetId{}, "amp_r_store");
    const Bus ph_r_s = b.reg(ph_m_s, NetId{}, "ph_r_store");

    // ---- capacity module ----------------------------------------------------
    Bus cap_back;
    if (options.include_capacity) {
        const Bus cap_in = reconfig::bus_macro(
            b,
            Builder::concat(Builder::concat(amp_m_s, ph_m_s),
                            Builder::concat(amp_r_s, ph_r_s)),
            sys.static_part, sys.cap_part, "capin");
        sys.nl.set_current_partition(sys.cap_part);
        const CapacityIo cap = make_capacity(
            b, Builder::slice(cap_in, 0, 16),
            Builder::slice(cap_in, 16, p.angle_bits),
            Builder::slice(cap_in, 16 + p.angle_bits, 16),
            Builder::slice(cap_in, 32 + p.angle_bits, p.angle_bits), p);
        cap_back = reconfig::bus_macro(b, cap.cap_pf_q4, sys.cap_part,
                                       sys.static_part, "capres");
    } else {
        cap_back = b.constant(0, 16);
    }
    sys.nl.set_current_partition(sys.static_part);
    const Bus cap_store = b.reg(cap_back, NetId{}, "cap_store");
    sys.nl.add_output_port("capacity_q4", cap_store);

    // ---- filter module ------------------------------------------------------
    Bus filt_back;
    if (options.include_filter) {
        Bus filt_in = reconfig::bus_macro(b, Builder::concat(cap_store, Bus{done_s}),
                                          sys.static_part, sys.filt_part, "filtin");
        sys.nl.set_current_partition(sys.filt_part);
        const FilterIo filt = make_filter(b, Builder::slice(filt_in, 0, 16),
                                          filt_in[16], p);
        filt_back = reconfig::bus_macro(
            b, Builder::concat(filt.level_q15, Bus{filt.alarm_high, filt.alarm_low}),
            sys.filt_part, sys.static_part, "filtres");
    } else {
        filt_back = b.constant(0, 18);
    }
    sys.nl.set_current_partition(sys.static_part);
    const Bus level_store = b.reg(filt_back, NetId{}, "level_store");
    sys.nl.add_output_port("level_q15", Builder::slice(level_store, 0, 16));
    sys.nl.add_output_port("alarms", Builder::slice(level_store, 16, 2));

    return sys;
}

}  // namespace refpga::app
