#include "refpga/app/system.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "refpga/common/contracts.hpp"
#include "refpga/reconfig/busmacro.hpp"

namespace refpga::app {

const char* variant_name(SystemVariant variant) {
    switch (variant) {
        case SystemVariant::Software: return "software";
        case SystemVariant::MonolithicHw: return "monolithic-hw";
        case SystemVariant::ReconfiguredHw: return "reconfigured-hw";
    }
    return "?";
}

SystemOptions::SystemOptions() : port(reconfig::jcap_port()) {}

namespace {

analog::FrontEndConfig frontend_config(const SystemOptions& options) {
    const AppParams& params = options.params;
    analog::FrontEndConfig cfg;
    cfg.modulator_hz = params.modulator_hz;
    cfg.signal_hz = params.signal_hz;
    cfg.adc_decimation = params.adc_decimation;
    cfg.tank.c_ref_pf = params.c_ref_pf;
    cfg.tank.c_empty_pf = params.c_empty_pf;
    cfg.tank.c_full_pf = params.c_full_pf;
    cfg.tank.noise_rms_v = options.tank_noise_rms_v;
    return cfg;
}

// Content signature of the power-up (full-device) configuration.
constexpr std::uint64_t kStaticSignature = 0x5e1f0c0def417a11ULL;

// Stuck-bit pattern a corrupted fabric imprints on the capacity word; always
// large enough (>= 170 pF) to trip the plausibility guard's default jump.
constexpr std::uint32_t kFabricCorruptMask = 0x2AAA;

// Wall-clock histogram bounds for cycle phases: the streamed sample window
// runs sub-millisecond on current hosts; the decade ladder keeps the same
// metric meaningful on the slow reference path too.
std::vector<double> wall_bounds() {
    return {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0};
}

}  // namespace

MeasurementSystem::MeasurementSystem(SystemOptions options, std::uint64_t noise_seed)
    : options_(std::move(options)),
      frontend_(frontend_config(options_), noise_seed),
      sinusgen_(options_.params),
      filter_(options_.params),
      device_(options_.part),
      controller_(device_, options_.port),
      config_mem_(device_),
      scrubber_(config_mem_, options_.port),
      // Fault schedule seeded independently of the analog noise stream.
      plan_(options_.fault, device_.cols(), noise_seed ^ 0xFA17005EED5EED01ULL) {
    REFPGA_EXPECTS(options_.scrub_idle_fraction >= 0.0 &&
                   options_.scrub_idle_fraction <= 1.0);
    REFPGA_EXPECTS(options_.max_level_jump > 0.0);
    REFPGA_EXPECTS(options_.plausibility_patience >= 1);
    REFPGA_EXPECTS(options_.load_max_retries >= 0);
    REFPGA_EXPECTS(options_.settle_windows >= 0);

    // Power-up configures the whole device; from then on every column is
    // covered by readback scrubbing.
    config_mem_.load_columns(0, device_.cols(), kStaticSignature);
    controller_.attach_memory(&config_mem_);

    if (options_.fault.any()) {
        // Self-healing mode: loads verify their own readback and retry.
        reconfig::LoadPolicy policy;
        policy.verify_after_write = true;
        policy.max_retries = options_.load_max_retries;
        controller_.set_load_policy(policy);
        if (options_.fault.load_corruption_prob > 0.0 ||
            options_.fault.flash_error_prob > 0.0)
            controller_.set_load_fault_hook(
                [this](const std::string&, const std::string&, int) {
                    return plan_.next_load_fault();
                });
    }

    if (options_.recorder != nullptr) {
        obs::MetricRegistry& m = options_.recorder->metrics();
        obs_ids_.cycles = m.counter("cycle.count_total");
        obs_ids_.fallback = m.counter("cycle.fallback_total");
        obs_ids_.rejected = m.counter("cycle.plausibility_rejected_total");
        obs_ids_.corrupted = m.counter("cycle.fabric_corrupted_total");
        obs_ids_.upsets = m.counter("cycle.upsets_detected_total");
        obs_ids_.repairs = m.counter("cycle.columns_repaired_total");
        // Modelled (simulated-schedule) seconds, straight from the report.
        obs_ids_.model_sampling_s = m.counter("cycle.model_sampling_seconds_total");
        obs_ids_.model_processing_s =
            m.counter("cycle.model_processing_seconds_total");
        obs_ids_.model_reconfig_s = m.counter("cycle.model_reconfig_seconds_total");
        obs_ids_.model_scrub_s = m.counter("cycle.model_scrub_seconds_total");
        // Host wall clock actually spent computing the phases.
        obs_ids_.wall = m.histogram("cycle.wall_seconds", wall_bounds());
        obs_ids_.sample_wall =
            m.histogram("cycle.sample_wall_seconds", wall_bounds());
        obs_ids_.swap_wall =
            m.histogram("cycle.module_swap_wall_seconds", wall_bounds());
        obs::TraceRing& tr = options_.recorder->trace();
        obs_ids_.span_cycle = tr.intern("cycle");
        obs_ids_.span_sample = tr.intern("cycle/sample_window");
        obs_ids_.span_process = tr.intern("cycle/processing");
        obs_ids_.span_swap = tr.intern("cycle/module_swap");
        frontend_.set_recorder(options_.recorder);
        controller_.set_recorder(options_.recorder);
    }

    if (options_.variant == SystemVariant::ReconfiguredHw) {
        // One reconfigurable slot sized for the largest module (Fig. 2);
        // geometry refined by the floorplanning benches — here the slot only
        // needs a column range for bitstream sizing. A third of the device
        // matches the measured module sizes on the XC3S400.
        const int slot_cols = device_.cols() / 3;
        controller_.add_slot("slot0", {device_.cols() - slot_cols, device_.cols(),
                                       0, device_.rows()});
        controller_.register_module("slot0", "amp_phase");
        controller_.register_module("slot0", "capacity");
        controller_.register_module("slot0", "filter");
    }
}

void MeasurementSystem::set_true_level(double level) {
    frontend_.tank().set_level(level);
}

double MeasurementSystem::true_level() const { return frontend_.tank().level(); }

void MeasurementSystem::collect_window(analog::SampleBlock& block,
                                       std::vector<std::int32_t>& meas,
                                       std::vector<std::int32_t>& ref) {
    const AppParams& p = options_.params;
    meas.clear();
    ref.clear();
    const int needed = p.window * (1 + options_.settle_windows);

    if (options_.stream_block_ticks <= 0) {
        // Per-sample reference path (parity baseline for the block pipeline).
        int collected = 0;
        while (collected < needed) {
            const SinusGenModel::Step drive = sinusgen_.step();
            const auto pcm = options_.use_ds_dac
                                 ? frontend_.step_ds_bit_reference(drive.ds_bit)
                                 : frontend_.step_code8_reference(
                                       static_cast<std::uint8_t>(drive.code8));
            if (!pcm) continue;
            ++collected;
            if (collected > options_.settle_windows * p.window) {
                meas.push_back(pcm->meas);
                ref.push_back(pcm->ref);
            }
        }
        return;
    }

    // Block-streaming path: generate the drive batch, then push it through
    // the fused front-end kernel, stream_block_ticks modulator ticks at a
    // time. ticks_for_pcm accounts for the ADC decimation phase carried over
    // from the previous cycle, so the settle-plus-measurement window always
    // lands exactly `needed` PCM pairs.
    block.clear_pcm();
    block.reserve_pcm(static_cast<std::size_t>(needed));
    long remaining = frontend_.ticks_for_pcm(needed);
    while (remaining > 0) {
        const long n = std::min<long>(options_.stream_block_ticks, remaining);
        block.drive.resize(static_cast<std::size_t>(n));
        if (options_.use_ds_dac) {
            sinusgen_.run_block_bits(static_cast<std::size_t>(n), block.drive.data());
            frontend_.run_block_ds(block.drive, block);
        } else {
            sinusgen_.run_block_codes(static_cast<std::size_t>(n), block.drive.data());
            frontend_.run_block_code8(block.drive, block);
        }
        remaining -= n;
    }
    REFPGA_ENSURES(block.pcm_size() == static_cast<std::size_t>(needed));

    const auto skip = static_cast<std::ptrdiff_t>(options_.settle_windows) * p.window;
    meas.assign(block.meas.begin() + skip, block.meas.end());
    ref.assign(block.ref.begin() + skip, block.ref.end());
}

void MeasurementSystem::inject_upsets_until(double t_s) {
    for (const fault::UpsetEvent& upset : plan_.upsets_until(t_s)) {
        config_mem_.inject_upset(upset.column, plan_.bit_rng());
        ++stats_.upsets_injected;
        // Latency is measured from the first hit on a column; repeats in the
        // same column before the scrubber gets there are folded into it.
        pending_upsets_.emplace(upset.column, upset.at_s);
    }
}

void MeasurementSystem::apply_glitch(const fault::Glitch& glitch,
                                     std::vector<std::int32_t>& meas,
                                     std::vector<std::int32_t>& ref) {
    if (glitch.kind == fault::GlitchKind::None) return;
    std::vector<std::int32_t>& ch = glitch.on_reference ? ref : meas;
    if (ch.empty()) return;
    ++stats_.glitches_injected;
    if (glitch.kind == fault::GlitchKind::StuckChannel) {
        // The front-end output froze at its first sample of the window.
        std::fill(ch.begin(), ch.end(), ch.front());
        return;
    }
    // Spiking channel: periodic impulses scaled to the channel's own level.
    std::int64_t abs_sum = 0;
    for (const std::int32_t v : ch) abs_sum += std::abs(static_cast<long>(v));
    const auto spike = static_cast<std::int32_t>(
        10 * abs_sum / static_cast<std::int64_t>(ch.size()) + 1000);
    for (std::size_t i = 0; i < ch.size(); i += 16)
        ch[i] += (i % 32 == 0) ? spike : -spike;
}

double MeasurementSystem::level_candidate(std::uint32_t cap_pf_q4) const {
    const AppParams& p = options_.params;
    const double cap_pf = static_cast<double>(cap_pf_q4) / 16.0;
    const double span = p.c_full_pf - p.c_empty_pf;
    return std::clamp((cap_pf - p.c_empty_pf) / span, 0.0, 1.0);
}

double MeasurementSystem::fallback_processing_s(
    const std::vector<std::int32_t>& meas, const std::vector<std::int32_t>& ref) {
    // The resident software path always runs the same pipeline over the same
    // window size, so its cycle count is window-invariant: simulate it once
    // and reuse the timing.
    if (!fallback_s_) {
        const SoftwareRun run =
            run_software_cycle(meas, ref, options_.params, options_.software);
        fallback_s_ = run.seconds(options_.params.system_clock_hz);
    }
    return *fallback_s_;
}

void MeasurementSystem::run_scrub_phase(CycleReport& report, double cycle_start_s,
                                        double& t) {
    const AppParams& p = options_.params;
    // Columns that fit into the donated share of this cycle's idle window;
    // at least one per cycle so the cursor always advances.
    const double column_s = static_cast<double>(device_.bits_per_clb_column()) /
                            options_.port.throughput_bps();
    const double idle_s = std::max(0.0, p.cycle_period_s - t);
    int columns = static_cast<int>(options_.scrub_idle_fraction * idle_s / column_s);
    columns = std::clamp(columns, 1, device_.cols());
    const int x_begin = scrub_cursor_;
    const int x_end = std::min(x_begin + columns, device_.cols());

    // Pending upsets inside the scanned range are about to be detected.
    std::vector<double> due_at_s;
    for (const auto& [column, at_s] : pending_upsets_)
        if (column >= x_begin && column < x_end && config_mem_.column_corrupted(column))
            due_at_s.push_back(at_s);

    const reconfig::ScrubReport scrub = scrubber_.scan(x_begin, x_end);
    scrub_cursor_ = x_end >= device_.cols() ? 0 : x_end;

    report.upsets_detected = scrub.upsets_detected;
    report.columns_repaired = scrub.columns_repaired;
    report.scrub_s = scrub.readback_s;
    report.repair_s = scrub.repair_s;
    stats_.upsets_detected += scrub.upsets_detected;
    stats_.columns_repaired += scrub.columns_repaired;
    stats_.scrub_s += scrub.readback_s;
    stats_.repair_s += scrub.repair_s;

    report.phases.push_back({"config scrub (idle window)", t, scrub.readback_s});
    t += scrub.readback_s;
    const double detect_s = cycle_start_s + t;
    if (scrub.repair_s > 0.0) {
        report.phases.push_back({"config repair (golden rewrite)", t, scrub.repair_s});
        t += scrub.repair_s;
    }
    const double repair_done_s = cycle_start_s + t;

    for (const double at_s : due_at_s) {
        stats_.detect_latency_sum_s += detect_s - at_s;
        ++stats_.detect_latency_count;
        stats_.repair_latency_sum_s += repair_done_s - at_s;
        ++stats_.repair_latency_count;
    }
    // Scanned columns are settled: detected ones were just repaired, the
    // rest were overwritten by a module load in the meantime.
    std::erase_if(pending_upsets_, [&](const auto& entry) {
        return entry.first >= x_begin && entry.first < x_end;
    });
}

CycleReport MeasurementSystem::run_cycle() { return run_cycle(block_); }

CycleReport MeasurementSystem::run_cycle(analog::SampleBlock& block) {
    const AppParams& p = options_.params;
    CycleReport report;
    double t = 0.0;
    const double cycle_start_s =
        static_cast<double>(cycles_run_) * p.cycle_period_s;
    obs::ScopedSpan cycle_span(options_.recorder, obs_ids_.span_cycle,
                               obs_ids_.wall);

    // --- Phase 1: AD conversion of the measurement/reference signals --------
    std::vector<std::int32_t> meas;
    std::vector<std::int32_t> ref;
    {
        obs::ScopedSpan sample_span(options_.recorder, obs_ids_.span_sample,
                                    obs_ids_.sample_wall);
        collect_window(block, meas, ref);
    }
    apply_glitch(plan_.next_glitch(), meas, ref);
    report.sampling_s = static_cast<double>(p.window * (1 + options_.settle_windows)) /
                        p.pcm_rate_hz();
    report.phases.push_back({"AD conversion (sample window)", t, report.sampling_s});
    t += report.sampling_s;
    // Upsets land in real time: everything due by the end of sampling is in
    // the fabric before processing starts.
    inject_upsets_until(cycle_start_s + t);

    auto add_reconfig = [&](const char* module) -> bool {
        if (options_.variant != SystemVariant::ReconfiguredHw) return true;
        obs::ScopedSpan swap_span(options_.recorder, obs_ids_.span_swap,
                                  obs_ids_.swap_wall);
        const reconfig::ReconfigEvent ev = controller_.load("slot0", module);
        swap_span.finish();
        stats_.load_retries += std::max(0, ev.attempts - 1);
        if (ev.time_s > 0.0) {
            std::string label = std::string("reconfig: ") + module;
            if (ev.attempts > 1)
                label += " (+" + std::to_string(ev.attempts - 1) + " retry)";
            report.phases.push_back({std::move(label), t, ev.time_s});
            report.reconfig_s += ev.time_s;
            t += ev.time_s;
        }
        if (ev.failed) {
            ++stats_.load_failures;
            return false;
        }
        return true;
    };
    auto add_processing = [&](const char* name, double seconds) {
        report.phases.push_back({name, t, seconds});
        report.processing_s += seconds;
        t += seconds;
    };

    golden::CapacityResult cap_raw;
    bool filter_in_hw = false;
    obs::ScopedSpan process_span(options_.recorder, obs_ids_.span_process);
    if (options_.variant == SystemVariant::Software) {
        // The MicroBlaze executes the full pipeline from the sample buffers.
        const SoftwareRun run =
            run_software_cycle(meas, ref, p, options_.software);
        add_processing("software data processing (MicroBlaze)",
                       run.seconds(p.system_clock_hz));
        report.result.meas = {run.amp_meas, run.phase_meas};
        report.result.ref = {run.amp_ref, run.phase_ref};
        cap_raw.ratio_q12 = run.ratio_q12;
        cap_raw.cap_pf_q4 = run.cap_pf_q4;
        report.result.level.level_q15 = run.level_q15;
    } else {
        // Hardware modules replay the buffered window at the system clock:
        // N cycles of streaming MAC, then the combinational tail registered
        // over a handful of cycles per stage.
        const golden::WindowAccumulators acc = golden::accumulate_window(meas, ref, p);
        bool hw_ok = add_reconfig("amp_phase");
        if (hw_ok) {
            report.result.meas = golden::amp_phase(acc.i_meas, acc.q_meas, p);
            report.result.ref = golden::amp_phase(acc.i_ref, acc.q_ref, p);
            add_processing("amplitude & phase (HW module)",
                           static_cast<double>(p.window + 4) / p.system_clock_hz);
            hw_ok = add_reconfig("capacity");
        }
        if (hw_ok) {
            cap_raw = golden::capacity(report.result.meas, report.result.ref, p);
            add_processing("capacity computation (HW module)", 4.0 / p.system_clock_hz);
            hw_ok = add_reconfig("filter");
        }
        if (hw_ok) {
            filter_in_hw = true;
        } else {
            // Graceful degradation: the slot is Failed, so the resident
            // software path (MicroBlaze) serves the cycle instead of
            // aborting it.
            report.fallback = true;
            ++stats_.fallback_cycles;
            report.result.meas = golden::amp_phase(acc.i_meas, acc.q_meas, p);
            report.result.ref = golden::amp_phase(acc.i_ref, acc.q_ref, p);
            cap_raw = golden::capacity(report.result.meas, report.result.ref, p);
            add_processing("fallback: software pipeline (slot failed)",
                           fallback_processing_s(meas, ref));
        }
    }
    process_span.finish();

    // --- Fabric-corruption oracle + plausibility guard ----------------------
    if (config_mem_.corrupted_count() > 0) {
        // A corrupted frame upstream of the result staging garbles the
        // capacity word with a stuck-bit pattern.
        cap_raw.cap_pf_q4 = (cap_raw.cap_pf_q4 ^ kFabricCorruptMask) & 0xFFFF;
        report.fabric_corrupted = true;
        ++stats_.corrupted_cycles;
    }

    // The plausibility guard (like load verification) is armed only in
    // self-healing mode: on a fault-free system it would veto legitimate
    // steep fill ramps and change the paper's baseline results.
    const double candidate = level_candidate(cap_raw.cap_pf_q4);
    if (options_.fault.any() && have_last_good_ &&
        std::abs(candidate - last_good_candidate_) > options_.max_level_jump &&
        reject_streak_ < options_.plausibility_patience) {
        // Implausible jump: hold the last-good value. After `patience`
        // consecutive rejections the new reading wins — a persistent change
        // is a real step, not a transient fault.
        ++reject_streak_;
        ++stats_.rejected_cycles;
        report.plausibility_rejected = true;
    } else {
        reject_streak_ = 0;
    }

    report.result.cap = report.plausibility_rejected ? last_good_cap_ : cap_raw;
    if (options_.variant == SystemVariant::Software) {
        if (report.plausibility_rejected) report.result.level = last_good_level_;
    } else {
        report.result.level = filter_.step(report.result.cap.cap_pf_q4);
        if (filter_in_hw)
            add_processing("filter & level (HW module)", 4.0 / p.system_clock_hz);
    }
    if (!report.plausibility_rejected) {
        have_last_good_ = true;
        last_good_candidate_ = candidate;
        last_good_cap_ = report.result.cap;
        last_good_level_ = report.result.level;
    }

    // --- Readback scrubbing in the remaining idle window --------------------
    inject_upsets_until(cycle_start_s + t);
    run_scrub_phase(report, cycle_start_s, t);

    report.level = static_cast<double>(report.result.level.level_q15) / 32768.0;
    report.capacitance_pf = static_cast<double>(report.result.cap.cap_pf_q4) / 16.0;
    ++cycles_run_;
    ++stats_.cycles;
    if (report.fallback || report.plausibility_rejected || report.fabric_corrupted)
        ++stats_.degraded_cycles;

    if (options_.recorder != nullptr && options_.recorder->enabled()) {
        obs::MetricRegistry& m = options_.recorder->metrics();
        m.add(obs_ids_.cycles);
        m.add(obs_ids_.model_sampling_s, report.sampling_s);
        m.add(obs_ids_.model_processing_s, report.processing_s);
        m.add(obs_ids_.model_reconfig_s, report.reconfig_s);
        m.add(obs_ids_.model_scrub_s, report.scrub_s + report.repair_s);
        if (report.fallback) m.add(obs_ids_.fallback);
        if (report.plausibility_rejected) m.add(obs_ids_.rejected);
        if (report.fabric_corrupted) m.add(obs_ids_.corrupted);
        if (report.upsets_detected > 0)
            m.add(obs_ids_.upsets, report.upsets_detected);
        if (report.columns_repaired > 0)
            m.add(obs_ids_.repairs, report.columns_repaired);
    }
    return report;
}

// ---------------------------------------------------------------------------
// Structural system netlist
// ---------------------------------------------------------------------------

SystemNetlist build_system_netlist(const SystemNetlistOptions& options) {
    using netlist::Builder;
    using netlist::Bus;
    using netlist::NetId;
    const AppParams& p = options.params;

    SystemNetlist sys;
    sys.static_part = netlist::PartitionId{0};
    sys.amp_part = sys.nl.add_partition("amp_phase");
    sys.cap_part = sys.nl.add_partition("capacity");
    sys.filt_part = sys.nl.add_partition("filter");

    const Bus clk_port = sys.nl.add_input_port("clk", 1);
    Builder b(sys.nl, clk_port[0]);

    // ---- static area --------------------------------------------------------
    const Bus meas_in = sys.nl.add_input_port("adc_meas", p.sample_bits);
    const Bus ref_in = sys.nl.add_input_port("adc_ref", p.sample_bits);
    const Bus valid_in = sys.nl.add_input_port("adc_valid", 1);
    const Bus clear_in = sys.nl.add_input_port("window_clear", 1);
    const Bus chan_in = sys.nl.add_input_port("chan_sel", 1);
    const Bus tick16 = sys.nl.add_input_port("tick_16mhz", 1);

    if (options.include_soft_ip) soc::emit_static_soft_ip(b, options.soft_ip);

    const SinusGeneratorIo sinus = make_sinus_generator(b, tick16[0], p);
    sys.nl.add_output_port("dac_code", sinus.code8);
    sys.nl.add_output_port("dac_ds_bit", Bus{sinus.ds_bit});

    const AdcInterfaceIo adc = make_adc_interface(b, meas_in, ref_in, valid_in[0], p);

    // ---- amp/phase module (reconfigurable) ----------------------------------
    // All boundary signals pass through slice-based bus macros. When a module
    // is not resident, its result staging is tied off (the slot is empty).
    Bus amp_back;
    if (options.include_amp) {
        Bus amp_in_m = reconfig::bus_macro(b, adc.meas, sys.static_part,
                                           sys.amp_part, "meas");
        Bus amp_in_r = reconfig::bus_macro(b, adc.ref, sys.static_part,
                                           sys.amp_part, "ref");
        Bus amp_ctrl = reconfig::bus_macro(
            b, Bus{adc.valid, clear_in[0], chan_in[0]}, sys.static_part,
            sys.amp_part, "ctl");
        sys.nl.set_current_partition(sys.amp_part);
        const AmpPhaseIo amp = make_amp_phase(b, amp_in_m, amp_in_r, amp_ctrl[0],
                                              amp_ctrl[1], amp_ctrl[2], p);
        // Results return to the static side and are registered there (the
        // module can be swapped out afterwards).
        amp_back = reconfig::bus_macro(
            b, Builder::concat(Builder::concat(amp.amp, amp.phase), Bus{amp.done}),
            sys.amp_part, sys.static_part, "ampres");
    } else {
        amp_back = b.constant(0, 16 + p.angle_bits + 1);
    }
    sys.nl.set_current_partition(sys.static_part);
    const Bus amp_store = b.reg(amp_back, NetId{}, "amp_store");
    const Bus amp_m_s = Builder::slice(amp_store, 0, 16);
    const Bus ph_m_s = Builder::slice(amp_store, 16, p.angle_bits);
    const NetId done_s = amp_store[16 + static_cast<std::size_t>(p.angle_bits)];
    sys.nl.add_output_port("window_done", Bus{done_s});
    // Second channel registers (static side latches both channel readouts).
    const Bus amp_r_s = b.reg(amp_m_s, NetId{}, "amp_r_store");
    const Bus ph_r_s = b.reg(ph_m_s, NetId{}, "ph_r_store");

    // ---- capacity module ----------------------------------------------------
    Bus cap_back;
    if (options.include_capacity) {
        const Bus cap_in = reconfig::bus_macro(
            b,
            Builder::concat(Builder::concat(amp_m_s, ph_m_s),
                            Builder::concat(amp_r_s, ph_r_s)),
            sys.static_part, sys.cap_part, "capin");
        sys.nl.set_current_partition(sys.cap_part);
        const CapacityIo cap = make_capacity(
            b, Builder::slice(cap_in, 0, 16),
            Builder::slice(cap_in, 16, p.angle_bits),
            Builder::slice(cap_in, 16 + p.angle_bits, 16),
            Builder::slice(cap_in, 32 + p.angle_bits, p.angle_bits), p);
        cap_back = reconfig::bus_macro(b, cap.cap_pf_q4, sys.cap_part,
                                       sys.static_part, "capres");
    } else {
        cap_back = b.constant(0, 16);
    }
    sys.nl.set_current_partition(sys.static_part);
    const Bus cap_store = b.reg(cap_back, NetId{}, "cap_store");
    sys.nl.add_output_port("capacity_q4", cap_store);

    // ---- filter module ------------------------------------------------------
    Bus filt_back;
    if (options.include_filter) {
        Bus filt_in = reconfig::bus_macro(b, Builder::concat(cap_store, Bus{done_s}),
                                          sys.static_part, sys.filt_part, "filtin");
        sys.nl.set_current_partition(sys.filt_part);
        const FilterIo filt = make_filter(b, Builder::slice(filt_in, 0, 16),
                                          filt_in[16], p);
        filt_back = reconfig::bus_macro(
            b, Builder::concat(filt.level_q15, Bus{filt.alarm_high, filt.alarm_low}),
            sys.filt_part, sys.static_part, "filtres");
    } else {
        filt_back = b.constant(0, 18);
    }
    sys.nl.set_current_partition(sys.static_part);
    const Bus level_store = b.reg(filt_back, NetId{}, "level_store");
    sys.nl.add_output_port("level_q15", Builder::slice(level_store, 0, 16));
    sys.nl.add_output_port("alarms", Builder::slice(level_store, 16, 2));

    return sys;
}

}  // namespace refpga::app
