#include "refpga/app/hw_modules.hpp"

#include <cmath>

#include "refpga/app/tables.hpp"
#include "refpga/common/contracts.hpp"

namespace refpga::app {

using netlist::Builder;
using netlist::Bus;
using netlist::NetId;

namespace {

/// Arithmetic shift right by a constant: free rewiring on the fabric.
Bus shr_arith(Builder& b, const Bus& a, int k) {
    REFPGA_EXPECTS(k >= 0 && k < static_cast<int>(a.size()));
    return b.sign_extend(Builder::slice(a, k, static_cast<int>(a.size()) - k),
                         static_cast<int>(a.size()));
}

/// Table contents encoded for rom_lut (two's complement words).
std::vector<std::uint32_t> encode_table(const std::vector<std::int32_t>& values,
                                        int bits) {
    std::vector<std::uint32_t> words;
    words.reserve(values.size());
    for (const std::int32_t v : values) words.push_back(encode_signed(v, bits));
    return words;
}

}  // namespace

// ---------------------------------------------------------------------------
// Sinus generator (Fig. 3)
// ---------------------------------------------------------------------------

SinusGeneratorIo make_sinus_generator(Builder& b, NetId tick, const AppParams& params) {
    b.push_scope("sinusgen");

    // 5-bit address counter at the 16 MHz tick; 32-entry unsigned sine LUT
    // at 0.8 full scale (second-order modulators overload near full scale).
    const Bus addr = b.counter(5, tick, "addr");
    const Bus code8 = b.rom_lut(addr, sinus_dac_codes(), 8, "sine");

    // Second-order delta-sigma modulator (CIFB): u = code8 - 128, which in
    // two's complement is just an inverted MSB (one LUT instead of a
    // subtractor); feedback +-128; 14/16-bit integrators.
    Bus u = Builder::slice(code8, 0, 7);
    u.push_back(b.not_(code8[7]));
    const Bus u14 = b.sign_extend(u, 14);

    // s2's sign decides the output bit: out = !sign(s2) (s2 >= 0 -> +1).
    // s2 integrates the *updated* s1 (classic CIFB ordering).
    Bus s1_q;
    NetId out_bit{};
    (void)b.feedback_reg(
        16,
        [&](const Bus& s2) {
            out_bit = b.not_(s2.back());  // 1 when s2 >= 0
            Bus s1_next;
            s1_q = b.feedback_reg(
                14,
                [&](const Bus& s1) {
                    // s1' = s1 + u - fb, fb = out ? +128 : -128
                    const Bus t = b.add(s1, u14);
                    s1_next = b.addsub(t, b.constant(128, 14), out_bit);
                    return s1_next;
                },
                tick, "s1");
            // s2' = s2 + s1' - fb
            const Bus t = b.add(s2, b.sign_extend(s1_next, 16));
            return b.addsub(t, b.constant(128, 16), out_bit);
        },
        tick, "s2");

    SinusGeneratorIo io;
    io.code8 = code8;
    io.ds_bit = out_bit;
    b.pop_scope();
    (void)params;
    return io;
}

SinusGenModel::SinusGenModel(const AppParams&) {
    for (const std::uint32_t code : sinus_dac_codes())
        table_.push_back(static_cast<std::int32_t>(code));
}

SinusGenModel::Step SinusGenModel::step() {
    Step out;
    out.code8 = static_cast<std::uint32_t>(table_[addr_]);
    std::uint8_t bit = 0;
    run_block_bits(1, &bit);
    out.ds_bit = bit != 0;
    return out;
}

template <bool kEmitBits>
void SinusGenModel::run_block(std::size_t n, std::uint8_t* out) {
    // Fused phase/LUT/modulator batch: the 32-entry table pointer, address
    // and both integrators stay in registers for the whole block. Arithmetic
    // mirrors the netlist exactly (out bit from current s2; s2 integrates
    // the new s1; integrators wrap at 14/16 bits via decode_signed).
    const std::int32_t* table = table_.data();
    std::uint32_t addr = addr_;
    std::int32_t s1 = s1_;
    std::int32_t s2 = s2_;
    for (std::size_t i = 0; i < n; ++i) {
        const std::int32_t code8 = table[addr];
        const bool bit = s2 >= 0;
        const std::int32_t u = code8 - 128;
        const std::int32_t fb = bit ? 128 : -128;
        s1 = decode_signed(static_cast<std::uint32_t>(s1 + u - fb), 14);
        s2 = decode_signed(static_cast<std::uint32_t>(s2 + s1 - fb), 16);
        out[i] = kEmitBits ? static_cast<std::uint8_t>(bit)
                           : static_cast<std::uint8_t>(code8);
        addr = (addr + 1) & 31;
    }
    addr_ = addr;
    s1_ = s1;
    s2_ = s2;
}

void SinusGenModel::run_block_bits(std::size_t n, std::uint8_t* bits) {
    run_block<true>(n, bits);
}

void SinusGenModel::run_block_codes(std::size_t n, std::uint8_t* codes) {
    run_block<false>(n, codes);
}

// ---------------------------------------------------------------------------
// Amplitude & phase module
// ---------------------------------------------------------------------------

namespace {

/// One I/Q accumulator pair for a channel.
struct MacPair {
    Bus acc_i;
    Bus acc_q;
};

MacPair make_mac(Builder& b, const Bus& sample, const Bus& sin_v, const Bus& cos_v,
                 NetId valid, NetId clear, const AppParams& params,
                 const std::string& name) {
    b.push_scope(name);
    const int prod_bits = params.sample_bits + params.table_bits;
    const NetId ce = b.or_(valid, clear);

    auto accumulator = [&](const Bus& table_v, const std::string& lane) {
        const Bus prod = b.mul_mult18(sample, table_v, prod_bits, 0, lane + "_mul");
        const Bus prod_ext = b.sign_extend(prod, params.acc_bits);
        return b.feedback_reg(
            params.acc_bits,
            [&](const Bus& acc) {
                const Bus sum = b.add(acc, prod_ext);
                // clear: load the fresh product alone (first sample of window)
                return b.mux_bus(clear, sum, prod_ext);
            },
            ce, lane + "_acc");
    };
    MacPair pair;
    pair.acc_i = accumulator(cos_v, "i");
    pair.acc_q = accumulator(sin_v, "q");
    b.pop_scope();
    return pair;
}

}  // namespace

AmpPhaseIo make_amp_phase(Builder& b, const Bus& meas, const Bus& ref, NetId valid,
                          NetId clear, NetId chan_sel, const AppParams& params) {
    REFPGA_EXPECTS(meas.size() == static_cast<std::size_t>(params.sample_bits));
    REFPGA_EXPECTS(ref.size() == meas.size());
    b.push_scope("ampphase");

    // DDS phase accumulator: addr' = clear ? 0 : addr + bin (mod window).
    const int addr_bits = static_cast<int>(std::lround(std::log2(params.window)));
    REFPGA_EXPECTS((1 << addr_bits) == params.window);
    const NetId ce = b.or_(valid, clear);
    const Bus addr = b.feedback_reg(
        addr_bits,
        [&](const Bus& a) {
            const Bus next = b.add(a, b.constant(static_cast<std::uint64_t>(params.bin),
                                                 addr_bits));
            return b.mux_bus(clear, next, b.constant(0, addr_bits));
        },
        ce, "dds");

    // Shared sin/cos ROMs.
    const Bus sin_v = b.rom_lut(addr, encode_table(sine_table(params.window,
                                                              params.table_bits),
                                                   params.table_bits),
                                params.table_bits, "sinrom");
    const Bus cos_v = b.rom_lut(addr, encode_table(cosine_table(params.window,
                                                                params.table_bits),
                                                   params.table_bits),
                                params.table_bits, "cosrom");

    // Per-channel MACs.
    const MacPair mac_m = make_mac(b, meas, sin_v, cos_v, valid, clear, params, "meas");
    const MacPair mac_r = make_mac(b, ref, sin_v, cos_v, valid, clear, params, "ref");

    // Sample counter: done after N valid samples.
    const Bus count = b.feedback_reg(
        addr_bits + 1,
        [&](const Bus& c) {
            return b.mux_bus(clear, b.increment(c), b.constant(0, addr_bits + 1));
        },
        ce, "count");
    const NetId done = count.back();  // bit N: counted 2^addr_bits samples

    // Channel-multiplexed CORDIC: truncate accumulators, select channel.
    auto lane_in = [&](const Bus& acc) {
        return Builder::slice(acc, params.acc_shift,
                              params.acc_bits - params.acc_shift);
    };
    REFPGA_EXPECTS(params.acc_bits - params.acc_shift == params.cordic_bits);
    Bus x = b.mux_bus(chan_sel, lane_in(mac_m.acc_i), lane_in(mac_r.acc_i));
    Bus y = b.mux_bus(chan_sel, lane_in(mac_m.acc_q), lane_in(mac_r.acc_q));

    // Pre-rotation: x < 0 => negate both lanes, z0 = half turn.
    const NetId sign_x = x.back();
    x = b.mux_bus(sign_x, x, b.negate(x));
    y = b.mux_bus(sign_x, y, b.negate(y));
    Bus z = b.constant(0, params.angle_bits);
    z.back() = sign_x;  // +pi == -pi mod 2^bits

    const auto atan_t = cordic_atan_table(params.cordic_stages, params.angle_bits);
    for (int i = 0; i < params.cordic_stages; ++i) {
        b.push_scope("cordic" + std::to_string(i));
        const NetId sign_y = y.back();  // 1 when y < 0
        const Bus xs = shr_arith(b, x, i);
        const Bus ys = shr_arith(b, y, i);
        // y >= 0: x += ys, y -= xs, z += atan; y < 0: mirrored.
        const Bus nx = b.addsub(x, ys, sign_y);
        const Bus ny = b.addsub(y, xs, b.not_(sign_y));
        const Bus nz =
            b.addsub(z,
                     b.constant(static_cast<std::uint64_t>(
                                    atan_t[static_cast<std::size_t>(i)]),
                                params.angle_bits),
                     sign_y);
        x = nx;
        y = ny;
        z = nz;
        b.pop_scope();
    }

    // Gain correction: amp = (x * invK) >> 15, 16-bit.
    const std::int32_t inv_k = cordic_inv_gain_q15(params.cordic_stages);
    const Bus inv_k_bus = b.constant(static_cast<std::uint64_t>(inv_k), 16);
    const Bus amp = b.mul_mult18(x, inv_k_bus, 16, 15, "gain");

    AmpPhaseIo io;
    io.done = done;
    io.amp = amp;
    io.phase = z;
    b.pop_scope();
    return io;
}

// ---------------------------------------------------------------------------
// Capacity module
// ---------------------------------------------------------------------------

CapacityIo make_capacity(Builder& b, const Bus& amp_m, const Bus& ph_m,
                         const Bus& amp_r, const Bus& ph_r, const AppParams& params) {
    REFPGA_EXPECTS(amp_m.size() == 16 && amp_r.size() == 16);
    REFPGA_EXPECTS(ph_m.size() == static_cast<std::size_t>(params.angle_bits));
    REFPGA_EXPECTS(ph_r.size() == ph_m.size());
    b.push_scope("capacity");

    // Unrolled restoring division: ratio = (amp_m << frac) / amp_r.
    const int dividend_bits = 16 + params.ratio_frac_bits;  // 28
    Bus quotient;  // filled LSB-first at the end
    std::vector<NetId> q_bits_msb_first;
    Bus remainder = b.constant(0, 17);
    const Bus divisor = b.zero_extend(amp_r, 18);
    for (int i = dividend_bits - 1; i >= 0; --i) {
        b.push_scope("div" + std::to_string(i));
        // R' = (R << 1) | dividend_bit_i; dividend = amp_m << frac.
        const NetId in_bit = (i >= params.ratio_frac_bits)
                                 ? amp_m[static_cast<std::size_t>(
                                       i - params.ratio_frac_bits)]
                                 : b.gnd();
        Bus shifted;
        shifted.push_back(in_bit);
        shifted.insert(shifted.end(), remainder.begin(), remainder.end());  // 18 bits
        const Bus trial = b.sub(shifted, divisor);
        const NetId borrow = trial.back();  // 1 => R' < divisor
        q_bits_msb_first.push_back(b.not_(borrow));
        remainder = Builder::slice(b.mux_bus(borrow, trial, shifted), 0, 17);
        b.pop_scope();
    }
    // Saturate: if any quotient bit above ratio_bits is set, force all-ones.
    NetId overflow = b.gnd();
    for (int i = 0; i < dividend_bits - params.ratio_bits; ++i)
        overflow = b.or_(overflow, q_bits_msb_first[static_cast<std::size_t>(i)]);
    Bus ratio;
    for (int i = 0; i < params.ratio_bits; ++i) {
        const NetId bit =
            q_bits_msb_first[static_cast<std::size_t>(dividend_bits - 1 - i)];
        ratio.push_back(b.or_(bit, overflow));
    }

    // cos(delta phi) lookup on the top 8 phase-difference bits.
    const Bus dphi = b.sub(ph_m, ph_r);
    const Bus cos_addr = Builder::slice(dphi, params.angle_bits - 8, 8);
    const Bus cos_v = b.rom_lut(
        cos_addr,
        encode_table(cosine_table(256, params.cos_table_bits), params.cos_table_bits),
        params.cos_table_bits, "cosrom");

    // c_rel = (ratio * cos) >> 11, clamped at 0 (16-bit slice, sign checked).
    const Bus ratio_s = b.zero_extend(ratio, params.ratio_bits + 1);  // non-negative
    const Bus c_rel_raw = b.mul_mult18(ratio_s, cos_v, 16, 11, "rel");
    const NetId neg = c_rel_raw.back();
    const Bus c_rel = b.mux_bus(neg, c_rel_raw, b.constant(0, 16));

    // cap_pf_q4 = (c_rel * c_ref_q4) >> 12, 16-bit (no saturation needed for
    // the calibrated constants; a 17th bit guard is still checked).
    const Bus c_ref_bus =
        b.constant(static_cast<std::uint64_t>(params.c_ref_q4()), 13);
    const Bus cap_raw = b.mul_mult18(c_rel, c_ref_bus, 17, 12, "scale");
    const NetId sat = cap_raw.back();
    const Bus cap =
        b.mux_bus(sat, Builder::slice(cap_raw, 0, 16), b.constant(0xFFFF, 16));

    CapacityIo io;
    io.ratio_q12 = ratio;
    io.cap_pf_q4 = cap;
    b.pop_scope();
    return io;
}

// ---------------------------------------------------------------------------
// Filter & level module
// ---------------------------------------------------------------------------

FilterIo make_filter(Builder& b, const Bus& cap, NetId cap_valid,
                     const AppParams& params) {
    REFPGA_EXPECTS(cap.size() == 16);
    b.push_scope("filter");

    // Median-3 over the incoming sample plus two history registers: the
    // median that feeds the EMA update on a given clock edge includes the
    // sample being latched on that edge (matches the golden stream exactly).
    const Bus h0 = b.reg(cap, cap_valid, "h0");
    const Bus h1 = b.reg(h0, cap_valid, "h1");

    auto min_u = [&](const Bus& p, const Bus& q) {
        return b.mux_bus(b.lt_unsigned(p, q), q, p);
    };
    auto max_u = [&](const Bus& p, const Bus& q) {
        return b.mux_bus(b.lt_unsigned(p, q), p, q);
    };
    const Bus median = max_u(min_u(cap, h0), min_u(max_u(cap, h0), h1));

    // EMA: y' = y + (median - y) >> k, on 17-bit signed lanes.
    Bus ema16;
    ema16 = b.feedback_reg(
        16,
        [&](const Bus& y) {
            const Bus y17 = b.zero_extend(y, 17);
            const Bus m17 = b.zero_extend(median, 17);
            const Bus diff = b.sub(m17, y17);
            const Bus step = shr_arith(b, diff, params.ema_shift);
            return Builder::slice(b.add(y17, step), 0, 16);
        },
        cap_valid, "ema");

    // Linearization: level = clamp(((ema - c_empty) * slope) >> 10, 0, 32767).
    const Bus ema17 = b.zero_extend(ema16, 17);
    const Bus delta_raw =
        b.sub(ema17, b.constant(static_cast<std::uint64_t>(params.c_empty_q4()), 17));
    const NetId below = delta_raw.back();
    const Bus delta = b.mux_bus(below, delta_raw, b.constant(0, 17));

    const int span = params.c_full_q4() - params.c_empty_q4();
    const std::int64_t slope = (32768LL * 1024 + span / 2) / span;
    // 14 bits: the multiplier treats operands as signed, so the constant
    // needs a clear sign bit on top of its 13 magnitude bits.
    const Bus slope_bus = b.constant(static_cast<std::uint64_t>(slope), 14);
    const Bus level_raw = b.mul_mult18(delta, slope_bus, 21, 10, "lin");
    // Clamp to Q15: any bit at/above 15 saturates.
    NetId over = b.gnd();
    for (std::size_t i = 15; i < level_raw.size(); ++i)
        over = b.or_(over, level_raw[i]);
    Bus level = b.mux_bus(over, Builder::slice(level_raw, 0, 15),
                          b.constant(32767, 15));
    level = b.zero_extend(level, 16);

    // Alarms.
    const NetId alarm_high = b.lt_unsigned(
        b.constant(static_cast<std::uint64_t>(params.level_alarm_high), 16), level);
    const NetId alarm_low = b.lt_unsigned(
        level, b.constant(static_cast<std::uint64_t>(params.level_alarm_low), 16));

    FilterIo io;
    io.level_q15 = level;
    io.alarm_high = alarm_high;
    io.alarm_low = alarm_low;
    io.ema = ema16;
    b.pop_scope();
    return io;
}

// ---------------------------------------------------------------------------
// ADC interface (static side)
// ---------------------------------------------------------------------------

AdcInterfaceIo make_adc_interface(Builder& b, const Bus& meas_in, const Bus& ref_in,
                                  NetId valid_in, const AppParams& params) {
    REFPGA_EXPECTS(meas_in.size() == static_cast<std::size_t>(params.sample_bits));
    REFPGA_EXPECTS(ref_in.size() == meas_in.size());
    b.push_scope("adc_if");
    AdcInterfaceIo io;
    io.meas = b.reg(meas_in, valid_in, "meas");
    io.ref = b.reg(ref_in, valid_in, "ref");
    // Valid is delayed one cycle to line up with the registered data.
    io.valid = b.ff(valid_in, NetId{}, "valid");
    b.pop_scope();
    return io;
}

}  // namespace refpga::app
