// Shared numeric parameters of the capacity-measurement pipeline.
//
// One struct used by the hardware generators, the bit-exact golden models,
// the soft-core software and the system orchestrator, so all four agree on
// widths, window sizes and scale factors.
#pragma once

#include <cstdint>

namespace refpga::app {

struct AppParams {
    // Clocks / rates.
    double system_clock_hz = 50e6;  ///< MicroBlaze + data-processing clock
    double modulator_hz = 16e6;     ///< delta-sigma DAC/ADC modulator rate
    double signal_hz = 500e3;       ///< excitation frequency (paper: 500 kHz)
    int adc_decimation = 5;         ///< PCM rate 3.2 MHz

    // Measurement window.
    int window = 256;  ///< N samples per window
    int bin = 40;      ///< correlation bin k = N * signal_hz / pcm_rate

    // Datapath widths.
    int sample_bits = 12;   ///< PCM sample width
    int table_bits = 10;    ///< sin/cos table width (signed)
    int acc_bits = 30;      ///< MAC accumulator width
    int acc_shift = 12;     ///< accumulator truncation before CORDIC
    int cordic_bits = 18;   ///< CORDIC x/y lane width
    int cordic_stages = 12;
    int angle_bits = 16;    ///< angle in turns: 2^16 = full circle

    // Capacity computation.
    int ratio_frac_bits = 12;  ///< amplitude ratio Q12
    int ratio_bits = 14;       ///< ratio word (saturating)
    int cos_table_bits = 12;   ///< cos table width (signed, Q11)
    double c_ref_pf = 220.0;   ///< must match the front end's reference cap
    double c_empty_pf = 60.0;
    double c_full_pf = 480.0;

    // Filter / level.
    int ema_shift = 3;          ///< EMA time constant 2^3 samples
    int level_bits = 15;        ///< level output Q15 in [0, 1)
    int level_alarm_high = 29491;  ///< ~90 %
    int level_alarm_low = 3277;    ///< ~10 %

    // Measurement schedule (Fig. 4): one full cycle every 100 ms.
    double cycle_period_s = 0.100;

    [[nodiscard]] double pcm_rate_hz() const { return modulator_hz / adc_decimation; }
    /// Capacity output scaling: pF in Q4.
    [[nodiscard]] int c_ref_q4() const { return static_cast<int>(c_ref_pf * 16.0); }
    [[nodiscard]] int c_empty_q4() const { return static_cast<int>(c_empty_pf * 16.0); }
    [[nodiscard]] int c_full_q4() const { return static_cast<int>(c_full_pf * 16.0); }
};

}  // namespace refpga::app
