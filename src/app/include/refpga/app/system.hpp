// Measurement-system orchestration: the three implementation variants the
// paper walks through, a full-cycle scheduler (Fig. 4), and the structural
// netlist used for floorplanning, Table 1 and the device-fit study.
//
// Variants:
//   Software       — original algorithms on the MicroBlaze (first prototype)
//   MonolithicHw   — all data-processing modules resident in fabric
//   ReconfiguredHw — one reconfigurable slot, modules loaded in sequence via
//                    the configuration port (the paper's final system)
#pragma once

#include <string>
#include <vector>

#include "refpga/analog/frontend.hpp"
#include "refpga/app/golden.hpp"
#include "refpga/app/hw_modules.hpp"
#include "refpga/app/params.hpp"
#include "refpga/app/software.hpp"
#include "refpga/netlist/netlist.hpp"
#include "refpga/reconfig/controller.hpp"
#include "refpga/soc/fabric_macros.hpp"

namespace refpga::app {

enum class SystemVariant { Software, MonolithicHw, ReconfiguredHw };

[[nodiscard]] const char* variant_name(SystemVariant variant);

struct SystemOptions {
    SystemVariant variant = SystemVariant::ReconfiguredHw;
    AppParams params;
    SoftwareConfig software;                       ///< Software variant only
    reconfig::ConfigPortSpec port;                 ///< ReconfiguredHw only
    fabric::PartName part = fabric::PartName::XC3S400;
    bool use_ds_dac = true;                        ///< internal delta-sigma DAC
    /// Tank output noise per channel (plant condition, swept by campaigns).
    double tank_noise_rms_v = 1e-3;
    /// Settling windows discarded before the measured window (analog filters
    /// and the CIC need to charge up).
    int settle_windows = 2;

    SystemOptions();
};

/// One scheduled activity within a measurement cycle (a Fig. 4 row).
struct CyclePhase {
    std::string name;
    double start_s = 0.0;
    double duration_s = 0.0;
};

struct CycleReport {
    golden::CycleResult result;
    double level = 0.0;           ///< filtered level in [0, 1]
    double capacitance_pf = 0.0;  ///< filtered capacitance estimate
    std::vector<CyclePhase> phases;
    double sampling_s = 0.0;
    double processing_s = 0.0;
    double reconfig_s = 0.0;

    [[nodiscard]] double busy_s() const {
        return sampling_s + processing_s + reconfig_s;
    }
};

/// Thread-safety: a MeasurementSystem instance is confined to one thread at
/// a time, but instances share no mutable state — distinct instances may run
/// on distinct threads concurrently (refpga::fleet relies on this).
class MeasurementSystem {
public:
    explicit MeasurementSystem(SystemOptions options, std::uint64_t noise_seed = 7);

    [[nodiscard]] const SystemOptions& options() const { return options_; }

    /// Ground-truth tank level for the next cycles.
    void set_true_level(double level);
    [[nodiscard]] double true_level() const;

    /// Runs one full measurement cycle (sampling -> processing [-> reconfig
    /// between stages]) and returns the report.
    CycleReport run_cycle();

    [[nodiscard]] const reconfig::ReconfigController& controller() const {
        return controller_;
    }
    [[nodiscard]] long cycles_run() const { return cycles_run_; }

private:
    void collect_window(std::vector<std::int32_t>& meas, std::vector<std::int32_t>& ref);

    SystemOptions options_;
    analog::FrontEnd frontend_;
    SinusGenModel sinusgen_;
    golden::FilterState filter_;
    reconfig::ReconfigController controller_;
    long cycles_run_ = 0;
};

/// Structural netlist of the complete system, partitioned into the static
/// area and the three reconfigurable modules, with all boundary crossings
/// going through bus macros.
struct SystemNetlist {
    netlist::Netlist nl;
    netlist::PartitionId static_part;
    netlist::PartitionId amp_part;
    netlist::PartitionId cap_part;
    netlist::PartitionId filt_part;
};

struct SystemNetlistOptions {
    AppParams params;
    soc::SoftIpBudgets soft_ip;  ///< static-area soft IP slice budgets
    bool include_soft_ip = true;
    /// Which reconfigurable modules are resident. The reconfigured system
    /// never hosts more than one at a time; the worst case resident set is
    /// {amp_phase} (the largest). Omitted modules are replaced by tied-off
    /// result staging so the netlist stays DRC-clean.
    bool include_amp = true;
    bool include_capacity = true;
    bool include_filter = true;
};

[[nodiscard]] SystemNetlist build_system_netlist(const SystemNetlistOptions& options = {});

}  // namespace refpga::app
