// Measurement-system orchestration: the three implementation variants the
// paper walks through, a full-cycle scheduler (Fig. 4), and the structural
// netlist used for floorplanning, Table 1 and the device-fit study.
//
// Variants:
//   Software       — original algorithms on the MicroBlaze (first prototype)
//   MonolithicHw   — all data-processing modules resident in fabric
//   ReconfiguredHw — one reconfigurable slot, modules loaded in sequence via
//                    the configuration port (the paper's final system)
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "refpga/analog/frontend.hpp"
#include "refpga/analog/sample_block.hpp"
#include "refpga/app/golden.hpp"
#include "refpga/app/hw_modules.hpp"
#include "refpga/app/params.hpp"
#include "refpga/app/software.hpp"
#include "refpga/fault/fault.hpp"
#include "refpga/netlist/netlist.hpp"
#include "refpga/obs/obs.hpp"
#include "refpga/reconfig/controller.hpp"
#include "refpga/reconfig/scrubber.hpp"
#include "refpga/soc/fabric_macros.hpp"

namespace refpga::app {

enum class SystemVariant { Software, MonolithicHw, ReconfiguredHw };

[[nodiscard]] const char* variant_name(SystemVariant variant);

struct SystemOptions {
    SystemVariant variant = SystemVariant::ReconfiguredHw;
    AppParams params;
    SoftwareConfig software;                       ///< Software variant only
    reconfig::ConfigPortSpec port;                 ///< ReconfiguredHw only
    fabric::PartName part = fabric::PartName::XC3S400;
    bool use_ds_dac = true;                        ///< internal delta-sigma DAC
    /// Tank output noise per channel (plant condition, swept by campaigns).
    double tank_noise_rms_v = 1e-3;
    /// Settling windows discarded before the measured window (analog filters
    /// and the CIC need to charge up).
    int settle_windows = 2;
    /// Modulator ticks advanced per front-end block in the sampling phase.
    /// Any positive value yields bit-identical PCM, cycle reports and
    /// campaign reports (pinned by tests/test_frontend_stream); larger
    /// blocks amortize per-call state marshalling over more ticks. 0 selects
    /// the retained per-sample reference path (parity baseline, slow).
    int stream_block_ticks = 4096;

    /// Fault environment (refpga::fault). The default all-zero spec injects
    /// nothing and the results stay bit-identical to the fault-free system;
    /// verify-after-write readback on loads is armed only when the spec
    /// injects faults, so the paper's Fig. 4 numbers are untouched.
    fault::FaultSpec fault;
    /// Extra load attempts when verification or the flash fetch fails.
    int load_max_retries = 2;
    /// Fraction of the cycle's idle window donated to readback scrubbing
    /// (Fig. 4 leaves ~29 ms idle per 100 ms cycle on the JCAP system).
    double scrub_idle_fraction = 0.5;
    /// Plausibility guard (armed, like load verification, only when `fault`
    /// injects something): largest credible level change per cycle. A larger
    /// jump holds the last-good value instead (counted as a rejection).
    double max_level_jump = 0.25;
    /// Consecutive rejections after which the guard yields — a persistent
    /// "implausible" reading is a real step change, not a transient fault.
    int plausibility_patience = 2;

    /// Observability sink (refpga::obs); the system's obs toggle. nullptr —
    /// the default — leaves every instrumentation site as a single null
    /// check (bench_obs_overhead gates this at <= 2% on the streaming
    /// path). When set, run_cycle records cycle.* metrics and phase spans
    /// and propagates the recorder to the front end and the reconfiguration
    /// controller. Non-owning: the recorder must outlive the system; safe
    /// to share one recorder across systems (all sinks are thread-safe).
    obs::Recorder* recorder = nullptr;

    SystemOptions();
};

/// One scheduled activity within a measurement cycle (a Fig. 4 row).
struct CyclePhase {
    std::string name;
    double start_s = 0.0;
    double duration_s = 0.0;
};

struct CycleReport {
    golden::CycleResult result;
    double level = 0.0;           ///< filtered level in [0, 1]
    double capacitance_pf = 0.0;  ///< filtered capacitance estimate
    std::vector<CyclePhase> phases;
    double sampling_s = 0.0;
    double processing_s = 0.0;
    double reconfig_s = 0.0;
    double scrub_s = 0.0;   ///< readback scrubbing in the idle window
    double repair_s = 0.0;  ///< column rewrites for detected upsets

    // Self-healing outcome of this cycle.
    int upsets_detected = 0;
    int columns_repaired = 0;
    bool plausibility_rejected = false;  ///< level held at last-good value
    bool fallback = false;  ///< served by the resident software path
    bool fabric_corrupted = false;  ///< processed while columns were bad

    [[nodiscard]] double busy_s() const {
        return sampling_s + processing_s + reconfig_s + scrub_s + repair_s;
    }
};

/// Thread-safety: a MeasurementSystem instance is confined to one thread at
/// a time, but instances share no mutable state — distinct instances may run
/// on distinct threads concurrently (refpga::fleet relies on this).
class MeasurementSystem {
public:
    explicit MeasurementSystem(SystemOptions options, std::uint64_t noise_seed = 7);

    // The configuration memory and scrubber hold references into this
    // object, so it is pinned to its construction address.
    MeasurementSystem(const MeasurementSystem&) = delete;
    MeasurementSystem& operator=(const MeasurementSystem&) = delete;

    [[nodiscard]] const SystemOptions& options() const { return options_; }

    /// Ground-truth tank level for the next cycles.
    void set_true_level(double level);
    [[nodiscard]] double true_level() const;

    /// Runs one full measurement cycle (sampling -> processing [-> reconfig
    /// between stages]) and returns the report. Uses an internal sample
    /// block, grown once and reused across cycles.
    CycleReport run_cycle();

    /// Same, streaming the sample window through a caller-owned block —
    /// refpga::fleet passes one per worker thread so campaign scenarios
    /// share buffers instead of reallocating. The block is scratch: its
    /// contents are overwritten and carry no state between calls.
    CycleReport run_cycle(analog::SampleBlock& block);

    [[nodiscard]] const reconfig::ReconfigController& controller() const {
        return controller_;
    }
    [[nodiscard]] const reconfig::ConfigMemory& config_memory() const {
        return config_mem_;
    }
    [[nodiscard]] const fault::FaultStats& fault_stats() const { return stats_; }
    [[nodiscard]] long cycles_run() const { return cycles_run_; }

private:
    void collect_window(analog::SampleBlock& block, std::vector<std::int32_t>& meas,
                        std::vector<std::int32_t>& ref);
    void inject_upsets_until(double t_s);
    void apply_glitch(const fault::Glitch& glitch, std::vector<std::int32_t>& meas,
                      std::vector<std::int32_t>& ref);
    [[nodiscard]] double level_candidate(std::uint32_t cap_pf_q4) const;
    [[nodiscard]] double fallback_processing_s(
        const std::vector<std::int32_t>& meas, const std::vector<std::int32_t>& ref);
    void run_scrub_phase(CycleReport& report, double cycle_start_s, double& t);

    SystemOptions options_;
    analog::FrontEnd frontend_;
    SinusGenModel sinusgen_;
    golden::FilterState filter_;
    fabric::Device device_;
    reconfig::ReconfigController controller_;
    reconfig::ConfigMemory config_mem_;  // references device_
    reconfig::Scrubber scrubber_;        // references config_mem_
    fault::FaultPlan plan_;
    fault::FaultStats stats_;
    analog::SampleBlock block_;  ///< default streaming buffers for run_cycle()
    long cycles_run_ = 0;

    // Self-healing state.
    std::map<int, double> pending_upsets_;  ///< column -> earliest hit time
    int scrub_cursor_ = 0;
    bool have_last_good_ = false;
    double last_good_candidate_ = 0.0;
    golden::CapacityResult last_good_cap_{};
    golden::FilterState::Output last_good_level_{};
    int reject_streak_ = 0;
    std::optional<double> fallback_s_;  ///< cached software-path timing

    // Observability ids, interned once at construction (empty/invalid when
    // options_.recorder is null).
    struct ObsIds {
        obs::MetricId cycles, fallback, rejected, corrupted, upsets, repairs;
        obs::MetricId model_sampling_s, model_processing_s, model_reconfig_s,
            model_scrub_s;
        obs::MetricId wall, sample_wall, swap_wall;
        std::uint32_t span_cycle = 0, span_sample = 0, span_process = 0,
                      span_swap = 0;
    } obs_ids_;
};

/// Structural netlist of the complete system, partitioned into the static
/// area and the three reconfigurable modules, with all boundary crossings
/// going through bus macros.
struct SystemNetlist {
    netlist::Netlist nl;
    netlist::PartitionId static_part;
    netlist::PartitionId amp_part;
    netlist::PartitionId cap_part;
    netlist::PartitionId filt_part;
};

struct SystemNetlistOptions {
    AppParams params;
    soc::SoftIpBudgets soft_ip;  ///< static-area soft IP slice budgets
    bool include_soft_ip = true;
    /// Which reconfigurable modules are resident. The reconfigured system
    /// never hosts more than one at a time; the worst case resident set is
    /// {amp_phase} (the largest). Omitted modules are replaced by tied-off
    /// result staging so the netlist stays DRC-clean.
    bool include_amp = true;
    bool include_capacity = true;
    bool include_filter = true;
};

[[nodiscard]] SystemNetlist build_system_netlist(const SystemNetlistOptions& options = {});

}  // namespace refpga::app
