// Bit-exact golden models of the data-processing pipeline.
//
// These integer models define the reference semantics the hardware netlists
// must match exactly (tests assert equality) and the soft-core software
// implements instruction by instruction. All arithmetic is two's-complement
// with the widths in AppParams; wrap/truncate behaviour mirrors the fabric.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "refpga/app/params.hpp"

namespace refpga::app::golden {

/// MAC stage output: I/Q correlation accumulators for both channels.
struct WindowAccumulators {
    std::int32_t i_meas = 0;
    std::int32_t q_meas = 0;
    std::int32_t i_ref = 0;
    std::int32_t q_ref = 0;
};

/// Correlates one window of PCM samples against the k-bin sin/cos tables
/// (DDS phase accumulator, exactly as the hardware does).
[[nodiscard]] WindowAccumulators accumulate_window(std::span<const std::int32_t> meas,
                                                   std::span<const std::int32_t> ref,
                                                   const AppParams& params);

struct ChannelResult {
    std::uint32_t amplitude = 0;  ///< 16-bit
    std::uint32_t phase = 0;      ///< angle_bits-bit turns
};

/// CORDIC vectoring + gain correction on truncated accumulators.
[[nodiscard]] ChannelResult amp_phase(std::int32_t acc_i, std::int32_t acc_q,
                                      const AppParams& params);

/// Raw CORDIC vectoring (exposed for unit tests): returns {magnitude, angle}.
struct CordicVector {
    std::int32_t magnitude = 0;
    std::uint32_t angle = 0;
};
[[nodiscard]] CordicVector cordic_vector(std::int32_t x, std::int32_t y,
                                         const AppParams& params);

/// Unsigned restoring division: floor((num << frac_bits) / den), saturated to
/// `out_bits`. den == 0 saturates.
[[nodiscard]] std::uint32_t divide_sat(std::uint32_t num, std::uint32_t den,
                                       int frac_bits, int out_bits);

struct CapacityResult {
    std::uint32_t ratio_q12 = 0;   ///< amplitude ratio, saturating Q12
    std::int32_t cos_q11 = 0;      ///< cos(delta phase) from the table
    std::uint32_t cap_pf_q4 = 0;   ///< capacitance in pF, Q4
};

/// Capacity from the two channels' amplitude/phase: C = C_ref * r * cos(dphi).
[[nodiscard]] CapacityResult capacity(const ChannelResult& meas,
                                      const ChannelResult& ref,
                                      const AppParams& params);

/// Streaming filter/level state (median-3 + EMA + linearization).
class FilterState {
public:
    explicit FilterState(const AppParams& params) : params_(params) {}

    struct Output {
        std::uint32_t level_q15 = 0;
        bool alarm_high = false;
        bool alarm_low = false;
    };

    /// Consumes one capacity sample (pF Q4), returns the filtered level.
    Output step(std::uint32_t cap_pf_q4);

    [[nodiscard]] std::uint32_t ema() const { return ema_; }

private:
    AppParams params_;
    std::uint32_t history_[3] = {0, 0, 0};
    std::uint32_t ema_ = 0;
};

/// Full pipeline over one window (the per-cycle result): PCM in, level out.
struct CycleResult {
    ChannelResult meas;
    ChannelResult ref;
    CapacityResult cap;
    FilterState::Output level;
};
[[nodiscard]] CycleResult process_window(std::span<const std::int32_t> meas,
                                         std::span<const std::int32_t> ref,
                                         FilterState& filter, const AppParams& params);

/// Level slope for the linearization step: Q10 multiplier such that
/// level_q15 = ((cap - c_empty) * slope) >> 10, clamped.
[[nodiscard]] std::int32_t level_slope_q10(const AppParams& params);

}  // namespace refpga::app::golden
