// Lookup-table contents shared by hardware generators, golden models and the
// soft-core software (single source of truth for bit-exactness).
#pragma once

#include <cstdint>
#include <vector>

#include "refpga/app/params.hpp"

namespace refpga::app {

/// Signed sine table: entry i = round((2^(bits-1) - 1) * sin(2*pi*i / size)).
[[nodiscard]] std::vector<std::int32_t> sine_table(int size, int bits);

/// Signed cosine table with the same scaling.
[[nodiscard]] std::vector<std::int32_t> cosine_table(int size, int bits);

/// 32-entry unsigned 8-bit DAC code table for the sinus generator: sine at
/// 0.8 of full scale (second-order delta-sigma modulators overload near
/// full-scale inputs), centred on 128.
[[nodiscard]] std::vector<std::uint32_t> sinus_dac_codes();

/// CORDIC arc-tangent constants in angle turns:
/// entry i = round(atan(2^-i) / (2*pi) * 2^angle_bits).
[[nodiscard]] std::vector<std::int32_t> cordic_atan_table(int stages, int angle_bits);

/// Inverse CORDIC gain 1/K in Q15 for the given stage count.
[[nodiscard]] std::int32_t cordic_inv_gain_q15(int stages);

/// Two's-complement encode of a signed value into `bits` bits.
[[nodiscard]] std::uint32_t encode_signed(std::int32_t value, int bits);
/// Sign-extend the low `bits` bits of a word.
[[nodiscard]] std::int32_t decode_signed(std::uint32_t word, int bits);

}  // namespace refpga::app
