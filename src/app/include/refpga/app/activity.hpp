// Switching-activity extraction for the measurement system's netlists.
//
// One library home for the stimulus that every consumer of §4.3 activity
// uses (benches, campaigns, examples): drive the system's known ports with
// the deterministic reference pattern, run either simulation engine, and
// return per-net toggle rates — optionally through the full VCD round trip
// (post-PAR simulation -> dump -> parse), mirroring the paper's XPower flow.
// The dual-engine parity contract (sim/engine.hpp) makes the result
// engine-independent; the engine option only selects how fast it is
// computed.
#pragma once

#include "refpga/netlist/netlist.hpp"
#include "refpga/sim/activity.hpp"
#include "refpga/sim/engine.hpp"

namespace refpga::app {

struct ActivityOptions {
    sim::EngineKind engine = sim::EngineKind::Cycle;
    int cycles = 256;
    /// true: emit + parse a VCD (constant-memory streaming path) and derive
    /// rates from the dump, like XPower; false: read the engine's toggle
    /// counters directly (identical toggle counts; rates differ only by the
    /// dump's duration being measured from the first sample).
    bool via_vcd = true;
};

/// Stimulates `nl` for `opts.cycles` clock cycles with the deterministic
/// system pattern (tick_16mhz/adc_valid held, adc_meas/adc_ref driven from
/// Rng(2024); ports absent from the netlist are skipped, so this also works
/// for plain cores) and returns per-net activity at `clock_hz`.
[[nodiscard]] sim::ActivityMap system_activity(const netlist::Netlist& nl,
                                               double clock_hz,
                                               const ActivityOptions& opts = {});

}  // namespace refpga::app
