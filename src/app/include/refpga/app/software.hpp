// Software implementation of the measurement pipeline for the soft-core.
//
// This is the paper's baseline: the original microcontroller algorithms
// ported 1:1 onto the MicroBlaze (§4, "the identical software algorithms
// were used"). The legacy code does not use the FPGA's MULT18 blocks, so by
// default multiplication runs as a shift-add library routine; code plus
// tables exceed 60 KB and therefore live in external SRAM — together these
// reproduce the ~7 ms software processing time the paper reports. Setting
// `hw_multiplier` shows the intermediate point of merely enabling the
// soft-core's hardware multiplier.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "refpga/app/params.hpp"
#include "refpga/soc/cpu.hpp"
#include "refpga/soc/memory.hpp"

namespace refpga::app {

struct SoftwareConfig {
    bool hw_multiplier = false;   ///< use mul/mulh instructions
    bool code_in_sram = true;     ///< firmware linked to external SRAM
    /// Firmware bulk beyond the measurement kernel (drivers, protocol
    /// stacks, calibration); makes the image exceed the BRAM budget.
    std::uint32_t padding_bytes = 58 * 1024;
};

/// Data addresses the runner and program agree on (all in external SRAM).
struct SoftwareLayout {
    std::uint32_t code_base = 0x8000'0000;
    std::uint32_t meas_buf = 0x8002'0000;    ///< window samples, meas channel
    std::uint32_t ref_buf = 0x8002'0800;     ///< window samples, ref channel
    std::uint32_t result_base = 0x8002'1000; ///< results block (see indices)
};

/// Word indices within the result block.
enum class SwResult : int {
    AmpMeas = 0,
    PhaseMeas = 1,
    AmpRef = 2,
    PhaseRef = 3,
    RatioQ12 = 4,
    CapPfQ4 = 5,
    LevelQ15 = 6,
};

/// Generates the measurement firmware as assembly text.
[[nodiscard]] std::string measurement_source(const AppParams& params,
                                             const SoftwareConfig& config = {},
                                             const SoftwareLayout& layout = {});

struct SoftwareRun {
    std::uint32_t amp_meas = 0;
    std::uint32_t phase_meas = 0;
    std::uint32_t amp_ref = 0;
    std::uint32_t phase_ref = 0;
    std::uint32_t ratio_q12 = 0;
    std::uint32_t cap_pf_q4 = 0;
    std::uint32_t level_q15 = 0;
    std::int64_t cycles = 0;
    std::uint32_t code_bytes = 0;

    [[nodiscard]] double seconds(double clock_hz) const {
        return static_cast<double>(cycles) / clock_hz;
    }
};

/// Assembles, loads and executes one measurement window on the soft-core.
[[nodiscard]] SoftwareRun run_software_cycle(std::span<const std::int32_t> meas,
                                             std::span<const std::int32_t> ref,
                                             const AppParams& params,
                                             const SoftwareConfig& config = {},
                                             const soc::MemoryConfig& mem_config = {});

}  // namespace refpga::app
