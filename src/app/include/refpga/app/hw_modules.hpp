// Hardware implementations of the measurement pipeline, as netlist
// generators (the System Generator modules of §4.2, rebuilt as LUT/FF/MULT
// structures). Each generator emits into the builder's *current partition*,
// so the system can place each module in the static area or in a
// reconfigurable slot.
//
// Module protocol: streaming sample inputs with a `valid` clock enable and a
// `clear` pulse; post-processing datapaths are combinational from the
// accumulator registers, qualified by `done`.
#pragma once

#include <cstddef>
#include <cstdint>

#include "refpga/app/params.hpp"
#include "refpga/netlist/builder.hpp"

namespace refpga::app {

/// Sinus generator (Fig. 3): 32-entry sine LUT + 5-bit address counter +
/// on-chip second-order delta-sigma DAC. `tick` is the 16 MHz clock enable
/// from the DCM model.
struct SinusGeneratorIo {
    netlist::Bus code8;     ///< 8-bit unsigned DAC code (external-DAC variant)
    netlist::NetId ds_bit;  ///< delta-sigma bitstream (internal-DAC variant)
};
[[nodiscard]] SinusGeneratorIo make_sinus_generator(netlist::Builder& builder,
                                                    netlist::NetId tick,
                                                    const AppParams& params);

/// Bit-exact C++ mirror of the generator's delta-sigma stage (for tests and
/// for driving the analog front end without netlist simulation).
class SinusGenModel {
public:
    explicit SinusGenModel(const AppParams& params);
    /// One 16 MHz tick: returns {code8, ds_bit}. Thin wrapper over a block
    /// of one tick.
    struct Step {
        std::uint32_t code8 = 0;
        bool ds_bit = false;
    };
    Step step();

    /// Batch drive generation for the block-streaming front end: advances
    /// `n` ticks through one fused LUT/phase/modulator loop, writing the
    /// delta-sigma bit (0/1) of each tick into `bits`.
    void run_block_bits(std::size_t n, std::uint8_t* bits);
    /// Same, writing the 8-bit DAC code of each tick into `codes`.
    void run_block_codes(std::size_t n, std::uint8_t* codes);

private:
    template <bool kEmitBits>
    void run_block(std::size_t n, std::uint8_t* out);

    std::vector<std::int32_t> table_;
    std::uint32_t addr_ = 0;
    std::int32_t s1_ = 0;
    std::int32_t s2_ = 0;
};

/// Amplitude & phase module (the largest reconfigurable module): dual-channel
/// I/Q correlator plus a channel-multiplexed CORDIC vectoring pipeline.
struct AmpPhaseIo {
    netlist::NetId done;    ///< window complete (N valid samples seen)
    netlist::Bus amp;       ///< 16-bit amplitude of the selected channel
    netlist::Bus phase;     ///< angle_bits phase of the selected channel
};
[[nodiscard]] AmpPhaseIo make_amp_phase(netlist::Builder& builder,
                                        const netlist::Bus& meas,
                                        const netlist::Bus& ref,
                                        netlist::NetId valid, netlist::NetId clear,
                                        netlist::NetId chan_sel,
                                        const AppParams& params);

/// Capacity module: C = C_ref * (A_m / A_r) * cos(phi_m - phi_r).
struct CapacityIo {
    netlist::Bus ratio_q12;  ///< ratio_bits-wide amplitude ratio
    netlist::Bus cap_pf_q4;  ///< 16-bit capacitance, pF Q4
};
[[nodiscard]] CapacityIo make_capacity(netlist::Builder& builder,
                                       const netlist::Bus& amp_m,
                                       const netlist::Bus& ph_m,
                                       const netlist::Bus& amp_r,
                                       const netlist::Bus& ph_r,
                                       const AppParams& params);

/// Filter & level module: median-3 + EMA + linearization + alarms.
struct FilterIo {
    netlist::Bus level_q15;     ///< 16-bit level (Q15)
    netlist::NetId alarm_high;
    netlist::NetId alarm_low;
    netlist::Bus ema;           ///< filter state (test observability)
};
[[nodiscard]] FilterIo make_filter(netlist::Builder& builder, const netlist::Bus& cap,
                                   netlist::NetId cap_valid, const AppParams& params);

/// ADC interface (static side): input registers + valid synchronizer for the
/// two PCM channels.
struct AdcInterfaceIo {
    netlist::Bus meas;
    netlist::Bus ref;
    netlist::NetId valid;
};
[[nodiscard]] AdcInterfaceIo make_adc_interface(netlist::Builder& builder,
                                                const netlist::Bus& meas_in,
                                                const netlist::Bus& ref_in,
                                                netlist::NetId valid_in,
                                                const AppParams& params);

}  // namespace refpga::app
