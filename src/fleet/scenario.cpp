#include "refpga/fleet/scenario.hpp"

#include <cstdio>

#include "refpga/common/contracts.hpp"

namespace refpga::fleet {

const char* port_kind_name(PortKind kind) {
    switch (kind) {
        case PortKind::Jcap: return "jcap";
        case PortKind::JcapAccelerated: return "jcap-acc";
        case PortKind::Icap: return "icap";
        case PortKind::SelectMap: return "selectmap";
    }
    return "?";
}

reconfig::ConfigPortSpec make_port(PortKind kind) {
    switch (kind) {
        case PortKind::Jcap: return reconfig::jcap_port();
        case PortKind::JcapAccelerated: return reconfig::jcap_accelerated_port();
        case PortKind::Icap: return reconfig::icap_port();
        case PortKind::SelectMap: return reconfig::selectmap_port();
    }
    return reconfig::jcap_port();
}

std::uint64_t scenario_seed(std::uint64_t campaign_seed, std::uint64_t index) {
    // One SplitMix64 step over campaign_seed advanced by the grid index; the
    // same expansion the Rng constructor uses to spread a seed into state.
    std::uint64_t z = campaign_seed + (index + 1) * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

SweepBuilder& SweepBuilder::variants(std::vector<app::SystemVariant> v) {
    REFPGA_EXPECTS(!v.empty());
    variants_ = std::move(v);
    return *this;
}

SweepBuilder& SweepBuilder::parts(std::vector<fabric::PartName> v) {
    REFPGA_EXPECTS(!v.empty());
    parts_ = std::move(v);
    return *this;
}

SweepBuilder& SweepBuilder::ports(std::vector<PortKind> v) {
    REFPGA_EXPECTS(!v.empty());
    ports_ = std::move(v);
    return *this;
}

SweepBuilder& SweepBuilder::noise_levels(std::vector<double> v) {
    REFPGA_EXPECTS(!v.empty());
    noise_levels_ = std::move(v);
    return *this;
}

SweepBuilder& SweepBuilder::upset_rates(std::vector<double> v) {
    REFPGA_EXPECTS(!v.empty());
    for (const double rate : v) REFPGA_EXPECTS(rate >= 0.0);
    upset_rates_ = std::move(v);
    return *this;
}

SweepBuilder& SweepBuilder::fault_defaults(fault::FaultSpec spec) {
    fault_defaults_ = spec;
    return *this;
}

SweepBuilder& SweepBuilder::fills(std::vector<FillProfile> v) {
    REFPGA_EXPECTS(!v.empty());
    fills_ = std::move(v);
    return *this;
}

SweepBuilder& SweepBuilder::cycles(int cycles) {
    cycles_ = cycles;
    return *this;
}

SweepBuilder& SweepBuilder::campaign_seed(std::uint64_t seed) {
    campaign_seed_ = seed;
    return *this;
}

std::size_t SweepBuilder::grid_size() const {
    return variants_.size() * parts_.size() * ports_.size() * noise_levels_.size() *
           upset_rates_.size() * fills_.size();
}

namespace {

std::string format_noise(double noise) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "n%.4g", noise);
    return buf;
}

std::string format_upset_rate(double rate) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "u%.4g", rate);
    return buf;
}

std::string format_fill(const FillProfile& fill) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "f%.2f-%.2f", fill.start_level, fill.end_level);
    return buf;
}

}  // namespace

std::vector<Scenario> SweepBuilder::build() const {
    std::vector<Scenario> grid;
    grid.reserve(grid_size());
    for (const app::SystemVariant variant : variants_)
        for (const fabric::PartName part : parts_)
            for (const PortKind port : ports_)
                for (const double noise : noise_levels_)
                    for (const double upset_rate : upset_rates_)
                        for (const FillProfile& fill : fills_) {
                            Scenario s;
                            s.variant = variant;
                            s.part = part;
                            s.port = port;
                            s.fill = fill;
                            s.noise_rms_v = noise;
                            s.fault = fault_defaults_;
                            s.fault.upset_rate_per_column_s = upset_rate;
                            s.cycles = cycles_;
                            s.seed = scenario_seed(campaign_seed_, grid.size());
                            s.name = std::string(app::variant_name(variant)) + "|" +
                                     std::string(fabric::part(part).id) + "|" +
                                     port_kind_name(port) + "|" +
                                     format_noise(noise) + "|" +
                                     format_upset_rate(upset_rate) + "|" +
                                     format_fill(fill);
                            grid.push_back(std::move(s));
                        }
    return grid;
}

}  // namespace refpga::fleet
