// Campaign execution: many independent scenarios, optionally in parallel.
//
// Each scenario builds its own app::MeasurementSystem seeded from the
// scenario descriptor and runs its fill trajectory end to end; the outcome
// (accuracy, latency, power, reconfiguration overhead, device fit) lands in
// a result slot owned by that scenario. A scenario that throws becomes a
// failed record carrying the exception text — it never aborts the campaign.
//
// Determinism guarantee: outcomes depend only on the scenario descriptors
// (which carry their own seeds), never on thread count or completion order,
// so a campaign's report is byte-identical however it is scheduled.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "refpga/fleet/scenario.hpp"
#include "refpga/obs/obs.hpp"
#include "refpga/sim/engine.hpp"

namespace refpga::fleet {

/// Measured results of one scenario (or its failure record).
struct ScenarioOutcome {
    Scenario scenario;
    bool ok = false;
    std::string error;  ///< exception text when !ok

    // Accuracy over the fill trajectory (measured vs ground-truth level).
    double level_error_mean = 0.0;
    double level_error_max = 0.0;

    // Schedule (Fig. 4) occupancy, averaged per cycle.
    double cycle_busy_ms = 0.0;
    double reconfig_ms_per_cycle = 0.0;

    // Power model: part leakage + first-order clock tree of the resident
    // logic + reconfiguration energy amortized over the cycle period.
    double static_mw = 0.0;
    double dynamic_mw = 0.0;
    double reconfig_energy_mj = 0.0;

    // Device fit of the variant's resident logic (with PAR headroom).
    std::size_t resident_slices = 0;
    std::string fitted_part;  ///< smallest part that fits; empty if none
    bool device_fits = false; ///< resident logic fits the scenario's part

    // Fault injection and the self-healing response (refpga::fault).
    long upsets_injected = 0;
    long upsets_detected = 0;
    long columns_repaired = 0;
    long load_retries = 0;
    long load_failures = 0;
    long rejected_cycles = 0;   ///< plausibility guard held last-good value
    long fallback_cycles = 0;   ///< served by the resident software path
    double availability = 1.0;  ///< fraction of undegraded cycles
    double mttd_ms = 0.0;       ///< mean time to detect an upset
    double mttr_ms = 0.0;       ///< mean time to repair an upset
    double scrub_ms_per_cycle = 0.0;  ///< readback + repair time per cycle

    [[nodiscard]] double total_mw() const { return static_mw + dynamic_mw; }
};

struct CampaignResult {
    std::vector<ScenarioOutcome> outcomes;  ///< same order as the input scenarios

    [[nodiscard]] std::size_t failure_count() const {
        std::size_t n = 0;
        for (const ScenarioOutcome& o : outcomes)
            if (!o.ok) ++n;
        return n;
    }
};

struct CampaignOptions {
    /// Worker threads; 1 runs inline on the calling thread. The report is
    /// identical either way (see determinism guarantee above).
    int threads = 1;
    /// Front-end streaming block size (modulator ticks) applied to every
    /// scenario's system; each worker thread keeps one reusable
    /// analog::SampleBlock, so the sampling hot path never reallocates
    /// between scenarios. Outcomes are bit-identical for every value
    /// (0 = per-sample reference path; see app::SystemOptions).
    int stream_block_ticks = 4096;
    /// Test instrumentation: invoked inside each scenario's try-block before
    /// its system is built, so tests can exercise failure isolation
    /// (including non-std::exception throws). Empty in production use.
    std::function<void(const Scenario&)> scenario_probe;
    /// Observability sink (refpga::obs); the campaign's obs toggle. When
    /// set, the runner records campaign.* per-scenario wall time and
    /// failure counts and propagates the recorder into every scenario's
    /// app::MeasurementSystem (one shared recorder across all workers; all
    /// sinks are thread-safe). Wall-clock metrics live only in the obs
    /// export — scenario outcomes and the campaign report body stay
    /// byte-identical across thread counts. Non-owning; must outlive run().
    obs::Recorder* recorder = nullptr;
    /// Graceful-shutdown flag (typically set by a SIGINT/SIGTERM handler).
    /// When it reads true, scenarios not yet started are recorded as failed
    /// outcomes with error "cancelled before start" instead of running —
    /// in-flight scenarios finish normally, so the runner drains rather
    /// than aborts. Non-owning; must outlive run(). nullptr = never stop.
    const std::atomic<bool>* stop = nullptr;
    /// When set, each variant's structural netlist is simulated once (with
    /// the selected engine — results are engine-independent per the
    /// dual-engine parity contract, sim/engine.hpp) and a first-order
    /// switched-capacitance logic term is added to every outcome's
    /// dynamic_mw. Off by default: reports then stay byte-identical to
    /// campaigns run before this option existed.
    std::optional<sim::EngineKind> activity_engine;

    CampaignOptions() = default;
    CampaignOptions(int threads_) : threads(threads_) {}  // NOLINT: {N} spells a thread count
};

/// Per-variant resident-logic demand, shared read-only by all scenarios of a
/// campaign (computed once, before workers start).
struct VariantFit {
    std::size_t resident_slices = 0;
    std::size_t with_headroom = 0;  ///< +7% PAR margin, as in bench_device_fit
    std::size_t resident_ffs = 0;   ///< clock loads for the dynamic-power model
    std::optional<fabric::PartName> fitted;
    /// Total net toggles per clock cycle of the variant's resident logic
    /// (simulated activity); 0 unless CampaignOptions::activity_engine is
    /// set. Scales with the scenario clock into a logic-power term.
    double toggles_per_cycle = 0.0;
};

/// Resident slice/FF demand of a system variant (from the structural system
/// netlist; Software keeps only the static area resident).
[[nodiscard]] VariantFit variant_fit(
    app::SystemVariant variant,
    std::optional<sim::EngineKind> activity_engine = std::nullopt);

class CampaignRunner {
public:
    explicit CampaignRunner(CampaignOptions options = {});

    [[nodiscard]] const CampaignOptions& options() const { return options_; }

    /// Executes every scenario and returns outcomes in input order.
    [[nodiscard]] CampaignResult run(const std::vector<Scenario>& scenarios) const;

private:
    CampaignOptions options_;
};

}  // namespace refpga::fleet
