// Bounded-memory streaming aggregation of campaign outcomes.
//
// A ReportAccumulator merges scenario-outcome batches — arriving in any
// order, e.g. interleaved from several worker processes — into the same
// report a single-process CampaignReport would render, without ever holding
// the full outcome list in memory. Each committed batch is appended to an
// on-disk spool (encoded via outcome_codec) and reduced on arrival into
// running state: per-metric value columns for the summary percentiles,
// per-axis group columns, text-table column widths and failure counts. The
// decoded rows themselves are dropped as soon as the batch is reduced, so
// peak retained rows is the largest single batch (max_retained_rows()),
// independent of sweep size.
//
// Byte-identity: render_text()/render_json() of a complete accumulator
// equal CampaignReport::from(...)'s renderings of the same outcomes in
// sweep order, byte for byte — both compose their output from the shared
// fragment renderers and the one deterministic float-format path, and
// MetricSummary::of sorts before reducing, so arrival order cannot leak
// into any rendered number.
#pragma once

#include <array>
#include <cstddef>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "refpga/common/interval_set.hpp"
#include "refpga/fleet/campaign.hpp"
#include "refpga/fleet/report.hpp"

namespace refpga::fleet {

class ReportAccumulator {
public:
    /// `scenario_count` is the full sweep size the accumulator expects;
    /// `spool_path` is created (truncated) and owned for the accumulator's
    /// lifetime. Throws std::runtime_error when the spool cannot be opened.
    ReportAccumulator(std::size_t scenario_count, std::string spool_path);

    ReportAccumulator(const ReportAccumulator&) = delete;
    ReportAccumulator& operator=(const ReportAccumulator&) = delete;

    /// Commits the contiguous batch [first, first+batch.size()). Batches may
    /// arrive in any order; committing an index twice throws
    /// ContractViolation (the campaign service guarantees exactly-once
    /// delivery; a duplicate is a protocol bug, not mergeable data).
    void add(std::size_t first, const std::vector<ScenarioOutcome>& batch);

    /// Same commit from already-encoded outcome lines (the coordinator feeds
    /// wire payloads and checkpoint records straight through). Throws
    /// CodecError on a malformed line; nothing is committed in that case.
    void add_encoded(std::size_t first, const std::vector<std::string>& lines);

    [[nodiscard]] std::size_t scenario_count() const { return scenario_count_; }
    [[nodiscard]] std::size_t committed() const { return covered_.count(); }
    [[nodiscard]] bool complete() const {
        return covered_.covers_exactly(scenario_count_);
    }
    [[nodiscard]] std::size_t failure_count() const { return failures_; }
    /// Committed index ranges (sorted, disjoint) — the coordinator journals
    /// and resumes from these.
    [[nodiscard]] const IntervalSet& covered() const { return covered_; }

    /// High-water mark of decoded outcome rows held in memory at once: the
    /// largest batch committed so far (renders decode one row at a time).
    [[nodiscard]] std::size_t max_retained_rows() const {
        return max_retained_rows_;
    }
    /// Spool segments pending the final ordered merge (the merge backlog:
    /// out-of-order commits append segments; rendering drains them in index
    /// order).
    [[nodiscard]] std::size_t segment_count() const { return segments_.size(); }

    /// See CampaignReport::attach_metrics_json.
    void attach_metrics_json(std::string metrics_json) {
        metrics_json_ = std::move(metrics_json);
    }

    /// Declares this accumulator's renderings partial: both formats then
    /// carry the expected scenario count and the exact missing index ranges,
    /// so a degraded run can never pass for a complete one. Set by the
    /// coordinator when a run finishes under --partial-ok with workers
    /// exhausted.
    void mark_partial() { partial_ = true; }
    [[nodiscard]] bool is_partial() const { return partial_; }

    /// Renders the committed outcomes in sweep-index order by streaming the
    /// spool (one decoded row in memory at a time). On a complete
    /// accumulator the output is byte-identical to CampaignReport's; a
    /// partial accumulator renders the committed subset (callers decide how
    /// to flag incompleteness).
    [[nodiscard]] std::string render_text() const;
    [[nodiscard]] std::string render_json() const;

private:
    struct Segment {
        std::size_t first = 0;
        std::size_t count = 0;
        std::streamoff offset = 0;  ///< byte offset into the spool
    };

    /// Per-group accumulated state; metric columns hold the successful
    /// scenarios' values in arrival order (summaries sort before reducing).
    struct GroupState {
        std::size_t axis = 0;  ///< index into render::kAxes
        std::string value;
        std::size_t min_index = 0;  ///< smallest member index (for ordering)
        std::size_t count = 0;
        std::size_t failures = 0;
        std::vector<std::vector<double>> metric_values;
    };

    void reduce(std::size_t index, const ScenarioOutcome& outcome);
    /// Segments sorted by first index — the render order.
    [[nodiscard]] std::vector<const Segment*> ordered_segments() const;
    /// Streams the spool in index order, invoking `fn` per decoded outcome.
    template <typename Fn>
    void for_each_committed(Fn&& fn) const;
    [[nodiscard]] MetricSummary summary_of(std::string_view key) const;
    /// Group order and facts matching CampaignReport::from exactly.
    [[nodiscard]] std::vector<std::size_t> ordered_groups() const;

    std::size_t scenario_count_;
    std::string spool_path_;
    mutable std::ofstream spool_out_;
    std::streamoff spool_bytes_ = 0;

    IntervalSet covered_;
    std::vector<Segment> segments_;
    std::size_t failures_ = 0;
    std::size_t max_retained_rows_ = 0;
    bool partial_ = false;

    std::vector<std::string> metric_keys_;
    std::vector<std::size_t> widths_;  ///< scenario-table column widths
    std::vector<std::vector<double>> summary_values_;  ///< per metric key
    std::vector<GroupState> groups_;
    std::map<std::pair<std::size_t, std::string>, std::size_t> group_index_;

    std::string metrics_json_;
};

}  // namespace refpga::fleet
