// Compatibility alias: the pool moved to refpga::common so that non-fleet
// modules (notably the §4.3 reallocation engine in par) can share one pool
// implementation without a fleet dependency cycle (fleet -> power -> par).
#pragma once

#include "refpga/common/thread_pool.hpp"

namespace refpga::fleet {

using refpga::ThreadPool;

}  // namespace refpga::fleet
