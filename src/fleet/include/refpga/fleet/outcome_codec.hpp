// Bit-exact wire/journal codec for ScenarioOutcome.
//
// The campaign service streams scenario outcomes from worker processes to
// the coordinator and journals them into checkpoint files as JSON lines.
// Reports derive summary percentiles from the raw metric values, so the
// codec must round-trip doubles exactly — every floating-point field is
// encoded as a C99 hexfloat string ("%a", e.g. "0x1.91eb851eb851fp-1"),
// which strtod parses back to the identical bits. Everything a campaign
// report reads off an outcome is carried; enum fields travel as their
// numeric values (the decoder validates range).
//
// Format: one strictly-ordered single-line JSON object per outcome. The
// decoder is a fixed-sequence scanner, not a general JSON parser: encoder
// and decoder are versioned together (kOutcomeCodecVersion, recorded in
// checkpoint headers), and a line that deviates from the expected shape
// throws CodecError instead of guessing.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "refpga/fleet/campaign.hpp"

namespace refpga::fleet {

/// Bumped whenever encode_outcome_line's format changes; checkpoint files
/// record it so a resume never decodes lines from an incompatible writer.
inline constexpr int kOutcomeCodecVersion = 1;

class CodecError : public std::runtime_error {
public:
    explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

/// One-line JSON encoding (no trailing newline). Doubles are hexfloats, so
/// decode_outcome_line(encode_outcome_line(o)) reproduces every report-
/// visible field of `o` bit-for-bit.
[[nodiscard]] std::string encode_outcome_line(const ScenarioOutcome& o);

/// Strict inverse of encode_outcome_line; throws CodecError on any
/// malformed, truncated or out-of-range input.
[[nodiscard]] ScenarioOutcome decode_outcome_line(std::string_view line);

}  // namespace refpga::fleet
