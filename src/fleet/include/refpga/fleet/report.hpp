// Campaign aggregation: per-metric distribution summaries, overall and per
// sweep axis, rendered as a text table and as machine-readable JSON.
//
// Both renderings are pure functions of the outcome list: scenario order is
// the sweep order and all floats are formatted through one deterministic
// path, so reports from the same campaign are byte-identical regardless of
// the thread count that produced the outcomes. Wall-clock facts (thread
// count, run time) are deliberately excluded from the report for the same
// reason.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "refpga/fleet/campaign.hpp"

namespace refpga::fleet {

/// Distribution summary of one metric over the successful scenarios.
struct MetricSummary {
    double min = 0.0;
    double mean = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    std::size_t count = 0;

    /// Nearest-rank percentiles over `values` (order-insensitive).
    [[nodiscard]] static MetricSummary of(std::vector<double> values);
};

/// Metric keys summarized by the report, in rendering order.
[[nodiscard]] std::vector<std::string> report_metric_keys();

/// Reads one metric off an outcome by key; throws ContractViolation on an
/// unknown key.
[[nodiscard]] double outcome_metric(const ScenarioOutcome& outcome,
                                    std::string_view key);

class CampaignReport {
public:
    /// One value of one sweep axis and the scenarios that carry it.
    struct Group {
        std::string axis;   ///< "variant" | "part" | "port" | "noise"
        std::string value;
        std::vector<std::size_t> indices;  ///< into outcomes(), sweep order
        std::size_t failures = 0;
    };

    [[nodiscard]] static CampaignReport from(const CampaignResult& result);

    [[nodiscard]] const std::vector<ScenarioOutcome>& outcomes() const {
        return outcomes_;
    }
    [[nodiscard]] const std::vector<Group>& groups() const { return groups_; }
    [[nodiscard]] std::size_t failure_count() const { return failures_; }

    /// Summary of `key` over all successful scenarios.
    [[nodiscard]] MetricSummary summary(std::string_view key) const;
    /// Summary of `key` over one group's successful scenarios.
    [[nodiscard]] MetricSummary group_summary(const Group& group,
                                              std::string_view key) const;

    /// Embeds a pre-rendered obs JSON document (obs::Recorder::render_json)
    /// into render_json() as a top-level "observability" member. The base
    /// report stays a pure function of the outcomes — wall-clock metrics
    /// appear only when the caller opts in here, so the byte-identical-
    /// across-thread-counts guarantee is unchanged for unattached reports.
    /// Pass an empty string to detach.
    void attach_metrics_json(std::string metrics_json) {
        metrics_json_ = std::move(metrics_json);
    }
    [[nodiscard]] const std::string& metrics_json() const { return metrics_json_; }

    [[nodiscard]] std::string render_text() const;
    [[nodiscard]] std::string render_json() const;

private:
    std::vector<ScenarioOutcome> outcomes_;
    std::vector<Group> groups_;
    std::size_t failures_ = 0;
    std::string metrics_json_;  ///< verbatim obs JSON; empty = omitted
};

}  // namespace refpga::fleet
