// Measurement-campaign scenarios and deterministic sweep expansion.
//
// A Scenario pins down everything one end-to-end `app::MeasurementSystem`
// run depends on: implementation variant, target part, configuration port,
// tank noise, fill trajectory and the RNG seed for noise injection. A
// SweepBuilder expands per-axis value lists into the full cartesian grid in
// a fixed, documented order, and derives every scenario's seed from the
// campaign seed and its grid index — so a campaign is fully reproducible
// from (axes, campaign_seed) alone, independent of how it is later executed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "refpga/app/system.hpp"
#include "refpga/fabric/part.hpp"
#include "refpga/fault/fault.hpp"
#include "refpga/reconfig/config_port.hpp"

namespace refpga::fleet {

/// Configuration ports a scenario can sweep over (the §4.2/§5 trade-off).
enum class PortKind { Jcap, JcapAccelerated, Icap, SelectMap };

[[nodiscard]] const char* port_kind_name(PortKind kind);
[[nodiscard]] reconfig::ConfigPortSpec make_port(PortKind kind);

/// Linear tank-fill trajectory over a scenario's measurement cycles.
struct FillProfile {
    double start_level = 0.1;
    double end_level = 0.9;

    /// Ground-truth level at cycle `i` of `cycles` (clamp-free linear ramp).
    [[nodiscard]] double level_at(int i, int cycles) const {
        if (cycles <= 1) return start_level;
        return start_level + (end_level - start_level) * i / (cycles - 1);
    }

    friend constexpr bool operator==(const FillProfile&, const FillProfile&) = default;
};

/// One independent measurement run. Scenarios share no state: each gets its
/// own MeasurementSystem, so any subset may execute concurrently.
struct Scenario {
    std::string name;  ///< unique axis label, assigned by SweepBuilder
    app::SystemVariant variant = app::SystemVariant::ReconfiguredHw;
    fabric::PartName part = fabric::PartName::XC3S400;
    PortKind port = PortKind::Jcap;
    FillProfile fill;
    double noise_rms_v = 1e-3;  ///< tank output noise per channel
    /// Fault environment (upset rate is the swept axis; the other knobs come
    /// from SweepBuilder::fault_defaults). Default: no faults.
    fault::FaultSpec fault;
    int cycles = 8;             ///< measurement cycles to run
    std::uint64_t seed = 0;     ///< per-scenario noise seed (set by SweepBuilder)
};

/// SplitMix64 mix of the campaign seed with a scenario's grid index. Pure
/// function of its inputs: the seed a scenario receives never depends on
/// thread count or execution order.
[[nodiscard]] std::uint64_t scenario_seed(std::uint64_t campaign_seed,
                                          std::uint64_t index);

/// Expands axis value lists into the scenario grid.
///
/// Axes iterate in a fixed nesting order (variant outermost, then part,
/// port, noise, upset rate, fill), so the same axes always yield the same
/// scenario sequence, names and seeds.
class SweepBuilder {
public:
    SweepBuilder& variants(std::vector<app::SystemVariant> v);
    SweepBuilder& parts(std::vector<fabric::PartName> v);
    SweepBuilder& ports(std::vector<PortKind> v);
    SweepBuilder& noise_levels(std::vector<double> v);
    /// Configuration-upset rates (per column-second) to sweep. Default {0}.
    SweepBuilder& upset_rates(std::vector<double> v);
    /// Non-axis fault knobs (load corruption, flash errors, glitches) applied
    /// to every scenario; the swept upset rate overrides its field.
    SweepBuilder& fault_defaults(fault::FaultSpec spec);
    SweepBuilder& fills(std::vector<FillProfile> v);
    SweepBuilder& cycles(int cycles);
    SweepBuilder& campaign_seed(std::uint64_t seed);

    /// Number of scenarios build() will produce.
    [[nodiscard]] std::size_t grid_size() const;

    [[nodiscard]] std::vector<Scenario> build() const;

private:
    std::vector<app::SystemVariant> variants_{app::SystemVariant::ReconfiguredHw};
    std::vector<fabric::PartName> parts_{fabric::PartName::XC3S400};
    std::vector<PortKind> ports_{PortKind::Jcap};
    std::vector<double> noise_levels_{1e-3};
    std::vector<double> upset_rates_{0.0};
    fault::FaultSpec fault_defaults_;
    std::vector<FillProfile> fills_{FillProfile{}};
    int cycles_ = 8;
    std::uint64_t campaign_seed_ = 2008;
};

}  // namespace refpga::fleet
