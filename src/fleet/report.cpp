#include "refpga/fleet/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "refpga/common/contracts.hpp"
#include "refpga/common/table.hpp"
#include "report_render.hpp"

namespace refpga::fleet {

MetricSummary MetricSummary::of(std::vector<double> values) {
    MetricSummary s;
    s.count = values.size();
    if (values.empty()) return s;
    std::sort(values.begin(), values.end());
    s.min = values.front();
    s.max = values.back();
    double sum = 0.0;
    for (const double v : values) sum += v;
    s.mean = sum / static_cast<double>(values.size());
    const auto nearest_rank = [&](double q) {
        const auto n = static_cast<double>(values.size());
        auto idx = static_cast<std::size_t>(std::ceil(q * n));
        if (idx > 0) --idx;
        if (idx >= values.size()) idx = values.size() - 1;
        return values[idx];
    };
    s.p50 = nearest_rank(0.50);
    s.p95 = nearest_rank(0.95);
    return s;
}

std::vector<std::string> report_metric_keys() {
    return {"level_error_mean", "level_error_max",     "cycle_busy_ms",
            "reconfig_ms_per_cycle", "reconfig_energy_mj", "static_mw",
            "dynamic_mw",        "total_mw",           "availability",
            "scrub_ms_per_cycle", "mttd_ms",           "mttr_ms",
            "upsets_injected",   "upsets_detected",    "columns_repaired",
            "load_retries",      "fallback_cycles",    "rejected_cycles"};
}

double outcome_metric(const ScenarioOutcome& o, std::string_view key) {
    if (key == "level_error_mean") return o.level_error_mean;
    if (key == "level_error_max") return o.level_error_max;
    if (key == "cycle_busy_ms") return o.cycle_busy_ms;
    if (key == "reconfig_ms_per_cycle") return o.reconfig_ms_per_cycle;
    if (key == "reconfig_energy_mj") return o.reconfig_energy_mj;
    if (key == "static_mw") return o.static_mw;
    if (key == "dynamic_mw") return o.dynamic_mw;
    if (key == "total_mw") return o.total_mw();
    if (key == "availability") return o.availability;
    if (key == "scrub_ms_per_cycle") return o.scrub_ms_per_cycle;
    if (key == "mttd_ms") return o.mttd_ms;
    if (key == "mttr_ms") return o.mttr_ms;
    if (key == "upsets_injected") return static_cast<double>(o.upsets_injected);
    if (key == "upsets_detected") return static_cast<double>(o.upsets_detected);
    if (key == "columns_repaired") return static_cast<double>(o.columns_repaired);
    if (key == "load_retries") return static_cast<double>(o.load_retries);
    if (key == "fallback_cycles") return static_cast<double>(o.fallback_cycles);
    if (key == "rejected_cycles") return static_cast<double>(o.rejected_cycles);
    REFPGA_EXPECTS(false && "unknown report metric key");
    return 0.0;
}

namespace render {

std::string fmt(double v) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    return buf;
}

std::string json_escape(std::string_view text) {
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

std::string axis_value(const ScenarioOutcome& o, std::string_view axis) {
    const Scenario& s = o.scenario;
    if (axis == "variant") return app::variant_name(s.variant);
    if (axis == "part") return std::string(fabric::part(s.part).id);
    if (axis == "port") return port_kind_name(s.port);
    if (axis == "noise") return fmt(s.noise_rms_v);
    if (axis == "upset_rate") return fmt(s.fault.upset_rate_per_column_s);
    REFPGA_EXPECTS(false && "unknown sweep axis");
    return {};
}

std::vector<std::string> scenario_table_header() {
    return {"scenario", "status", "level err", "busy (ms)", "reconfig (ms/cyc)",
            "static (mW)", "dynamic (mW)", "avail", "fit part"};
}

std::vector<std::string> scenario_row_cells(const ScenarioOutcome& o) {
    if (!o.ok)
        return {o.scenario.name, "FAILED", "-", "-", "-", "-", "-", "-", "-"};
    return {o.scenario.name, o.device_fits ? "ok" : "ok (no fit)",
            fmt(o.level_error_mean), Table::num(o.cycle_busy_ms, 3),
            Table::num(o.reconfig_ms_per_cycle, 3), Table::num(o.static_mw, 1),
            Table::num(o.dynamic_mw, 2), Table::num(o.availability, 3),
            o.fitted_part.empty() ? "none" : o.fitted_part};
}

void append_scenario_json(std::ostringstream& os, const ScenarioOutcome& o) {
    const Scenario& s = o.scenario;
    os << "{\"name\":\"" << json_escape(s.name) << "\",\"variant\":\""
       << app::variant_name(s.variant) << "\",\"part\":\""
       << fabric::part(s.part).id << "\",\"port\":\"" << port_kind_name(s.port)
       << "\",\"noise_rms_v\":" << fmt(s.noise_rms_v)
       << ",\"upset_rate_per_column_s\":" << fmt(s.fault.upset_rate_per_column_s)
       << ",\"fill\":["
       << fmt(s.fill.start_level) << "," << fmt(s.fill.end_level)
       << "],\"cycles\":" << s.cycles << ",\"seed\":" << s.seed
       << ",\"ok\":" << (o.ok ? "true" : "false");
    if (!o.ok) {
        os << ",\"error\":\"" << json_escape(o.error) << "\"}";
        return;
    }
    os << ",\"metrics\":{";
    bool first = true;
    for (const std::string& key : report_metric_keys()) {
        if (!first) os << ",";
        first = false;
        os << "\"" << key << "\":" << fmt(outcome_metric(o, key));
    }
    os << "},\"resident_slices\":" << o.resident_slices << ",\"fitted_part\":\""
       << json_escape(o.fitted_part)
       << "\",\"device_fits\":" << (o.device_fits ? "true" : "false") << "}";
}

void append_summary_json(std::ostringstream& os, const MetricSummary& s) {
    os << "{\"min\":" << fmt(s.min) << ",\"mean\":" << fmt(s.mean)
       << ",\"max\":" << fmt(s.max) << ",\"p50\":" << fmt(s.p50)
       << ",\"p95\":" << fmt(s.p95) << ",\"count\":" << s.count << "}";
}

void append_text_head(std::ostringstream& os, std::size_t count,
                      std::size_t failures, const PartialFacts& partial) {
    os << "campaign: " << count << " scenarios, " << count - failures << " ok, "
       << failures << " failed\n";
    if (partial.partial()) {
        os << "partial: " << count << "/" << partial.expected_count
           << " scenarios committed; missing:";
        for (const IntervalSet::Interval& iv : partial.missing)
            os << " [" << iv.first << ", " << iv.last << ")";
        os << "\n";
    }
    os << "\n";
}

void append_text_failure(std::ostringstream& os, const ScenarioOutcome& o) {
    os << "  " << o.scenario.name << ": " << o.error << "\n";
}

void append_text_tail(std::ostringstream& os, const SummaryFn& summary,
                      const std::vector<GroupFacts>& groups,
                      const GroupSummaryFn& group_summary) {
    Table summary_table({"metric", "min", "mean", "p50", "p95", "max"});
    for (const std::string& key : report_metric_keys()) {
        const MetricSummary s = summary(key);
        summary_table.add_row({key, fmt(s.min), fmt(s.mean), fmt(s.p50), fmt(s.p95),
                               fmt(s.max)});
    }
    os << "summary over successful scenarios:\n" << summary_table.render() << "\n";

    Table by_axis({"axis", "value", "scenarios", "failed", "mean level err",
                   "mean total (mW)"});
    for (std::size_t g = 0; g < groups.size(); ++g) {
        const MetricSummary err = group_summary(g, "level_error_mean");
        const MetricSummary mw = group_summary(g, "total_mw");
        by_axis.add_row({groups[g].axis, groups[g].value,
                         std::to_string(groups[g].scenario_count),
                         std::to_string(groups[g].failures), fmt(err.mean),
                         fmt(mw.mean)});
    }
    os << "grouped by sweep axis:\n" << by_axis.render();
}

void append_json_head(std::ostringstream& os, std::size_t count,
                      std::size_t failures, const PartialFacts& partial) {
    os << "{\"campaign\":{\"scenario_count\":" << count
       << ",\"ok_count\":" << count - failures
       << ",\"failure_count\":" << failures;
    if (partial.partial()) {
        os << ",\"partial\":{\"expected_count\":" << partial.expected_count
           << ",\"missing_ranges\":[";
        bool first = true;
        for (const IntervalSet::Interval& iv : partial.missing) {
            if (!first) os << ",";
            first = false;
            os << "[" << iv.first << "," << iv.last << "]";
        }
        os << "]}";
    }
    os << "},\"scenarios\":[";
}

void append_json_tail(std::ostringstream& os, const SummaryFn& summary,
                      const std::vector<GroupFacts>& groups,
                      const GroupSummaryFn& group_summary,
                      const std::string& metrics_json) {
    os << "],\"summary\":{";
    bool first = true;
    for (const std::string& key : report_metric_keys()) {
        if (!first) os << ",";
        first = false;
        os << "\"" << key << "\":";
        append_summary_json(os, summary(key));
    }
    os << "},\"groups\":[";
    for (std::size_t g = 0; g < groups.size(); ++g) {
        const GroupFacts& group = groups[g];
        if (g) os << ",";
        os << "{\"axis\":\"" << group.axis << "\",\"value\":\""
           << json_escape(group.value) << "\",\"scenarios\":" << group.scenario_count
           << ",\"failures\":" << group.failures << ",\"metrics\":{";
        bool first_metric = true;
        for (const std::string& key : report_metric_keys()) {
            if (!first_metric) os << ",";
            first_metric = false;
            os << "\"" << key << "\":";
            append_summary_json(os, group_summary(g, key));
        }
        os << "}}";
    }
    os << "]";
    // The obs block is verbatim-embedded JSON from obs::Recorder; it carries
    // wall-clock facts, so it only appears when explicitly attached.
    if (!metrics_json.empty()) os << ",\"observability\":" << metrics_json;
    os << "}";
}

}  // namespace render

CampaignReport CampaignReport::from(const CampaignResult& result) {
    CampaignReport report;
    report.outcomes_ = result.outcomes;
    report.failures_ = result.failure_count();
    for (const std::string_view axis : render::kAxes) {
        for (std::size_t i = 0; i < report.outcomes_.size(); ++i) {
            const std::string value = render::axis_value(report.outcomes_[i], axis);
            auto it = std::find_if(report.groups_.begin(), report.groups_.end(),
                                   [&](const Group& g) {
                                       return g.axis == axis && g.value == value;
                                   });
            if (it == report.groups_.end()) {
                report.groups_.push_back({std::string(axis), value, {}, 0});
                it = report.groups_.end() - 1;
            }
            it->indices.push_back(i);
            if (!report.outcomes_[i].ok) ++it->failures;
        }
    }
    return report;
}

MetricSummary CampaignReport::summary(std::string_view key) const {
    std::vector<double> values;
    values.reserve(outcomes_.size());
    for (const ScenarioOutcome& o : outcomes_)
        if (o.ok) values.push_back(outcome_metric(o, key));
    return MetricSummary::of(std::move(values));
}

MetricSummary CampaignReport::group_summary(const Group& group,
                                            std::string_view key) const {
    std::vector<double> values;
    values.reserve(group.indices.size());
    for (const std::size_t i : group.indices)
        if (outcomes_[i].ok) values.push_back(outcome_metric(outcomes_[i], key));
    return MetricSummary::of(std::move(values));
}

namespace {

std::vector<render::GroupFacts> group_facts(
    const std::vector<CampaignReport::Group>& groups) {
    std::vector<render::GroupFacts> facts;
    facts.reserve(groups.size());
    for (const CampaignReport::Group& g : groups)
        facts.push_back({g.axis, g.value, g.indices.size(), g.failures});
    return facts;
}

}  // namespace

std::string CampaignReport::render_text() const {
    std::ostringstream os;
    render::append_text_head(os, outcomes_.size(), failures_);

    Table scenarios(render::scenario_table_header());
    for (const ScenarioOutcome& o : outcomes_)
        scenarios.add_row(render::scenario_row_cells(o));
    os << scenarios.render() << "\n";

    if (failures_ > 0) {
        os << "failures:\n";
        for (const ScenarioOutcome& o : outcomes_)
            if (!o.ok) render::append_text_failure(os, o);
        os << "\n";
    }

    render::append_text_tail(
        os, [this](std::string_view key) { return summary(key); },
        group_facts(groups_),
        [this](std::size_t g, std::string_view key) {
            return group_summary(groups_[g], key);
        });
    return os.str();
}

std::string CampaignReport::render_json() const {
    std::ostringstream os;
    render::append_json_head(os, outcomes_.size(), failures_);
    for (std::size_t i = 0; i < outcomes_.size(); ++i) {
        if (i) os << ",";
        render::append_scenario_json(os, outcomes_[i]);
    }
    render::append_json_tail(
        os, [this](std::string_view key) { return summary(key); },
        group_facts(groups_),
        [this](std::size_t g, std::string_view key) {
            return group_summary(groups_[g], key);
        },
        metrics_json_);
    return os.str();
}

}  // namespace refpga::fleet
