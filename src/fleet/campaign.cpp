#include "refpga/fleet/campaign.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "refpga/analog/sample_block.hpp"
#include "refpga/analog/tank.hpp"
#include "refpga/app/activity.hpp"
#include "refpga/common/contracts.hpp"
#include "refpga/fleet/thread_pool.hpp"
#include "refpga/netlist/stats.hpp"
#include "refpga/par/router.hpp"
#include "refpga/power/estimator.hpp"

namespace refpga::fleet {

namespace {

// PAR closes slice-dominated Spartan-3 designs at ~93% utilization; same
// margin as bench_device_fit.
constexpr double kParHeadroom = 1.07;

VariantFit fit_from_stats(const std::vector<netlist::PartitionStats>& stats,
                          bool all_resident) {
    // Partition order of build_system_netlist: static, amp, capacity, filter.
    const netlist::PartitionStats& st = stats[0];
    std::size_t slices = st.slices();
    std::size_t ffs = st.ffs;
    std::size_t brams = st.brams;
    std::size_t mults = st.mults;
    if (all_resident) {
        for (std::size_t i = 1; i < stats.size(); ++i) {
            slices += stats[i].slices();
            ffs += stats[i].ffs;
            brams += stats[i].brams;
            mults += stats[i].mults;
        }
    } else {
        // One slot sized for the largest module; its FF/BRAM/MULT demand
        // rides along with the winning module.
        std::size_t best = 1;
        for (std::size_t i = 2; i < stats.size(); ++i)
            if (stats[i].slices() > stats[best].slices()) best = i;
        slices += stats[best].slices();
        ffs += stats[best].ffs;
        brams += stats[best].brams;
        mults += stats[best].mults;
    }

    VariantFit fit;
    fit.resident_slices = slices;
    fit.with_headroom =
        static_cast<std::size_t>(static_cast<double>(slices) * kParHeadroom);
    fit.resident_ffs = ffs;
    fit.fitted = fabric::smallest_fit(static_cast<int>(fit.with_headroom),
                                      static_cast<int>(brams),
                                      static_cast<int>(mults));
    return fit;
}

}  // namespace

VariantFit variant_fit(app::SystemVariant variant,
                       std::optional<sim::EngineKind> activity_engine) {
    app::SystemNetlistOptions options;
    if (variant == app::SystemVariant::Software) {
        // Processing runs on the soft core: only the static area is resident.
        options.include_amp = false;
        options.include_capacity = false;
        options.include_filter = false;
    }
    const app::SystemNetlist sys = app::build_system_netlist(options);
    const auto stats = netlist::partition_stats(sys.nl);
    VariantFit fit =
        fit_from_stats(stats, variant != app::SystemVariant::ReconfiguredHw);
    if (activity_engine) {
        // Simulated per-cycle toggle total of the resident logic, computed
        // once per variant and shared read-only by every scenario. At a
        // 1 Hz reference clock the summed activity rate IS toggles/cycle.
        app::ActivityOptions aopts;
        aopts.engine = *activity_engine;
        aopts.cycles = 64;
        aopts.via_vcd = false;
        const sim::ActivityMap activity = app::system_activity(sys.nl, 1.0, aopts);
        for (std::uint32_t i = 0; i < activity.size(); ++i)
            fit.toggles_per_cycle += activity.rate_hz(netlist::NetId{i});
    }
    return fit;
}

namespace {

// Campaign-level observability ids, interned once per run() so the workers
// only touch lock-free recording paths.
struct CampaignObs {
    obs::Recorder* rec = nullptr;
    obs::MetricId scenarios, failures, wall;
    std::uint32_t span = 0;
};

CampaignObs make_campaign_obs(obs::Recorder* rec) {
    CampaignObs c;
    c.rec = rec;
    if (rec == nullptr) return c;
    obs::MetricRegistry& m = rec->metrics();
    c.scenarios = m.counter("campaign.scenarios_total");
    c.failures = m.counter("campaign.scenario_failures_total");
    c.wall = m.histogram("campaign.scenario_wall_seconds",
                         {1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0});
    c.span = rec->trace().intern("campaign/scenario");
    return c;
}

ScenarioOutcome run_one(const Scenario& s, const std::array<VariantFit, 3>& fits,
                        const CampaignOptions& campaign, const CampaignObs& cobs) {
    ScenarioOutcome o;
    o.scenario = s;
    if (campaign.stop != nullptr &&
        campaign.stop->load(std::memory_order_relaxed)) {
        // Graceful shutdown: not-yet-started scenarios become diagnosable
        // failure records, so the report shows exactly what was skipped and
        // the campaign exits non-zero on an incomplete sweep.
        o.ok = false;
        o.error = "cancelled before start";
        if (cobs.rec != nullptr && cobs.rec->enabled()) {
            cobs.rec->metrics().add(cobs.scenarios);
            cobs.rec->metrics().add(cobs.failures);
        }
        return o;
    }
    obs::ScopedSpan scenario_span(cobs.rec, cobs.span, cobs.wall);
    try {
        if (campaign.scenario_probe) campaign.scenario_probe(s);
        REFPGA_EXPECTS(s.cycles > 0);
        REFPGA_EXPECTS(s.noise_rms_v >= 0.0);
        REFPGA_EXPECTS(s.fill.start_level >= 0.0 && s.fill.start_level <= 1.0);
        REFPGA_EXPECTS(s.fill.end_level >= 0.0 && s.fill.end_level <= 1.0);

        app::SystemOptions options;
        options.variant = s.variant;
        options.part = s.part;
        options.port = make_port(s.port);
        options.tank_noise_rms_v = s.noise_rms_v;
        options.fault = s.fault;
        options.stream_block_ticks = campaign.stream_block_ticks;
        options.recorder = campaign.recorder;
        app::MeasurementSystem system(options, s.seed);

        // One streaming buffer per worker thread, shared by every scenario
        // that worker runs: the sample window streams through warm storage
        // instead of reallocating per scenario. Scratch only — outcomes stay
        // independent of which worker (and hence which buffer) ran them.
        thread_local analog::SampleBlock stream_block;

        // Accuracy uses the per-cycle capacitance estimate inverted to a
        // level, not the filtered output: the EMA deliberately trails fill
        // ramps (it averages out sloshing), which would swamp short
        // campaigns with filter lag instead of pipeline error.
        analog::TankParams tank;
        tank.c_empty_pf = options.params.c_empty_pf;
        tank.c_full_pf = options.params.c_full_pf;
        tank.c_ref_pf = options.params.c_ref_pf;

        double err_sum = 0.0;
        double busy_sum = 0.0;
        for (int c = 0; c < s.cycles; ++c) {
            const double level = s.fill.level_at(c, s.cycles);
            system.set_true_level(level);
            const app::CycleReport report = system.run_cycle(stream_block);
            const double measured =
                analog::level_from_capacitance(tank, report.capacitance_pf);
            const double err = std::abs(measured - level);
            err_sum += err;
            o.level_error_max = std::max(o.level_error_max, err);
            busy_sum += report.busy_s();
        }
        o.level_error_mean = err_sum / s.cycles;
        o.cycle_busy_ms = busy_sum / s.cycles * 1e3;

        const reconfig::ReconfigController& ctrl = system.controller();
        o.reconfig_ms_per_cycle = ctrl.total_time_s() / s.cycles * 1e3;
        o.reconfig_energy_mj = ctrl.total_energy_mj();

        const fault::FaultStats& fs = system.fault_stats();
        o.upsets_injected = fs.upsets_injected;
        o.upsets_detected = fs.upsets_detected;
        o.columns_repaired = fs.columns_repaired;
        o.load_retries = fs.load_retries;
        o.load_failures = fs.load_failures;
        o.rejected_cycles = fs.rejected_cycles;
        o.fallback_cycles = fs.fallback_cycles;
        o.availability = fs.availability();
        o.mttd_ms = fs.mean_time_to_detect_s() * 1e3;
        o.mttr_ms = fs.mean_time_to_repair_s() * 1e3;
        o.scrub_ms_per_cycle = (fs.scrub_s + fs.repair_s) / s.cycles * 1e3;

        const fabric::Part& part = fabric::part(s.part);
        const VariantFit& fit = fits[static_cast<std::size_t>(s.variant)];
        o.resident_slices = fit.with_headroom;
        o.fitted_part = fit.fitted ? std::string(fabric::part(*fit.fitted).id) : "";
        o.device_fits = fit.with_headroom <= static_cast<std::size_t>(part.slices);

        // Power: part leakage + the clock tree of the resident sequential
        // logic (same first-order model as power::estimate_power) + the
        // reconfiguration energy amortized over the cycle period.
        const power::PowerOptions pw;
        const double clock_c_pf =
            pw.clock_trunk_pf +
            pw.clock_load_pf_per_ff * static_cast<double>(fit.resident_ffs);
        o.static_mw = part.static_power_mw();
        o.dynamic_mw = clock_c_pf * 1e-12 * pw.vdd * pw.vdd *
                           options.params.system_clock_hz * 1e3 +
                       o.reconfig_energy_mj /
                           (s.cycles * options.params.cycle_period_s);
        if (campaign.activity_engine) {
            // Simulated-activity logic term (CampaignOptions::activity_engine):
            // the variant's toggles/cycle at the scenario clock through an
            // average unrouted net load (campaigns run no PAR, so per-net
            // routed capacitance is not available here).
            constexpr double kAvgNetLoadPf = 1.2;
            o.dynamic_mw += par::switch_power_uw(
                                kAvgNetLoadPf,
                                fit.toggles_per_cycle *
                                    options.params.system_clock_hz,
                                pw.vdd) *
                            1e-3;
        }
        o.ok = true;
    } catch (const std::exception& e) {
        o.ok = false;
        o.error = e.what();
    } catch (...) {
        // A non-standard throw still becomes a failure record instead of
        // escaping into the worker thread and taking the campaign down.
        o.ok = false;
        o.error = "non-standard exception";
    }
    scenario_span.finish();
    if (cobs.rec != nullptr && cobs.rec->enabled()) {
        cobs.rec->metrics().add(cobs.scenarios);
        if (!o.ok) cobs.rec->metrics().add(cobs.failures);
    }
    return o;
}

}  // namespace

CampaignRunner::CampaignRunner(CampaignOptions options) : options_(options) {}

CampaignResult CampaignRunner::run(const std::vector<Scenario>& scenarios) const {
    // Resident-logic fits are shared by every scenario of a variant; compute
    // them once up front so workers only ever read them.
    std::array<VariantFit, 3> fits{};
    std::array<bool, 3> needed{};
    for (const Scenario& s : scenarios) needed[static_cast<std::size_t>(s.variant)] = true;
    for (std::size_t v = 0; v < needed.size(); ++v)
        if (needed[v])
            fits[v] = variant_fit(static_cast<app::SystemVariant>(v),
                                  options_.activity_engine);

    CampaignResult result;
    result.outcomes.resize(scenarios.size());
    const CampaignObs cobs = make_campaign_obs(options_.recorder);
    if (options_.threads <= 1) {
        for (std::size_t i = 0; i < scenarios.size(); ++i)
            result.outcomes[i] = run_one(scenarios[i], fits, options_, cobs);
        return result;
    }

    ThreadPool pool(options_.threads);
    for (std::size_t i = 0; i < scenarios.size(); ++i)
        pool.submit([&scenarios, &result, &fits, &cobs, i, this] {
            // Each job writes only its own slot: no synchronization needed.
            result.outcomes[i] = run_one(scenarios[i], fits, options_, cobs);
        });
    pool.wait_idle();
    return result;
}

}  // namespace refpga::fleet
