// Shared rendering primitives for campaign reports (private to refpga::fleet).
//
// CampaignReport::render_text/render_json and the streaming
// fleet::ReportAccumulator compose their output from the exact same pieces
// declared here, so the service-side merged report is byte-identical to the
// single-process one by construction: the per-scenario fragments, the float
// formatting path, the axis grouping rules and the summary/group tails all
// have one implementation.
#pragma once

#include <cstddef>
#include <functional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "refpga/common/interval_set.hpp"
#include "refpga/fleet/campaign.hpp"
#include "refpga/fleet/report.hpp"

namespace refpga::fleet::render {

/// Sweep axes reports group by, in grouping/rendering order.
inline constexpr std::string_view kAxes[] = {"variant", "part", "port", "noise",
                                             "upset_rate"};

/// One deterministic float-to-text path for every number in both renderings.
[[nodiscard]] std::string fmt(double v);
[[nodiscard]] std::string json_escape(std::string_view text);
/// Grouping value of one outcome on one axis ("variant", "part", "port",
/// "noise" or "upset_rate").
[[nodiscard]] std::string axis_value(const ScenarioOutcome& o,
                                     std::string_view axis);

// --- per-scenario fragments -------------------------------------------------

[[nodiscard]] std::vector<std::string> scenario_table_header();
[[nodiscard]] std::vector<std::string> scenario_row_cells(const ScenarioOutcome& o);
/// The scenario's JSON object (no surrounding comma).
void append_scenario_json(std::ostringstream& os, const ScenarioOutcome& o);

// --- report head and tails --------------------------------------------------

/// Group facts the tails need; summaries are pulled through the callbacks so
/// the streaming path can serve them from accumulated state.
struct GroupFacts {
    std::string axis;
    std::string value;
    std::size_t scenario_count = 0;
    std::size_t failures = 0;
};

using SummaryFn = std::function<MetricSummary(std::string_view key)>;
using GroupSummaryFn =
    std::function<MetricSummary(std::size_t group, std::string_view key)>;

void append_summary_json(std::ostringstream& os, const MetricSummary& s);

/// Partial-report annotation: the sweep size the run was supposed to cover
/// and the index ranges it never committed. A default-constructed value
/// (expected_count == 0) means "complete" and both heads render exactly
/// their pre-partial bytes — which is what keeps complete merged reports
/// byte-identical to CampaignReport's.
struct PartialFacts {
    std::size_t expected_count = 0;
    std::vector<IntervalSet::Interval> missing;

    [[nodiscard]] bool partial() const { return expected_count > 0; }
};

/// "campaign: N scenarios, M ok, F failed" + blank line; a partial report
/// adds an explicit "partial: N/G scenarios committed; missing: ..." line.
void append_text_head(std::ostringstream& os, std::size_t count,
                      std::size_t failures,
                      const PartialFacts& partial = {});
/// "failures:" block (only call when there is at least one failure). Lines
/// are appended per failed outcome via append_text_failure; close with a
/// blank line by the caller’s next section.
void append_text_failure(std::ostringstream& os, const ScenarioOutcome& o);
/// Summary table + grouped-by-axis table (everything after the failures
/// block in render_text).
void append_text_tail(std::ostringstream& os, const SummaryFn& summary,
                      const std::vector<GroupFacts>& groups,
                      const GroupSummaryFn& group_summary);

/// '{"campaign":{...},"scenarios":[' — scenario objects follow, comma-managed
/// by the caller. A partial report adds a "partial" member with the expected
/// count and the missing [first, last) ranges to the campaign object.
void append_json_head(std::ostringstream& os, std::size_t count,
                      std::size_t failures,
                      const PartialFacts& partial = {});
/// '],"summary":{...},"groups":[...]' plus the optional verbatim
/// "observability" member and the closing brace.
void append_json_tail(std::ostringstream& os, const SummaryFn& summary,
                      const std::vector<GroupFacts>& groups,
                      const GroupSummaryFn& group_summary,
                      const std::string& metrics_json);

}  // namespace refpga::fleet::render
