#include "refpga/fleet/report_stream.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "refpga/common/contracts.hpp"
#include "refpga/common/table.hpp"
#include "refpga/fleet/outcome_codec.hpp"
#include "report_render.hpp"

namespace refpga::fleet {

namespace {

constexpr std::size_t kAxisCount = std::size(render::kAxes);

/// Annotation for the render heads: empty unless the accumulator was
/// explicitly marked partial, so complete reports keep their exact bytes.
render::PartialFacts partial_facts(const ReportAccumulator& acc) {
    render::PartialFacts facts;
    if (acc.is_partial()) {
        facts.expected_count = acc.scenario_count();
        facts.missing = acc.covered().missing(acc.scenario_count());
    }
    return facts;
}

}  // namespace

ReportAccumulator::ReportAccumulator(std::size_t scenario_count,
                                     std::string spool_path)
    : scenario_count_(scenario_count),
      spool_path_(std::move(spool_path)),
      spool_out_(spool_path_, std::ios::binary | std::ios::trunc),
      metric_keys_(report_metric_keys()),
      widths_(Table::widths_of(render::scenario_table_header())),
      summary_values_(metric_keys_.size()) {
    if (!spool_out_)
        throw std::runtime_error("ReportAccumulator: cannot open spool file '" +
                                 spool_path_ + "'");
}

void ReportAccumulator::add(std::size_t first,
                            const std::vector<ScenarioOutcome>& batch) {
    REFPGA_EXPECTS(!batch.empty());
    REFPGA_EXPECTS(first + batch.size() <= scenario_count_);
    covered_.add(first, batch.size());  // throws on overlap before any commit

    const std::streamoff offset = spool_bytes_;
    for (std::size_t i = 0; i < batch.size(); ++i) {
        spool_out_ << encode_outcome_line(batch[i]) << '\n';
        reduce(first + i, batch[i]);
    }
    spool_out_.flush();
    if (!spool_out_)
        throw std::runtime_error("ReportAccumulator: spool write failed ('" +
                                 spool_path_ + "')");
    spool_bytes_ = spool_out_.tellp();
    segments_.push_back({first, batch.size(), offset});
    max_retained_rows_ = std::max(max_retained_rows_, batch.size());
}

void ReportAccumulator::add_encoded(std::size_t first,
                                    const std::vector<std::string>& lines) {
    REFPGA_EXPECTS(!lines.empty());
    // Decode the whole batch before committing anything: a malformed line
    // must not leave a half-merged batch behind.
    std::vector<ScenarioOutcome> batch;
    batch.reserve(lines.size());
    for (const std::string& line : lines) batch.push_back(decode_outcome_line(line));
    add(first, batch);
}

void ReportAccumulator::reduce(std::size_t index, const ScenarioOutcome& o) {
    Table::grow_widths(widths_, render::scenario_row_cells(o));
    if (!o.ok) ++failures_;
    if (o.ok)
        for (std::size_t k = 0; k < metric_keys_.size(); ++k)
            summary_values_[k].push_back(outcome_metric(o, metric_keys_[k]));

    for (std::size_t a = 0; a < kAxisCount; ++a) {
        std::string value = render::axis_value(o, render::kAxes[a]);
        const auto key = std::make_pair(a, value);
        auto it = group_index_.find(key);
        if (it == group_index_.end()) {
            GroupState g;
            g.axis = a;
            g.value = std::move(value);
            g.min_index = index;
            g.metric_values.resize(metric_keys_.size());
            groups_.push_back(std::move(g));
            it = group_index_.emplace(key, groups_.size() - 1).first;
        }
        GroupState& g = groups_[it->second];
        g.min_index = std::min(g.min_index, index);
        ++g.count;
        if (!o.ok) {
            ++g.failures;
        } else {
            for (std::size_t k = 0; k < metric_keys_.size(); ++k)
                g.metric_values[k].push_back(outcome_metric(o, metric_keys_[k]));
        }
    }
}

std::vector<const ReportAccumulator::Segment*>
ReportAccumulator::ordered_segments() const {
    std::vector<const Segment*> ordered;
    ordered.reserve(segments_.size());
    for (const Segment& s : segments_) ordered.push_back(&s);
    std::sort(ordered.begin(), ordered.end(),
              [](const Segment* a, const Segment* b) { return a->first < b->first; });
    return ordered;
}

template <typename Fn>
void ReportAccumulator::for_each_committed(Fn&& fn) const {
    spool_out_.flush();
    std::ifstream in(spool_path_, std::ios::binary);
    if (!in)
        throw std::runtime_error("ReportAccumulator: cannot reopen spool '" +
                                 spool_path_ + "'");
    std::string line;
    for (const Segment* seg : ordered_segments()) {
        in.seekg(seg->offset);
        for (std::size_t i = 0; i < seg->count; ++i) {
            if (!std::getline(in, line))
                throw std::runtime_error(
                    "ReportAccumulator: spool truncated mid-segment ('" +
                    spool_path_ + "')");
            fn(seg->first + i, decode_outcome_line(line));
        }
    }
}

MetricSummary ReportAccumulator::summary_of(std::string_view key) const {
    for (std::size_t k = 0; k < metric_keys_.size(); ++k)
        if (metric_keys_[k] == key) return MetricSummary::of(summary_values_[k]);
    REFPGA_EXPECTS(false && "unknown report metric key");
    return {};
}

std::vector<std::size_t> ReportAccumulator::ordered_groups() const {
    // CampaignReport::from discovers groups axis-major, then in first-
    // occurrence (i.e. smallest-member-index) order within each axis.
    std::vector<std::size_t> order(groups_.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
        if (groups_[a].axis != groups_[b].axis)
            return groups_[a].axis < groups_[b].axis;
        return groups_[a].min_index < groups_[b].min_index;
    });
    return order;
}

std::string ReportAccumulator::render_text() const {
    const std::vector<std::size_t> order = ordered_groups();
    std::vector<render::GroupFacts> facts;
    facts.reserve(order.size());
    for (const std::size_t g : order)
        facts.push_back({std::string(render::kAxes[groups_[g].axis]),
                         groups_[g].value, groups_[g].count, groups_[g].failures});

    std::ostringstream os;
    render::append_text_head(os, committed(), failures_, partial_facts(*this));

    Table::emit_rule(os, widths_);
    Table::emit_row(os, widths_, render::scenario_table_header());
    Table::emit_rule(os, widths_);
    for_each_committed([&](std::size_t, const ScenarioOutcome& o) {
        Table::emit_row(os, widths_, render::scenario_row_cells(o));
    });
    Table::emit_rule(os, widths_);
    os << "\n";

    if (failures_ > 0) {
        os << "failures:\n";
        for_each_committed([&](std::size_t, const ScenarioOutcome& o) {
            if (!o.ok) render::append_text_failure(os, o);
        });
        os << "\n";
    }

    render::append_text_tail(
        os, [this](std::string_view key) { return summary_of(key); }, facts,
        [&](std::size_t g, std::string_view key) {
            const GroupState& group = groups_[order[g]];
            for (std::size_t k = 0; k < metric_keys_.size(); ++k)
                if (metric_keys_[k] == key)
                    return MetricSummary::of(group.metric_values[k]);
            REFPGA_EXPECTS(false && "unknown report metric key");
            return MetricSummary{};
        });
    return os.str();
}

std::string ReportAccumulator::render_json() const {
    const std::vector<std::size_t> order = ordered_groups();
    std::vector<render::GroupFacts> facts;
    facts.reserve(order.size());
    for (const std::size_t g : order)
        facts.push_back({std::string(render::kAxes[groups_[g].axis]),
                         groups_[g].value, groups_[g].count, groups_[g].failures});

    std::ostringstream os;
    render::append_json_head(os, committed(), failures_, partial_facts(*this));
    bool first = true;
    for_each_committed([&](std::size_t, const ScenarioOutcome& o) {
        if (!first) os << ",";
        first = false;
        render::append_scenario_json(os, o);
    });
    render::append_json_tail(
        os, [this](std::string_view key) { return summary_of(key); }, facts,
        [&](std::size_t g, std::string_view key) {
            const GroupState& group = groups_[order[g]];
            for (std::size_t k = 0; k < metric_keys_.size(); ++k)
                if (metric_keys_[k] == key)
                    return MetricSummary::of(group.metric_values[k]);
            REFPGA_EXPECTS(false && "unknown report metric key");
            return MetricSummary{};
        },
        metrics_json_);
    return os.str();
}

}  // namespace refpga::fleet
