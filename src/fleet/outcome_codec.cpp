#include "refpga/fleet/outcome_codec.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "report_render.hpp"

namespace refpga::fleet {

namespace {

std::string hexfloat(double v) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%a", v);
    return buf;
}

void append_string(std::ostringstream& os, const char* key,
                   const std::string& value) {
    os << "\"" << key << "\":\"" << render::json_escape(value) << "\"";
}

void append_double(std::ostringstream& os, const char* key, double value) {
    os << "\"" << key << "\":\"" << hexfloat(value) << "\"";
}

/// Sequential scanner over one encoded line. Every expectation that fails
/// throws CodecError with the position, so a corrupt checkpoint or wire
/// frame is diagnosable rather than silently misread.
class Scanner {
public:
    explicit Scanner(std::string_view text) : text_(text) {}

    void expect(std::string_view literal) {
        if (text_.substr(pos_, literal.size()) != literal)
            fail(std::string("expected '") + std::string(literal) + "'");
        pos_ += literal.size();
    }

    [[nodiscard]] std::string quoted_string() {
        expect("\"");
        std::string out;
        while (true) {
            if (pos_ >= text_.size()) fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"') return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size()) fail("truncated escape");
            const char e = text_[pos_++];
            switch (e) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case 'n': out += '\n'; break;
                case 't': out += '\t'; break;
                case 'u': {
                    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
                        else fail("bad \\u escape digit");
                    }
                    // The encoder only emits \u00xx for control bytes.
                    if (code > 0xff) fail("unsupported \\u escape");
                    out += static_cast<char>(code);
                    break;
                }
                default: fail("unknown escape");
            }
        }
    }

    [[nodiscard]] double hex_double() {
        const std::string text = quoted_string();
        const char* begin = text.c_str();
        char* end = nullptr;
        const double v = std::strtod(begin, &end);
        if (end == begin || *end != '\0') fail("bad hexfloat '" + text + "'");
        return v;
    }

    [[nodiscard]] long long integer() {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
        while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
            ++pos_;
        if (pos_ == start) fail("expected integer");
        const std::string digits(text_.substr(start, pos_ - start));
        errno = 0;
        char* end = nullptr;
        const long long v = std::strtoll(digits.c_str(), &end, 10);
        if (errno != 0 || end == digits.c_str() || *end != '\0')
            fail("integer out of range");
        return v;
    }

    [[nodiscard]] std::uint64_t unsigned64() {
        const std::size_t start = pos_;
        while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
            ++pos_;
        if (pos_ == start) fail("expected unsigned integer");
        const std::string digits(text_.substr(start, pos_ - start));
        errno = 0;
        char* end = nullptr;
        const unsigned long long v = std::strtoull(digits.c_str(), &end, 10);
        if (errno != 0) fail("unsigned integer out of range");
        return v;
    }

    [[nodiscard]] bool boolean() {
        if (text_.substr(pos_, 4) == "true") {
            pos_ += 4;
            return true;
        }
        if (text_.substr(pos_, 5) == "false") {
            pos_ += 5;
            return false;
        }
        fail("expected boolean");
        return false;
    }

    void expect_end() {
        if (pos_ != text_.size()) fail("trailing bytes after outcome object");
    }

private:
    [[noreturn]] void fail(const std::string& why) const {
        throw CodecError("outcome line byte " + std::to_string(pos_) + ": " + why);
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

}  // namespace

std::string encode_outcome_line(const ScenarioOutcome& o) {
    const Scenario& s = o.scenario;
    std::ostringstream os;
    os << "{";
    append_string(os, "name", s.name);
    os << ",\"variant\":" << static_cast<int>(s.variant)
       << ",\"part\":" << static_cast<int>(s.part)
       << ",\"port\":" << static_cast<int>(s.port) << ",";
    append_double(os, "fill_start", s.fill.start_level);
    os << ",";
    append_double(os, "fill_end", s.fill.end_level);
    os << ",";
    append_double(os, "noise_rms_v", s.noise_rms_v);
    os << ",";
    append_double(os, "upset_rate", s.fault.upset_rate_per_column_s);
    os << ",";
    append_double(os, "load_corruption_prob", s.fault.load_corruption_prob);
    os << ",";
    append_double(os, "flash_error_prob", s.fault.flash_error_prob);
    os << ",";
    append_double(os, "glitch_prob_per_cycle", s.fault.glitch_prob_per_cycle);
    os << ",\"cycles\":" << s.cycles << ",\"seed\":" << s.seed
       << ",\"ok\":" << (o.ok ? "true" : "false") << ",";
    append_string(os, "error", o.error);
    os << ",";
    append_double(os, "level_error_mean", o.level_error_mean);
    os << ",";
    append_double(os, "level_error_max", o.level_error_max);
    os << ",";
    append_double(os, "cycle_busy_ms", o.cycle_busy_ms);
    os << ",";
    append_double(os, "reconfig_ms_per_cycle", o.reconfig_ms_per_cycle);
    os << ",";
    append_double(os, "static_mw", o.static_mw);
    os << ",";
    append_double(os, "dynamic_mw", o.dynamic_mw);
    os << ",";
    append_double(os, "reconfig_energy_mj", o.reconfig_energy_mj);
    os << ",\"upsets_injected\":" << o.upsets_injected
       << ",\"upsets_detected\":" << o.upsets_detected
       << ",\"columns_repaired\":" << o.columns_repaired
       << ",\"load_retries\":" << o.load_retries
       << ",\"load_failures\":" << o.load_failures
       << ",\"rejected_cycles\":" << o.rejected_cycles
       << ",\"fallback_cycles\":" << o.fallback_cycles << ",";
    append_double(os, "availability", o.availability);
    os << ",";
    append_double(os, "mttd_ms", o.mttd_ms);
    os << ",";
    append_double(os, "mttr_ms", o.mttr_ms);
    os << ",";
    append_double(os, "scrub_ms_per_cycle", o.scrub_ms_per_cycle);
    os << ",\"resident_slices\":" << o.resident_slices << ",";
    append_string(os, "fitted_part", o.fitted_part);
    os << ",\"device_fits\":" << (o.device_fits ? "true" : "false") << "}";
    return os.str();
}

ScenarioOutcome decode_outcome_line(std::string_view line) {
    Scanner in(line);
    ScenarioOutcome o;
    Scenario& s = o.scenario;

    const auto ranged_int = [&](long long v, long long lo, long long hi,
                                const char* what) {
        if (v < lo || v > hi)
            throw CodecError(std::string(what) + " out of range: " +
                             std::to_string(v));
        return static_cast<int>(v);
    };

    in.expect("{\"name\":");
    s.name = in.quoted_string();
    in.expect(",\"variant\":");
    s.variant = static_cast<app::SystemVariant>(
        ranged_int(in.integer(), 0, 2, "variant"));
    in.expect(",\"part\":");
    s.part = static_cast<fabric::PartName>(
        ranged_int(in.integer(), 0,
                   static_cast<int>(fabric::PartName::XC3S5000), "part"));
    in.expect(",\"port\":");
    s.port = static_cast<PortKind>(ranged_int(in.integer(), 0, 3, "port"));
    in.expect(",\"fill_start\":");
    s.fill.start_level = in.hex_double();
    in.expect(",\"fill_end\":");
    s.fill.end_level = in.hex_double();
    in.expect(",\"noise_rms_v\":");
    s.noise_rms_v = in.hex_double();
    in.expect(",\"upset_rate\":");
    s.fault.upset_rate_per_column_s = in.hex_double();
    in.expect(",\"load_corruption_prob\":");
    s.fault.load_corruption_prob = in.hex_double();
    in.expect(",\"flash_error_prob\":");
    s.fault.flash_error_prob = in.hex_double();
    in.expect(",\"glitch_prob_per_cycle\":");
    s.fault.glitch_prob_per_cycle = in.hex_double();
    in.expect(",\"cycles\":");
    s.cycles = ranged_int(in.integer(), 0, 1'000'000'000, "cycles");
    in.expect(",\"seed\":");
    s.seed = in.unsigned64();
    in.expect(",\"ok\":");
    o.ok = in.boolean();
    in.expect(",\"error\":");
    o.error = in.quoted_string();
    in.expect(",\"level_error_mean\":");
    o.level_error_mean = in.hex_double();
    in.expect(",\"level_error_max\":");
    o.level_error_max = in.hex_double();
    in.expect(",\"cycle_busy_ms\":");
    o.cycle_busy_ms = in.hex_double();
    in.expect(",\"reconfig_ms_per_cycle\":");
    o.reconfig_ms_per_cycle = in.hex_double();
    in.expect(",\"static_mw\":");
    o.static_mw = in.hex_double();
    in.expect(",\"dynamic_mw\":");
    o.dynamic_mw = in.hex_double();
    in.expect(",\"reconfig_energy_mj\":");
    o.reconfig_energy_mj = in.hex_double();
    in.expect(",\"upsets_injected\":");
    o.upsets_injected = in.integer();
    in.expect(",\"upsets_detected\":");
    o.upsets_detected = in.integer();
    in.expect(",\"columns_repaired\":");
    o.columns_repaired = in.integer();
    in.expect(",\"load_retries\":");
    o.load_retries = in.integer();
    in.expect(",\"load_failures\":");
    o.load_failures = in.integer();
    in.expect(",\"rejected_cycles\":");
    o.rejected_cycles = in.integer();
    in.expect(",\"fallback_cycles\":");
    o.fallback_cycles = in.integer();
    in.expect(",\"availability\":");
    o.availability = in.hex_double();
    in.expect(",\"mttd_ms\":");
    o.mttd_ms = in.hex_double();
    in.expect(",\"mttr_ms\":");
    o.mttr_ms = in.hex_double();
    in.expect(",\"scrub_ms_per_cycle\":");
    o.scrub_ms_per_cycle = in.hex_double();
    in.expect(",\"resident_slices\":");
    o.resident_slices = static_cast<std::size_t>(in.unsigned64());
    in.expect(",\"fitted_part\":");
    o.fitted_part = in.quoted_string();
    in.expect(",\"device_fits\":");
    o.device_fits = in.boolean();
    in.expect("}");
    in.expect_end();
    return o;
}

}  // namespace refpga::fleet
