#include "refpga/fabric/device.hpp"

#include <cmath>
#include <cstdlib>

#include "refpga/common/contracts.hpp"

namespace refpga::fabric {

Device::Device(PartName name) : part_(refpga::fabric::part(name)) {
    // The full bitstream covers every CLB column plus a fixed number of
    // special columns (IOB/GCLK/BRAM); special columns are modelled with the
    // same per-column cost, so:
    //   config_bits = bits_per_column * (clb_cols + kExtraConfigColumns)
    bits_per_clb_column_ = part_.config_bits / (part_.clb_cols + kExtraConfigColumns);

    // BRAM columns: smaller parts have 2 columns near the die edges, larger
    // parts 4. Blocks are distributed evenly over a column's height.
    const int bram_columns = part_.bram_blocks <= 16 ? 2 : 4;
    const int per_column = part_.bram_blocks / bram_columns;
    for (int c = 0; c < bram_columns; ++c) {
        const int x = (part_.clb_cols * (2 * c + 1)) / (2 * bram_columns);
        for (int i = 0; i < per_column; ++i) {
            const int y = (part_.clb_rows * (2 * i + 1)) / (2 * per_column);
            bram_sites_.push_back({x, y, 0});
            // MULT18 shares the interconnect tile right of its BRAM partner.
            mult_sites_.push_back({x + 1 < part_.clb_cols ? x + 1 : x - 1, y, 0});
        }
    }
}

bool Device::valid_slice(const SliceCoord& s) const {
    return s.x >= 0 && s.x < cols() && s.y >= 0 && s.y < rows() && s.index >= 0 &&
           s.index < kSlicesPerClb;
}

std::int64_t Device::partial_bits(int x_begin, int x_end) const {
    REFPGA_EXPECTS(x_begin >= 0 && x_begin < x_end && x_end <= cols());
    return bits_per_clb_column_ * (x_end - x_begin);
}

int Device::distance(const SliceCoord& a, const SliceCoord& b) {
    return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

}  // namespace refpga::fabric
