#include "refpga/fabric/wire.hpp"

#include "refpga/common/contracts.hpp"

namespace refpga::fabric {

namespace {

// Capacitance per segment grows faster than linearly with span because longer
// segments pass more switch boxes; delay per *tile reached* still falls with
// span, making long lines the performance choice and short lines the
// low-power choice.
constexpr std::array<WireParams, kWireTypeCount> kWireParams{{
    {WireType::Direct, 1, 0.18, 180.0},
    {WireType::Double, 2, 0.42, 260.0},
    {WireType::Hex, 6, 1.45, 480.0},
    {WireType::Long, 24, 6.80, 950.0},
}};

}  // namespace

const WireParams& wire_params(WireType type) {
    const auto idx = static_cast<int>(type);
    REFPGA_EXPECTS(idx >= 0 && idx < kWireTypeCount);
    return kWireParams[static_cast<std::size_t>(idx)];
}

std::string_view wire_type_name(WireType type) {
    switch (type) {
        case WireType::Direct: return "direct";
        case WireType::Double: return "double";
        case WireType::Hex: return "hex";
        case WireType::Long: return "long";
    }
    return "?";
}

std::array<WireType, kWireTypeCount> all_wire_types() {
    return {WireType::Direct, WireType::Double, WireType::Hex, WireType::Long};
}

}  // namespace refpga::fabric
