#include "refpga/fabric/part.hpp"

#include <array>

#include "refpga/common/contracts.hpp"

namespace refpga::fabric {

namespace {

// Geometry from DS099 Table 1; quiescent current and unit cost are model
// calibrations (DS099 gives typical Iccintq in the tens of mA, growing with
// density; prices reflect 2007-era volume pricing used for the paper's
// cost argument).
constexpr std::array<Part, 8> kParts{{
    {PartName::XC3S50,   "xc3s50",   16,  12,   768,   4,   4, 2,    439264,  12.0,  4.0},
    {PartName::XC3S200,  "xc3s200",  24,  20,  1920,  12,  12, 4,   1047616,  18.0,  7.5},
    {PartName::XC3S400,  "xc3s400",  32,  28,  3584,  16,  16, 4,   1699136,  26.0, 12.0},
    {PartName::XC3S1000, "xc3s1000", 48,  40,  7680,  24,  24, 4,   3223488,  44.0, 24.0},
    {PartName::XC3S1500, "xc3s1500", 64,  52, 13312,  32,  32, 4,   5214784,  68.0, 42.0},
    {PartName::XC3S2000, "xc3s2000", 80,  64, 20480,  40,  40, 4,   7673024,  96.0, 65.0},
    {PartName::XC3S4000, "xc3s4000", 96,  72, 27648,  96,  96, 4,  11316864, 130.0, 98.0},
    {PartName::XC3S5000, "xc3s5000", 104, 80, 33280, 104, 104, 4,  13271936, 155.0, 125.0},
}};

}  // namespace

std::span<const Part> spartan3_parts() { return kParts; }

const Part& part(PartName name) {
    for (const Part& p : kParts)
        if (p.name == name) return p;
    REFPGA_EXPECTS(false && "unknown part");
    return kParts[0];  // unreachable
}

std::optional<PartName> parse_part(std::string_view id) {
    for (const Part& p : kParts)
        if (p.id == id) return p.name;
    return std::nullopt;
}

std::optional<PartName> smallest_fit(int slices, int brams, int mults) {
    for (const Part& p : kParts)
        if (p.slices >= slices && p.bram_blocks >= brams && p.multipliers >= mults)
            return p.name;
    return std::nullopt;
}

}  // namespace refpga::fabric
