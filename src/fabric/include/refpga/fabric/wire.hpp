// Routing wire types and their electrical model.
//
// Spartan-3 interconnect offers several segment lengths. Longer segments reach
// further per hop (better delay) but load the driver with more metal and more
// switch-box capacitance, which is exactly the trade-off §4.3 of the paper
// exploits: re-routing a high-activity net from long lines onto direct/double
// lines cuts its switched capacitance and thus its dynamic power.
#pragma once

#include <array>
#include <string_view>

namespace refpga::fabric {

enum class WireType : int {
    Direct,  ///< direct connect to a neighbouring tile (span 1)
    Double,  ///< double line, spans 2 tiles
    Hex,     ///< hex line, spans 6 tiles
    Long,    ///< long line, spans a full row/column (modelled as 24 tiles)
};

inline constexpr int kWireTypeCount = 4;

struct WireParams {
    WireType type;
    int span;               ///< tiles traversed per segment
    double capacitance_pf;  ///< total switched capacitance per segment
    double delay_ps;        ///< driver + segment delay per segment
};

/// Electrical parameters per wire type (calibrated model values; see DESIGN.md).
[[nodiscard]] const WireParams& wire_params(WireType type);

[[nodiscard]] std::string_view wire_type_name(WireType type);

/// All wire types, shortest first.
[[nodiscard]] std::array<WireType, kWireTypeCount> all_wire_types();

}  // namespace refpga::fabric
