// Xilinx Spartan-3 part catalog (geometry and electrical parameters).
//
// Geometry (CLB array, slices, BRAM/MULT18 counts, configuration bits) follows
// DS099 "Spartan-3 FPGA Family Data Sheet". Electrical parameters (core
// voltage, leakage) are calibrated model values: DS099 quotes typical
// quiescent current per part; we store it as static power at Vccint = 1.2 V so
// that the paper's device-downsizing argument (smaller part => lower static
// power) is quantitative.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

namespace refpga::fabric {

enum class PartName {
    XC3S50,
    XC3S200,
    XC3S400,
    XC3S1000,
    XC3S1500,
    XC3S2000,
    XC3S4000,
    XC3S5000,
};

struct Part {
    PartName name;
    std::string_view id;      ///< e.g. "xc3s400"
    int clb_rows;             ///< CLB array height
    int clb_cols;             ///< CLB array width
    int slices;               ///< total slices (= rows * cols * 4)
    int bram_blocks;          ///< 18-kbit block RAMs
    int multipliers;          ///< dedicated 18x18 multipliers
    int dcms;                 ///< digital clock managers
    std::int64_t config_bits; ///< full-device configuration bitstream size
    double quiescent_ma;      ///< typical quiescent Icc at 1.2 V (model value)
    double unit_cost_usd;     ///< volume unit price (2007-era, model value)

    /// Static power in milliwatts at Vccint = 1.2 V.
    [[nodiscard]] double static_power_mw() const { return quiescent_ma * 1.2; }

    /// 18-kbit BRAM capacity in bytes (data bits only).
    [[nodiscard]] std::int64_t bram_bytes() const { return bram_blocks * 18432 / 8; }
};

/// All Spartan-3 parts, smallest first.
[[nodiscard]] std::span<const Part> spartan3_parts();

/// Catalog lookup by enumerator.
[[nodiscard]] const Part& part(PartName name);

/// Catalog lookup by id string ("xc3s400"); empty optional if unknown.
[[nodiscard]] std::optional<PartName> parse_part(std::string_view id);

/// Smallest part satisfying all resource demands; empty optional if none fits.
[[nodiscard]] std::optional<PartName> smallest_fit(int slices, int brams, int mults);

}  // namespace refpga::fabric
