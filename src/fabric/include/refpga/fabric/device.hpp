// Device model: the CLB/slice grid, BRAM/MULT18 sites and configuration
// column geometry of a concrete Spartan-3 part.
//
// Spartan-3 configures in full-height column frames; a partial bitstream
// therefore always covers a contiguous range of whole columns. That real
// constraint shapes the paper's floorplan (static and dynamic areas are
// vertical slabs, Fig. 2/5) and is enforced here.
#pragma once

#include <cstdint>
#include <vector>

#include "refpga/common/strong_id.hpp"
#include "refpga/fabric/part.hpp"
#include "refpga/fabric/wire.hpp"

namespace refpga::fabric {

/// Location of one slice: CLB tile (x, y) plus slice index 0..3 within it.
struct SliceCoord {
    int x = 0;
    int y = 0;
    int index = 0;

    friend constexpr bool operator==(const SliceCoord&, const SliceCoord&) = default;
};

/// Rectangular region of whole CLB columns [x_begin, x_end) x rows [y_begin, y_end).
struct Region {
    int x_begin = 0;
    int x_end = 0;
    int y_begin = 0;
    int y_end = 0;

    [[nodiscard]] int width() const { return x_end - x_begin; }
    [[nodiscard]] int height() const { return y_end - y_begin; }
    [[nodiscard]] bool contains(int x, int y) const {
        return x >= x_begin && x < x_end && y >= y_begin && y < y_end;
    }
    [[nodiscard]] int slice_capacity() const { return width() * height() * 4; }

    friend constexpr bool operator==(const Region&, const Region&) = default;
};

class Device {
public:
    static constexpr int kSlicesPerClb = 4;
    static constexpr int kLutsPerSlice = 2;
    static constexpr int kFfsPerSlice = 2;
    /// Non-CLB configuration columns (IOB, GCLK, BRAM interconnect) per device.
    static constexpr int kExtraConfigColumns = 8;

    explicit Device(PartName name);

    [[nodiscard]] const Part& part() const { return part_; }
    [[nodiscard]] int rows() const { return part_.clb_rows; }
    [[nodiscard]] int cols() const { return part_.clb_cols; }
    [[nodiscard]] int slice_count() const { return part_.slices; }

    [[nodiscard]] Region full_region() const { return {0, cols(), 0, rows()}; }
    [[nodiscard]] bool valid_slice(const SliceCoord& s) const;

    /// BRAM site coordinates (one per 18-kbit block); columns follow DS099
    /// (two block-RAM columns for the smaller parts, spread across the die).
    [[nodiscard]] const std::vector<SliceCoord>& bram_sites() const { return bram_sites_; }
    /// MULT18 sites are adjacent to their BRAM partner.
    [[nodiscard]] const std::vector<SliceCoord>& mult_sites() const { return mult_sites_; }

    // --- configuration geometry -------------------------------------------

    /// Bits needed to configure one CLB column (full height).
    [[nodiscard]] std::int64_t bits_per_clb_column() const { return bits_per_clb_column_; }

    /// Bits of a partial bitstream covering CLB columns [x_begin, x_end).
    [[nodiscard]] std::int64_t partial_bits(int x_begin, int x_end) const;

    /// Bits of the full-device bitstream (matches the part's config_bits).
    [[nodiscard]] std::int64_t full_bits() const { return part_.config_bits; }

    /// Manhattan distance between two slice locations, in tiles.
    [[nodiscard]] static int distance(const SliceCoord& a, const SliceCoord& b);

private:
    Part part_;
    std::int64_t bits_per_clb_column_ = 0;
    std::vector<SliceCoord> bram_sites_;
    std::vector<SliceCoord> mult_sites_;
};

}  // namespace refpga::fabric
