#include "refpga/soc/assembler.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "refpga/common/contracts.hpp"

namespace refpga::soc {

namespace {

struct Token {
    std::string text;
};

std::string strip(const std::string& s) {
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
    return s.substr(b, e - b);
}

std::string lower(std::string s) {
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    return s;
}

/// Splits "add r1, r2, r3" into mnemonic + operand list.
void split_statement(const std::string& stmt, std::string& mnem,
                     std::vector<std::string>& operands) {
    const std::size_t sp = stmt.find_first_of(" \t");
    mnem = lower(stmt.substr(0, sp));
    operands.clear();
    if (sp == std::string::npos) return;
    std::string rest = stmt.substr(sp + 1);
    std::stringstream ss(rest);
    std::string item;
    while (std::getline(ss, item, ',')) {
        item = strip(item);
        if (!item.empty()) operands.push_back(item);
    }
}

class Assembler {
public:
    explicit Assembler(const std::string& source) : source_(source) {}

    Program run() {
        pass(/*emit=*/false);
        pass(/*emit=*/true);
        return std::move(program_);
    }

private:
    [[noreturn]] void fail(const std::string& message) const {
        throw ContractViolation("asm line " + std::to_string(line_no_) + ": " +
                                message);
    }

    std::uint8_t parse_register(const std::string& text) const {
        const std::string t = lower(strip(text));
        if (t.size() < 2 || t[0] != 'r') fail("expected register, got '" + text + "'");
        int n = 0;
        for (std::size_t i = 1; i < t.size(); ++i) {
            if (std::isdigit(static_cast<unsigned char>(t[i])) == 0)
                fail("bad register '" + text + "'");
            n = n * 10 + (t[i] - '0');
        }
        if (n < 0 || n > 31) fail("register out of range '" + text + "'");
        return static_cast<std::uint8_t>(n);
    }

    /// Values: number, label, hi(x), lo(x).
    std::int64_t parse_value(const std::string& text, bool emit) const {
        const std::string t = strip(text);
        if (t.rfind("hi(", 0) == 0 && t.back() == ')')
            return (parse_value(t.substr(3, t.size() - 4), emit) >> 16) & 0xFFFF;
        if (t.rfind("lo(", 0) == 0 && t.back() == ')')
            return parse_value(t.substr(3, t.size() - 4), emit) & 0xFFFF;
        if (!t.empty() && (std::isdigit(static_cast<unsigned char>(t[0])) != 0 ||
                           t[0] == '-' || t[0] == '+')) {
            try {
                return std::stoll(t, nullptr, 0);
            } catch (const std::exception&) {
                fail("bad number '" + text + "'");
            }
        }
        const auto it = program_.labels.find(t);
        if (it == program_.labels.end()) {
            if (emit) fail("unknown label '" + t + "'");
            return 0;  // first pass: labels may be forward references
        }
        return it->second;
    }

    void emit_word(std::uint32_t word, bool emit) {
        if (emit) program_.words[addr_] = word;
        addr_ += 4;
    }

    void handle_directive(const std::string& mnem,
                          const std::vector<std::string>& operands, bool emit) {
        if (mnem == ".org") {
            if (operands.size() != 1) fail(".org needs one operand");
            addr_ = static_cast<std::uint32_t>(parse_value(operands[0], emit));
        } else if (mnem == ".word") {
            if (operands.empty()) fail(".word needs operands");
            for (const auto& op : operands)
                emit_word(static_cast<std::uint32_t>(parse_value(op, emit)), emit);
        } else if (mnem == ".space") {
            if (operands.size() != 1) fail(".space needs one operand");
            const auto bytes = parse_value(operands[0], emit);
            if (bytes < 0 || bytes % 4 != 0) fail(".space must be a multiple of 4");
            for (std::int64_t i = 0; i < bytes; i += 4) emit_word(0, emit);
        } else {
            fail("unknown directive '" + mnem + "'");
        }
    }

    void handle_instruction(const std::string& mnem,
                            const std::vector<std::string>& operands, bool emit) {
        const auto op = parse_mnemonic(mnem);
        if (!op) fail("unknown mnemonic '" + mnem + "'");
        Instruction insn;
        insn.op = *op;

        auto imm_of = [&](const std::string& text) {
            return static_cast<std::int32_t>(parse_value(text, emit));
        };
        auto branch_off = [&](const std::string& text) {
            const auto target = parse_value(text, emit);
            return static_cast<std::int32_t>(target - (addr_ + 4));
        };
        auto need = [&](std::size_t n) {
            if (operands.size() != n)
                fail(mnem + " expects " + std::to_string(n) + " operands");
        };

        switch (insn.op) {
            case Opcode::Add:
            case Opcode::Sub:
            case Opcode::Mul:
            case Opcode::Mulh:
            case Opcode::And:
            case Opcode::Or:
            case Opcode::Xor:
            case Opcode::Sll:
            case Opcode::Srl:
            case Opcode::Sra:
                need(3);
                insn.rd = parse_register(operands[0]);
                insn.ra = parse_register(operands[1]);
                insn.rb = parse_register(operands[2]);
                break;
            case Opcode::Addi:
            case Opcode::Andi:
            case Opcode::Ori:
            case Opcode::Xori:
            case Opcode::Slli:
            case Opcode::Srli:
            case Opcode::Srai:
            case Opcode::Lw:
            case Opcode::Sw:
                need(3);
                insn.rd = parse_register(operands[0]);
                insn.ra = parse_register(operands[1]);
                insn.imm = imm_of(operands[2]);
                break;
            case Opcode::Lui:
                need(2);
                insn.rd = parse_register(operands[0]);
                insn.imm = imm_of(operands[1]);
                break;
            case Opcode::Beq:
            case Opcode::Bne:
            case Opcode::Blt:
            case Opcode::Bge:
            case Opcode::Bltu:
            case Opcode::Bgeu:
                need(3);
                insn.ra = parse_register(operands[0]);
                insn.rd = parse_register(operands[1]);  // rb lives in the rd slot
                insn.imm = branch_off(operands[2]);
                break;
            case Opcode::Br:
            case Opcode::Brl:
                need(1);
                insn.imm = branch_off(operands[0]);
                break;
            case Opcode::Jr:
                need(1);
                insn.ra = parse_register(operands[0]);
                break;
            case Opcode::Get:
                need(2);
                insn.rd = parse_register(operands[0]);
                insn.imm = imm_of(operands[1]);
                break;
            case Opcode::Put:
                need(2);
                insn.ra = parse_register(operands[0]);
                insn.imm = imm_of(operands[1]);
                break;
            case Opcode::Halt:
                need(0);
                break;
        }
        if (!emit && has_immediate(insn.op)) insn.imm = 0;  // placeholder pass
        emit_word(encode(insn), emit);
    }

    void pass(bool emit) {
        addr_ = 0;
        line_no_ = 0;
        std::istringstream is(source_);
        std::string raw;
        while (std::getline(is, raw)) {
            ++line_no_;
            // Strip comments.
            const std::size_t comment = raw.find_first_of(";#");
            std::string stmt = strip(comment == std::string::npos
                                         ? raw
                                         : raw.substr(0, comment));
            if (stmt.empty()) continue;
            // Labels (possibly followed by a statement on the same line).
            const std::size_t colon = stmt.find(':');
            if (colon != std::string::npos &&
                stmt.find_first_of(" \t") > colon) {
                const std::string label = strip(stmt.substr(0, colon));
                if (label.empty()) fail("empty label");
                if (!emit) {
                    if (program_.labels.count(label) != 0)
                        fail("duplicate label '" + label + "'");
                    program_.labels[label] = addr_;
                }
                stmt = strip(stmt.substr(colon + 1));
                if (stmt.empty()) continue;
            }
            std::string mnem;
            std::vector<std::string> operands;
            split_statement(stmt, mnem, operands);
            if (mnem.empty()) continue;
            if (mnem[0] == '.')
                handle_directive(mnem, operands, emit);
            else
                handle_instruction(mnem, operands, emit);
        }
    }

    const std::string& source_;
    Program program_;
    std::uint32_t addr_ = 0;
    int line_no_ = 0;
};

}  // namespace

std::uint32_t Program::size_bytes() const {
    if (words.empty()) return 0;
    return words.rbegin()->first + 4;
}

Program assemble(const std::string& source) { return Assembler(source).run(); }

}  // namespace refpga::soc
