#include "refpga/soc/memory.hpp"

#include "refpga/common/contracts.hpp"

namespace refpga::soc {

MemorySystem::MemorySystem(MemoryConfig config)
    : config_(config),
      lmb_(config.lmb_bytes / 4, 0),
      sram_(config.sram_bytes / 4, 0) {}

std::uint32_t MemorySystem::read_word(std::uint32_t addr, std::int64_t& cycles) {
    REFPGA_EXPECTS(addr % 4 == 0);
    if (addr >= kOpbBase) {
        cycles += config_.opb_latency;
        if (addr == kUartStatusAddr) return 1;  // TX always ready
        if (addr == kGpioAddr) return gpio_;
        return 0;
    }
    if (addr >= kSramBase) {
        cycles += config_.sram_latency;
        const std::uint32_t off = (addr - kSramBase) / 4;
        REFPGA_EXPECTS(off < sram_.size());
        return sram_[off];
    }
    cycles += config_.lmb_latency;
    const std::uint32_t off = addr / 4;
    REFPGA_EXPECTS(off < lmb_.size());
    return lmb_[off];
}

void MemorySystem::write_word(std::uint32_t addr, std::uint32_t value,
                              std::int64_t& cycles) {
    REFPGA_EXPECTS(addr % 4 == 0);
    if (addr >= kOpbBase) {
        cycles += config_.opb_latency;
        if (addr == kUartTxAddr) uart_tx_ += static_cast<char>(value & 0xFF);
        if (addr == kGpioAddr) gpio_ = value;
        return;
    }
    if (addr >= kSramBase) {
        cycles += config_.sram_latency;
        const std::uint32_t off = (addr - kSramBase) / 4;
        REFPGA_EXPECTS(off < sram_.size());
        sram_[off] = value;
        return;
    }
    cycles += config_.lmb_latency;
    const std::uint32_t off = addr / 4;
    REFPGA_EXPECTS(off < lmb_.size());
    lmb_[off] = value;
}

std::uint32_t MemorySystem::peek(std::uint32_t addr) const {
    std::int64_t dummy = 0;
    // read_word mutates nothing for RAM regions; const_cast is contained here.
    return const_cast<MemorySystem*>(this)->read_word(addr, dummy);
}

void MemorySystem::poke(std::uint32_t addr, std::uint32_t value) {
    std::int64_t dummy = 0;
    write_word(addr, value, dummy);
}

void MemorySystem::load(const Program& program) {
    for (const auto& [addr, word] : program.words) poke(addr, word);
}

int MemorySystem::fetch_latency(std::uint32_t addr) const {
    if (addr >= kOpbBase) return config_.opb_latency;
    if (addr >= kSramBase) return config_.sram_latency;
    return config_.lmb_latency;
}

}  // namespace refpga::soc
