// Cycle-approximate soft-core CPU (MicroBlaze-subset).
//
// Three-stage-pipeline cost model: most instructions retire in 1 cycle plus
// the fetch latency of their code region; multiplies take 3, taken branches
// flush 2 slots, loads/stores add the data region's latency. FSL get/put
// block until the link has data/space, like MicroBlaze's fsl instructions.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "refpga/soc/memory.hpp"

namespace refpga::soc {

/// Fast Simplex Link: unidirectional FIFO word channel.
class FslLink {
public:
    explicit FslLink(std::size_t depth = 16) : depth_(depth) {}

    [[nodiscard]] bool can_write() const { return fifo_.size() < depth_; }
    [[nodiscard]] bool can_read() const { return !fifo_.empty(); }
    [[nodiscard]] std::size_t size() const { return fifo_.size(); }

    void write(std::uint32_t v);
    [[nodiscard]] std::uint32_t read();

private:
    std::size_t depth_;
    std::deque<std::uint32_t> fifo_;
};

enum class CpuState { Running, Halted, BlockedOnFsl };

struct CpuCosts {
    int alu = 1;
    int mul = 3;
    int load_store = 1;      ///< plus data-region latency
    int branch_taken = 3;
    int branch_not_taken = 1;
};

class Cpu {
public:
    static constexpr int kFslLinks = 8;

    Cpu(MemorySystem& memory, CpuCosts costs = {});

    void reset(std::uint32_t pc = 0);

    [[nodiscard]] CpuState state() const { return state_; }
    [[nodiscard]] std::uint32_t pc() const { return pc_; }
    [[nodiscard]] std::int64_t cycles() const { return cycles_; }
    [[nodiscard]] std::int64_t retired() const { return retired_; }

    [[nodiscard]] std::uint32_t reg(int index) const;
    void set_reg(int index, std::uint32_t value);

    [[nodiscard]] FslLink& fsl_to_cpu(int link);    ///< hardware -> CPU (get)
    [[nodiscard]] FslLink& fsl_from_cpu(int link);  ///< CPU -> hardware (put)

    /// Executes one instruction (or stalls one cycle when FSL-blocked).
    /// Returns the new state.
    CpuState step();

    /// Runs until halt or `max_cycles` elapse. Returns the final state.
    CpuState run(std::int64_t max_cycles);

private:
    MemorySystem& mem_;
    CpuCosts costs_;
    std::array<std::uint32_t, 32> regs_{};
    std::array<FslLink, kFslLinks> fsl_in_;   ///< hardware -> CPU
    std::array<FslLink, kFslLinks> fsl_out_;  ///< CPU -> hardware
    std::uint32_t pc_ = 0;
    std::int64_t cycles_ = 0;
    std::int64_t retired_ = 0;
    CpuState state_ = CpuState::Running;
};

}  // namespace refpga::soc
