// Two-pass assembler for the soft-core ISA.
//
// Syntax (one statement per line, ';' or '#' start a comment):
//   label:                     define label at current address
//   .org  ADDR                 set assembly address
//   .word VALUE                emit a 32-bit literal
//   .space BYTES               reserve zeroed bytes
//   add   rd, ra, rb           R-type
//   addi  rd, ra, IMM          I-type (IMM may be a label for lw/sw/addi)
//   beq   ra, rb, LABEL        branch (pc-relative encoding computed)
//   br    LABEL / jr ra / halt
//   get   rd, FSL / put ra, FSL
//   lui   rd, hi(LABEL) ; ori rd, rd, lo(LABEL)   32-bit address loads
// Numbers: decimal or 0x hex; 'hi(x)'/'lo(x)' extract halves of a label or
// literal.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "refpga/soc/isa.hpp"

namespace refpga::soc {

struct AssemblyError {
    int line = 0;
    std::string message;
};

/// Assembled program: sparse 32-bit words keyed by byte address.
struct Program {
    std::map<std::uint32_t, std::uint32_t> words;
    std::map<std::string, std::uint32_t> labels;

    /// Code+data footprint in bytes (max extent over all sections).
    [[nodiscard]] std::uint32_t size_bytes() const;
    [[nodiscard]] std::uint32_t entry() const { return 0; }
};

/// Assembles `source`; throws ContractViolation with the first error's line
/// and message on failure.
[[nodiscard]] Program assemble(const std::string& source);

}  // namespace refpga::soc
