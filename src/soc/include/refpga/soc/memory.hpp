// SoC memory system: LMB block RAM, external SRAM over EMC, and OPB
// peripherals (UART, GPIO).
//
// The latency split is the heart of the paper's software baseline: code that
// fits local BRAM (LMB) executes with single-cycle fetches, while the >60 KB
// measurement algorithms spill to external SRAM whose multi-cycle accesses
// dominate the 7 ms software processing time.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "refpga/soc/assembler.hpp"

namespace refpga::soc {

/// Canonical memory map.
inline constexpr std::uint32_t kLmbBase = 0x0000'0000;
inline constexpr std::uint32_t kSramBase = 0x8000'0000;
inline constexpr std::uint32_t kOpbBase = 0xC000'0000;
inline constexpr std::uint32_t kUartTxAddr = kOpbBase + 0x0;
inline constexpr std::uint32_t kUartStatusAddr = kOpbBase + 0x4;
inline constexpr std::uint32_t kGpioAddr = kOpbBase + 0x10;

struct MemoryConfig {
    std::uint32_t lmb_bytes = 32 * 1024;    ///< internal BRAM (fast)
    std::uint32_t sram_bytes = 1024 * 1024; ///< external SRAM (slow)
    int lmb_latency = 1;                    ///< cycles per access
    int sram_latency = 5;                   ///< EMC wait states included
    int opb_latency = 4;                    ///< bus arbitration + peripheral
};

class MemorySystem {
public:
    explicit MemorySystem(MemoryConfig config = {});

    [[nodiscard]] const MemoryConfig& config() const { return config_; }

    /// Word access; addr must be 4-aligned and mapped. Returns the value and
    /// adds the region's latency to `cycles`.
    [[nodiscard]] std::uint32_t read_word(std::uint32_t addr, std::int64_t& cycles);
    void write_word(std::uint32_t addr, std::uint32_t value, std::int64_t& cycles);

    /// Latency-free accessors for loaders and tests.
    [[nodiscard]] std::uint32_t peek(std::uint32_t addr) const;
    void poke(std::uint32_t addr, std::uint32_t value);

    /// Loads an assembled program at its linked addresses.
    void load(const Program& program);

    /// Fetch latency for the region containing `addr` (models instruction
    /// fetch cost: 1 for LMB, the SRAM latency for external code).
    [[nodiscard]] int fetch_latency(std::uint32_t addr) const;

    /// Characters written to the UART TX register so far.
    [[nodiscard]] const std::string& uart_output() const { return uart_tx_; }
    [[nodiscard]] std::uint32_t gpio() const { return gpio_; }

private:
    MemoryConfig config_;
    std::vector<std::uint32_t> lmb_;
    std::vector<std::uint32_t> sram_;
    std::string uart_tx_;
    std::uint32_t gpio_ = 0;
};

}  // namespace refpga::soc
