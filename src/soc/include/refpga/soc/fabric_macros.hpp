// Fabric stand-ins for the static-area soft IP.
//
// The behavioural side of the soft-core (CPU, buses) is simulated by the
// cycle model in cpu.hpp; for floorplanning, power and Table 1 we also need
// the *fabric footprint* of those blocks. Each macro generates a functional
// LFSR-structured netlist blob with the block's calibrated slice count, so
// placement, routing, activity simulation and power estimation all see
// realistic static-area logic. Slice budgets follow period EDK datasheets
// (MicroBlaze ~1000-1200 slices with barrel shifter; OPB UART ~150; FSL ~50
// per link; JCAP controller per [11]).
#pragma once

#include <string>

#include "refpga/netlist/builder.hpp"

namespace refpga::soc {

/// Generates a self-running LFSR mesh of about `slice_target` slices
/// (2 LUTs + 2 FFs per slice) in the builder's current partition.
/// Returns the blob's observable output bus (taps), usable as a port.
[[nodiscard]] netlist::Bus make_logic_blob(netlist::Builder& builder, int slice_target,
                                           const std::string& name);

/// Calibrated slice budgets for the static-area IP blocks.
struct SoftIpBudgets {
    int microblaze = 1080;      ///< soft-core with HW multiplier + shifter
    int opb_and_uart = 170;     ///< OPB arbiter + RS232 UART Lite
    int fsl_interface = 60;     ///< FSL bus + busmacro staging
    int jcap_controller = 140;  ///< virtual JTAG configuration port [11]
    int memory_controller = 160;///< external SRAM interface (EMC)

    [[nodiscard]] int total() const {
        return microblaze + opb_and_uart + fsl_interface + jcap_controller +
               memory_controller;
    }

    /// Cost-reduced static area: minimal MicroBlaze configuration (no barrel
    /// shifter / divider, ~525 slices per EDK data) and no external memory
    /// controller (all code in BRAM after the hardware rewrite). Used by the
    /// paper's 5-slot repartitioning scenario targeting the XC3S200.
    [[nodiscard]] static SoftIpBudgets minimal() {
        SoftIpBudgets b;
        b.microblaze = 525;
        b.opb_and_uart = 150;
        b.fsl_interface = 60;
        b.jcap_controller = 140;
        b.memory_controller = 0;
        return b;
    }
};

/// Emits all static-area soft IP blobs into the current partition.
void emit_static_soft_ip(netlist::Builder& builder, const SoftIpBudgets& budgets = {});

}  // namespace refpga::soc
