// Instruction set of the soft-core processor (MicroBlaze subset).
//
// 32 general registers (r0 hardwired to zero), 32-bit instructions:
//   R-type:  op(6) rd(5) ra(5) rb(5) pad(11)
//   I-type:  op(6) rd(5) ra(5) imm16  (imm sign-extended unless noted)
// Branches are pc-relative in bytes; LUI loads imm16 << 16. GET/PUT move
// words over Fast Simplex Links, blocking like MicroBlaze's fsl instructions.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace refpga::soc {

enum class Opcode : std::uint8_t {
    Add,    ///< rd = ra + rb
    Sub,    ///< rd = ra - rb
    Mul,    ///< rd = (ra * rb) low 32
    Mulh,   ///< rd = (ra * rb) high 32, signed
    And,
    Or,
    Xor,
    Sll,    ///< rd = ra << (rb & 31)
    Srl,
    Sra,
    Addi,   ///< rd = ra + imm
    Andi,
    Ori,
    Xori,
    Slli,   ///< rd = ra << imm
    Srli,
    Srai,
    Lui,    ///< rd = imm << 16
    Lw,     ///< rd = mem[ra + imm]
    Sw,     ///< mem[ra + imm] = rd
    Beq,    ///< if ra == rb(rd slot): pc += imm
    Bne,
    Blt,    ///< signed
    Bge,
    Bltu,
    Bgeu,
    Br,     ///< pc += imm
    Brl,    ///< r15 = pc + 4; pc += imm
    Jr,     ///< pc = ra
    Get,    ///< rd = fsl[imm].read(), blocking
    Put,    ///< fsl[imm].write(ra), blocking
    Halt,
};

inline constexpr int kOpcodeCount = static_cast<int>(Opcode::Halt) + 1;

struct Instruction {
    Opcode op = Opcode::Halt;
    std::uint8_t rd = 0;
    std::uint8_t ra = 0;
    std::uint8_t rb = 0;
    std::int32_t imm = 0;  ///< sign-extended
};

[[nodiscard]] std::uint32_t encode(const Instruction& insn);
[[nodiscard]] Instruction decode(std::uint32_t word);

[[nodiscard]] std::string_view mnemonic(Opcode op);
[[nodiscard]] std::optional<Opcode> parse_mnemonic(std::string_view text);

/// True for I-type instructions (imm16 field is meaningful).
[[nodiscard]] bool has_immediate(Opcode op);
/// True when the instruction can change control flow.
[[nodiscard]] bool is_branch(Opcode op);

/// Renders one instruction word in assembler syntax. Branch targets are
/// shown as absolute addresses computed from `pc` (the instruction's own
/// address), matching what the assembler would accept back.
[[nodiscard]] std::string disassemble(std::uint32_t word, std::uint32_t pc = 0);

}  // namespace refpga::soc
