#include "refpga/soc/isa.hpp"

#include <array>

#include "refpga/common/contracts.hpp"

namespace refpga::soc {

namespace {
constexpr std::array<std::string_view, kOpcodeCount> kMnemonics{
    "add",  "sub",  "mul",  "mulh", "and",  "or",   "xor",  "sll",
    "srl",  "sra",  "addi", "andi", "ori",  "xori", "slli", "srli",
    "srai", "lui",  "lw",   "sw",   "beq",  "bne",  "blt",  "bge",
    "bltu", "bgeu", "br",   "brl",  "jr",   "get",  "put",  "halt",
};
}  // namespace

std::uint32_t encode(const Instruction& insn) {
    const auto op = static_cast<std::uint32_t>(insn.op);
    REFPGA_EXPECTS(op < 64 && insn.rd < 32 && insn.ra < 32 && insn.rb < 32);
    std::uint32_t word = (op << 26) | (std::uint32_t{insn.rd} << 21) |
                         (std::uint32_t{insn.ra} << 16);
    if (has_immediate(insn.op)) {
        REFPGA_EXPECTS(insn.imm >= -32768 && insn.imm <= 65535);
        word |= static_cast<std::uint32_t>(insn.imm) & 0xFFFFu;
    } else {
        word |= std::uint32_t{insn.rb} << 11;
    }
    return word;
}

Instruction decode(std::uint32_t word) {
    Instruction insn;
    const auto op = (word >> 26) & 0x3F;
    REFPGA_EXPECTS(op < kOpcodeCount);
    insn.op = static_cast<Opcode>(op);
    insn.rd = static_cast<std::uint8_t>((word >> 21) & 0x1F);
    insn.ra = static_cast<std::uint8_t>((word >> 16) & 0x1F);
    if (has_immediate(insn.op)) {
        insn.imm = static_cast<std::int16_t>(word & 0xFFFFu);
    } else {
        insn.rb = static_cast<std::uint8_t>((word >> 11) & 0x1F);
    }
    return insn;
}

std::string_view mnemonic(Opcode op) {
    return kMnemonics[static_cast<std::size_t>(op)];
}

std::optional<Opcode> parse_mnemonic(std::string_view text) {
    for (int i = 0; i < kOpcodeCount; ++i)
        if (kMnemonics[static_cast<std::size_t>(i)] == text)
            return static_cast<Opcode>(i);
    return std::nullopt;
}

bool has_immediate(Opcode op) {
    switch (op) {
        case Opcode::Addi:
        case Opcode::Andi:
        case Opcode::Ori:
        case Opcode::Xori:
        case Opcode::Slli:
        case Opcode::Srli:
        case Opcode::Srai:
        case Opcode::Lui:
        case Opcode::Lw:
        case Opcode::Sw:
        case Opcode::Beq:
        case Opcode::Bne:
        case Opcode::Blt:
        case Opcode::Bge:
        case Opcode::Bltu:
        case Opcode::Bgeu:
        case Opcode::Br:
        case Opcode::Brl:
        case Opcode::Get:
        case Opcode::Put:
            return true;
        default:
            return false;
    }
}

std::string disassemble(std::uint32_t word, std::uint32_t pc) {
    const Instruction insn = decode(word);
    std::string text(mnemonic(insn.op));
    auto reg = [](int r) { return "r" + std::to_string(r); };
    auto pad = [&] { text.append(text.size() < 5 ? 5 - text.size() : 1, ' '); };

    switch (insn.op) {
        case Opcode::Add:
        case Opcode::Sub:
        case Opcode::Mul:
        case Opcode::Mulh:
        case Opcode::And:
        case Opcode::Or:
        case Opcode::Xor:
        case Opcode::Sll:
        case Opcode::Srl:
        case Opcode::Sra:
            pad();
            text += reg(insn.rd) + ", " + reg(insn.ra) + ", " + reg(insn.rb);
            break;
        case Opcode::Addi:
        case Opcode::Andi:
        case Opcode::Ori:
        case Opcode::Xori:
        case Opcode::Slli:
        case Opcode::Srli:
        case Opcode::Srai:
        case Opcode::Lw:
        case Opcode::Sw:
            pad();
            text += reg(insn.rd) + ", " + reg(insn.ra) + ", " +
                    std::to_string(insn.imm);
            break;
        case Opcode::Lui:
            pad();
            text += reg(insn.rd) + ", " + std::to_string(insn.imm & 0xFFFF);
            break;
        case Opcode::Beq:
        case Opcode::Bne:
        case Opcode::Blt:
        case Opcode::Bge:
        case Opcode::Bltu:
        case Opcode::Bgeu:
            pad();
            // rb travels in the rd slot for branches.
            text += reg(insn.ra) + ", " + reg(insn.rd) + ", " +
                    std::to_string(pc + 4 + static_cast<std::uint32_t>(insn.imm));
            break;
        case Opcode::Br:
        case Opcode::Brl:
            pad();
            text += std::to_string(pc + 4 + static_cast<std::uint32_t>(insn.imm));
            break;
        case Opcode::Jr:
            pad();
            text += reg(insn.ra);
            break;
        case Opcode::Get:
            pad();
            text += reg(insn.rd) + ", " + std::to_string(insn.imm & 0x7);
            break;
        case Opcode::Put:
            pad();
            text += reg(insn.ra) + ", " + std::to_string(insn.imm & 0x7);
            break;
        case Opcode::Halt:
            break;
    }
    return text;
}

bool is_branch(Opcode op) {
    switch (op) {
        case Opcode::Beq:
        case Opcode::Bne:
        case Opcode::Blt:
        case Opcode::Bge:
        case Opcode::Bltu:
        case Opcode::Bgeu:
        case Opcode::Br:
        case Opcode::Brl:
        case Opcode::Jr:
            return true;
        default:
            return false;
    }
}

}  // namespace refpga::soc
