#include "refpga/soc/cpu.hpp"

#include "refpga/common/contracts.hpp"

namespace refpga::soc {

void FslLink::write(std::uint32_t v) {
    REFPGA_EXPECTS(can_write());
    fifo_.push_back(v);
}

std::uint32_t FslLink::read() {
    REFPGA_EXPECTS(can_read());
    const std::uint32_t v = fifo_.front();
    fifo_.pop_front();
    return v;
}

Cpu::Cpu(MemorySystem& memory, CpuCosts costs) : mem_(memory), costs_(costs) {}

void Cpu::reset(std::uint32_t pc) {
    regs_.fill(0);
    pc_ = pc;
    cycles_ = 0;
    retired_ = 0;
    state_ = CpuState::Running;
}

std::uint32_t Cpu::reg(int index) const {
    REFPGA_EXPECTS(index >= 0 && index < 32);
    return index == 0 ? 0 : regs_[static_cast<std::size_t>(index)];
}

void Cpu::set_reg(int index, std::uint32_t value) {
    REFPGA_EXPECTS(index >= 0 && index < 32);
    if (index != 0) regs_[static_cast<std::size_t>(index)] = value;
}

FslLink& Cpu::fsl_to_cpu(int link) {
    REFPGA_EXPECTS(link >= 0 && link < kFslLinks);
    return fsl_in_[static_cast<std::size_t>(link)];
}

FslLink& Cpu::fsl_from_cpu(int link) {
    REFPGA_EXPECTS(link >= 0 && link < kFslLinks);
    return fsl_out_[static_cast<std::size_t>(link)];
}

CpuState Cpu::step() {
    if (state_ == CpuState::Halted) return state_;
    state_ = CpuState::Running;

    const std::uint32_t word = mem_.peek(pc_);
    const Instruction insn = decode(word);
    const int fetch = mem_.fetch_latency(pc_);

    auto ra = [&] { return reg(insn.ra); };
    auto rb = [&] { return reg(insn.rb); };
    auto rd_as_rb = [&] { return reg(insn.rd); };  // branches keep rb in rd slot
    const auto imm = static_cast<std::uint32_t>(insn.imm);

    std::uint32_t next_pc = pc_ + 4;
    int cost = costs_.alu;

    switch (insn.op) {
        case Opcode::Add: set_reg(insn.rd, ra() + rb()); break;
        case Opcode::Sub: set_reg(insn.rd, ra() - rb()); break;
        case Opcode::Mul:
            set_reg(insn.rd, ra() * rb());
            cost = costs_.mul;
            break;
        case Opcode::Mulh: {
            const std::int64_t p = static_cast<std::int64_t>(static_cast<std::int32_t>(ra())) *
                                   static_cast<std::int32_t>(rb());
            set_reg(insn.rd, static_cast<std::uint32_t>(p >> 32));
            cost = costs_.mul;
            break;
        }
        case Opcode::And: set_reg(insn.rd, ra() & rb()); break;
        case Opcode::Or: set_reg(insn.rd, ra() | rb()); break;
        case Opcode::Xor: set_reg(insn.rd, ra() ^ rb()); break;
        case Opcode::Sll: set_reg(insn.rd, ra() << (rb() & 31)); break;
        case Opcode::Srl: set_reg(insn.rd, ra() >> (rb() & 31)); break;
        case Opcode::Sra:
            set_reg(insn.rd, static_cast<std::uint32_t>(
                                 static_cast<std::int32_t>(ra()) >> (rb() & 31)));
            break;
        case Opcode::Addi: set_reg(insn.rd, ra() + imm); break;
        case Opcode::Andi: set_reg(insn.rd, ra() & (imm & 0xFFFFu)); break;
        case Opcode::Ori: set_reg(insn.rd, ra() | (imm & 0xFFFFu)); break;
        case Opcode::Xori: set_reg(insn.rd, ra() ^ (imm & 0xFFFFu)); break;
        case Opcode::Slli: set_reg(insn.rd, ra() << (imm & 31)); break;
        case Opcode::Srli: set_reg(insn.rd, ra() >> (imm & 31)); break;
        case Opcode::Srai:
            set_reg(insn.rd, static_cast<std::uint32_t>(
                                 static_cast<std::int32_t>(ra()) >> (imm & 31)));
            break;
        case Opcode::Lui: set_reg(insn.rd, (imm & 0xFFFFu) << 16); break;
        case Opcode::Lw: {
            std::int64_t lat = 0;
            set_reg(insn.rd, mem_.read_word(ra() + imm, lat));
            cost = costs_.load_store + static_cast<int>(lat);
            break;
        }
        case Opcode::Sw: {
            std::int64_t lat = 0;
            mem_.write_word(ra() + imm, reg(insn.rd), lat);
            cost = costs_.load_store + static_cast<int>(lat);
            break;
        }
        case Opcode::Beq:
        case Opcode::Bne:
        case Opcode::Blt:
        case Opcode::Bge:
        case Opcode::Bltu:
        case Opcode::Bgeu: {
            const std::uint32_t a = ra();
            const std::uint32_t b = rd_as_rb();
            const auto sa = static_cast<std::int32_t>(a);
            const auto sb = static_cast<std::int32_t>(b);
            bool taken = false;
            switch (insn.op) {
                case Opcode::Beq: taken = a == b; break;
                case Opcode::Bne: taken = a != b; break;
                case Opcode::Blt: taken = sa < sb; break;
                case Opcode::Bge: taken = sa >= sb; break;
                case Opcode::Bltu: taken = a < b; break;
                case Opcode::Bgeu: taken = a >= b; break;
                default: break;
            }
            if (taken) {
                next_pc = pc_ + 4 + imm;
                cost = costs_.branch_taken;
            } else {
                cost = costs_.branch_not_taken;
            }
            break;
        }
        case Opcode::Br:
            next_pc = pc_ + 4 + imm;
            cost = costs_.branch_taken;
            break;
        case Opcode::Brl:
            set_reg(15, pc_ + 4);
            next_pc = pc_ + 4 + imm;
            cost = costs_.branch_taken;
            break;
        case Opcode::Jr:
            next_pc = ra();
            cost = costs_.branch_taken;
            break;
        case Opcode::Get: {
            FslLink& link = fsl_to_cpu(static_cast<int>(imm & 0x7));
            if (!link.can_read()) {
                ++cycles_;  // stall
                state_ = CpuState::BlockedOnFsl;
                return state_;
            }
            set_reg(insn.rd, link.read());
            break;
        }
        case Opcode::Put: {
            FslLink& link = fsl_from_cpu(static_cast<int>(imm & 0x7));
            if (!link.can_write()) {
                ++cycles_;
                state_ = CpuState::BlockedOnFsl;
                return state_;
            }
            link.write(ra());
            break;
        }
        case Opcode::Halt:
            state_ = CpuState::Halted;
            cycles_ += fetch;
            ++retired_;
            return state_;
    }

    // Fetch overlaps execution by one cycle in the pipeline; charge the
    // excess fetch latency beyond that overlap.
    cycles_ += cost + (fetch - 1);
    ++retired_;
    pc_ = next_pc;
    return state_;
}

CpuState Cpu::run(std::int64_t max_cycles) {
    const std::int64_t limit = cycles_ + max_cycles;
    while (state_ != CpuState::Halted && cycles_ < limit) {
        step();
        if (state_ == CpuState::BlockedOnFsl) break;  // needs external progress
    }
    return state_;
}

}  // namespace refpga::soc
