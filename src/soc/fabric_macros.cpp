#include "refpga/soc/fabric_macros.hpp"

namespace refpga::soc {

using netlist::Builder;
using netlist::Bus;

Bus make_logic_blob(Builder& builder, int slice_target, const std::string& name) {
    REFPGA_EXPECTS(slice_target >= 1);
    // One slice = 2 LUTs + 2 FFs; an n-bit Fibonacci-style LFSR ring built
    // as q[i+1] = q[i] XOR q[tap(i)] uses exactly n LUTs + n FFs.
    const int bits = slice_target * 2;
    builder.push_scope(name);
    const Bus q = builder.feedback_reg(
        bits,
        [&](const Bus& state) {
            Bus next(state.size());
            for (std::size_t i = 0; i < state.size(); ++i) {
                const std::size_t prev = (i + state.size() - 1) % state.size();
                // Vary tap distance so net lengths differ across the blob.
                const std::size_t tap = (i * 7 + 3) % state.size();
                // Lane 0 uses XNOR: breaks the all-zero fixpoint at the same
                // LUT cost, keeping the slice budget exact.
                next[i] = i == 0 ? builder.xnor_(state[prev], state[tap])
                                 : builder.xor_(state[prev], state[tap]);
            }
            return next;
        },
        netlist::NetId{}, "lfsr");
    builder.pop_scope();
    // Expose a few taps as the blob's observable outputs.
    Bus taps;
    for (std::size_t i = 0; i < q.size() && taps.size() < 8; i += q.size() / 8 + 1)
        taps.push_back(q[i]);
    return taps;
}

void emit_static_soft_ip(Builder& builder, const SoftIpBudgets& budgets) {
    const std::pair<int, const char*> blocks[] = {
        {budgets.microblaze, "microblaze"}, {budgets.opb_and_uart, "opb_uart"},
        {budgets.fsl_interface, "fsl"},     {budgets.jcap_controller, "jcap"},
        {budgets.memory_controller, "emc"},
    };
    for (const auto& [slices, name] : blocks)
        if (slices > 0) (void)make_logic_blob(builder, slices, name);
}

}  // namespace refpga::soc
