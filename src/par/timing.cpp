#include "refpga/par/timing.hpp"

#include <algorithm>

namespace refpga::par {

using netlist::Cell;
using netlist::CellId;
using netlist::CellKind;
using netlist::NetId;

TimingReport analyze_timing(const RoutedDesign& routed, const CellDelays& delays) {
    const auto& nl = routed.placement().nl();

    auto cell_delay = [&](const Cell& c) {
        switch (c.kind) {
            case CellKind::Lut: return delays.lut_ps;
            case CellKind::Mult18: return delays.mult_ps;
            default: return 0.0;
        }
    };
    auto launch_delay = [&](const Cell& c) {
        switch (c.kind) {
            case CellKind::Ff: return delays.ff_clk_to_q_ps;
            case CellKind::Bram: return delays.bram_clk_to_q_ps;
            default: return 0.0;  // pads, constants
        }
    };

    // Arrival time at each cell output; combinational cells in topological
    // order (same levelization contract as the simulator: DRC guarantees no
    // combinational loops).
    std::vector<double> arrival(nl.cell_count(), -1.0);
    std::vector<CellId> pred(nl.cell_count(), CellId{});

    // Connection delay from a routed net to one sink. Routes keep sinks in
    // netlist order, so the indexed probe hits almost always; the scan is a
    // fallback for partially re-routed nets.
    auto net_sink_delay = [&](NetId net, const netlist::PinRef& sink,
                              std::size_t sink_idx) {
        const NetRoute& r = routed.route(net);
        if (sink_idx < r.sinks.size() && r.sinks[sink_idx].sink == sink)
            return r.sinks[sink_idx].delay_ps;
        for (const auto& s : r.sinks)
            if (s.sink == sink) return s.delay_ps;
        return RoutedDesign::kPinDelayPs;  // unrouted/dedicated nets
    };

    // Iterate to fixpoint in topological fashion: repeatedly relax. Cell
    // count passes are overkill; a worklist converges quickly.
    std::vector<std::uint32_t> worklist;
    for (std::uint32_t i = 0; i < nl.cell_count(); ++i) {
        const Cell& c = nl.cell(CellId{i});
        if (c.sequential() || c.kind == CellKind::Inpad || c.kind == CellKind::Gnd ||
            c.kind == CellKind::Vcc) {
            arrival[i] = launch_delay(c);
            worklist.push_back(i);
        }
    }

    double critical = 0.0;
    CellId critical_end;

    while (!worklist.empty()) {
        const std::uint32_t ci = worklist.back();
        worklist.pop_back();
        const Cell& c = nl.cell(CellId{ci});
        for (const NetId out : c.outputs) {
            if (!out.valid()) continue;
            const auto& n = nl.net(out);
            if (n.is_clock) continue;
            for (std::size_t si = 0; si < n.sinks.size(); ++si) {
                const auto& sink = n.sinks[si];
                const Cell& sc = nl.cell(sink.cell);
                const double wire = net_sink_delay(out, sink, si);
                double t = arrival[ci] + wire;
                if (sc.sequential() || sc.kind == CellKind::Outpad) {
                    // Path endpoint: add setup for FFs.
                    const double total =
                        t + (sc.kind == CellKind::Ff ? delays.ff_setup_ps : 0.0);
                    if (total > critical) {
                        critical = total;
                        critical_end = sink.cell;
                        pred[sink.cell.value()] = CellId{ci};
                    }
                    continue;
                }
                t += cell_delay(sc);
                if (t > arrival[sink.cell.value()]) {
                    arrival[sink.cell.value()] = t;
                    pred[sink.cell.value()] = CellId{ci};
                    worklist.push_back(sink.cell.value());
                }
            }
        }
    }

    TimingReport report;
    report.critical_path_ps = critical;
    // Walk back the critical path.
    CellId cur = critical_end;
    while (cur.valid()) {
        report.critical_cells.push_back(cur);
        cur = pred[cur.value()];
        if (report.critical_cells.size() > nl.cell_count()) break;  // safety
    }
    std::reverse(report.critical_cells.begin(), report.critical_cells.end());
    return report;
}

std::vector<bool> critical_cell_mask(const TimingReport& report,
                                     std::size_t cell_count) {
    std::vector<bool> mask(cell_count, false);
    for (const CellId cell : report.critical_cells)
        if (cell.valid() && cell.value() < cell_count) mask[cell.value()] = true;
    return mask;
}

}  // namespace refpga::par
