#include "refpga/par/placement.hpp"

#include <algorithm>
#include <limits>

#include "refpga/common/contracts.hpp"

namespace refpga::par {

using fabric::Device;
using fabric::Region;
using fabric::SliceCoord;
using netlist::CellId;
using netlist::CellKind;
using netlist::NetId;
using netlist::PartitionId;

Placement::Placement(const Device& dev, const netlist::Netlist& nl,
                     const PackedDesign& design)
    : dev_(&dev), nl_(&nl), design_(&design) {
    regions_.resize(nl.partitions().size());
    slice_pos_.resize(design.slice_count());
    site_to_slice_.assign(static_cast<std::size_t>(dev.rows()) * dev.cols() *
                              Device::kSlicesPerClb,
                          SliceId{});
}

void Placement::constrain(PartitionId partition, const Region& region) {
    REFPGA_EXPECTS(!placed_);
    REFPGA_EXPECTS(partition.value() < regions_.size());
    REFPGA_EXPECTS(region.x_begin >= 0 && region.x_end <= dev_->cols());
    REFPGA_EXPECTS(region.y_begin >= 0 && region.y_end <= dev_->rows());
    regions_[partition.value()] = region;
}

Region Placement::region_of(PartitionId partition) const {
    REFPGA_EXPECTS(partition.value() < regions_.size());
    return regions_[partition.value()].value_or(dev_->full_region());
}

std::size_t Placement::site_index(const SliceCoord& pos) const {
    REFPGA_EXPECTS(dev_->valid_slice(pos));
    return (static_cast<std::size_t>(pos.y) * dev_->cols() + pos.x) *
               Device::kSlicesPerClb +
           pos.index;
}

void Placement::place_initial() {
    REFPGA_EXPECTS(!placed_);

    // Fill each partition's region in scan order.
    std::vector<std::size_t> cursor(regions_.size(), 0);
    for (std::uint32_t si = 0; si < design_->slice_count(); ++si) {
        const PartitionId part = design_->slices()[si].partition;
        const Region region = region_of(part);
        const std::size_t capacity =
            static_cast<std::size_t>(region.slice_capacity());
        std::size_t& cur = cursor[part.value()];
        // Advance to the next free site in the region (another partition may
        // overlap an unconstrained region).
        SliceCoord pos;
        bool found = false;
        while (cur < capacity) {
            const auto offset = cur++;
            const int per_col = Device::kSlicesPerClb;
            const int tiles = static_cast<int>(offset) / per_col;
            pos.index = static_cast<int>(offset) % per_col;
            pos.x = region.x_begin + tiles % region.width();
            pos.y = region.y_begin + tiles / region.width();
            if (!site_to_slice_[site_index(pos)].valid()) {
                found = true;
                break;
            }
        }
        if (!found)
            throw ContractViolation("partition '" +
                                    nl_->partitions()[part.value()] +
                                    "' does not fit in its region");
        slice_pos_[si] = pos;
        site_to_slice_[site_index(pos)] = SliceId{si};
    }

    // BRAM/MULT: nearest free dedicated site to the die centre of the
    // partition's region.
    auto assign_sites = [&](const std::vector<CellId>& cells,
                            const std::vector<SliceCoord>& sites,
                            std::vector<SliceCoord>& out) {
        std::vector<bool> used(sites.size(), false);
        out.resize(cells.size());
        for (std::size_t i = 0; i < cells.size(); ++i) {
            const Region region = region_of(nl_->cell(cells[i]).partition);
            const SliceCoord centre{(region.x_begin + region.x_end) / 2,
                                    (region.y_begin + region.y_end) / 2, 0};
            std::size_t best = sites.size();
            int best_d = std::numeric_limits<int>::max();
            for (std::size_t s = 0; s < sites.size(); ++s) {
                if (used[s]) continue;
                const int d = Device::distance(sites[s], centre);
                if (d < best_d) {
                    best_d = d;
                    best = s;
                }
            }
            if (best == sites.size())
                throw ContractViolation("not enough BRAM/MULT sites on device");
            used[best] = true;
            out[i] = sites[best];
        }
    };
    assign_sites(design_->brams(), dev_->bram_sites(), bram_pos_);
    assign_sites(design_->mults(), dev_->mult_sites(), mult_pos_);

    // Pads along the bottom edge (y = 0 ring), spread evenly.
    pad_pos_.resize(design_->pads().size());
    const int cols = dev_->cols();
    for (std::size_t i = 0; i < pad_pos_.size(); ++i) {
        const int x = static_cast<int>((i * static_cast<std::size_t>(cols)) /
                                       std::max<std::size_t>(pad_pos_.size(), 1));
        pad_pos_[i] = SliceCoord{std::min(x, cols - 1), 0, 0};
    }

    // Fixed-position lookup for O(1) cell_pos on non-slice cells.
    fixed_pos_.assign(nl_->cell_count(), SliceCoord{0, 0, -1});
    for (std::size_t i = 0; i < design_->brams().size(); ++i)
        fixed_pos_[design_->brams()[i].value()] = bram_pos_[i];
    for (std::size_t i = 0; i < design_->mults().size(); ++i)
        fixed_pos_[design_->mults()[i].value()] = mult_pos_[i];
    for (std::size_t i = 0; i < design_->pads().size(); ++i)
        fixed_pos_[design_->pads()[i].value()] = pad_pos_[i];

    placed_ = true;
}

SliceCoord Placement::slice_pos(SliceId s) const {
    REFPGA_EXPECTS(s.value() < slice_pos_.size());
    return slice_pos_[s.value()];
}

void Placement::set_slice_pos(SliceId s, const SliceCoord& pos) {
    REFPGA_EXPECTS(s.value() < slice_pos_.size());
    REFPGA_EXPECTS(!slice_at(pos).valid());
    site_to_slice_[site_index(slice_pos_[s.value()])] = SliceId{};
    slice_pos_[s.value()] = pos;
    site_to_slice_[site_index(pos)] = s;
}

SliceId Placement::slice_at(const SliceCoord& pos) const {
    return site_to_slice_[site_index(pos)];
}

void Placement::swap_sites(const SliceCoord& a, const SliceCoord& b) {
    const SliceId sa = slice_at(a);
    const SliceId sb = slice_at(b);
    site_to_slice_[site_index(a)] = sb;
    site_to_slice_[site_index(b)] = sa;
    if (sa.valid()) slice_pos_[sa.value()] = b;
    if (sb.valid()) slice_pos_[sb.value()] = a;
}

SliceCoord Placement::cell_pos(CellId cell) const {
    const SliceId s = design_->slice_of(cell);
    if (s.valid()) return slice_pos(s);
    if (cell.value() < fixed_pos_.size() && fixed_pos_[cell.value()].index >= 0)
        return fixed_pos_[cell.value()];
    return SliceCoord{0, 0, 0};
}

bool Placement::dedicated_net(NetId net) const {
    const auto& n = nl_->net(net);
    if (n.is_clock) return true;
    if (!n.driven()) return true;
    const CellKind k = nl_->cell(n.driver.cell).kind;
    return k == CellKind::Gnd || k == CellKind::Vcc;
}

int Placement::net_hpwl(NetId net) const {
    const auto& n = nl_->net(net);
    if (dedicated_net(net) || n.sinks.empty()) return 0;
    int min_x = dev_->cols();
    int max_x = 0;
    int min_y = dev_->rows();
    int max_y = 0;
    auto extend = [&](const SliceCoord& pos) {
        min_x = std::min(min_x, pos.x);
        max_x = std::max(max_x, pos.x);
        min_y = std::min(min_y, pos.y);
        max_y = std::max(max_y, pos.y);
    };
    extend(cell_pos(n.driver.cell));
    for (const auto& sink : n.sinks) extend(cell_pos(sink.cell));
    return (max_x - min_x) + (max_y - min_y);
}

long Placement::total_hpwl() const {
    long total = 0;
    for (std::uint32_t i = 0; i < nl_->net_count(); ++i)
        total += net_hpwl(NetId{i});
    return total;
}

}  // namespace refpga::par
