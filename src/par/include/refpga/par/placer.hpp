// Simulated-annealing placement optimizer.
//
// Cost is per-net half-perimeter wirelength, optionally weighted by switching
// activity (the paper's §4.3 observation: "the logic of the nets with higher
// communication rates can be placed closer ... to decrease the distance for
// the signal routing"). activity_beta = 0 reproduces a conventional
// wirelength-driven flow; activity_beta > 0 biases high-toggle nets shorter.
#pragma once

#include <optional>

#include "refpga/par/placement.hpp"
#include "refpga/sim/activity.hpp"

namespace refpga::par {

struct PlacerOptions {
    std::uint64_t seed = 1;
    /// Moves per temperature step scale with design size; this multiplies it.
    double effort = 1.0;
    /// Weight of activity in net cost: w = 1 + beta * rate/max_rate.
    double activity_beta = 0.0;
    double initial_temperature = 4.0;
    double cooling = 0.92;
    double final_temperature = 0.05;
};

struct PlacerResult {
    long initial_cost = 0;
    long final_cost = 0;
    long moves_tried = 0;
    long moves_accepted = 0;
};

/// Anneals `placement` in place. `activity` may be null (pure wirelength).
PlacerResult anneal(Placement& placement, const PlacerOptions& options,
                    const sim::ActivityMap* activity = nullptr);

}  // namespace refpga::par
