// Power-driven logic reallocation (the paper's §4.3 methodology).
//
// For the highest-power nets (activity x routed capacitance), try to move the
// net's driver/sink slices closer to the net's centroid and re-route the
// affected nets on low-capacitance wires. A move is committed only when
//   (1) the target net's power decreases,
//   (2) total dynamic power does not increase (the paper re-verified this
//       after every reallocation), and
//   (3) the critical path stays within the allowed slack.
// The paper performed this by hand in FPGA Editor and argued it "must be
// integrated in FPGA tools"; this is that integration.
//
// Two engines implement one set of semantics:
//   * Incremental (default): precomputed slice<->net adjacency (ReallocIndex
//     over netlist::CellNetIndex), scratch-route delta costing (no
//     occupy/undo churn on the live grid), cached per-net power with an O(1)
//     maintained total (NetPowerCache), lazy timing behind a sound
//     delay-increase bound with periodic full resync, and deterministic
//     parallel candidate evaluation over a ThreadPool.
//   * Reference: the retained naive path — per-call set builders, per-
//     candidate baseline recomputation, a full timing analysis after every
//     committed move — with byte-identical reports. It exists so tests and
//     benches can pin the incremental engine's output and speedup.
//
// Determinism contract: for a fixed input, the ReallocateReport is
// byte-identical across engines and across any thread count. Candidate
// gains are computed independently per (dy, dx, idx) window position, then
// reduced sequentially in window order (max gain, lowest coordinate wins
// ties), so the schedule can never reorder the arithmetic.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "refpga/netlist/adjacency.hpp"
#include "refpga/obs/obs.hpp"
#include "refpga/par/router.hpp"
#include "refpga/par/timing.hpp"
#include "refpga/sim/activity.hpp"

namespace refpga {
class ThreadPool;
}

namespace refpga::par {

enum class ReallocEngine {
    Incremental,  ///< indexed, delta-costed, lazily timed, parallel (default)
    Reference,    ///< retained naive path; identical reports, naive cost
};

struct ReallocateOptions {
    std::size_t net_count = 10;     ///< how many hot nets to optimize
    double vdd = 1.2;               ///< core voltage
    double timing_slack = 1.10;     ///< allowed critical-path growth factor
    int radius = 4;                 ///< move search radius around the centroid
    bool capture_routes = false;    ///< record ASCII route views (Figure 6)
    /// Nets with more sinks than this are skipped: their power is dominated
    /// by irreducible pin capacitance, so reallocation cannot help (the paper
    /// likewise picked moderate-fanout nets such as multiplier inputs).
    std::size_t max_fanout = 16;
    CellDelays delays;
    ReallocEngine engine = ReallocEngine::Incremental;
    /// Candidate-evaluation worker count (Incremental engine only). 1 keeps
    /// everything on the calling thread; results are identical either way.
    int threads = 1;
    /// Reuse an existing pool across calls (overrides `threads`). The engine
    /// uses wait_idle() as a barrier, so prefer a pool without unrelated
    /// concurrent work.
    ThreadPool* pool = nullptr;
    /// Full timing re-analysis at least every N committed moves, to keep the
    /// accumulated delay bound tight (Incremental engine only).
    int timing_resync_period = 8;
    /// Observability sink (refpga::obs). When set, optimize_net_power bumps
    /// realloc.{passes,nets_considered,candidates_evaluated,moves_committed,
    /// moves_rejected,timing_resyncs}_total and observes the pass wall time.
    /// Counters are recorded from the calling thread only, so candidate
    /// evaluation workers stay untouched; reports remain byte-identical
    /// whether or not a recorder is attached. Non-owning.
    obs::Recorder* recorder = nullptr;
};

/// Per-net outcome, one entry per optimized net (Table 2 rows).
struct NetPowerChange {
    netlist::NetId net;
    std::string name;
    double before_uw = 0.0;
    double after_uw = 0.0;
    bool moved_logic = false;  ///< a slice move was committed (vs re-route only)
    std::string route_before;  ///< when capture_routes
    std::string route_after;

    [[nodiscard]] double reduction_pct() const {
        return before_uw > 0.0 ? 100.0 * (before_uw - after_uw) / before_uw : 0.0;
    }

    friend bool operator==(const NetPowerChange&, const NetPowerChange&) = default;
};

struct ReallocateReport {
    std::vector<NetPowerChange> nets;
    double total_before_uw = 0.0;  ///< all-net dynamic power before
    double total_after_uw = 0.0;
    double critical_before_ps = 0.0;
    double critical_after_ps = 0.0;

    friend bool operator==(const ReallocateReport&, const ReallocateReport&) = default;
};

/// Optimizes `routed` (and the underlying placement) in place.
[[nodiscard]] ReallocateReport optimize_net_power(Placement& placement,
                                                  RoutedDesign& routed,
                                                  const sim::ActivityMap& activity,
                                                  const ReallocateOptions& options = {});

/// Dynamic power of one routed net at the given activity, in microwatts.
[[nodiscard]] double net_power_uw(const RoutedDesign& routed, netlist::NetId net,
                                  const sim::ActivityMap& activity, double vdd);

/// Precomputed slice<->net adjacency over one placement: which non-dedicated
/// nets touch a slice's cells (these must be re-routed when it moves) and
/// which slices participate in a net. Membership is position-independent, so
/// the index stays valid across moves; rebuild only when packing changes.
class ReallocIndex {
public:
    ReallocIndex(const Placement& placement, const netlist::CellNetIndex& cells);

    /// Non-dedicated nets incident to the slice's cells, sorted, unique.
    [[nodiscard]] std::span<const netlist::NetId> nets_of(SliceId slice) const;
    /// Slices holding the net's driver or sinks, sorted, unique.
    [[nodiscard]] std::span<const SliceId> slices_of(netlist::NetId net) const;

private:
    std::vector<std::uint32_t> slice_offsets_;
    std::vector<netlist::NetId> slice_nets_;
    std::vector<std::uint32_t> net_offsets_;
    std::vector<SliceId> net_slices_;
};

/// Per-net dynamic power cache. refresh() recomputes one net's entry from
/// its live route and maintains a running total, so total_uw() is O(1)
/// instead of O(nets) per query; only re-routed nets are ever touched.
/// exact_total_uw() re-sums the cached entries in net order — the same
/// operation order a from-scratch total uses — so reports stay byte-
/// identical to the Reference engine's.
class NetPowerCache {
public:
    NetPowerCache(const RoutedDesign& routed, const sim::ActivityMap& activity,
                  double vdd);

    [[nodiscard]] double net_uw(netlist::NetId net) const;
    void refresh(netlist::NetId net);
    [[nodiscard]] double total_uw() const { return total_uw_; }
    [[nodiscard]] double exact_total_uw() const;

private:
    const RoutedDesign* routed_;
    const sim::ActivityMap* activity_;
    double vdd_;
    std::vector<double> net_uw_;
    double total_uw_ = 0.0;
};

}  // namespace refpga::par
