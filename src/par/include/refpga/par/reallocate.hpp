// Power-driven logic reallocation (the paper's §4.3 methodology).
//
// For the highest-power nets (activity x routed capacitance), try to move the
// net's driver/sink slices closer to the net's centroid and re-route the
// affected nets on low-capacitance wires. A move is committed only when
//   (1) the target net's power decreases,
//   (2) total dynamic power does not increase (the paper re-verified this
//       after every reallocation), and
//   (3) the critical path stays within the allowed slack.
// The paper performed this by hand in FPGA Editor and argued it "must be
// integrated in FPGA tools"; this is that integration.
#pragma once

#include <string>
#include <vector>

#include "refpga/par/router.hpp"
#include "refpga/par/timing.hpp"
#include "refpga/sim/activity.hpp"

namespace refpga::par {

struct ReallocateOptions {
    std::size_t net_count = 10;     ///< how many hot nets to optimize
    double vdd = 1.2;               ///< core voltage
    double timing_slack = 1.10;     ///< allowed critical-path growth factor
    int radius = 4;                 ///< move search radius around the centroid
    bool capture_routes = false;    ///< record ASCII route views (Figure 6)
    /// Nets with more sinks than this are skipped: their power is dominated
    /// by irreducible pin capacitance, so reallocation cannot help (the paper
    /// likewise picked moderate-fanout nets such as multiplier inputs).
    std::size_t max_fanout = 16;
    CellDelays delays;
};

/// Per-net outcome, one entry per optimized net (Table 2 rows).
struct NetPowerChange {
    netlist::NetId net;
    std::string name;
    double before_uw = 0.0;
    double after_uw = 0.0;
    bool moved_logic = false;  ///< a slice move was committed (vs re-route only)
    std::string route_before;  ///< when capture_routes
    std::string route_after;

    [[nodiscard]] double reduction_pct() const {
        return before_uw > 0.0 ? 100.0 * (before_uw - after_uw) / before_uw : 0.0;
    }
};

struct ReallocateReport {
    std::vector<NetPowerChange> nets;
    double total_before_uw = 0.0;  ///< all-net dynamic power before
    double total_after_uw = 0.0;
    double critical_before_ps = 0.0;
    double critical_after_ps = 0.0;
};

/// Optimizes `routed` (and the underlying placement) in place.
[[nodiscard]] ReallocateReport optimize_net_power(Placement& placement,
                                                  RoutedDesign& routed,
                                                  const sim::ActivityMap& activity,
                                                  const ReallocateOptions& options = {});

/// Dynamic power of one routed net at the given activity, in microwatts.
[[nodiscard]] double net_power_uw(const RoutedDesign& routed, netlist::NetId net,
                                  const sim::ActivityMap& activity, double vdd);

}  // namespace refpga::par
