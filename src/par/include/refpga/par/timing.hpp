// Static timing analysis over a routed design.
//
// Arrival times propagate through the combinational cone from sequential
// outputs / input pads to sequential inputs / output pads using routed net
// delays plus cell delays. Fmax follows from the critical path. The power
// reallocator uses this to reject moves that would break the clock target
// ("Naturally the requirements on performance must be considered", §4.3).
#pragma once

#include <string>
#include <vector>

#include "refpga/par/router.hpp"

namespace refpga::par {

struct TimingReport {
    double critical_path_ps = 0.0;
    /// Cells on the critical path, launch to capture.
    std::vector<netlist::CellId> critical_cells;

    [[nodiscard]] double fmax_mhz() const {
        return critical_path_ps > 0.0 ? 1e6 / critical_path_ps : 0.0;
    }
};

/// Cell propagation delays (Spartan-3 -4 speed grade ballpark).
struct CellDelays {
    double lut_ps = 610.0;
    double mult_ps = 4800.0;
    double ff_clk_to_q_ps = 580.0;
    double bram_clk_to_q_ps = 2100.0;
    double ff_setup_ps = 520.0;
};

[[nodiscard]] TimingReport analyze_timing(const RoutedDesign& routed,
                                          const CellDelays& delays = {});

/// Per-cell mask over the netlist: true when the cell lies on `report`'s
/// critical path. The §4.3 reallocation engine analyzes timing lazily; this
/// mask is how it decides whether a moved slice can affect the critical path
/// directly and therefore warrants a full re-analysis.
[[nodiscard]] std::vector<bool> critical_cell_mask(const TimingReport& report,
                                                   std::size_t cell_count);

}  // namespace refpga::par
