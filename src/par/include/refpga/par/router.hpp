// Routing over the wire-type channel model.
//
// Each driver->sink connection is decomposed into interconnect segments
// (direct/double/hex/long) along an L-shaped path. The cost mode picks the
// trade-off: Performance reaches far per hop (long/hex lines, fewer switch
// delays, more capacitance); LowPower composes short segments (more hops,
// less switched capacitance). Channel occupancy per tile and wire type is
// tracked so congestion forces fallbacks, and §4.3-style re-routing of a
// single net is supported.
#pragma once

#include <string>
#include <vector>

#include "refpga/fabric/wire.hpp"
#include "refpga/par/placement.hpp"

namespace refpga::par {

enum class RouteMode { Performance, LowPower };

struct RouteSegment {
    fabric::WireType type;
    int x = 0;            ///< start tile
    int y = 0;
    bool horizontal = true;
    int step = 1;         ///< +1 or -1 direction along the axis
};

/// Route of one driver->sink connection.
struct SinkRoute {
    netlist::PinRef sink;
    std::vector<RouteSegment> segments;
    double capacitance_pf = 0.0;
    double delay_ps = 0.0;
};

struct NetRoute {
    bool routed = false;
    std::vector<SinkRoute> sinks;

    [[nodiscard]] double capacitance_pf() const {
        double c = 0.0;
        for (const auto& s : sinks) c += s.capacitance_pf;
        return c;
    }
    [[nodiscard]] double max_delay_ps() const {
        double d = 0.0;
        for (const auto& s : sinks) d = d > s.delay_ps ? d : s.delay_ps;
        return d;
    }
};

/// Per-tile, per-wire-type channel capacities (both axes pooled).
struct ChannelCapacity {
    int direct = 8;
    int double_ = 8;
    int hex = 4;
    int long_ = 1;

    [[nodiscard]] int of(fabric::WireType t) const;
};

class RoutedDesign {
public:
    RoutedDesign(const Placement& placement, ChannelCapacity capacity);

    [[nodiscard]] const Placement& placement() const { return *placement_; }
    [[nodiscard]] const NetRoute& route(netlist::NetId net) const;
    [[nodiscard]] double total_capacitance_pf() const;
    [[nodiscard]] long overflow_count() const { return overflow_; }

    /// Routes every non-dedicated net. Previously routed nets are ripped up.
    void route_all(RouteMode mode);

    /// Rips up and re-routes one net (used by the power reallocator after
    /// moving its logic).
    void reroute_net(netlist::NetId net, RouteMode mode);

    /// Pin connection delay added on top of segment delays, per connection.
    static constexpr double kPinDelayPs = 120.0;
    /// Driver output + sink input pin capacitance per connection (pF).
    static constexpr double kPinCapacitancePf = 0.35;

private:
    void rip_up(netlist::NetId net);
    void route_net(netlist::NetId net, RouteMode mode);
    SinkRoute route_connection(const fabric::SliceCoord& from,
                               const fabric::SliceCoord& to, netlist::PinRef sink,
                               RouteMode mode);
    void route_axis(std::vector<RouteSegment>& segments, int fixed, int begin,
                    int end, bool horizontal, RouteMode mode);
    [[nodiscard]] bool segment_fits(const RouteSegment& seg) const;
    void occupy(const RouteSegment& seg, int delta);
    [[nodiscard]] int& usage_at(int x, int y, fabric::WireType t);
    [[nodiscard]] int usage_at(int x, int y, fabric::WireType t) const;

    const Placement* placement_;
    ChannelCapacity capacity_;
    std::vector<NetRoute> routes_;      ///< indexed by net id
    std::vector<int> usage_;            ///< [y][x][type]
    long overflow_ = 0;
};

/// ASCII rendering of one net's route on the device grid (Figure 6 views).
[[nodiscard]] std::string render_route(const RoutedDesign& design, netlist::NetId net);

/// Dynamic power of a switched capacitance: P = 1/2 * C * Vdd^2 * f_toggle,
/// in microwatts (C in pF, f in transitions per second).
[[nodiscard]] inline double switch_power_uw(double c_pf, double toggle_hz, double vdd) {
    return 0.5 * c_pf * 1e-12 * vdd * vdd * toggle_hz * 1e6;
}

}  // namespace refpga::par
