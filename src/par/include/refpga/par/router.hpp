// Routing over the wire-type channel model.
//
// Each driver->sink connection is decomposed into interconnect segments
// (direct/double/hex/long) along an L-shaped path. The cost mode picks the
// trade-off: Performance reaches far per hop (long/hex lines, fewer switch
// delays, more capacitance); LowPower composes short segments (more hops,
// less switched capacitance). Channel occupancy per tile and wire type is
// tracked so congestion forces fallbacks, and §4.3-style re-routing of a
// single net is supported.
//
// Candidate moves are costed through RouteScratch: segments chosen during a
// trial route occupy a per-thread side buffer layered over the live usage
// grid, so evaluating a move never touches (and never has to undo) the live
// channel state. The live routing path funnels through the same code — it
// routes into a scratch and then commits the deltas — which keeps trial and
// committed routes byte-identical by construction.
#pragma once

#include <string>
#include <vector>

#include "refpga/fabric/wire.hpp"
#include "refpga/par/placement.hpp"

namespace refpga::par {

enum class RouteMode { Performance, LowPower };

struct RouteSegment {
    fabric::WireType type;
    int x = 0;            ///< start tile
    int y = 0;
    bool horizontal = true;
    int step = 1;         ///< +1 or -1 direction along the axis
};

/// Route of one driver->sink connection.
struct SinkRoute {
    netlist::PinRef sink;
    std::vector<RouteSegment> segments;
    double capacitance_pf = 0.0;
    double delay_ps = 0.0;
};

struct NetRoute {
    bool routed = false;
    std::vector<SinkRoute> sinks;

    [[nodiscard]] double capacitance_pf() const {
        double c = 0.0;
        for (const auto& s : sinks) c += s.capacitance_pf;
        return c;
    }
    [[nodiscard]] double max_delay_ps() const {
        double d = 0.0;
        for (const auto& s : sinks) d = d > s.delay_ps ? d : s.delay_ps;
        return d;
    }
};

/// Per-tile, per-wire-type channel capacities (both axes pooled).
struct ChannelCapacity {
    int direct = 8;
    int double_ = 8;
    int hex = 4;
    int long_ = 1;

    /// Capacity for a wire type; throws ContractViolation on an out-of-enum
    /// value (a silent 0 here would masquerade as full channels and bury
    /// congestion bugs).
    [[nodiscard]] int of(fabric::WireType t) const;
};

/// Occupancy side-buffer for trial routing: deltas on top of the live usage
/// grid plus the overflows recorded while routing into it. Reusable across
/// trials via clear(); give each evaluating thread its own instance.
class RouteScratch {
public:
    RouteScratch() = default;

    /// Overflows recorded by routes into this scratch since the last clear().
    [[nodiscard]] long overflow_count() const { return overflow_; }

    /// Resets all deltas (O(touched), not O(grid)).
    void clear() {
        for (const std::size_t idx : touched_) delta_[idx] = 0;
        touched_.clear();
        overflow_ = 0;
    }

private:
    friend class RoutedDesign;

    void ensure_size(std::size_t n) {
        if (delta_.size() != n) {
            delta_.assign(n, 0);
            touched_.clear();
            overflow_ = 0;
        }
    }

    std::vector<int> delta_;            ///< same layout as the live usage grid
    std::vector<std::size_t> touched_;  ///< indices with nonzero delta
    long overflow_ = 0;
};

class RoutedDesign {
public:
    RoutedDesign(const Placement& placement, ChannelCapacity capacity);

    [[nodiscard]] const Placement& placement() const { return *placement_; }
    [[nodiscard]] const NetRoute& route(netlist::NetId net) const;
    [[nodiscard]] double total_capacitance_pf() const;
    [[nodiscard]] long overflow_count() const { return overflow_; }

    /// Routes every non-dedicated net. Previously routed nets are ripped up.
    void route_all(RouteMode mode);

    /// Rips up and re-routes one net (used by the power reallocator after
    /// moving its logic).
    void reroute_net(netlist::NetId net, RouteMode mode);

    /// Rips up one net's live route, releasing its channels. The §4.3 engine
    /// unroutes every net affected by a candidate slice move first, so all
    /// candidates are costed against the same base occupancy.
    void unroute_net(netlist::NetId net);

    /// Trial evaluation: capacitance of `net` routed in `mode` as if slice
    /// `moved` sat at `moved_pos`, costed against the live usage grid plus
    /// `scratch`'s accumulated deltas. Chosen segments occupy `scratch`, not
    /// the live grid, so consecutive trial routes within one candidate see
    /// each other exactly as a live sequential re-route would. Thread-safe
    /// for concurrent calls with distinct scratches, provided no live
    /// routing mutates the design meanwhile.
    [[nodiscard]] double trial_route_capacitance_pf(netlist::NetId net, SliceId moved,
                                                    const fabric::SliceCoord& moved_pos,
                                                    RouteMode mode,
                                                    RouteScratch& scratch) const;

    /// Pin connection delay added on top of segment delays, per connection.
    static constexpr double kPinDelayPs = 120.0;
    /// Driver output + sink input pin capacitance per connection (pF).
    static constexpr double kPinCapacitancePf = 0.35;

private:
    void rip_up(netlist::NetId net);
    void route_net(netlist::NetId net, RouteMode mode);
    /// Shared trial/live core: routes `net` into `out`, occupying `scratch`.
    /// When `moved_pos` is non-null, cells of slice `moved` read that
    /// position instead of the placement's.
    void route_net_into(netlist::NetId net, RouteMode mode, SliceId moved,
                        const fabric::SliceCoord* moved_pos, NetRoute& out,
                        RouteScratch& scratch) const;
    [[nodiscard]] SinkRoute route_connection(const fabric::SliceCoord& from,
                                             const fabric::SliceCoord& to,
                                             netlist::PinRef sink, RouteMode mode,
                                             RouteScratch& scratch) const;
    /// Cost-only twin of route_connection: same segment decisions and scratch
    /// occupancy, but only the capacitance is accumulated — no segment
    /// storage, so trial costing allocates nothing.
    [[nodiscard]] double route_connection_cost(const fabric::SliceCoord& from,
                                               const fabric::SliceCoord& to,
                                               RouteMode mode,
                                               RouteScratch& scratch) const;
    /// Segment decisions for one axis leg; every chosen segment occupies
    /// `scratch` and is handed to `emit` (store it, or just cost it).
    template <typename EmitSegment>
    void route_axis(int fixed, int begin, int end, bool horizontal, RouteMode mode,
                    RouteScratch& scratch, EmitSegment&& emit) const;
    [[nodiscard]] bool segment_fits(const RouteSegment& seg,
                                    const RouteScratch& scratch) const;
    void occupy_scratch(const RouteSegment& seg, RouteScratch& scratch) const;
    /// Applies a scratch's deltas to the live grid, then clears it.
    void commit_scratch(RouteScratch& scratch);
    void occupy_live(const RouteSegment& seg, int delta);
    [[nodiscard]] fabric::SliceCoord pos_of(netlist::CellId cell, SliceId moved,
                                            const fabric::SliceCoord* moved_pos) const;
    [[nodiscard]] std::size_t usage_index(int x, int y, fabric::WireType t) const;

    const Placement* placement_;
    ChannelCapacity capacity_;
    std::vector<NetRoute> routes_;      ///< indexed by net id
    std::vector<int> usage_;            ///< [y][x][type]
    RouteScratch live_scratch_;         ///< staging buffer for live routing
    long overflow_ = 0;
};

/// ASCII rendering of one net's route on the device grid (Figure 6 views).
[[nodiscard]] std::string render_route(const RoutedDesign& design, netlist::NetId net);

/// Dynamic power of a switched capacitance: P = 1/2 * C * Vdd^2 * f_toggle,
/// in microwatts (C in pF, f in transitions per second).
[[nodiscard]] inline double switch_power_uw(double c_pf, double toggle_hz, double vdd) {
    return 0.5 * c_pf * 1e-12 * vdd * vdd * toggle_hz * 1e6;
}

}  // namespace refpga::par
