// Placement: packed slices -> slice sites on a device, with floorplan
// region constraints per partition (static area vs reconfigurable slots).
#pragma once

#include <optional>
#include <vector>

#include "refpga/fabric/device.hpp"
#include "refpga/netlist/netlist.hpp"
#include "refpga/par/pack.hpp"

namespace refpga::par {

class Placement {
public:
    Placement(const fabric::Device& dev, const netlist::Netlist& nl,
              const PackedDesign& design);

    [[nodiscard]] const fabric::Device& device() const { return *dev_; }
    [[nodiscard]] const netlist::Netlist& nl() const { return *nl_; }
    [[nodiscard]] const PackedDesign& design() const { return *design_; }

    /// Restricts a partition's slices to `region`. Must be set before
    /// place_initial(). Unconstrained partitions use the full device.
    void constrain(netlist::PartitionId partition, const fabric::Region& region);
    [[nodiscard]] fabric::Region region_of(netlist::PartitionId partition) const;

    /// Deterministic initial placement: fills each partition's region in
    /// scan order; BRAM/MULT cells take the nearest dedicated site; pads are
    /// spread along the bottom edge. Throws if a region is too small.
    void place_initial();

    [[nodiscard]] fabric::SliceCoord slice_pos(SliceId s) const;
    void set_slice_pos(SliceId s, const fabric::SliceCoord& pos);

    /// Site occupancy: slice at a site, or invalid id.
    [[nodiscard]] SliceId slice_at(const fabric::SliceCoord& pos) const;

    /// Swap the contents of two sites (either may be empty).
    void swap_sites(const fabric::SliceCoord& a, const fabric::SliceCoord& b);

    /// Position of any placed cell (slice cells, BRAM, MULT, pads).
    /// Invalid cells (constants) report {0,0,0}.
    [[nodiscard]] fabric::SliceCoord cell_pos(netlist::CellId cell) const;

    /// Half-perimeter wirelength of a net in tiles (0 for clocks/constants).
    [[nodiscard]] int net_hpwl(netlist::NetId net) const;
    [[nodiscard]] long total_hpwl() const;

    /// True when a net should not use general routing (clock or constant).
    [[nodiscard]] bool dedicated_net(netlist::NetId net) const;

private:
    [[nodiscard]] std::size_t site_index(const fabric::SliceCoord& pos) const;

    const fabric::Device* dev_;
    const netlist::Netlist* nl_;
    const PackedDesign* design_;
    std::vector<std::optional<fabric::Region>> regions_;  ///< per partition
    std::vector<fabric::SliceCoord> slice_pos_;           ///< per slice
    std::vector<SliceId> site_to_slice_;                  ///< per site
    std::vector<fabric::SliceCoord> bram_pos_;            ///< per design.brams() entry
    std::vector<fabric::SliceCoord> mult_pos_;
    std::vector<fabric::SliceCoord> pad_pos_;
    std::vector<fabric::SliceCoord> fixed_pos_;           ///< per cell; index -1 = none
    bool placed_ = false;
};

}  // namespace refpga::par
