// Packing: netlist cells -> slices.
//
// A Spartan-3 slice holds 2 LUTs and 2 FFs. The packer pairs each LUT with a
// FF it directly feeds (the classic LUT->FF pair), then fills slices two
// pairs at a time, never mixing partitions within a slice (a partition is a
// floorplan unit: the static area or one reconfigurable module).
#pragma once

#include <vector>

#include "refpga/netlist/netlist.hpp"

namespace refpga::par {

struct SliceIdTag {};
using SliceId = StrongId<SliceIdTag>;

struct PackedSlice {
    std::vector<netlist::CellId> luts;  ///< up to 2
    std::vector<netlist::CellId> ffs;   ///< up to 2
    netlist::PartitionId partition;
};

class PackedDesign {
public:
    [[nodiscard]] const std::vector<PackedSlice>& slices() const { return slices_; }
    [[nodiscard]] std::size_t slice_count() const { return slices_.size(); }

    /// Slice holding a LUT/FF cell; invalid id for BRAM/MULT/pads/constants.
    [[nodiscard]] SliceId slice_of(netlist::CellId cell) const;

    [[nodiscard]] const std::vector<netlist::CellId>& brams() const { return brams_; }
    [[nodiscard]] const std::vector<netlist::CellId>& mults() const { return mults_; }
    [[nodiscard]] const std::vector<netlist::CellId>& pads() const { return pads_; }

    /// Number of slices per partition.
    [[nodiscard]] std::vector<std::size_t> slices_per_partition(
        const netlist::Netlist& nl) const;

private:
    friend PackedDesign pack(const netlist::Netlist& nl);

    std::vector<PackedSlice> slices_;
    std::vector<SliceId> cell_slice_;  ///< indexed by CellId
    std::vector<netlist::CellId> brams_;
    std::vector<netlist::CellId> mults_;
    std::vector<netlist::CellId> pads_;
};

[[nodiscard]] PackedDesign pack(const netlist::Netlist& nl);

}  // namespace refpga::par
