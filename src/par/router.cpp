#include "refpga/par/router.hpp"

#include <algorithm>
#include <sstream>

#include "refpga/common/contracts.hpp"

namespace refpga::par {

using fabric::SliceCoord;
using fabric::WireType;
using fabric::wire_params;
using netlist::NetId;
using netlist::PinRef;

int ChannelCapacity::of(WireType t) const {
    switch (t) {
        case WireType::Direct: return direct;
        case WireType::Double: return double_;
        case WireType::Hex: return hex;
        case WireType::Long: return long_;
    }
    // A silent 0 would read as "channel full" and surface as phantom
    // congestion; fail loudly instead.
    detail::contract_fail("precondition", "WireType within enum", __FILE__, __LINE__);
}

RoutedDesign::RoutedDesign(const Placement& placement, ChannelCapacity capacity)
    : placement_(&placement), capacity_(capacity) {
    routes_.resize(placement.nl().net_count());
    usage_.assign(static_cast<std::size_t>(placement.device().rows()) *
                      placement.device().cols() * fabric::kWireTypeCount,
                  0);
}

const NetRoute& RoutedDesign::route(NetId net) const {
    REFPGA_EXPECTS(net.value() < routes_.size());
    return routes_[net.value()];
}

double RoutedDesign::total_capacitance_pf() const {
    double c = 0.0;
    for (const auto& r : routes_) c += r.capacitance_pf();
    return c;
}

std::size_t RoutedDesign::usage_index(int x, int y, WireType t) const {
    const auto cols = placement_->device().cols();
    return (static_cast<std::size_t>(y) * cols + x) * fabric::kWireTypeCount +
           static_cast<std::size_t>(t);
}

bool RoutedDesign::segment_fits(const RouteSegment& seg,
                                const RouteScratch& scratch) const {
    const auto& params = wire_params(seg.type);
    const int cols = placement_->device().cols();
    const int rows = placement_->device().rows();
    const int cap = capacity_.of(seg.type);
    int x = seg.x;
    int y = seg.y;
    for (int i = 0; i < params.span; ++i) {
        if (x < 0 || x >= cols || y < 0 || y >= rows)
            return true;  // clipped at the die edge; remaining tiles are free
        const std::size_t idx =
            (static_cast<std::size_t>(y) * cols + x) * fabric::kWireTypeCount +
            static_cast<std::size_t>(seg.type);
        if (usage_[idx] + scratch.delta_[idx] >= cap) return false;
        (seg.horizontal ? x : y) += seg.step;
    }
    return true;
}

void RoutedDesign::occupy_scratch(const RouteSegment& seg, RouteScratch& scratch) const {
    const auto& params = wire_params(seg.type);
    const int cols = placement_->device().cols();
    const int rows = placement_->device().rows();
    int x = seg.x;
    int y = seg.y;
    for (int i = 0; i < params.span; ++i) {
        if (x < 0 || x >= cols || y < 0 || y >= rows) break;
        const std::size_t idx =
            (static_cast<std::size_t>(y) * cols + x) * fabric::kWireTypeCount +
            static_cast<std::size_t>(seg.type);
        if (scratch.delta_[idx] == 0) scratch.touched_.push_back(idx);
        ++scratch.delta_[idx];
        (seg.horizontal ? x : y) += seg.step;
    }
}

void RoutedDesign::commit_scratch(RouteScratch& scratch) {
    for (const std::size_t idx : scratch.touched_) usage_[idx] += scratch.delta_[idx];
    overflow_ += scratch.overflow_;
    scratch.clear();
}

void RoutedDesign::occupy_live(const RouteSegment& seg, int delta) {
    const auto& params = wire_params(seg.type);
    int x = seg.x;
    int y = seg.y;
    for (int i = 0; i < params.span; ++i) {
        if (x < 0 || x >= placement_->device().cols() || y < 0 ||
            y >= placement_->device().rows())
            break;
        usage_[usage_index(x, y, seg.type)] += delta;
        (seg.horizontal ? x : y) += seg.step;
    }
}

template <typename EmitSegment>
void RoutedDesign::route_axis(int fixed, int begin, int end, bool horizontal,
                              RouteMode mode, RouteScratch& scratch,
                              EmitSegment&& emit) const {
    int pos = begin;
    const int step = end >= begin ? 1 : -1;
    int remaining = std::abs(end - begin);

    // Candidate order by mode: Performance reaches far first; LowPower sticks
    // to the lowest capacitance-per-tile wires.
    const std::array<WireType, 4> preference =
        mode == RouteMode::Performance
            ? std::array<WireType, 4>{WireType::Long, WireType::Hex,
                                      WireType::Double, WireType::Direct}
            : std::array<WireType, 4>{WireType::Direct, WireType::Double,
                                      WireType::Hex, WireType::Long};

    while (remaining > 0) {
        RouteSegment chosen;
        bool found = false;
        for (const WireType t : preference) {
            const int span = wire_params(t).span;
            if (span > remaining) continue;
            RouteSegment seg{t, horizontal ? pos : fixed, horizontal ? fixed : pos,
                             horizontal, step};
            if (!segment_fits(seg, scratch)) continue;
            chosen = seg;
            found = true;
            break;
        }
        if (!found) {
            // All fitting channels are full: take the mode's smallest wire
            // anyway and record the overflow (Pathfinder would negotiate;
            // a counted overflow keeps the model honest about congestion).
            const WireType t = WireType::Direct;
            chosen = RouteSegment{t, horizontal ? pos : fixed,
                                  horizontal ? fixed : pos, horizontal, step};
            ++scratch.overflow_;
        }
        occupy_scratch(chosen, scratch);
        emit(chosen);
        const int advanced = std::min(wire_params(chosen.type).span, remaining);
        pos += advanced * step;
        remaining -= advanced;
    }
}

SinkRoute RoutedDesign::route_connection(const SliceCoord& from, const SliceCoord& to,
                                         PinRef sink, RouteMode mode,
                                         RouteScratch& scratch) const {
    SinkRoute route;
    route.sink = sink;
    const auto collect = [&](const RouteSegment& seg) { route.segments.push_back(seg); };
    // L-shaped: horizontal first, then vertical.
    route_axis(from.y, from.x, to.x, true, mode, scratch, collect);
    route_axis(to.x, from.y, to.y, false, mode, scratch, collect);

    route.delay_ps = kPinDelayPs;
    route.capacitance_pf = kPinCapacitancePf;
    for (const auto& seg : route.segments) {
        const auto& params = wire_params(seg.type);
        route.capacitance_pf += params.capacitance_pf;
        route.delay_ps += params.delay_ps;
    }
    return route;
}

double RoutedDesign::route_connection_cost(const SliceCoord& from,
                                           const SliceCoord& to, RouteMode mode,
                                           RouteScratch& scratch) const {
    double capacitance_pf = kPinCapacitancePf;
    const auto cost = [&](const RouteSegment& seg) {
        capacitance_pf += wire_params(seg.type).capacitance_pf;
    };
    route_axis(from.y, from.x, to.x, true, mode, scratch, cost);
    route_axis(to.x, from.y, to.y, false, mode, scratch, cost);
    return capacitance_pf;
}

SliceCoord RoutedDesign::pos_of(netlist::CellId cell, SliceId moved,
                                const SliceCoord* moved_pos) const {
    if (moved_pos != nullptr) {
        const SliceId s = placement_->design().slice_of(cell);
        if (s.valid() && s == moved) return *moved_pos;
    }
    return placement_->cell_pos(cell);
}

void RoutedDesign::route_net_into(NetId net, RouteMode mode, SliceId moved,
                                  const SliceCoord* moved_pos, NetRoute& out,
                                  RouteScratch& scratch) const {
    scratch.ensure_size(usage_.size());
    const auto& nl = placement_->nl();
    const auto& n = nl.net(net);
    out.sinks.clear();
    out.routed = true;
    if (placement_->dedicated_net(net) || !n.driven()) return;
    const SliceCoord from = pos_of(n.driver.cell, moved, moved_pos);
    for (const PinRef& sink : n.sinks) {
        const SliceCoord to = pos_of(sink.cell, moved, moved_pos);
        out.sinks.push_back(route_connection(from, to, sink, mode, scratch));
    }
}

double RoutedDesign::trial_route_capacitance_pf(NetId net, SliceId moved,
                                                const SliceCoord& moved_pos,
                                                RouteMode mode,
                                                RouteScratch& scratch) const {
    REFPGA_EXPECTS(net.value() < routes_.size());
    scratch.ensure_size(usage_.size());
    const auto& n = placement_->nl().net(net);
    if (placement_->dedicated_net(net) || !n.driven()) return 0.0;
    const SliceCoord from = pos_of(n.driver.cell, moved, &moved_pos);
    double capacitance_pf = 0.0;
    for (const PinRef& sink : n.sinks) {
        const SliceCoord to = pos_of(sink.cell, moved, &moved_pos);
        capacitance_pf += route_connection_cost(from, to, mode, scratch);
    }
    return capacitance_pf;
}

void RoutedDesign::rip_up(NetId net) {
    NetRoute& r = routes_[net.value()];
    for (const auto& sink : r.sinks)
        for (const auto& seg : sink.segments) occupy_live(seg, -1);
    r.sinks.clear();
    r.routed = false;
}

void RoutedDesign::route_net(NetId net, RouteMode mode) {
    live_scratch_.ensure_size(usage_.size());
    live_scratch_.clear();
    route_net_into(net, mode, SliceId{}, nullptr, routes_[net.value()], live_scratch_);
    commit_scratch(live_scratch_);
}

void RoutedDesign::route_all(RouteMode mode) {
    for (std::uint32_t i = 0; i < routes_.size(); ++i)
        if (routes_[i].routed) rip_up(NetId{i});
    overflow_ = 0;
    // Route short nets first so they keep the cheap wires; long nets can
    // better amortize hex/long segments.
    std::vector<std::uint32_t> order(routes_.size());
    for (std::uint32_t i = 0; i < routes_.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
        return placement_->net_hpwl(NetId{a}) < placement_->net_hpwl(NetId{b});
    });
    for (const std::uint32_t i : order) route_net(NetId{i}, mode);
}

void RoutedDesign::reroute_net(NetId net, RouteMode mode) {
    REFPGA_EXPECTS(net.value() < routes_.size());
    rip_up(net);
    route_net(net, mode);
}

void RoutedDesign::unroute_net(NetId net) {
    REFPGA_EXPECTS(net.value() < routes_.size());
    rip_up(net);
}

std::string render_route(const RoutedDesign& design, NetId net) {
    const auto& placement = design.placement();
    const auto& nl = placement.nl();
    const auto& n = nl.net(net);
    const auto& route = design.route(net);

    // Bounding box with one tile of margin.
    int min_x = placement.device().cols() - 1;
    int max_x = 0;
    int min_y = placement.device().rows() - 1;
    int max_y = 0;
    auto extend = [&](int x, int y) {
        min_x = std::min(min_x, x);
        max_x = std::max(max_x, x);
        min_y = std::min(min_y, y);
        max_y = std::max(max_y, y);
    };
    const SliceCoord from = placement.cell_pos(n.driver.cell);
    extend(from.x, from.y);
    for (const auto& sink : route.sinks) {
        for (const auto& seg : sink.segments) {
            const int span = fabric::wire_params(seg.type).span;
            extend(seg.x, seg.y);
            extend(seg.horizontal ? seg.x + seg.step * span : seg.x,
                   seg.horizontal ? seg.y : seg.y + seg.step * span);
        }
        const SliceCoord to = placement.cell_pos(sink.sink.cell);
        extend(to.x, to.y);
    }
    min_x = std::max(0, min_x - 1);
    min_y = std::max(0, min_y - 1);
    max_x = std::min(placement.device().cols() - 1, max_x + 1);
    max_y = std::min(placement.device().rows() - 1, max_y + 1);

    const int w = max_x - min_x + 1;
    const int h = max_y - min_y + 1;
    std::vector<std::string> grid(static_cast<std::size_t>(h), std::string(static_cast<std::size_t>(w), '.'));
    auto put = [&](int x, int y, char c) {
        if (x < min_x || x > max_x || y < min_y || y > max_y) return;
        char& slot = grid[static_cast<std::size_t>(y - min_y)][static_cast<std::size_t>(x - min_x)];
        if (slot == '.' || c == 'D' || c == 'S') slot = c;
    };

    for (const auto& sink : route.sinks) {
        for (const auto& seg : sink.segments) {
            const auto& params = fabric::wire_params(seg.type);
            char mark = '?';
            switch (seg.type) {
                case WireType::Direct: mark = '-'; break;
                case WireType::Double: mark = '='; break;
                case WireType::Hex: mark = 'h'; break;
                case WireType::Long: mark = 'L'; break;
            }
            int x = seg.x;
            int y = seg.y;
            for (int i = 0; i < params.span; ++i) {
                put(x, y, mark);
                (seg.horizontal ? x : y) += seg.step;
            }
        }
        const SliceCoord to = placement.cell_pos(sink.sink.cell);
        put(to.x, to.y, 'S');
    }
    put(from.x, from.y, 'D');

    std::ostringstream os;
    os << "net " << n.name << " (D=driver, S=sink, -=direct, ==double, h=hex, L=long)\n";
    for (auto it = grid.rbegin(); it != grid.rend(); ++it) os << *it << '\n';
    return os.str();
}

}  // namespace refpga::par
