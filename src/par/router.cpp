#include "refpga/par/router.hpp"

#include <algorithm>
#include <sstream>

#include "refpga/common/contracts.hpp"

namespace refpga::par {

using fabric::SliceCoord;
using fabric::WireType;
using fabric::wire_params;
using netlist::NetId;
using netlist::PinRef;

int ChannelCapacity::of(WireType t) const {
    switch (t) {
        case WireType::Direct: return direct;
        case WireType::Double: return double_;
        case WireType::Hex: return hex;
        case WireType::Long: return long_;
    }
    return 0;
}

RoutedDesign::RoutedDesign(const Placement& placement, ChannelCapacity capacity)
    : placement_(&placement), capacity_(capacity) {
    routes_.resize(placement.nl().net_count());
    usage_.assign(static_cast<std::size_t>(placement.device().rows()) *
                      placement.device().cols() * fabric::kWireTypeCount,
                  0);
}

const NetRoute& RoutedDesign::route(NetId net) const {
    REFPGA_EXPECTS(net.value() < routes_.size());
    return routes_[net.value()];
}

double RoutedDesign::total_capacitance_pf() const {
    double c = 0.0;
    for (const auto& r : routes_) c += r.capacitance_pf();
    return c;
}

int& RoutedDesign::usage_at(int x, int y, WireType t) {
    const auto cols = placement_->device().cols();
    return usage_[(static_cast<std::size_t>(y) * cols + x) * fabric::kWireTypeCount +
                  static_cast<std::size_t>(t)];
}

int RoutedDesign::usage_at(int x, int y, WireType t) const {
    const auto cols = placement_->device().cols();
    return usage_[(static_cast<std::size_t>(y) * cols + x) * fabric::kWireTypeCount +
                  static_cast<std::size_t>(t)];
}

bool RoutedDesign::segment_fits(const RouteSegment& seg) const {
    const auto& params = wire_params(seg.type);
    int x = seg.x;
    int y = seg.y;
    for (int i = 0; i < params.span; ++i) {
        if (x < 0 || x >= placement_->device().cols() || y < 0 ||
            y >= placement_->device().rows())
            return true;  // clipped at the die edge; remaining tiles are free
        if (usage_at(x, y, seg.type) >= capacity_.of(seg.type)) return false;
        (seg.horizontal ? x : y) += seg.step;
    }
    return true;
}

void RoutedDesign::occupy(const RouteSegment& seg, int delta) {
    const auto& params = wire_params(seg.type);
    int x = seg.x;
    int y = seg.y;
    for (int i = 0; i < params.span; ++i) {
        if (x < 0 || x >= placement_->device().cols() || y < 0 ||
            y >= placement_->device().rows())
            break;
        usage_at(x, y, seg.type) += delta;
        (seg.horizontal ? x : y) += seg.step;
    }
}

void RoutedDesign::route_axis(std::vector<RouteSegment>& segments, int fixed,
                              int begin, int end, bool horizontal, RouteMode mode) {
    int pos = begin;
    const int step = end >= begin ? 1 : -1;
    int remaining = std::abs(end - begin);

    // Candidate order by mode: Performance reaches far first; LowPower sticks
    // to the lowest capacitance-per-tile wires.
    const std::array<WireType, 4> preference =
        mode == RouteMode::Performance
            ? std::array<WireType, 4>{WireType::Long, WireType::Hex,
                                      WireType::Double, WireType::Direct}
            : std::array<WireType, 4>{WireType::Direct, WireType::Double,
                                      WireType::Hex, WireType::Long};

    while (remaining > 0) {
        RouteSegment chosen;
        bool found = false;
        for (const WireType t : preference) {
            const int span = wire_params(t).span;
            if (span > remaining) continue;
            RouteSegment seg{t, horizontal ? pos : fixed, horizontal ? fixed : pos,
                             horizontal, step};
            if (!segment_fits(seg)) continue;
            chosen = seg;
            found = true;
            break;
        }
        if (!found) {
            // All fitting channels are full: take the mode's smallest wire
            // anyway and record the overflow (Pathfinder would negotiate;
            // a counted overflow keeps the model honest about congestion).
            const WireType t = WireType::Direct;
            chosen = RouteSegment{t, horizontal ? pos : fixed,
                                  horizontal ? fixed : pos, horizontal, step};
            ++overflow_;
        }
        occupy(chosen, +1);
        segments.push_back(chosen);
        const int advanced = std::min(wire_params(chosen.type).span, remaining);
        pos += advanced * step;
        remaining -= advanced;
    }
}

SinkRoute RoutedDesign::route_connection(const SliceCoord& from, const SliceCoord& to,
                                         PinRef sink, RouteMode mode) {
    SinkRoute route;
    route.sink = sink;
    // L-shaped: horizontal first, then vertical.
    route_axis(route.segments, from.y, from.x, to.x, true, mode);
    route_axis(route.segments, to.x, from.y, to.y, false, mode);

    route.delay_ps = kPinDelayPs;
    route.capacitance_pf = kPinCapacitancePf;
    for (const auto& seg : route.segments) {
        const auto& params = wire_params(seg.type);
        route.capacitance_pf += params.capacitance_pf;
        route.delay_ps += params.delay_ps;
    }
    return route;
}

void RoutedDesign::rip_up(NetId net) {
    NetRoute& r = routes_[net.value()];
    for (const auto& sink : r.sinks)
        for (const auto& seg : sink.segments) occupy(seg, -1);
    r.sinks.clear();
    r.routed = false;
}

void RoutedDesign::route_net(NetId net, RouteMode mode) {
    const auto& nl = placement_->nl();
    const auto& n = nl.net(net);
    NetRoute& r = routes_[net.value()];
    r.routed = true;
    if (placement_->dedicated_net(net) || !n.driven()) return;
    const SliceCoord from = placement_->cell_pos(n.driver.cell);
    for (const PinRef& sink : n.sinks) {
        const SliceCoord to = placement_->cell_pos(sink.cell);
        r.sinks.push_back(route_connection(from, to, sink, mode));
    }
}

void RoutedDesign::route_all(RouteMode mode) {
    for (std::uint32_t i = 0; i < routes_.size(); ++i)
        if (routes_[i].routed) rip_up(NetId{i});
    overflow_ = 0;
    // Route short nets first so they keep the cheap wires; long nets can
    // better amortize hex/long segments.
    std::vector<std::uint32_t> order(routes_.size());
    for (std::uint32_t i = 0; i < routes_.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
        return placement_->net_hpwl(NetId{a}) < placement_->net_hpwl(NetId{b});
    });
    for (const std::uint32_t i : order) route_net(NetId{i}, mode);
}

void RoutedDesign::reroute_net(NetId net, RouteMode mode) {
    REFPGA_EXPECTS(net.value() < routes_.size());
    rip_up(net);
    route_net(net, mode);
}

std::string render_route(const RoutedDesign& design, NetId net) {
    const auto& placement = design.placement();
    const auto& nl = placement.nl();
    const auto& n = nl.net(net);
    const auto& route = design.route(net);

    // Bounding box with one tile of margin.
    int min_x = placement.device().cols() - 1;
    int max_x = 0;
    int min_y = placement.device().rows() - 1;
    int max_y = 0;
    auto extend = [&](int x, int y) {
        min_x = std::min(min_x, x);
        max_x = std::max(max_x, x);
        min_y = std::min(min_y, y);
        max_y = std::max(max_y, y);
    };
    const SliceCoord from = placement.cell_pos(n.driver.cell);
    extend(from.x, from.y);
    for (const auto& sink : route.sinks) {
        for (const auto& seg : sink.segments) {
            const int span = fabric::wire_params(seg.type).span;
            extend(seg.x, seg.y);
            extend(seg.horizontal ? seg.x + seg.step * span : seg.x,
                   seg.horizontal ? seg.y : seg.y + seg.step * span);
        }
        const SliceCoord to = placement.cell_pos(sink.sink.cell);
        extend(to.x, to.y);
    }
    min_x = std::max(0, min_x - 1);
    min_y = std::max(0, min_y - 1);
    max_x = std::min(placement.device().cols() - 1, max_x + 1);
    max_y = std::min(placement.device().rows() - 1, max_y + 1);

    const int w = max_x - min_x + 1;
    const int h = max_y - min_y + 1;
    std::vector<std::string> grid(static_cast<std::size_t>(h), std::string(static_cast<std::size_t>(w), '.'));
    auto put = [&](int x, int y, char c) {
        if (x < min_x || x > max_x || y < min_y || y > max_y) return;
        char& slot = grid[static_cast<std::size_t>(y - min_y)][static_cast<std::size_t>(x - min_x)];
        if (slot == '.' || c == 'D' || c == 'S') slot = c;
    };

    for (const auto& sink : route.sinks) {
        for (const auto& seg : sink.segments) {
            const auto& params = fabric::wire_params(seg.type);
            char mark = '?';
            switch (seg.type) {
                case WireType::Direct: mark = '-'; break;
                case WireType::Double: mark = '='; break;
                case WireType::Hex: mark = 'h'; break;
                case WireType::Long: mark = 'L'; break;
            }
            int x = seg.x;
            int y = seg.y;
            for (int i = 0; i < params.span; ++i) {
                put(x, y, mark);
                (seg.horizontal ? x : y) += seg.step;
            }
        }
        const SliceCoord to = placement.cell_pos(sink.sink.cell);
        put(to.x, to.y, 'S');
    }
    put(from.x, from.y, 'D');

    std::ostringstream os;
    os << "net " << n.name << " (D=driver, S=sink, -=direct, ==double, h=hex, L=long)\n";
    for (auto it = grid.rbegin(); it != grid.rend(); ++it) os << *it << '\n';
    return os.str();
}

}  // namespace refpga::par
