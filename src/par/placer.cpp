#include "refpga/par/placer.hpp"

#include <algorithm>
#include <cmath>

#include "refpga/common/rng.hpp"

namespace refpga::par {

using fabric::Region;
using fabric::SliceCoord;
using netlist::CellId;
using netlist::NetId;

namespace {

/// Nets touching each slice, used for incremental cost evaluation.
std::vector<std::vector<NetId>> nets_per_slice(const Placement& placement) {
    const auto& nl = placement.nl();
    const auto& design = placement.design();
    std::vector<std::vector<NetId>> result(design.slice_count());
    for (std::uint32_t ni = 0; ni < nl.net_count(); ++ni) {
        const NetId net{ni};
        if (placement.dedicated_net(net)) continue;
        const auto& n = nl.net(net);
        auto touch = [&](CellId cell) {
            const SliceId s = design.slice_of(cell);
            if (!s.valid()) return;
            auto& list = result[s.value()];
            if (list.empty() || list.back() != net) list.push_back(net);
        };
        touch(n.driver.cell);
        for (const auto& sink : n.sinks) touch(sink.cell);
    }
    return result;
}

}  // namespace

PlacerResult anneal(Placement& placement, const PlacerOptions& options,
                    const sim::ActivityMap* activity) {
    const auto& nl = placement.nl();
    const auto& design = placement.design();
    Rng rng(options.seed);

    // Per-net weight from activity.
    std::vector<double> weight(nl.net_count(), 1.0);
    if (activity != nullptr && options.activity_beta > 0.0) {
        double max_rate = 0.0;
        for (std::uint32_t i = 0; i < nl.net_count(); ++i)
            max_rate = std::max(max_rate, activity->rate_hz(NetId{i}));
        if (max_rate > 0.0)
            for (std::uint32_t i = 0; i < nl.net_count(); ++i)
                weight[i] = 1.0 + options.activity_beta *
                                      activity->rate_hz(NetId{i}) / max_rate;
    }

    auto net_cost = [&](NetId net) {
        return weight[net.value()] * placement.net_hpwl(net);
    };
    auto full_cost = [&] {
        double c = 0.0;
        for (std::uint32_t i = 0; i < nl.net_count(); ++i) c += net_cost(NetId{i});
        return c;
    };

    const auto slice_nets = nets_per_slice(placement);

    PlacerResult result;
    double cost = full_cost();
    result.initial_cost = std::lround(cost);

    if (design.slice_count() < 2) {
        result.final_cost = result.initial_cost;
        return result;
    }

    const long moves_per_temp = std::max<long>(
        64, std::lround(options.effort * 8.0 *
                        static_cast<double>(design.slice_count())));

    for (double temp = options.initial_temperature; temp > options.final_temperature;
         temp *= options.cooling) {
        for (long m = 0; m < moves_per_temp; ++m) {
            ++result.moves_tried;
            // Pick a random slice and a random target site inside its region.
            const std::uint32_t si = rng.next_below(
                static_cast<std::uint32_t>(design.slice_count()));
            const Region region =
                placement.region_of(design.slices()[si].partition);
            SliceCoord target;
            target.x = region.x_begin +
                       static_cast<int>(rng.next_below(
                           static_cast<std::uint32_t>(region.width())));
            target.y = region.y_begin +
                       static_cast<int>(rng.next_below(
                           static_cast<std::uint32_t>(region.height())));
            target.index = static_cast<int>(
                rng.next_below(fabric::Device::kSlicesPerClb));

            const SliceCoord source = placement.slice_pos(SliceId{si});
            if (source == target) continue;
            const SliceId other = placement.slice_at(target);
            // Swapping across partitions would violate region constraints.
            if (other.valid() &&
                !placement.region_of(design.slices()[other.value()].partition)
                     .contains(source.x, source.y))
                continue;

            // Incremental cost: nets touching either slice.
            double before = 0.0;
            for (const NetId net : slice_nets[si]) before += net_cost(net);
            if (other.valid())
                for (const NetId net : slice_nets[other.value()])
                    before += net_cost(net);

            placement.swap_sites(source, target);

            double after = 0.0;
            for (const NetId net : slice_nets[si]) after += net_cost(net);
            if (other.valid())
                for (const NetId net : slice_nets[other.value()])
                    after += net_cost(net);

            const double delta = after - before;
            const bool accept =
                delta <= 0.0 || rng.next_double() < std::exp(-delta / temp);
            if (accept) {
                cost += delta;
                ++result.moves_accepted;
            } else {
                placement.swap_sites(source, target);  // undo
            }
        }
    }

    result.final_cost = std::lround(full_cost());
    return result;
}

}  // namespace refpga::par
