#include "refpga/par/pack.hpp"

#include <algorithm>

namespace refpga::par {

using netlist::Cell;
using netlist::CellId;
using netlist::CellKind;
using netlist::Netlist;
using netlist::NetId;
using netlist::PartitionId;

SliceId PackedDesign::slice_of(CellId cell) const {
    if (cell.value() >= cell_slice_.size()) return SliceId{};
    return cell_slice_[cell.value()];
}

std::vector<std::size_t> PackedDesign::slices_per_partition(const Netlist& nl) const {
    std::vector<std::size_t> counts(nl.partitions().size(), 0);
    for (const PackedSlice& s : slices_)
        if (s.partition.value() < counts.size()) ++counts[s.partition.value()];
    return counts;
}

PackedDesign pack(const Netlist& nl) {
    PackedDesign design;
    design.cell_slice_.assign(nl.cell_count(), SliceId{});

    // Pair each FF with its driving LUT when that LUT drives nothing else
    // (absorbing the LUT->FF connection inside a slice, as real packers do).
    std::vector<CellId> ff_partner(nl.cell_count(), CellId{});  // LUT -> FF
    std::vector<bool> ff_paired(nl.cell_count(), false);
    for (std::uint32_t i = 0; i < nl.cell_count(); ++i) {
        const Cell& c = nl.cell(CellId{i});
        if (c.kind != CellKind::Ff) continue;
        const NetId d = c.inputs.empty() ? NetId{} : c.inputs[0];
        if (!d.valid()) continue;
        const auto& dnet = nl.net(d);
        if (!dnet.driven() || dnet.fanout() != 1) continue;
        const Cell& drv = nl.cell(dnet.driver.cell);
        if (drv.kind != CellKind::Lut || drv.partition != c.partition) continue;
        if (ff_partner[dnet.driver.cell.value()].valid()) continue;
        ff_partner[dnet.driver.cell.value()] = CellId{i};
        ff_paired[i] = true;
    }

    // Per-partition open slice being filled.
    struct Open {
        bool active = false;
        std::uint32_t index = 0;
    };
    std::vector<Open> open(nl.partitions().size());

    auto place_into_slice = [&](PartitionId part, CellId lut, CellId ff) {
        Open& o = open[part.value()];
        const bool need_new = !o.active ||
                              (lut.valid() && design.slices_[o.index].luts.size() >= 2) ||
                              (ff.valid() && design.slices_[o.index].ffs.size() >= 2);
        if (need_new) {
            design.slices_.push_back(PackedSlice{{}, {}, part});
            o.active = true;
            o.index = static_cast<std::uint32_t>(design.slices_.size() - 1);
        }
        PackedSlice& s = design.slices_[o.index];
        const SliceId sid{o.index};
        if (lut.valid()) {
            s.luts.push_back(lut);
            design.cell_slice_[lut.value()] = sid;
        }
        if (ff.valid()) {
            s.ffs.push_back(ff);
            design.cell_slice_[ff.value()] = sid;
        }
    };

    for (std::uint32_t i = 0; i < nl.cell_count(); ++i) {
        const CellId id{i};
        const Cell& c = nl.cell(id);
        switch (c.kind) {
            case CellKind::Lut:
                place_into_slice(c.partition, id, ff_partner[i]);
                break;
            case CellKind::Ff:
                if (!ff_paired[i]) place_into_slice(c.partition, CellId{}, id);
                break;
            case CellKind::Bram:
                design.brams_.push_back(id);
                break;
            case CellKind::Mult18:
                design.mults_.push_back(id);
                break;
            case CellKind::Inpad:
            case CellKind::Outpad:
                design.pads_.push_back(id);
                break;
            case CellKind::Gnd:
            case CellKind::Vcc:
                break;  // tie-offs use no routed fabric
        }
    }
    return design;
}

}  // namespace refpga::par
