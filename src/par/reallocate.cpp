#include "refpga/par/reallocate.hpp"

#include <algorithm>
#include <limits>
#include <optional>
#include <set>

#include "refpga/common/thread_pool.hpp"

namespace refpga::par {

using fabric::Region;
using fabric::SliceCoord;
using netlist::CellId;
using netlist::NetId;

double net_power_uw(const RoutedDesign& routed, NetId net,
                    const sim::ActivityMap& activity, double vdd) {
    return switch_power_uw(routed.route(net).capacitance_pf(),
                           activity.rate_hz(net), vdd);
}

// ---------------------------------------------------------------- ReallocIndex

namespace {

template <typename Id>
void sort_unique_tail(std::vector<Id>& items, std::size_t begin) {
    std::sort(items.begin() + static_cast<std::ptrdiff_t>(begin), items.end());
    items.erase(std::unique(items.begin() + static_cast<std::ptrdiff_t>(begin),
                            items.end()),
                items.end());
}

}  // namespace

ReallocIndex::ReallocIndex(const Placement& placement,
                           const netlist::CellNetIndex& cells) {
    const PackedDesign& design = placement.design();

    slice_offsets_.reserve(design.slice_count() + 1);
    slice_offsets_.push_back(0);
    for (std::uint32_t si = 0; si < design.slice_count(); ++si) {
        const PackedSlice& ps = design.slices()[si];
        const std::size_t begin = slice_nets_.size();
        auto add_cell = [&](CellId cell) {
            for (const NetId net : cells.nets_of(cell))
                if (!placement.dedicated_net(net)) slice_nets_.push_back(net);
        };
        for (const CellId cell : ps.luts) add_cell(cell);
        for (const CellId cell : ps.ffs) add_cell(cell);
        sort_unique_tail(slice_nets_, begin);
        slice_offsets_.push_back(static_cast<std::uint32_t>(slice_nets_.size()));
    }

    const auto& nl = placement.nl();
    net_offsets_.reserve(nl.net_count() + 1);
    net_offsets_.push_back(0);
    for (std::uint32_t ni = 0; ni < nl.net_count(); ++ni) {
        const std::size_t begin = net_slices_.size();
        for (const CellId cell : cells.cells_of(NetId{ni})) {
            const SliceId s = design.slice_of(cell);
            if (s.valid()) net_slices_.push_back(s);
        }
        sort_unique_tail(net_slices_, begin);
        net_offsets_.push_back(static_cast<std::uint32_t>(net_slices_.size()));
    }
}

std::span<const NetId> ReallocIndex::nets_of(SliceId slice) const {
    REFPGA_EXPECTS(slice.value() + 1 < slice_offsets_.size());
    return {slice_nets_.data() + slice_offsets_[slice.value()],
            slice_nets_.data() + slice_offsets_[slice.value() + 1]};
}

std::span<const SliceId> ReallocIndex::slices_of(NetId net) const {
    REFPGA_EXPECTS(net.value() + 1 < net_offsets_.size());
    return {net_slices_.data() + net_offsets_[net.value()],
            net_slices_.data() + net_offsets_[net.value() + 1]};
}

// --------------------------------------------------------------- NetPowerCache

NetPowerCache::NetPowerCache(const RoutedDesign& routed,
                             const sim::ActivityMap& activity, double vdd)
    : routed_(&routed), activity_(&activity), vdd_(vdd) {
    const std::size_t count = routed.placement().nl().net_count();
    net_uw_.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i)
        net_uw_.push_back(net_power_uw(routed, NetId{i}, activity, vdd));
    total_uw_ = exact_total_uw();
}

double NetPowerCache::net_uw(NetId net) const {
    REFPGA_EXPECTS(net.value() < net_uw_.size());
    return net_uw_[net.value()];
}

void NetPowerCache::refresh(NetId net) {
    REFPGA_EXPECTS(net.value() < net_uw_.size());
    const double now = net_power_uw(*routed_, net, *activity_, vdd_);
    total_uw_ += now - net_uw_[net.value()];
    net_uw_[net.value()] = now;
}

double NetPowerCache::exact_total_uw() const {
    double total = 0.0;
    for (const double uw : net_uw_) total += uw;
    return total;
}

// --------------------------------------------------------------------- helpers

namespace {

double total_power_uw(const RoutedDesign& routed, const sim::ActivityMap& activity,
                      double vdd) {
    double total = 0.0;
    for (std::uint32_t i = 0; i < routed.placement().nl().net_count(); ++i)
        total += net_power_uw(routed, NetId{i}, activity, vdd);
    return total;
}

/// Slices participating in a net (driver and sinks that live in slices).
/// Retained set-based builder: the Reference engine's per-call path, and the
/// behavioral spec ReallocIndex::slices_of must match.
std::vector<SliceId> net_slices_naive(const Placement& placement, NetId net) {
    const auto& nl = placement.nl();
    const auto& n = nl.net(net);
    std::set<SliceId> slices;
    auto add = [&](CellId cell) {
        const SliceId s = placement.design().slice_of(cell);
        if (s.valid()) slices.insert(s);
    };
    if (n.driven()) add(n.driver.cell);
    for (const auto& sink : n.sinks) add(sink.cell);
    return {slices.begin(), slices.end()};
}

/// All nets incident to a slice's cells (these must be re-routed on a move).
/// Retained set-based builder mirrored by ReallocIndex::nets_of.
std::vector<NetId> incident_nets_naive(const Placement& placement, SliceId slice) {
    const auto& nl = placement.nl();
    const auto& packed = placement.design().slices()[slice.value()];
    std::set<NetId> nets;
    auto add_cell = [&](CellId cell) {
        const auto& c = nl.cell(cell);
        for (const NetId in : c.inputs)
            if (in.valid() && !placement.dedicated_net(in)) nets.insert(in);
        for (const NetId out : c.outputs)
            if (out.valid() && !placement.dedicated_net(out)) nets.insert(out);
    };
    for (const CellId cell : packed.luts) add_cell(cell);
    for (const CellId cell : packed.ffs) add_cell(cell);
    return {nets.begin(), nets.end()};
}

SliceCoord net_centroid(const Placement& placement, NetId net) {
    const auto& n = placement.nl().net(net);
    long sx = 0;
    long sy = 0;
    long count = 0;
    auto add = [&](CellId cell) {
        const SliceCoord pos = placement.cell_pos(cell);
        sx += pos.x;
        sy += pos.y;
        ++count;
    };
    if (n.driven()) add(n.driver.cell);
    for (const auto& sink : n.sinks) add(sink.cell);
    if (count == 0) return SliceCoord{0, 0, 0};
    return SliceCoord{static_cast<int>(sx / count), static_cast<int>(sy / count), 0};
}

/// Hot nets ranked by *reducible* power: the share switched on routing wires
/// (pin capacitance is fixed by connectivity). Very-high-fanout nets are
/// excluded -- nothing the placer can do about hundreds of loads. Power is
/// keyed once per net before sorting (the old comparator recomputed it on
/// every comparison); equal-power nets tie-break on the lower id so the
/// order is deterministic.
std::vector<NetId> rank_hot_nets(const RoutedDesign& routed,
                                 const sim::ActivityMap& activity,
                                 const ReallocateOptions& options) {
    const auto& nl = routed.placement().nl();
    struct HotNet {
        double wire_uw;
        NetId net;
    };
    std::vector<HotNet> keyed;
    keyed.reserve(nl.net_count());
    for (std::uint32_t i = 0; i < nl.net_count(); ++i) {
        const NetId net{i};
        if (nl.net(net).fanout() > options.max_fanout) continue;
        const NetRoute& r = routed.route(net);
        const double pin_c =
            RoutedDesign::kPinCapacitancePf * static_cast<double>(r.sinks.size());
        const double wire_c = std::max(r.capacitance_pf() - pin_c, 0.0);
        keyed.push_back(
            {switch_power_uw(wire_c, activity.rate_hz(net), options.vdd), net});
    }
    std::sort(keyed.begin(), keyed.end(), [](const HotNet& a, const HotNet& b) {
        if (a.wire_uw != b.wire_uw) return a.wire_uw > b.wire_uw;
        return a.net < b.net;
    });
    if (keyed.size() > options.net_count) keyed.resize(options.net_count);
    std::vector<NetId> order;
    order.reserve(keyed.size());
    for (const HotNet& h : keyed) order.push_back(h.net);
    return order;
}

/// Free sites in the (2*radius+1)^2 window around the centroid, in window
/// scan order. Both engines enumerate (and therefore tie-break) identically.
std::vector<SliceCoord> enumerate_targets(const Placement& placement,
                                          const Region& region,
                                          const SliceCoord& centroid,
                                          const SliceCoord& original, int radius) {
    std::vector<SliceCoord> targets;
    for (int dy = -radius; dy <= radius; ++dy) {
        for (int dx = -radius; dx <= radius; ++dx) {
            for (int idx = 0; idx < fabric::Device::kSlicesPerClb; ++idx) {
                const SliceCoord target{centroid.x + dx, centroid.y + dy, idx};
                if (!region.contains(target.x, target.y)) continue;
                if (target == original) continue;
                // Only move into free sites; swapping would perturb an
                // unrelated net's power (the paper moved logic into free
                // slices too).
                if (placement.slice_at(target).valid()) continue;
                targets.push_back(target);
            }
        }
    }
    return targets;
}

// ---------------------------------------------------------------------- engine

/// One optimization run. Both engines share this skeleton; the Incremental
/// flag switches bookkeeping strategy (indexes, caches, lazy timing,
/// parallel candidate evaluation) without changing any decision.
class Engine {
public:
    Engine(Placement& placement, RoutedDesign& routed,
           const sim::ActivityMap& activity, const ReallocateOptions& options)
        : placement_(placement),
          routed_(routed),
          activity_(activity),
          options_(options),
          inc_(options.engine == ReallocEngine::Incremental),
          rec_(options.recorder) {
        if (rec_ != nullptr) {
            obs::MetricRegistry& m = rec_->metrics();
            obs_passes_ = m.counter("realloc.passes_total");
            obs_nets_ = m.counter("realloc.nets_considered_total");
            obs_candidates_ = m.counter("realloc.candidates_evaluated_total");
            obs_commits_ = m.counter("realloc.moves_committed_total");
            obs_rejects_ = m.counter("realloc.moves_rejected_total");
            obs_resyncs_ = m.counter("realloc.timing_resyncs_total");
            obs_pass_wall_ = m.histogram(
                "realloc.pass_wall_seconds",
                {1e-3, 1e-2, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0});
        }
    }

    ReallocateReport run();

private:
    void setup_pool();
    void optimize_net(NetId net, NetPowerChange& change);
    void optimize_slice(SliceId slice, const SliceCoord& centroid,
                        std::span<const NetId> affected, NetPowerChange& change);
    [[nodiscard]] double trial_cost(std::span<const NetId> affected, SliceId slice,
                                    const SliceCoord& pos,
                                    RouteScratch& scratch) const;
    void evaluate_candidates(std::span<const NetId> affected, SliceId slice,
                             std::span<const SliceCoord> targets,
                             std::span<const std::size_t> groups, double cost_before,
                             std::vector<double>& gains);
    void rip_all(std::span<const NetId> affected);
    void route_all_lp(std::span<const NetId> affected);
    [[nodiscard]] std::vector<std::vector<double>> capture_delays(
        std::span<const NetId> affected) const;
    [[nodiscard]] double bound_delta(
        std::span<const NetId> affected,
        const std::vector<std::vector<double>>& old_delays) const;
    [[nodiscard]] bool slice_touches_critical(SliceId slice) const;
    void resync(const TimingReport& report);

    Placement& placement_;
    RoutedDesign& routed_;
    const sim::ActivityMap& activity_;
    const ReallocateOptions& options_;
    const bool inc_;

    std::optional<netlist::CellNetIndex> cell_index_;
    std::optional<ReallocIndex> index_;
    std::optional<NetPowerCache> cache_;

    double limit_ = 0.0;
    double crit_bound_ = 0.0;           ///< sound upper bound on current critical path
    std::vector<bool> critical_;        ///< cell mask from the last full analysis
    int commits_since_resync_ = 0;

    ThreadPool* pool_ = nullptr;
    std::optional<ThreadPool> local_pool_;
    std::vector<RouteScratch> scratches_;  ///< one per evaluation worker

    // Observability (counters bumped from the calling thread only).
    obs::Recorder* rec_;
    obs::MetricId obs_passes_, obs_nets_, obs_candidates_, obs_commits_,
        obs_rejects_, obs_resyncs_, obs_pass_wall_;

    void obs_add(obs::MetricId id, double delta = 1.0) {
        if (rec_ != nullptr && rec_->enabled()) rec_->metrics().add(id, delta);
    }
};

void Engine::setup_pool() {
    int workers = 1;
    if (inc_) {
        if (options_.pool != nullptr) {
            pool_ = options_.pool;
            workers = pool_->thread_count();
        } else if (options_.threads > 1) {
            local_pool_.emplace(options_.threads);
            pool_ = &*local_pool_;
            workers = options_.threads;
        }
    }
    scratches_.resize(static_cast<std::size_t>(std::max(workers, 1)));
}

ReallocateReport Engine::run() {
    const auto& nl = placement_.nl();
    if (inc_) {
        cell_index_.emplace(nl);
        index_.emplace(placement_, *cell_index_);
        cache_.emplace(routed_, activity_, options_.vdd);
    }
    setup_pool();
    obs_add(obs_passes_);
    obs::ScopedTimer pass_timer(rec_ != nullptr ? &rec_->metrics() : nullptr,
                                obs_pass_wall_);

    ReallocateReport report;
    report.total_before_uw = inc_ ? cache_->exact_total_uw()
                                  : total_power_uw(routed_, activity_, options_.vdd);
    const TimingReport t0 = analyze_timing(routed_, options_.delays);
    report.critical_before_ps = t0.critical_path_ps;
    limit_ = report.critical_before_ps * options_.timing_slack;
    if (inc_) {
        crit_bound_ = t0.critical_path_ps;
        critical_ = critical_cell_mask(t0, nl.cell_count());
    }

    for (const NetId net : rank_hot_nets(routed_, activity_, options_)) {
        obs_add(obs_nets_);
        NetPowerChange change;
        change.net = net;
        change.name = nl.net(net).name;
        change.before_uw = net_power_uw(routed_, net, activity_, options_.vdd);
        if (options_.capture_routes) change.route_before = render_route(routed_, net);
        optimize_net(net, change);
        change.after_uw = net_power_uw(routed_, net, activity_, options_.vdd);
        if (options_.capture_routes) change.route_after = render_route(routed_, net);
        report.nets.push_back(std::move(change));
    }

    report.total_after_uw = inc_ ? cache_->exact_total_uw()
                                 : total_power_uw(routed_, activity_, options_.vdd);
    report.critical_after_ps = analyze_timing(routed_, options_.delays).critical_path_ps;
    return report;
}

void Engine::optimize_net(NetId net, NetPowerChange& change) {
    // Step 1: re-route the net itself on low-capacitance wires.
    const NetId self[] = {net};
    std::vector<std::vector<double>> old_delays;
    if (inc_) old_delays = capture_delays(self);
    routed_.reroute_net(net, RouteMode::LowPower);
    if (inc_) {
        cache_->refresh(net);
        crit_bound_ += bound_delta(self, old_delays);
    }

    // Step 2: try to pull each participating slice toward the centroid.
    const SliceCoord centroid = net_centroid(placement_, net);
    if (inc_) {
        for (const SliceId slice : index_->slices_of(net))
            optimize_slice(slice, centroid, index_->nets_of(slice), change);
    } else {
        for (const SliceId slice : net_slices_naive(placement_, net)) {
            const std::vector<NetId> affected = incident_nets_naive(placement_, slice);
            optimize_slice(slice, centroid, affected, change);
        }
    }
}

void Engine::optimize_slice(SliceId slice, const SliceCoord& centroid,
                            std::span<const NetId> affected,
                            NetPowerChange& change) {
    if (affected.empty()) return;  // no move can change any routed net

    const Region region = placement_.region_of(
        placement_.design().slices()[slice.value()].partition);
    const SliceCoord original = placement_.slice_pos(slice);
    const std::vector<SliceCoord> targets =
        enumerate_targets(placement_, region, centroid, original, options_.radius);
    if (targets.empty()) return;

    std::vector<std::vector<double>> old_delays;
    if (inc_) old_delays = capture_delays(affected);

    // Candidates are delta-costed against the base occupancy with every
    // affected net ripped up -- exactly the state a live re-route starts
    // from, so trial routes equal committed routes byte for byte.
    rip_all(affected);

    // Deterministic reduction: window order, strict improvement required,
    // first (lowest-coordinate) candidate wins ties — identical across
    // engines and for any thread count.
    double best_gain = 0.0;
    std::size_t best = targets.size();
    if (inc_) {
        const double cost_before = trial_cost(affected, slice, original, scratches_[0]);
        // Slice sites within one CLB share the tile coordinate and routing
        // never reads the intra-CLB index, so their gains are bitwise equal.
        // Evaluate one representative per tile: under the strict-improvement
        // reduction only a group's first member is ever selectable, so the
        // choice matches a full per-site evaluation exactly.
        std::vector<std::size_t> groups;
        groups.reserve(targets.size());
        for (std::size_t i = 0; i < targets.size(); ++i)
            if (groups.empty() || targets[i].x != targets[groups.back()].x ||
                targets[i].y != targets[groups.back()].y)
                groups.push_back(i);
        std::vector<double> gains(groups.size(), 0.0);
        obs_add(obs_candidates_, static_cast<double>(groups.size()));
        evaluate_candidates(affected, slice, targets, groups, cost_before, gains);
        for (std::size_t g = 0; g < groups.size(); ++g) {
            if (gains[g] > best_gain) {
                best_gain = gains[g];
                best = groups[g];
            }
        }
    } else {
        // Retained pre-PR mechanics: every candidate swaps the slice in,
        // re-routes all affected nets on the live grid, measures, then swaps
        // back and re-routes again to undo — the occupy/undo churn (and the
        // per-candidate baseline recompute) that the incremental engine's
        // scratch evaluator eliminates. Decisions are identical: live routes
        // from the same base occupancy equal scratch trial routes byte for
        // byte, and costs are summed in the same ascending net order.
        obs_add(obs_candidates_, static_cast<double>(targets.size()));
        for (std::size_t i = 0; i < targets.size(); ++i) {
            placement_.swap_sites(original, targets[i]);
            for (const NetId a : affected)
                routed_.reroute_net(a, RouteMode::LowPower);
            double cost_after = 0.0;
            for (const NetId a : affected)
                cost_after += net_power_uw(routed_, a, activity_, options_.vdd);
            rip_all(affected);
            placement_.swap_sites(targets[i], original);
            for (const NetId a : affected)
                routed_.reroute_net(a, RouteMode::LowPower);
            double cost_before = 0.0;
            for (const NetId a : affected)
                cost_before += net_power_uw(routed_, a, activity_, options_.vdd);
            rip_all(affected);
            const double gain = cost_before - cost_after;
            if (gain > best_gain) {
                best_gain = gain;
                best = i;
            }
        }
    }

    const bool move = best < targets.size();
    if (move) placement_.swap_sites(original, targets[best]);
    route_all_lp(affected);

    if (!move) {
        // The restored routes need not equal the pre-step ones (they were
        // re-composed from the ripped-up base); keep the bound sound.
        if (inc_) crit_bound_ += bound_delta(affected, old_delays);
        return;
    }

    // Timing gate: undo the move if the clock target breaks. The Reference
    // engine re-analyzes after every committed move; the incremental engine
    // only when the moved slice touches the last-known critical path or the
    // accumulated delay bound no longer proves the limit holds.
    bool reject;
    if (!inc_) {
        reject = analyze_timing(routed_, options_.delays).critical_path_ps > limit_;
    } else {
        const double delta = bound_delta(affected, old_delays);
        if (crit_bound_ + delta <= limit_) {
            // The bound proves the move cannot break the clock target, so the
            // full analysis is skipped outright; the decision matches what a
            // measurement would have produced.
            crit_bound_ += delta;
            reject = false;
            // Moving a critical-path slice likely reshaped the path: pull the
            // periodic resync closer so the bound re-tightens soon.
            if (slice_touches_critical(slice)) ++commits_since_resync_;
        } else {
            const TimingReport tr = analyze_timing(routed_, options_.delays);
            reject = tr.critical_path_ps > limit_;
            if (!reject) resync(tr);
        }
    }

    if (reject) {
        obs_add(obs_rejects_);
        rip_all(affected);
        placement_.swap_sites(targets[best], original);
        route_all_lp(affected);
        // Re-measure: the restored routes need not match what the bound last
        // described. Rejections are rare, so this resync is off the hot path.
        if (inc_) resync(analyze_timing(routed_, options_.delays));
    } else {
        obs_add(obs_commits_);
        change.moved_logic = true;
        if (inc_ && ++commits_since_resync_ >= options_.timing_resync_period)
            resync(analyze_timing(routed_, options_.delays));
    }
}

double Engine::trial_cost(std::span<const NetId> affected, SliceId slice,
                          const SliceCoord& pos, RouteScratch& scratch) const {
    scratch.clear();
    double cost = 0.0;
    for (const NetId a : affected)
        cost += switch_power_uw(
            routed_.trial_route_capacitance_pf(a, slice, pos, RouteMode::LowPower,
                                               scratch),
            activity_.rate_hz(a), options_.vdd);
    return cost;
}

void Engine::evaluate_candidates(std::span<const NetId> affected, SliceId slice,
                                 std::span<const SliceCoord> targets,
                                 std::span<const std::size_t> groups,
                                 double cost_before, std::vector<double>& gains) {
    const std::size_t count = groups.size();
    const std::size_t workers =
        pool_ != nullptr ? static_cast<std::size_t>(pool_->thread_count()) : 1;
    if (workers <= 1 || count < 2) {
        for (std::size_t g = 0; g < count; ++g)
            gains[g] = cost_before -
                       trial_cost(affected, slice, targets[groups[g]], scratches_[0]);
        return;
    }
    // Contiguous chunks, one per worker; every candidate's gain is computed
    // from the same frozen base state into its own slot, so the schedule
    // cannot reorder any arithmetic.
    const std::size_t chunks = std::min(workers, count);
    for (std::size_t c = 0; c < chunks; ++c) {
        pool_->submit([this, affected, slice, targets, groups, cost_before, &gains,
                       c, chunks, count] {
            const std::size_t begin = c * count / chunks;
            const std::size_t end = (c + 1) * count / chunks;
            RouteScratch& scratch = scratches_[c];
            for (std::size_t g = begin; g < end; ++g)
                gains[g] = cost_before -
                           trial_cost(affected, slice, targets[groups[g]], scratch);
        });
    }
    pool_->wait_idle();
}

void Engine::rip_all(std::span<const NetId> affected) {
    for (const NetId a : affected) routed_.unroute_net(a);
}

void Engine::route_all_lp(std::span<const NetId> affected) {
    for (const NetId a : affected) {
        routed_.reroute_net(a, RouteMode::LowPower);
        if (inc_) cache_->refresh(a);
    }
}

std::vector<std::vector<double>> Engine::capture_delays(
    std::span<const NetId> affected) const {
    std::vector<std::vector<double>> out;
    out.reserve(affected.size());
    for (const NetId a : affected) {
        const NetRoute& r = routed_.route(a);
        std::vector<double> delays;
        delays.reserve(r.sinks.size());
        for (const auto& s : r.sinks) delays.push_back(s.delay_ps);
        out.push_back(std::move(delays));
    }
    return out;
}

double Engine::bound_delta(
    std::span<const NetId> affected,
    const std::vector<std::vector<double>>& old_delays) const {
    // Sound upper bound on critical-path growth from re-routing `affected`:
    // a register-to-register path crosses each net at most once, through
    // exactly one sink connection, so its delay grows by at most each net's
    // worst per-sink increase, summed over the re-routed nets.
    double total = 0.0;
    for (std::size_t k = 0; k < affected.size(); ++k) {
        const NetRoute& r = routed_.route(affected[k]);
        if (r.sinks.size() != old_delays[k].size())
            return std::numeric_limits<double>::infinity();  // force re-analysis
        double worst = 0.0;
        for (std::size_t i = 0; i < r.sinks.size(); ++i)
            worst = std::max(worst, r.sinks[i].delay_ps - old_delays[k][i]);
        total += std::max(0.0, worst);
    }
    return total;
}

bool Engine::slice_touches_critical(SliceId slice) const {
    const PackedSlice& ps = placement_.design().slices()[slice.value()];
    for (const CellId cell : ps.luts)
        if (critical_[cell.value()]) return true;
    for (const CellId cell : ps.ffs)
        if (critical_[cell.value()]) return true;
    return false;
}

void Engine::resync(const TimingReport& report) {
    obs_add(obs_resyncs_);
    crit_bound_ = report.critical_path_ps;
    critical_ = critical_cell_mask(report, placement_.nl().cell_count());
    commits_since_resync_ = 0;
}

}  // namespace

ReallocateReport optimize_net_power(Placement& placement, RoutedDesign& routed,
                                    const sim::ActivityMap& activity,
                                    const ReallocateOptions& options) {
    return Engine(placement, routed, activity, options).run();
}

}  // namespace refpga::par
