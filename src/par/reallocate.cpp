#include "refpga/par/reallocate.hpp"

#include <algorithm>
#include <set>

namespace refpga::par {

using fabric::Region;
using fabric::SliceCoord;
using netlist::CellId;
using netlist::NetId;

double net_power_uw(const RoutedDesign& routed, NetId net,
                    const sim::ActivityMap& activity, double vdd) {
    return switch_power_uw(routed.route(net).capacitance_pf(),
                           activity.rate_hz(net), vdd);
}

namespace {

double total_power_uw(const RoutedDesign& routed, const sim::ActivityMap& activity,
                      double vdd) {
    double total = 0.0;
    for (std::uint32_t i = 0; i < routed.placement().nl().net_count(); ++i)
        total += net_power_uw(routed, NetId{i}, activity, vdd);
    return total;
}

/// Slices participating in a net (driver and sinks that live in slices).
std::vector<SliceId> net_slices(const Placement& placement, NetId net) {
    const auto& nl = placement.nl();
    const auto& n = nl.net(net);
    std::set<SliceId> slices;
    auto add = [&](CellId cell) {
        const SliceId s = placement.design().slice_of(cell);
        if (s.valid()) slices.insert(s);
    };
    if (n.driven()) add(n.driver.cell);
    for (const auto& sink : n.sinks) add(sink.cell);
    return {slices.begin(), slices.end()};
}

/// All nets incident to a slice's cells (these must be re-routed on a move).
std::vector<NetId> incident_nets(const Placement& placement, SliceId slice) {
    const auto& nl = placement.nl();
    const auto& packed = placement.design().slices()[slice.value()];
    std::set<NetId> nets;
    auto add_cell = [&](CellId cell) {
        const auto& c = nl.cell(cell);
        for (const NetId in : c.inputs)
            if (in.valid() && !placement.dedicated_net(in)) nets.insert(in);
        for (const NetId out : c.outputs)
            if (out.valid() && !placement.dedicated_net(out)) nets.insert(out);
    };
    for (const CellId cell : packed.luts) add_cell(cell);
    for (const CellId cell : packed.ffs) add_cell(cell);
    return {nets.begin(), nets.end()};
}

SliceCoord net_centroid(const Placement& placement, NetId net) {
    const auto& n = placement.nl().net(net);
    long sx = 0;
    long sy = 0;
    long count = 0;
    auto add = [&](CellId cell) {
        const SliceCoord pos = placement.cell_pos(cell);
        sx += pos.x;
        sy += pos.y;
        ++count;
    };
    if (n.driven()) add(n.driver.cell);
    for (const auto& sink : n.sinks) add(sink.cell);
    if (count == 0) return SliceCoord{0, 0, 0};
    return SliceCoord{static_cast<int>(sx / count), static_cast<int>(sy / count), 0};
}

}  // namespace

ReallocateReport optimize_net_power(Placement& placement, RoutedDesign& routed,
                                    const sim::ActivityMap& activity,
                                    const ReallocateOptions& options) {
    const auto& nl = placement.nl();
    ReallocateReport report;
    report.total_before_uw = total_power_uw(routed, activity, options.vdd);
    report.critical_before_ps = analyze_timing(routed, options.delays).critical_path_ps;
    const double timing_limit =
        report.critical_before_ps * options.timing_slack;

    // Hot nets ranked by *reducible* power: the share switched on routing
    // wires (pin capacitance is fixed by connectivity). Very-high-fanout nets
    // are excluded -- nothing the placer can do about hundreds of loads.
    auto wire_power = [&](NetId net) {
        const auto& r = routed.route(net);
        const double pin_c =
            RoutedDesign::kPinCapacitancePf * static_cast<double>(r.sinks.size());
        const double wire_c = std::max(r.capacitance_pf() - pin_c, 0.0);
        return switch_power_uw(wire_c, activity.rate_hz(net), options.vdd);
    };
    std::vector<NetId> order;
    for (std::uint32_t i = 0; i < nl.net_count(); ++i) {
        const NetId net{i};
        if (nl.net(net).fanout() > options.max_fanout) continue;
        order.push_back(net);
    }
    std::sort(order.begin(), order.end(),
              [&](NetId a, NetId b) { return wire_power(a) > wire_power(b); });
    if (order.size() > options.net_count) order.resize(options.net_count);

    for (const NetId net : order) {
        NetPowerChange change;
        change.net = net;
        change.name = nl.net(net).name;
        change.before_uw = net_power_uw(routed, net, activity, options.vdd);
        if (options.capture_routes) change.route_before = render_route(routed, net);

        // Step 1: re-route the net itself on low-capacitance wires.
        routed.reroute_net(net, RouteMode::LowPower);

        // Step 2: try to pull each participating slice toward the centroid.
        const SliceCoord centroid = net_centroid(placement, net);
        for (const SliceId slice : net_slices(placement, net)) {
            const Region region =
                placement.region_of(placement.design().slices()[slice.value()].partition);
            const auto affected = incident_nets(placement, slice);

            double best_gain = 0.0;
            SliceCoord best_target{-1, -1, -1};
            const SliceCoord original = placement.slice_pos(slice);

            double affected_before = 0.0;
            for (const NetId a : affected)
                affected_before += net_power_uw(routed, a, activity, options.vdd);

            for (int dy = -options.radius; dy <= options.radius; ++dy) {
                for (int dx = -options.radius; dx <= options.radius; ++dx) {
                    for (int idx = 0; idx < fabric::Device::kSlicesPerClb; ++idx) {
                        const SliceCoord target{centroid.x + dx, centroid.y + dy, idx};
                        if (!region.contains(target.x, target.y)) continue;
                        if (target == original) continue;
                        // Only move into free sites; swapping would perturb an
                        // unrelated net's power (the paper moved logic into
                        // free slices too).
                        if (placement.slice_at(target).valid()) continue;

                        placement.swap_sites(original, target);
                        for (const NetId a : affected)
                            routed.reroute_net(a, RouteMode::LowPower);

                        double affected_after = 0.0;
                        for (const NetId a : affected)
                            affected_after +=
                                net_power_uw(routed, a, activity, options.vdd);
                        const double gain = affected_before - affected_after;
                        if (gain > best_gain) {
                            best_gain = gain;
                            best_target = target;
                        }
                        // Undo for the next candidate.
                        placement.swap_sites(target, original);
                        for (const NetId a : affected)
                            routed.reroute_net(a, RouteMode::LowPower);
                    }
                }
            }

            if (best_target.index >= 0) {
                placement.swap_sites(original, best_target);
                for (const NetId a : affected)
                    routed.reroute_net(a, RouteMode::LowPower);
                // Timing gate: undo the move if the clock target breaks.
                const double crit =
                    analyze_timing(routed, options.delays).critical_path_ps;
                if (crit > timing_limit) {
                    placement.swap_sites(best_target, original);
                    for (const NetId a : affected)
                        routed.reroute_net(a, RouteMode::LowPower);
                } else {
                    change.moved_logic = true;
                }
            }
        }

        change.after_uw = net_power_uw(routed, net, activity, options.vdd);
        if (options.capture_routes) change.route_after = render_route(routed, net);
        report.nets.push_back(std::move(change));
    }

    report.total_after_uw = total_power_uw(routed, activity, options.vdd);
    report.critical_after_ps = analyze_timing(routed, options.delays).critical_path_ps;
    return report;
}

}  // namespace refpga::par
