// XPower-style chip power estimation.
//
// Total = static (device leakage, a function of the chosen part — the lever
// the paper pulls by downsizing via reconfiguration) + clock tree + per-net
// switched capacitance x activity. Per-net numbers use the routed wire
// capacitances, so the §4.3 reallocation shows up directly in this report.
#pragma once

#include <string>
#include <vector>

#include "refpga/par/reallocate.hpp"
#include "refpga/par/router.hpp"
#include "refpga/sim/activity.hpp"

namespace refpga::power {

struct PowerOptions {
    double vdd = 1.2;                 ///< Vccint
    double clock_load_pf_per_ff = 0.40;  ///< clock network load per sequential cell
    double clock_trunk_pf = 12.0;        ///< global clock spine
};

struct NetPowerEntry {
    netlist::NetId net;
    std::string name;
    double power_uw = 0.0;
    double capacitance_pf = 0.0;
    double toggle_hz = 0.0;
};

struct PowerReport {
    double static_mw = 0.0;
    double clock_mw = 0.0;
    double logic_mw = 0.0;  ///< routed-net dynamic power

    std::vector<NetPowerEntry> top_nets;

    [[nodiscard]] double dynamic_mw() const { return clock_mw + logic_mw; }
    [[nodiscard]] double total_mw() const { return static_mw + dynamic_mw(); }

    [[nodiscard]] std::string render() const;
};

/// Estimates power for a routed design clocked at `clock_hz`.
/// `top_net_count` controls how many hottest nets are listed in the report.
[[nodiscard]] PowerReport estimate_power(const par::RoutedDesign& routed,
                                         const sim::ActivityMap& activity,
                                         double clock_hz,
                                         const PowerOptions& options = {},
                                         std::size_t top_net_count = 10);

/// Same, taking activity straight from a finished simulation of the routed
/// netlist. Works over either engine: the dual-engine parity contract
/// (sim/engine.hpp) guarantees the report is engine-independent.
[[nodiscard]] PowerReport estimate_power(const par::RoutedDesign& routed,
                                         const sim::SimEngine& sim,
                                         double clock_hz,
                                         const PowerOptions& options = {},
                                         std::size_t top_net_count = 10);

}  // namespace refpga::power
