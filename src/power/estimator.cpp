#include "refpga/power/estimator.hpp"

#include <algorithm>
#include <sstream>

#include "refpga/common/table.hpp"

namespace refpga::power {

using netlist::NetId;

PowerReport estimate_power(const par::RoutedDesign& routed,
                           const sim::ActivityMap& activity, double clock_hz,
                           const PowerOptions& options, std::size_t top_net_count) {
    const auto& placement = routed.placement();
    const auto& nl = placement.nl();

    PowerReport report;
    report.static_mw = placement.device().part().static_power_mw();

    // Clock network: toggles twice per cycle => P = C * V^2 * f_clk.
    std::size_t seq_cells = 0;
    for (const auto& c : nl.cells())
        if (c.sequential()) ++seq_cells;
    const double clock_c_pf = options.clock_trunk_pf +
                              options.clock_load_pf_per_ff *
                                  static_cast<double>(seq_cells);
    report.clock_mw =
        clock_c_pf * 1e-12 * options.vdd * options.vdd * clock_hz * 1e3;

    std::vector<NetPowerEntry> entries;
    for (std::uint32_t i = 0; i < nl.net_count(); ++i) {
        const NetId net{i};
        const double c_pf = routed.route(net).capacitance_pf();
        if (c_pf <= 0.0) continue;
        const double rate = activity.rate_hz(net);
        const double p_uw = par::switch_power_uw(c_pf, rate, options.vdd);
        report.logic_mw += p_uw * 1e-3;
        if (p_uw > 0.0)
            entries.push_back({net, nl.net(net).name, p_uw, c_pf, rate});
    }

    // Tie-break equal powers on net id so the top-N cut is deterministic
    // regardless of the (unspecified) std::sort order for equal keys.
    std::sort(entries.begin(), entries.end(),
              [](const NetPowerEntry& a, const NetPowerEntry& b) {
                  if (a.power_uw != b.power_uw) return a.power_uw > b.power_uw;
                  return a.net.value() < b.net.value();
              });
    if (entries.size() > top_net_count) entries.resize(top_net_count);
    report.top_nets = std::move(entries);
    return report;
}

PowerReport estimate_power(const par::RoutedDesign& routed, const sim::SimEngine& sim,
                           double clock_hz, const PowerOptions& options,
                           std::size_t top_net_count) {
    return estimate_power(routed, sim::activity_from_simulation(sim, clock_hz),
                          clock_hz, options, top_net_count);
}

std::string PowerReport::render() const {
    std::ostringstream os;
    os << "power report:\n"
       << "  static : " << Table::num(static_mw) << " mW\n"
       << "  clock  : " << Table::num(clock_mw) << " mW\n"
       << "  logic  : " << Table::num(logic_mw) << " mW\n"
       << "  total  : " << Table::num(total_mw()) << " mW\n";
    if (!top_nets.empty()) {
        Table table({"net", "power (uW)", "C (pF)", "toggle (MHz)"});
        for (const auto& e : top_nets)
            table.add_row({e.name, Table::num(e.power_uw), Table::num(e.capacitance_pf),
                           Table::num(e.toggle_hz * 1e-6)});
        os << table.render();
    }
    return os.str();
}

}  // namespace refpga::power
