#include "refpga/analog/tank.hpp"

#include <algorithm>
#include <cmath>

#include "refpga/common/contracts.hpp"

namespace refpga::analog {

TankCircuit::TankCircuit(TankParams params, double sample_hz, std::uint64_t noise_seed)
    : params_(params),
      inv_dt_(sample_hz),
      g_leak_(1.0 / params.r_leak_ohm),
      rng_(noise_seed) {
    REFPGA_EXPECTS(sample_hz > 0.0);
    REFPGA_EXPECTS(params_.c_full_pf > params_.c_empty_pf);
}

void TankCircuit::set_level(double level) {
    REFPGA_EXPECTS(level >= 0.0 && level <= 1.0);
    level_ = level;
}

double TankCircuit::probe_capacitance_pf() const {
    return params_.c_empty_pf + level_ * (params_.c_full_pf - params_.c_empty_pf);
}

TankCircuit::Currents TankCircuit::step(double drive_v) {
    Currents out;
    if (!primed_) {
        prev_drive_ = drive_v;
        primed_ = true;
        return out;
    }
    const double dv_dt = (drive_v - prev_drive_) * inv_dt_;
    prev_drive_ = drive_v;

    // Branch currents: i = C dv/dt (+ v/R for the leaky probe).
    const double c_probe = probe_capacitance_pf() * 1e-12;
    const double i_meas = c_probe * dv_dt + drive_v * g_leak_;
    const double i_ref = params_.c_ref_pf * 1e-12 * dv_dt;

    out.meas_v = i_meas * params_.tia_gain_v_per_a;
    out.ref_v = i_ref * params_.tia_gain_v_per_a;
    if (params_.noise_rms_v > 0.0) {
        // Draw order (meas, then ref) is part of the front end's determinism
        // contract. At zero RMS the noise term is a signed zero, which cannot
        // change any downstream sample, so the draws are skipped entirely —
        // the Gaussian synthesis is the single most expensive part of a tick.
        out.meas_v += params_.noise_rms_v * rng_.next_gaussian();
        out.ref_v += params_.noise_rms_v * rng_.next_gaussian();
    }
    return out;
}

std::complex<double> TankCircuit::meas_response(double freq_hz) const {
    const double w = 2.0 * M_PI * freq_hz;
    const std::complex<double> admittance(1.0 / params_.r_leak_ohm,
                                          w * probe_capacitance_pf() * 1e-12);
    return admittance * params_.tia_gain_v_per_a;
}

std::complex<double> TankCircuit::ref_response(double freq_hz) const {
    const double w = 2.0 * M_PI * freq_hz;
    return std::complex<double>(0.0, w * params_.c_ref_pf * 1e-12) *
           params_.tia_gain_v_per_a;
}

double level_from_capacitance(const TankParams& params, double c_pf) {
    const double level =
        (c_pf - params.c_empty_pf) / (params.c_full_pf - params.c_empty_pf);
    return std::clamp(level, 0.0, 1.0);
}

}  // namespace refpga::analog
