#include "refpga/analog/dsp.hpp"

#include <cmath>

#include "refpga/common/contracts.hpp"

namespace refpga::analog {

void fft(std::vector<std::complex<double>>& x) {
    const std::size_t n = x.size();
    REFPGA_EXPECTS(n != 0 && (n & (n - 1)) == 0);

    // Bit-reversal permutation.
    for (std::size_t i = 1, j = 0; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; (j & bit) != 0; bit >>= 1) j ^= bit;
        j ^= bit;
        if (i < j) std::swap(x[i], x[j]);
    }

    for (std::size_t len = 2; len <= n; len <<= 1) {
        const double angle = -2.0 * M_PI / static_cast<double>(len);
        const std::complex<double> wlen(std::cos(angle), std::sin(angle));
        for (std::size_t i = 0; i < n; i += len) {
            std::complex<double> w(1.0, 0.0);
            for (std::size_t k = 0; k < len / 2; ++k) {
                const std::complex<double> u = x[i + k];
                const std::complex<double> v = x[i + k + len / 2] * w;
                x[i + k] = u + v;
                x[i + k + len / 2] = u - v;
                w *= wlen;
            }
        }
    }
}

std::vector<std::complex<double>> fft_real(std::span<const double> x) {
    std::vector<std::complex<double>> c(x.begin(), x.end());
    fft(c);
    return c;
}

AmpPhase goertzel(std::span<const double> x, int k) {
    REFPGA_EXPECTS(!x.empty());
    const auto n = static_cast<double>(x.size());
    const double w = 2.0 * M_PI * static_cast<double>(k) / n;
    const double coeff = 2.0 * std::cos(w);
    double s_prev = 0.0;
    double s_prev2 = 0.0;
    for (const double sample : x) {
        const double s = sample + coeff * s_prev - s_prev2;
        s_prev2 = s_prev;
        s_prev = s;
    }
    // Final correction by e^{jw}: the recurrence leaves the phase referenced
    // to sample N-1; this re-references it to sample 0.
    const std::complex<double> y =
        std::complex<double>(s_prev - s_prev2 * std::cos(w), s_prev2 * std::sin(w)) *
        std::exp(std::complex<double>(0.0, w));
    AmpPhase result;
    result.amplitude = 2.0 * std::abs(y) / n;
    result.phase_rad = std::arg(y);
    return result;
}

double band_sndr_db(std::span<const double> x, int k, int band_bins) {
    REFPGA_EXPECTS(k > 0 && band_bins > k);
    const std::size_t n = x.size();
    REFPGA_EXPECTS(n != 0 && (n & (n - 1)) == 0);
    REFPGA_EXPECTS(static_cast<std::size_t>(band_bins) < n / 2);
    std::vector<std::complex<double>> c(x.begin(), x.end());
    fft(c);
    double p_fund = 0.0;
    double p_band = 0.0;
    for (int b = 1; b <= band_bins; ++b) {
        const double p = std::norm(c[static_cast<std::size_t>(b)]);
        if (b >= k - 1 && b <= k + 1)
            p_fund += p;
        else
            p_band += p;
    }
    return 10.0 * std::log10(std::max(p_fund, 1e-30) / std::max(p_band, 1e-30));
}

ToneQuality analyze_tone(std::span<const double> x, int k) {
    REFPGA_EXPECTS(k > 0);
    const std::size_t n = x.size();
    REFPGA_EXPECTS(n != 0 && (n & (n - 1)) == 0);

    // Hann window (suppresses leakage from slight bin misalignment).
    std::vector<std::complex<double>> c(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double w =
            0.5 - 0.5 * std::cos(2.0 * M_PI * static_cast<double>(i) /
                                 static_cast<double>(n));
        c[i] = x[i] * w;
    }
    fft(c);

    auto bin_power = [&](std::size_t bin) {
        // Sum a 3-bin cluster to collect the Hann-spread energy.
        double p = 0.0;
        for (std::size_t b = bin > 0 ? bin - 1 : 0; b <= bin + 1 && b < n / 2; ++b)
            p += std::norm(c[b]);
        return p;
    };

    const double p_fund = bin_power(static_cast<std::size_t>(k));
    double p_harm = 0.0;
    for (int h = 2; h <= 9; ++h) {
        const auto bin = static_cast<std::size_t>(h * k);
        if (bin >= n / 2) break;
        p_harm += bin_power(bin);
    }
    double p_total = 0.0;
    for (std::size_t b = 1; b < n / 2; ++b) p_total += std::norm(c[b]);
    const double p_noise_dist = std::max(p_total - p_fund, 1e-30);

    ToneQuality q;
    // Hann-windowed coherent tone spreads over 3 bins as (N A/8, N A/4, N A/8),
    // so the cluster power is 3/32 * N^2 A^2 = 0.09375 N^2 A^2.
    q.fundamental_amplitude =
        std::sqrt(p_fund / 0.09375) / static_cast<double>(n);
    q.thd_db = 10.0 * std::log10(std::max(p_harm, 1e-30) / p_fund);
    q.sndr_db = 10.0 * std::log10(p_fund / p_noise_dist);
    return q;
}

}  // namespace refpga::analog
