// DSP reference kernels: FFT, Goertzel, tone quality metrics.
//
// These are the double-precision golden models against which the fixed-point
// hardware modules and the soft-core software are checked, and the "Fourier
// analysis" instrument of §4.1 (spectral purity of the delta-sigma sinus
// generator).
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace refpga::analog {

/// In-place iterative radix-2 FFT; size must be a power of two.
void fft(std::vector<std::complex<double>>& x);

/// Forward FFT of a real signal; returns the complex spectrum.
[[nodiscard]] std::vector<std::complex<double>> fft_real(std::span<const double> x);

struct AmpPhase {
    double amplitude = 0.0;  ///< peak amplitude of the bin's sinusoid
    double phase_rad = 0.0;
};

/// Goertzel single-bin DFT at integer bin `k` over the whole span.
[[nodiscard]] AmpPhase goertzel(std::span<const double> x, int k);

struct ToneQuality {
    double fundamental_amplitude = 0.0;
    double thd_db = 0.0;   ///< total harmonic distortion (first 8 harmonics)
    double sndr_db = 0.0;  ///< signal to noise-and-distortion
};

/// Analyzes a tone at integer bin `k` (Hann-windowed, power-of-two length).
[[nodiscard]] ToneQuality analyze_tone(std::span<const double> x, int k);

/// Signal-to-noise-and-distortion within bins [1, band_bins] only. For
/// delta-sigma sources this is the meaningful figure: the shaped quantization
/// noise lives out of band and is removed by the reconstruction filter.
[[nodiscard]] double band_sndr_db(std::span<const double> x, int k, int band_bins);

}  // namespace refpga::analog
