// Caller-owned buffers for the block-streaming front end.
//
// The 16 MHz measurement loop advances millions of modulator ticks per
// simulated second; a SampleBlock lets FrontEnd::run_block_*() write whole
// batches of PCM pairs into preallocated storage instead of returning one
// std::optional per tick. The same object also carries the modulator-rate
// drive scratch, so one block can be reused across windows, cycles and
// scenarios without reallocating (refpga::fleet keeps one per worker thread).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace refpga::analog {

/// Reusable streaming buffers. `meas`/`ref` hold the decimated PCM output
/// (appended to by FrontEnd::run_block_*); `drive` is modulator-rate drive
/// scratch — delta-sigma bits (0/1) or 8-bit DAC codes — filled by the drive
/// source (e.g. app::SinusGenModel::run_block_*). Plain vectors so callers
/// keep full ownership of capacity and lifetime.
struct SampleBlock {
    std::vector<std::int32_t> meas;
    std::vector<std::int32_t> ref;
    std::vector<std::uint8_t> drive;

    [[nodiscard]] std::size_t pcm_size() const { return meas.size(); }

    void clear_pcm() {
        meas.clear();
        ref.clear();
    }

    void reserve_pcm(std::size_t pairs) {
        meas.reserve(pairs);
        ref.reserve(pairs);
    }
};

}  // namespace refpga::analog
