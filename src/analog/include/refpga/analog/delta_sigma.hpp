// Delta-sigma data converters and RC filters.
//
// §4.1 replaces the board-level DA/AD converters with the Xilinx delta-sigma
// cores plus small external analog filters. The DAC is a second-order 1-bit
// modulator whose bitstream an external RC low-pass reconstructs; the ADC is
// the dual (analog second-order modulator, digital CIC decimator). The paper
// validated by "real hardware tests and Fourier analysis" that the DAC,
// nominally an audio core, still produces a clean 500 kHz sine at 16 MSPS —
// our FFT-based bench (Fig. 3) repeats that check.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>

#include "refpga/common/contracts.hpp"

namespace refpga::analog {

class FrontEnd;  // block-streaming kernel (frontend.cpp) reads state directly

/// Single-pole RC low-pass, advanced at a fixed sample rate.
class RcFilter {
public:
    /// cutoff_hz / sample_hz define the pole; state starts at 0.
    RcFilter(double cutoff_hz, double sample_hz);

    double step(double in);
    [[nodiscard]] double value() const { return state_; }
    void reset() { state_ = 0.0; }

private:
    friend class FrontEnd;
    double alpha_;
    double state_ = 0.0;
};

/// Two cascaded RC sections (the board-level Sallen-Key-ish low-pass used to
/// reconstruct the delta-sigma bitstream and to band-limit the ADC inputs;
/// a single pole does not suppress the shaped quantization noise enough).
class RcFilter2 {
public:
    RcFilter2(double cutoff_hz, double sample_hz)
        : a_(cutoff_hz, sample_hz), b_(cutoff_hz, sample_hz) {}

    double step(double in) { return b_.step(a_.step(in)); }
    [[nodiscard]] double value() const { return b_.value(); }
    void reset() {
        a_.reset();
        b_.reset();
    }

private:
    friend class FrontEnd;
    RcFilter a_;
    RcFilter b_;
};

/// Second-order 1-bit delta-sigma modulator (DAC digital core).
/// Input in [-1, 1]; output is the +/-1 bitstream.
class DeltaSigmaDac {
public:
    double step(double u);
    void reset();

private:
    double s1_ = 0.0;
    double s2_ = 0.0;
};

/// Second-order delta-sigma ADC: analog modulator + 3-stage CIC decimator.
/// step() consumes one analog sample (in [-1, 1]) at the modulator rate and
/// yields a signed PCM sample every `decimation` inputs.
class DeltaSigmaAdc {
public:
    /// output_bits bounds the PCM range: samples are in
    /// [-2^(bits-1), 2^(bits-1) - 1].
    DeltaSigmaAdc(int decimation, int output_bits);

    [[nodiscard]] std::optional<std::int32_t> step(double in);
    void reset();

    [[nodiscard]] int decimation() const { return decimation_; }
    [[nodiscard]] int output_bits() const { return output_bits_; }

    /// Largest representable PCM code, 2^(bits-1) - 1.
    [[nodiscard]] std::int32_t max_code() const {
        return static_cast<std::int32_t>((std::int64_t{1} << (output_bits_ - 1)) - 1);
    }
    /// Smallest representable PCM code, -2^(bits-1). The clamp below admits
    /// the full two's-complement range, not just -max_code.
    [[nodiscard]] std::int32_t min_code() const { return -max_code() - 1; }

    /// Shared quantization tail of the CIC output: normalize by the CIC gain,
    /// clamp symmetrically to the representable two's-complement range
    /// [min_code, max_code] and round. Used by both the per-sample step() and
    /// the fused block kernel (refpga::analog::FrontEnd), so the two paths
    /// cannot drift apart.
    [[nodiscard]] static std::int32_t quantize(std::int64_t v, double full_scale,
                                               double max_code, double min_code) {
        const double norm = static_cast<double>(v) / full_scale;  // roughly [-1, 1]
        const double scaled = std::clamp(norm * max_code, min_code, max_code);
        // std::lround(scaled), computed without the libm call: a call inside
        // the fused block kernel's PCM tail would force the compiler to spill
        // the whole register-resident pipeline state around it. |scaled| is
        // at most 2^23 (24-bit PCM), so the truncation is in range and
        // `scaled - truncated` is an exact cancellation; comparing that
        // fraction against +/-0.5 reproduces lround's
        // round-half-away-from-zero semantics bit-for-bit, branch-free.
        const auto truncated = static_cast<std::int32_t>(scaled);
        const double frac = scaled - static_cast<double>(truncated);
        const std::int32_t out = truncated +
                                 static_cast<std::int32_t>(frac >= 0.5) -
                                 static_cast<std::int32_t>(frac <= -0.5);
        REFPGA_ENSURES(static_cast<double>(out) >= min_code &&
                       static_cast<double>(out) <= max_code);
        return out;
    }

private:
    friend class FrontEnd;
    int decimation_;
    int output_bits_;
    // Modulator state.
    double s1_ = 0.0;
    double s2_ = 0.0;
    // CIC integrator/comb state (3 stages).
    std::int64_t integ_[3] = {0, 0, 0};
    std::int64_t comb_[3] = {0, 0, 0};
    int phase_ = 0;
    double full_scale_;
};

}  // namespace refpga::analog
