// Delta-sigma data converters and RC filters.
//
// §4.1 replaces the board-level DA/AD converters with the Xilinx delta-sigma
// cores plus small external analog filters. The DAC is a second-order 1-bit
// modulator whose bitstream an external RC low-pass reconstructs; the ADC is
// the dual (analog second-order modulator, digital CIC decimator). The paper
// validated by "real hardware tests and Fourier analysis" that the DAC,
// nominally an audio core, still produces a clean 500 kHz sine at 16 MSPS —
// our FFT-based bench (Fig. 3) repeats that check.
#pragma once

#include <cstdint>
#include <optional>

namespace refpga::analog {

/// Single-pole RC low-pass, advanced at a fixed sample rate.
class RcFilter {
public:
    /// cutoff_hz / sample_hz define the pole; state starts at 0.
    RcFilter(double cutoff_hz, double sample_hz);

    double step(double in);
    [[nodiscard]] double value() const { return state_; }
    void reset() { state_ = 0.0; }

private:
    double alpha_;
    double state_ = 0.0;
};

/// Two cascaded RC sections (the board-level Sallen-Key-ish low-pass used to
/// reconstruct the delta-sigma bitstream and to band-limit the ADC inputs;
/// a single pole does not suppress the shaped quantization noise enough).
class RcFilter2 {
public:
    RcFilter2(double cutoff_hz, double sample_hz)
        : a_(cutoff_hz, sample_hz), b_(cutoff_hz, sample_hz) {}

    double step(double in) { return b_.step(a_.step(in)); }
    [[nodiscard]] double value() const { return b_.value(); }
    void reset() {
        a_.reset();
        b_.reset();
    }

private:
    RcFilter a_;
    RcFilter b_;
};

/// Second-order 1-bit delta-sigma modulator (DAC digital core).
/// Input in [-1, 1]; output is the +/-1 bitstream.
class DeltaSigmaDac {
public:
    double step(double u);
    void reset();

private:
    double s1_ = 0.0;
    double s2_ = 0.0;
};

/// Second-order delta-sigma ADC: analog modulator + 3-stage CIC decimator.
/// step() consumes one analog sample (in [-1, 1]) at the modulator rate and
/// yields a signed PCM sample every `decimation` inputs.
class DeltaSigmaAdc {
public:
    /// output_bits bounds the PCM range: samples are in
    /// [-2^(bits-1), 2^(bits-1) - 1].
    DeltaSigmaAdc(int decimation, int output_bits);

    [[nodiscard]] std::optional<std::int32_t> step(double in);
    void reset();

    [[nodiscard]] int decimation() const { return decimation_; }
    [[nodiscard]] int output_bits() const { return output_bits_; }

private:
    int decimation_;
    int output_bits_;
    // Modulator state.
    double s1_ = 0.0;
    double s2_ = 0.0;
    // CIC integrator/comb state (3 stages).
    std::int64_t integ_[3] = {0, 0, 0};
    std::int64_t comb_[3] = {0, 0, 0};
    int phase_ = 0;
    double full_scale_;
};

}  // namespace refpga::analog
