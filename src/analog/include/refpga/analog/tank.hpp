// Capacitive tank model (the physical plant of the measurement system).
//
// The probe capacitance grows linearly with fill level; a leakage resistance
// sits in parallel. The excitation sine is applied to the probe and to a
// known reference capacitor; transimpedance amplifiers convert both branch
// currents to voltages. From the two channels' amplitude and phase the
// processing pipeline recovers the capacitance and thus the level.
#pragma once

#include <complex>

#include "refpga/common/rng.hpp"

namespace refpga::analog {

class FrontEnd;  // block-streaming kernel (frontend.cpp) reads state directly

struct TankParams {
    double c_empty_pf = 60.0;   ///< probe capacitance, empty tank
    double c_full_pf = 480.0;   ///< probe capacitance, full tank
    double r_leak_ohm = 2.0e6;  ///< parallel leakage (condensation, deposits)
    double c_ref_pf = 220.0;    ///< reference branch capacitor
    double tia_gain_v_per_a = 600.0;  ///< transimpedance amplifier gain
    double noise_rms_v = 1e-3;  ///< additive output noise per channel
};

class TankCircuit {
public:
    TankCircuit(TankParams params, double sample_hz, std::uint64_t noise_seed = 7);

    /// Ground-truth fill level in [0, 1].
    void set_level(double level);
    [[nodiscard]] double level() const { return level_; }

    [[nodiscard]] const TankParams& params() const { return params_; }
    [[nodiscard]] double probe_capacitance_pf() const;

    /// Advances one sample: `drive_v` is the excitation voltage. Returns the
    /// TIA output voltages of the measurement and reference branches.
    struct Currents {
        double meas_v = 0.0;
        double ref_v = 0.0;
    };
    Currents step(double drive_v);

    /// Closed-form complex response at `freq_hz` for unit drive (used by
    /// golden-model tests): TIA volts per drive volt for each branch.
    [[nodiscard]] std::complex<double> meas_response(double freq_hz) const;
    [[nodiscard]] std::complex<double> ref_response(double freq_hz) const;

private:
    friend class FrontEnd;
    TankParams params_;
    // Precomputed reciprocals: the differentiator and the leak current sit on
    // the 16 MHz sample path, and a divide there costs more than the rest of
    // the tank arithmetic combined. Both the per-sample and the block kernel
    // multiply by these same values, keeping the two paths bit-identical.
    double inv_dt_;
    double g_leak_;
    double level_ = 0.0;
    double prev_drive_ = 0.0;
    bool primed_ = false;
    Rng rng_;
};

/// Inverse of the level->capacitance map.
[[nodiscard]] double level_from_capacitance(const TankParams& params, double c_pf);

}  // namespace refpga::analog
