// Complete analog front end: drive -> reconstruction filter -> tank ->
// anti-alias filters -> dual delta-sigma ADCs (measurement + reference).
//
// Two drive variants mirror the paper's §4.1 progression:
//   - step_code8() / run_block_code8(): the first prototype's external 8-bit
//     DAC;
//   - step_ds_bit() / run_block_ds(): the improved design's on-chip
//     delta-sigma DAC bit, reconstructed by the external RC low-pass.
//
// Streaming layer: the sample path is block-oriented. run_block_*() advances
// N modulator ticks per call through one fused, branch-light inner loop
// (reconstruction, tank + noise, anti-alias, modulators, 3-stage CIC) with
// all filter/modulator state held in locals, writing PCM pairs into a
// caller-owned SampleBlock. The per-sample step_*() entry points are thin
// wrappers over a block of one tick. Determinism rule: for a given drive
// sequence the PCM stream — including the tank-noise RNG draw order — is
// bit-identical for every block partitioning, and bit-identical to the
// retained per-sample reference path (pinned by tests/test_frontend_stream).
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "refpga/analog/delta_sigma.hpp"
#include "refpga/analog/sample_block.hpp"
#include "refpga/analog/tank.hpp"
#include "refpga/obs/obs.hpp"

namespace refpga::analog {

struct FrontEndConfig {
    double modulator_hz = 16e6;       ///< DAC bit / ADC modulator rate (16 MSPS)
    double signal_hz = 500e3;         ///< excitation frequency
    int adc_decimation = 5;           ///< PCM rate = modulator / decimation (3.2 MHz)
    int adc_bits = 12;
    double recon_cutoff_hz = 1.5e6;   ///< DAC reconstruction low-pass
    double antialias_cutoff_hz = 800e3;
    TankParams tank;

    /// Throws refpga::ContractViolation unless the config describes a
    /// realizable front end: positive finite rates, the excitation and both
    /// filter cutoffs below the modulator Nyquist rate, adc_decimation and
    /// adc_bits within the DeltaSigmaAdc bounds, and a non-negative tank
    /// noise level. A degenerate config (zero clock, cutoff at or above
    /// Nyquist, decimation of 1) would otherwise produce NaN filter poles or
    /// violate converter contracts deep inside the sample loop. Mirrors
    /// reconfig::ConfigPortSpec::validate().
    void validate() const;
};

class FrontEnd {
public:
    explicit FrontEnd(FrontEndConfig config = {}, std::uint64_t noise_seed = 7);

    [[nodiscard]] const FrontEndConfig& config() const { return config_; }
    [[nodiscard]] TankCircuit& tank() { return tank_; }
    [[nodiscard]] const TankCircuit& tank() const { return tank_; }

    [[nodiscard]] double pcm_rate_hz() const {
        return config_.modulator_hz / config_.adc_decimation;
    }

    struct PcmPair {
        std::int32_t meas = 0;
        std::int32_t ref = 0;
    };

    /// One modulator-rate step driven by an 8-bit DAC code (0..255 maps to
    /// [-1, 1) volts). Yields a PCM pair every adc_decimation steps.
    /// Thin wrapper over run_block_code8 with a block of one tick.
    std::optional<PcmPair> step_code8(std::uint8_t code);

    /// One modulator-rate step driven by a delta-sigma DAC output bit.
    /// Thin wrapper over run_block_ds with a block of one tick.
    std::optional<PcmPair> step_ds_bit(bool bit);

    /// Reference per-sample path retained from the pre-streaming front end:
    /// advances through the individual component step() calls. Used as the
    /// parity baseline the fused block kernel must match bit-for-bit; not a
    /// hot path.
    std::optional<PcmPair> step_code8_reference(std::uint8_t code);
    std::optional<PcmPair> step_ds_bit_reference(bool bit);

    /// Modulator ticks until `pcm_pairs` more PCM pairs fire (accounts for
    /// the ADCs' current decimation phase).
    [[nodiscard]] long ticks_for_pcm(long pcm_pairs) const;

    /// Advances one modulator tick per drive element (delta-sigma bits,
    /// nonzero = +1 V) and appends every fired PCM pair to out.meas/out.ref.
    /// Returns the number of pairs appended. The caller owns the block and
    /// its capacity; run_block never shrinks it.
    std::size_t run_block_ds(std::span<const std::uint8_t> bits, SampleBlock& out);

    /// Same, driven by 8-bit DAC codes.
    std::size_t run_block_code8(std::span<const std::uint8_t> codes, SampleBlock& out);

    /// Attach (or detach with nullptr) an observability recorder. Registers
    /// frontend.{ticks,pcm_pairs,blocks}_total; run_block_* bumps them once
    /// per block, after the fused kernel, so the sample loop itself stays
    /// instrumentation-free. Non-owning; the recorder must outlive the
    /// front end or be detached first.
    void set_recorder(obs::Recorder* recorder);

private:
    std::optional<PcmPair> advance_reference(double drive_raw_v);
    void record_block(std::size_t ticks, std::size_t pairs);

    template <bool kNoisy, typename DriveToVolts>
    std::size_t run_block_impl(const std::uint8_t* drive, std::size_t n,
                               SampleBlock& out, DriveToVolts to_volts);

    FrontEndConfig config_;
    TankCircuit tank_;
    RcFilter2 recon_;
    RcFilter2 alias_meas_;
    RcFilter2 alias_ref_;
    DeltaSigmaAdc adc_meas_;
    DeltaSigmaAdc adc_ref_;
    SampleBlock step_scratch_;  ///< block-of-1 storage for the step_* wrappers
    obs::Recorder* recorder_ = nullptr;
    obs::MetricId ticks_metric_;
    obs::MetricId pairs_metric_;
    obs::MetricId blocks_metric_;
};

}  // namespace refpga::analog
