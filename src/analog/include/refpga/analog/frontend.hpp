// Complete analog front end: drive -> reconstruction filter -> tank ->
// anti-alias filters -> dual delta-sigma ADCs (measurement + reference).
//
// Two drive variants mirror the paper's §4.1 progression:
//   - step_code8(): the first prototype's external 8-bit DAC;
//   - step_ds_bit(): the improved design's on-chip delta-sigma DAC bit,
//     reconstructed by the external RC low-pass.
#pragma once

#include <cstdint>
#include <optional>

#include "refpga/analog/delta_sigma.hpp"
#include "refpga/analog/tank.hpp"

namespace refpga::analog {

struct FrontEndConfig {
    double modulator_hz = 16e6;       ///< DAC bit / ADC modulator rate (16 MSPS)
    double signal_hz = 500e3;         ///< excitation frequency
    int adc_decimation = 5;           ///< PCM rate = modulator / decimation (3.2 MHz)
    int adc_bits = 12;
    double recon_cutoff_hz = 1.5e6;   ///< DAC reconstruction low-pass
    double antialias_cutoff_hz = 800e3;
    TankParams tank;
};

class FrontEnd {
public:
    explicit FrontEnd(FrontEndConfig config = {}, std::uint64_t noise_seed = 7);

    [[nodiscard]] const FrontEndConfig& config() const { return config_; }
    [[nodiscard]] TankCircuit& tank() { return tank_; }
    [[nodiscard]] const TankCircuit& tank() const { return tank_; }

    [[nodiscard]] double pcm_rate_hz() const {
        return config_.modulator_hz / config_.adc_decimation;
    }

    struct PcmPair {
        std::int32_t meas = 0;
        std::int32_t ref = 0;
    };

    /// One modulator-rate step driven by an 8-bit DAC code (0..255 maps to
    /// [-1, 1) volts). Yields a PCM pair every adc_decimation steps.
    std::optional<PcmPair> step_code8(std::uint8_t code);

    /// One modulator-rate step driven by a delta-sigma DAC output bit.
    std::optional<PcmPair> step_ds_bit(bool bit);

private:
    std::optional<PcmPair> advance(double drive_raw_v);

    FrontEndConfig config_;
    TankCircuit tank_;
    RcFilter2 recon_;
    RcFilter2 alias_meas_;
    RcFilter2 alias_ref_;
    DeltaSigmaAdc adc_meas_;
    DeltaSigmaAdc adc_ref_;
};

}  // namespace refpga::analog
