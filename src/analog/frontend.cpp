#include "refpga/analog/frontend.hpp"

#include <algorithm>
#include <cmath>

#include "refpga/common/contracts.hpp"

// The fused block kernel processes the measurement and reference channels as
// the two lanes of a 128-bit vector on SSE2 targets (always present on
// x86-64). Packed IEEE-754 ops are lane-wise identical to their scalar
// counterparts, so the vector loop produces bit-identical PCM to the scalar
// fallback below and to the per-sample reference path; the parity tests pin
// whichever variant the build selects.
#if defined(__SSE2__) || defined(_M_AMD64)
#define REFPGA_FRONTEND_SSE2 1
#include <emmintrin.h>
#endif

namespace refpga::analog {

void FrontEndConfig::validate() const {
    REFPGA_EXPECTS(modulator_hz > 0.0 && std::isfinite(modulator_hz));
    REFPGA_EXPECTS(signal_hz > 0.0 && signal_hz < modulator_hz / 2.0);
    // DeltaSigmaAdc's own contract bounds, checked here so a degenerate
    // config fails at the front-end boundary with the offending field named.
    REFPGA_EXPECTS(adc_decimation >= 2 && adc_decimation <= 4096);
    REFPGA_EXPECTS(adc_bits >= 4 && adc_bits <= 24);
    REFPGA_EXPECTS(recon_cutoff_hz > 0.0 && recon_cutoff_hz < modulator_hz / 2.0);
    REFPGA_EXPECTS(antialias_cutoff_hz > 0.0 &&
                   antialias_cutoff_hz < modulator_hz / 2.0);
    REFPGA_EXPECTS(tank.c_full_pf > tank.c_empty_pf);
    REFPGA_EXPECTS(tank.c_ref_pf > 0.0 && tank.r_leak_ohm > 0.0);
    REFPGA_EXPECTS(tank.noise_rms_v >= 0.0);
}

namespace {

const FrontEndConfig& validated(const FrontEndConfig& config) {
    config.validate();
    return config;
}

}  // namespace

FrontEnd::FrontEnd(FrontEndConfig config, std::uint64_t noise_seed)
    : config_(validated(config)),
      tank_(config.tank, config.modulator_hz, noise_seed),
      recon_(config.recon_cutoff_hz, config.modulator_hz),
      alias_meas_(config.antialias_cutoff_hz, config.modulator_hz),
      alias_ref_(config.antialias_cutoff_hz, config.modulator_hz),
      adc_meas_(config.adc_decimation, config.adc_bits),
      adc_ref_(config.adc_decimation, config.adc_bits) {}

std::optional<FrontEnd::PcmPair> FrontEnd::advance_reference(double drive_raw_v) {
    const double drive = recon_.step(drive_raw_v);
    const TankCircuit::Currents branch = tank_.step(drive);
    const double meas = alias_meas_.step(branch.meas_v);
    const double ref = alias_ref_.step(branch.ref_v);

    const auto pcm_meas = adc_meas_.step(meas);
    const auto pcm_ref = adc_ref_.step(ref);
    // Both ADCs share the decimation phase, so they fire together.
    if (pcm_meas && pcm_ref) return PcmPair{*pcm_meas, *pcm_ref};
    return std::nullopt;
}

std::optional<FrontEnd::PcmPair> FrontEnd::step_code8_reference(std::uint8_t code) {
    const double drive = (static_cast<double>(code) - 128.0) / 128.0;
    return advance_reference(drive);
}

std::optional<FrontEnd::PcmPair> FrontEnd::step_ds_bit_reference(bool bit) {
    return advance_reference(bit ? 1.0 : -1.0);
}

long FrontEnd::ticks_for_pcm(long pcm_pairs) const {
    REFPGA_EXPECTS(pcm_pairs >= 0);
    const long ticks = pcm_pairs * adc_meas_.decimation_ - adc_meas_.phase_;
    return std::max(0L, ticks);
}

// ---------------------------------------------------------------------------
// Fused block kernel
// ---------------------------------------------------------------------------
//
// One pass over the drive block with every piece of pipeline state — six RC
// poles, tank sample-and-difference, the noise RNG, two modulators and two
// 3-stage CIC decimators — held in locals, so the compiler keeps the whole
// chain in registers and the only per-tick memory traffic is the drive read
// and the (1/decimation-rate) PCM write. The arithmetic is copied operation
// for operation from the component step() implementations; any deviation
// breaks the bit-identity contract pinned by tests/test_frontend_stream.

template <bool kNoisy, typename DriveToVolts>
std::size_t FrontEnd::run_block_impl(const std::uint8_t* drive, std::size_t n,
                                     SampleBlock& out, DriveToVolts to_volts) {
    REFPGA_EXPECTS(adc_meas_.phase_ == adc_ref_.phase_ &&
                   adc_meas_.decimation_ == adc_ref_.decimation_);
    const int decimation = adc_meas_.decimation_;
    const std::size_t pairs =
        (static_cast<std::size_t>(adc_meas_.phase_) + n) /
        static_cast<std::size_t>(decimation);

    const std::size_t base = out.meas.size();
    out.meas.resize(base + pairs);
    out.ref.resize(base + pairs);
    std::int32_t* pcm_meas = out.meas.data() + base;
    std::int32_t* pcm_ref = out.ref.data() + base;

    // Reconstruction low-pass (RcFilter2: two cascaded poles).
    const double ra_k = recon_.a_.alpha_;
    const double rb_k = recon_.b_.alpha_;
    double ra_s = recon_.a_.state_;
    double rb_s = recon_.b_.state_;
    // Anti-alias low-passes, one per channel.
    const double ma_k = alias_meas_.a_.alpha_;
    const double mb_k = alias_meas_.b_.alpha_;
    double ma_s = alias_meas_.a_.state_;
    double mb_s = alias_meas_.b_.state_;
    const double fa_k = alias_ref_.a_.alpha_;
    const double fb_k = alias_ref_.b_.alpha_;
    double fa_s = alias_ref_.a_.state_;
    double fb_s = alias_ref_.b_.state_;
    // Tank. The level is fixed for the duration of a block (set_level happens
    // between cycles), so the probe capacitance is a loop constant.
    const double inv_dt = tank_.inv_dt_;
    const double c_probe = tank_.probe_capacitance_pf() * 1e-12;
    const double c_ref = tank_.params_.c_ref_pf * 1e-12;
    const double tia_gain = tank_.params_.tia_gain_v_per_a;
    const double noise_rms = tank_.params_.noise_rms_v;
    const double g_leak = tank_.g_leak_;
    double prev_drive = tank_.prev_drive_;
    bool primed = tank_.primed_;
    Rng rng = tank_.rng_;  // keeps the xoshiro state in registers
    // Delta-sigma modulators + CIC integrators/combs.
    double m_s1 = adc_meas_.s1_, m_s2 = adc_meas_.s2_;
    double r_s1 = adc_ref_.s1_, r_s2 = adc_ref_.s2_;
    std::int64_t m_i0 = adc_meas_.integ_[0], m_i1 = adc_meas_.integ_[1],
                 m_i2 = adc_meas_.integ_[2];
    std::int64_t r_i0 = adc_ref_.integ_[0], r_i1 = adc_ref_.integ_[1],
                 r_i2 = adc_ref_.integ_[2];
    std::int64_t m_c0 = adc_meas_.comb_[0], m_c1 = adc_meas_.comb_[1],
                 m_c2 = adc_meas_.comb_[2];
    std::int64_t r_c0 = adc_ref_.comb_[0], r_c1 = adc_ref_.comb_[1],
                 r_c2 = adc_ref_.comb_[2];
    int phase = adc_meas_.phase_;
    const double full_scale = adc_meas_.full_scale_;
    const double max_code = static_cast<double>(adc_meas_.max_code());
    const double min_code = static_cast<double>(adc_meas_.min_code());

#if REFPGA_FRONTEND_SSE2
    // Vector lane convention: low lane = measurement channel, high lane =
    // reference channel. Every packed op below performs the same IEEE-754
    // operation per lane as the scalar fallback, in the same order, so the
    // PCM stream is bit-identical between the two loop bodies.
    const __m128d sign_mask = _mm_set1_pd(-0.0);
    const __m128d one = _mm_set1_pd(1.0);
    const __m128d neg_one = _mm_set1_pd(-1.0);
    const __m128i one_i = _mm_set1_epi64x(1);
    const __m128d alias_a_k = _mm_set_pd(fa_k, ma_k);
    const __m128d alias_b_k = _mm_set_pd(fb_k, mb_k);
    const __m128d branch_c = _mm_set_pd(c_ref, c_probe);
    // High lane has no leak path; `+ drive_v * 0.0` contributes a signed
    // zero, the additive identity for every double, so the lane stays equal
    // to the scalar `c_ref * dv_dt`.
    const __m128d branch_g = _mm_set_pd(0.0, g_leak);
    const __m128d tia = _mm_set1_pd(tia_gain);
    __m128d alias_a_s = _mm_set_pd(fa_s, ma_s);
    __m128d alias_b_s = _mm_set_pd(fb_s, mb_s);
    __m128d mod_s1 = _mm_set_pd(r_s1, m_s1);
    __m128d mod_s2 = _mm_set_pd(r_s2, m_s2);
    __m128i cic_i0 = _mm_set_epi64x(r_i0, m_i0);
    __m128i cic_i1 = _mm_set_epi64x(r_i1, m_i1);
    __m128i cic_i2 = _mm_set_epi64x(r_i2, m_i2);

    // Everything downstream of the tank — anti-alias filters, modulators,
    // CIC integrators and the decimated PCM tail — shared between the
    // peeled priming tick and the steady-state loop below.
    const auto tick_channels = [&](const __m128d tia_v) {
        // Anti-alias filters, both channels per op.
        alias_a_s = _mm_add_pd(
            alias_a_s, _mm_mul_pd(alias_a_k, _mm_sub_pd(tia_v, alias_a_s)));
        alias_b_s = _mm_add_pd(
            alias_b_s, _mm_mul_pd(alias_b_k, _mm_sub_pd(alias_a_s, alias_b_s)));

        // Delta-sigma modulators + CIC integrators (DeltaSigmaAdc::step).
        // min(max(x, -1), 1) matches std::clamp for every finite input
        // including signed zeros; or(and(s2, signbit), 1.0) is copysign,
        // value-identical to `s2 >= 0.0 ? 1.0 : -1.0` because s2 only ever
        // accumulates round-to-nearest sums of finite values — it can never
        // become -0.0 or NaN.
        const __m128d clipped =
            _mm_min_pd(_mm_max_pd(alias_b_s, neg_one), one);
        const __m128d y = _mm_or_pd(_mm_and_pd(mod_s2, sign_mask), one);
        mod_s1 = _mm_add_pd(mod_s1, _mm_sub_pd(clipped, y));
        mod_s2 = _mm_add_pd(mod_s2, _mm_sub_pd(mod_s1, y));
        // y is exactly ±1.0: its top two bits are 00 (+1.0) or 10 (-1.0), so
        // (bits >> 62) is 0 or 2 and 1 - (bits >> 62) is the ±1 feedback.
        const __m128i y_int =
            _mm_sub_epi64(one_i, _mm_srli_epi64(_mm_castpd_si128(y), 62));
        cic_i0 = _mm_add_epi64(cic_i0, y_int);
        cic_i1 = _mm_add_epi64(cic_i1, cic_i0);
        cic_i2 = _mm_add_epi64(cic_i2, cic_i1);

        if (++phase != decimation) return;
        phase = 0;
        // CIC combs at the decimated rate, then the shared quantization tail.
        alignas(16) std::int64_t i2_lanes[2];
        _mm_store_si128(reinterpret_cast<__m128i*>(i2_lanes), cic_i2);
        std::int64_t vm = i2_lanes[0];
        std::int64_t prev = m_c0;
        m_c0 = vm;
        vm -= prev;
        prev = m_c1;
        m_c1 = vm;
        vm -= prev;
        prev = m_c2;
        m_c2 = vm;
        vm -= prev;
        std::int64_t vr = i2_lanes[1];
        prev = r_c0;
        r_c0 = vr;
        vr -= prev;
        prev = r_c1;
        r_c1 = vr;
        vr -= prev;
        prev = r_c2;
        r_c2 = vr;
        vr -= prev;
        *pcm_meas++ = DeltaSigmaAdc::quantize(vm, full_scale, max_code, min_code);
        *pcm_ref++ = DeltaSigmaAdc::quantize(vr, full_scale, max_code, min_code);
    };

    std::size_t i = 0;
    if (n > 0 && !primed) {
        // Peeled priming tick (TankCircuit::step's one-shot branch): the
        // differentiator has no history yet, so both TIA voltages are zero
        // and no noise is drawn. Peeling it keeps the steady-state loop free
        // of the per-tick primed check.
        const double raw = to_volts(drive[0]);
        ra_s += ra_k * (raw - ra_s);
        rb_s += rb_k * (ra_s - rb_s);
        prev_drive = rb_s;
        primed = true;
        tick_channels(_mm_setzero_pd());
        i = 1;
    }
    for (; i < n; ++i) {
        const double raw = to_volts(drive[i]);
        // DAC reconstruction (RcFilter::step, twice) — single-channel, so it
        // stays scalar.
        ra_s += ra_k * (raw - ra_s);
        rb_s += rb_k * (ra_s - rb_s);
        const double drive_v = rb_s;

        // Tank branch currents -> TIA voltages (TankCircuit::step). Noise
        // draw order (meas, then ref, per tick) matches the reference path
        // exactly.
        const double dv_dt = (drive_v - prev_drive) * inv_dt;
        prev_drive = drive_v;
        const __m128d cur =
            _mm_add_pd(_mm_mul_pd(branch_c, _mm_set1_pd(dv_dt)),
                       _mm_mul_pd(branch_g, _mm_set1_pd(drive_v)));
        __m128d tia_v = _mm_mul_pd(cur, tia);
        if constexpr (kNoisy) {
            const double g_meas = rng.next_gaussian();
            const double g_ref = rng.next_gaussian();
            tia_v = _mm_add_pd(tia_v,
                               _mm_mul_pd(_mm_set1_pd(noise_rms),
                                          _mm_set_pd(g_ref, g_meas)));
        }
        tick_channels(tia_v);
    }

    // Unpack the vector state into the scalar locals for the shared
    // write-back below.
    alignas(16) double lanes[2];
    _mm_store_pd(lanes, alias_a_s);
    ma_s = lanes[0];
    fa_s = lanes[1];
    _mm_store_pd(lanes, alias_b_s);
    mb_s = lanes[0];
    fb_s = lanes[1];
    _mm_store_pd(lanes, mod_s1);
    m_s1 = lanes[0];
    r_s1 = lanes[1];
    _mm_store_pd(lanes, mod_s2);
    m_s2 = lanes[0];
    r_s2 = lanes[1];
    alignas(16) std::int64_t ilanes[2];
    _mm_store_si128(reinterpret_cast<__m128i*>(ilanes), cic_i0);
    m_i0 = ilanes[0];
    r_i0 = ilanes[1];
    _mm_store_si128(reinterpret_cast<__m128i*>(ilanes), cic_i1);
    m_i1 = ilanes[0];
    r_i1 = ilanes[1];
    _mm_store_si128(reinterpret_cast<__m128i*>(ilanes), cic_i2);
    m_i2 = ilanes[0];
    r_i2 = ilanes[1];
#else
    for (std::size_t i = 0; i < n; ++i) {
        const double raw = to_volts(drive[i]);
        // DAC reconstruction (RcFilter::step, twice).
        ra_s += ra_k * (raw - ra_s);
        rb_s += rb_k * (ra_s - rb_s);
        const double drive_v = rb_s;

        // Tank branch currents -> TIA voltages (TankCircuit::step). The
        // priming branch runs once per front-end lifetime and predicts
        // perfectly afterwards. Noise draw order (meas, then ref, per tick)
        // matches the reference path exactly.
        double meas_v = 0.0;
        double ref_v = 0.0;
        if (!primed) {
            prev_drive = drive_v;
            primed = true;
        } else {
            const double dv_dt = (drive_v - prev_drive) * inv_dt;
            prev_drive = drive_v;
            const double i_meas = c_probe * dv_dt + drive_v * g_leak;
            const double i_ref = c_ref * dv_dt;
            meas_v = i_meas * tia_gain;
            ref_v = i_ref * tia_gain;
            if constexpr (kNoisy) {
                meas_v += noise_rms * rng.next_gaussian();
                ref_v += noise_rms * rng.next_gaussian();
            }
        }

        // Anti-alias filters.
        ma_s += ma_k * (meas_v - ma_s);
        mb_s += mb_k * (ma_s - mb_s);
        fa_s += fa_k * (ref_v - fa_s);
        fb_s += fb_k * (fa_s - fb_s);

        // Delta-sigma modulators + CIC integrators (DeltaSigmaAdc::step).
        // The feedback sign is selected branchlessly: the data-dependent
        // `s2 >= 0.0 ? 1.0 : -1.0` compiles to an unpredictable branch (the
        // bitstream is pseudo-random by design), and copysign(1.0, s2) is
        // value-identical because s2 only ever accumulates round-to-nearest
        // sums of finite values — it can never become -0.0 or NaN.
        {
            const double clipped = std::clamp(mb_s, -1.0, 1.0);
            const double y = std::copysign(1.0, m_s2);
            m_s1 += clipped - y;
            m_s2 += m_s1 - y;
            m_i0 += static_cast<std::int64_t>(y);
            m_i1 += m_i0;
            m_i2 += m_i1;
        }
        {
            const double clipped = std::clamp(fb_s, -1.0, 1.0);
            const double y = std::copysign(1.0, r_s2);
            r_s1 += clipped - y;
            r_s2 += r_s1 - y;
            r_i0 += static_cast<std::int64_t>(y);
            r_i1 += r_i0;
            r_i2 += r_i1;
        }

        if (++phase < decimation) continue;
        phase = 0;
        // CIC combs at the decimated rate, then the shared quantization tail.
        std::int64_t vm = m_i2;
        std::int64_t prev = m_c0;
        m_c0 = vm;
        vm -= prev;
        prev = m_c1;
        m_c1 = vm;
        vm -= prev;
        prev = m_c2;
        m_c2 = vm;
        vm -= prev;
        std::int64_t vr = r_i2;
        prev = r_c0;
        r_c0 = vr;
        vr -= prev;
        prev = r_c1;
        r_c1 = vr;
        vr -= prev;
        prev = r_c2;
        r_c2 = vr;
        vr -= prev;
        *pcm_meas++ = DeltaSigmaAdc::quantize(vm, full_scale, max_code, min_code);
        *pcm_ref++ = DeltaSigmaAdc::quantize(vr, full_scale, max_code, min_code);
    }
#endif

    // Write every piece of state back to the components so per-sample steps,
    // resets and further blocks continue seamlessly.
    recon_.a_.state_ = ra_s;
    recon_.b_.state_ = rb_s;
    alias_meas_.a_.state_ = ma_s;
    alias_meas_.b_.state_ = mb_s;
    alias_ref_.a_.state_ = fa_s;
    alias_ref_.b_.state_ = fb_s;
    tank_.prev_drive_ = prev_drive;
    tank_.primed_ = primed;
    tank_.rng_ = rng;
    adc_meas_.s1_ = m_s1;
    adc_meas_.s2_ = m_s2;
    adc_ref_.s1_ = r_s1;
    adc_ref_.s2_ = r_s2;
    adc_meas_.integ_[0] = m_i0;
    adc_meas_.integ_[1] = m_i1;
    adc_meas_.integ_[2] = m_i2;
    adc_ref_.integ_[0] = r_i0;
    adc_ref_.integ_[1] = r_i1;
    adc_ref_.integ_[2] = r_i2;
    adc_meas_.comb_[0] = m_c0;
    adc_meas_.comb_[1] = m_c1;
    adc_meas_.comb_[2] = m_c2;
    adc_ref_.comb_[0] = r_c0;
    adc_ref_.comb_[1] = r_c1;
    adc_ref_.comb_[2] = r_c2;
    adc_meas_.phase_ = phase;
    adc_ref_.phase_ = phase;
    return pairs;
}

std::size_t FrontEnd::run_block_ds(std::span<const std::uint8_t> bits,
                                   SampleBlock& out) {
    // Branchless ±1 V select, exactly equal to `b ? 1.0 : -1.0` (the bit
    // stream alternates pseudo-randomly, so a conditional mispredicts; a
    // two-entry table load is cheaper than an integer->double conversion).
    static constexpr double kBitVolts[2] = {-1.0, 1.0};
    const auto to_volts = [](std::uint8_t b) { return kBitVolts[b != 0]; };
    // Zero configured noise skips the Gaussian synthesis entirely (see
    // TankCircuit::step): a zero-RMS draw only contributes a signed zero,
    // which cannot change any downstream sample.
    const std::size_t pairs =
        tank_.params_.noise_rms_v > 0.0
            ? run_block_impl<true>(bits.data(), bits.size(), out, to_volts)
            : run_block_impl<false>(bits.data(), bits.size(), out, to_volts);
    record_block(bits.size(), pairs);
    return pairs;
}

std::size_t FrontEnd::run_block_code8(std::span<const std::uint8_t> codes,
                                      SampleBlock& out) {
    const auto to_volts = [](std::uint8_t c) {
        return (static_cast<double>(c) - 128.0) / 128.0;
    };
    const std::size_t pairs =
        tank_.params_.noise_rms_v > 0.0
            ? run_block_impl<true>(codes.data(), codes.size(), out, to_volts)
            : run_block_impl<false>(codes.data(), codes.size(), out, to_volts);
    record_block(codes.size(), pairs);
    return pairs;
}

void FrontEnd::set_recorder(obs::Recorder* recorder) {
    recorder_ = recorder;
    if (recorder_ == nullptr) return;
    obs::MetricRegistry& m = recorder_->metrics();
    ticks_metric_ = m.counter("frontend.ticks_total");
    pairs_metric_ = m.counter("frontend.pcm_pairs_total");
    blocks_metric_ = m.counter("frontend.blocks_total");
}

void FrontEnd::record_block(std::size_t ticks, std::size_t pairs) {
    // Per-block, not per-tick: the fused kernel never sees the recorder, so
    // the disabled cost is this one null/flag check per run_block_* call.
    if (recorder_ == nullptr || !recorder_->enabled()) return;
    obs::MetricRegistry& m = recorder_->metrics();
    m.add(ticks_metric_, static_cast<double>(ticks));
    m.add(pairs_metric_, static_cast<double>(pairs));
    m.add(blocks_metric_, 1.0);
}

std::optional<FrontEnd::PcmPair> FrontEnd::step_ds_bit(bool bit) {
    const std::uint8_t drive = bit ? 1 : 0;
    step_scratch_.clear_pcm();
    if (run_block_ds({&drive, 1}, step_scratch_) == 1)
        return PcmPair{step_scratch_.meas[0], step_scratch_.ref[0]};
    return std::nullopt;
}

std::optional<FrontEnd::PcmPair> FrontEnd::step_code8(std::uint8_t code) {
    step_scratch_.clear_pcm();
    if (run_block_code8({&code, 1}, step_scratch_) == 1)
        return PcmPair{step_scratch_.meas[0], step_scratch_.ref[0]};
    return std::nullopt;
}

}  // namespace refpga::analog
