#include "refpga/analog/frontend.hpp"

namespace refpga::analog {

FrontEnd::FrontEnd(FrontEndConfig config, std::uint64_t noise_seed)
    : config_(config),
      tank_(config.tank, config.modulator_hz, noise_seed),
      recon_(config.recon_cutoff_hz, config.modulator_hz),
      alias_meas_(config.antialias_cutoff_hz, config.modulator_hz),
      alias_ref_(config.antialias_cutoff_hz, config.modulator_hz),
      adc_meas_(config.adc_decimation, config.adc_bits),
      adc_ref_(config.adc_decimation, config.adc_bits) {}

std::optional<FrontEnd::PcmPair> FrontEnd::advance(double drive_raw_v) {
    const double drive = recon_.step(drive_raw_v);
    const TankCircuit::Currents branch = tank_.step(drive);
    const double meas = alias_meas_.step(branch.meas_v);
    const double ref = alias_ref_.step(branch.ref_v);

    const auto pcm_meas = adc_meas_.step(meas);
    const auto pcm_ref = adc_ref_.step(ref);
    // Both ADCs share the decimation phase, so they fire together.
    if (pcm_meas && pcm_ref) return PcmPair{*pcm_meas, *pcm_ref};
    return std::nullopt;
}

std::optional<FrontEnd::PcmPair> FrontEnd::step_code8(std::uint8_t code) {
    const double drive = (static_cast<double>(code) - 128.0) / 128.0;
    return advance(drive);
}

std::optional<FrontEnd::PcmPair> FrontEnd::step_ds_bit(bool bit) {
    return advance(bit ? 1.0 : -1.0);
}

}  // namespace refpga::analog
