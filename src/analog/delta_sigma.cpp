#include "refpga/analog/delta_sigma.hpp"

#include <algorithm>
#include <cmath>

#include "refpga/common/contracts.hpp"

namespace refpga::analog {

RcFilter::RcFilter(double cutoff_hz, double sample_hz) {
    REFPGA_EXPECTS(cutoff_hz > 0.0 && sample_hz > 0.0);
    // Exact discretization of dv/dt = (u - v) / RC.
    const double rc = 1.0 / (2.0 * M_PI * cutoff_hz);
    alpha_ = 1.0 - std::exp(-1.0 / (sample_hz * rc));
}

double RcFilter::step(double in) {
    state_ += alpha_ * (in - state_);
    return state_;
}

double DeltaSigmaDac::step(double u) {
    const double y = s2_ >= 0.0 ? 1.0 : -1.0;
    // Feedback before integration keeps the loop stable for |u| <= 1.
    s1_ += u - y;
    s2_ += s1_ - y;
    return y;
}

void DeltaSigmaDac::reset() {
    s1_ = 0.0;
    s2_ = 0.0;
}

DeltaSigmaAdc::DeltaSigmaAdc(int decimation, int output_bits)
    : decimation_(decimation), output_bits_(output_bits) {
    REFPGA_EXPECTS(decimation >= 2 && decimation <= 4096);
    REFPGA_EXPECTS(output_bits >= 4 && output_bits <= 24);
    // CIC gain for 3 stages is R^3; normalize to the PCM range.
    full_scale_ = std::pow(static_cast<double>(decimation_), 3.0);
}

std::optional<std::int32_t> DeltaSigmaAdc::step(double in) {
    const double clipped = std::clamp(in, -1.0, 1.0);
    const double y = s2_ >= 0.0 ? 1.0 : -1.0;
    s1_ += clipped - y;
    s2_ += s1_ - y;
    const std::int64_t bit = y > 0.0 ? 1 : -1;

    // 3 cascaded integrators at the modulator rate.
    integ_[0] += bit;
    integ_[1] += integ_[0];
    integ_[2] += integ_[1];

    if (++phase_ < decimation_) return std::nullopt;
    phase_ = 0;

    // 3 cascaded combs at the decimated rate.
    std::int64_t v = integ_[2];
    for (auto& c : comb_) {
        const std::int64_t prev = c;
        c = v;
        v -= prev;
    }

    return quantize(v, full_scale_, static_cast<double>(max_code()),
                    static_cast<double>(min_code()));
}

void DeltaSigmaAdc::reset() {
    s1_ = s2_ = 0.0;
    for (auto& i : integ_) i = 0;
    for (auto& c : comb_) c = 0;
    phase_ = 0;
}

}  // namespace refpga::analog
