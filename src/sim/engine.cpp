#include "refpga/sim/engine.hpp"

#include "refpga/sim/event_sim.hpp"
#include "refpga/sim/simulator.hpp"

namespace refpga::sim {

const char* engine_kind_name(EngineKind kind) {
    switch (kind) {
        case EngineKind::Cycle: return "cycle";
        case EngineKind::Event: return "event";
    }
    return "?";
}

std::optional<EngineKind> parse_engine_kind(std::string_view name) {
    if (name == "cycle") return EngineKind::Cycle;
    if (name == "event") return EngineKind::Event;
    return std::nullopt;
}

void SimEngine::run(int cycles) {
    for (int i = 0; i < cycles; ++i) tick();
}

std::unique_ptr<SimEngine> make_engine(EngineKind kind, const netlist::Netlist& nl) {
    if (kind == EngineKind::Event) return std::make_unique<EventSimulator>(nl);
    return std::make_unique<Simulator>(nl);
}

}  // namespace refpga::sim
