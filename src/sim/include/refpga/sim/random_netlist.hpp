// Seeded random netlist generation for differential simulator testing.
//
// The dual-engine contract (engine.hpp) is enforced by comparing the cycle
// and event engines over many randomly generated but DRC-clean netlists.
// Generation is fully deterministic in the seed (refpga::Rng), so a failing
// seed reproduces exactly on any platform; topologies mix LUT soup, plain
// and clock-enabled FFs, feedback registers, counters, BRAM (ROM and
// writable), and MULT18 blocks — every primitive both engines evaluate.
//
// `gated_channel_netlist` builds the benchmark topology: many identical
// datapath channels whose clock enables are driven by a one-hot selector, so
// only ~1/channels of the fabric toggles per cycle. That low activity factor
// mirrors the paper's clock-gated measurement design and is where the
// event-driven engine earns its keep (bench_sim_activity).
#pragma once

#include <cstdint>

#include "refpga/netlist/netlist.hpp"

namespace refpga::sim {

struct RandomNetlistOptions {
    int luts = 40;        ///< LUT-soup cells (1..4 random inputs, random mask)
    int ffs = 12;         ///< plain/CE flip-flops outside structured blocks
    int stim_bits = 6;    ///< width of the "stim" input port
    int probe_bits = 8;   ///< width of the "probe" output port
    bool with_bram = true;
    bool with_mult = true;
    bool with_feedback = true;  ///< counters + feedback registers
};

/// Deterministically generates a DRC-clean netlist for seed. Ports: "clk"
/// (1 bit), "stim" (stim_bits), "probe" (probe_bits, random internal nets).
[[nodiscard]] netlist::Netlist random_netlist(std::uint64_t seed,
                                              const RandomNetlistOptions& opts = {});

/// Benchmark netlist: `channels` copies of a `width`-bit accumulator +
/// comparator datapath (`depth` CE-gated pipeline stages each), gated by a
/// one-hot clock enable from a selector counter and merged into one
/// XOR-tree-reduced "probe" output. Ports: "clk", "stim" (width bits),
/// "probe" (width bits).
[[nodiscard]] netlist::Netlist gated_channel_netlist(int channels, int width,
                                                     int depth = 1);

}  // namespace refpga::sim
