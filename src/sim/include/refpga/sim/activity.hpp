// Per-net switching activity, the input to dynamic power estimation.
//
// Activity can come straight from a Simulator run, or via the paper's
// file-based route (VCD -> parse). Both converge to toggles-per-second
// per net, which is what the power model consumes.
#pragma once

#include <cstdint>
#include <vector>

#include "refpga/netlist/netlist.hpp"
#include "refpga/sim/engine.hpp"
#include "refpga/sim/vcd.hpp"

namespace refpga::sim {

class ActivityMap {
public:
    explicit ActivityMap(std::size_t net_count) : rate_hz_(net_count, 0.0) {}

    void set_rate(netlist::NetId net, double toggles_per_s) {
        rate_hz_.at(net.value()) = toggles_per_s;
    }
    [[nodiscard]] double rate_hz(netlist::NetId net) const {
        return rate_hz_.at(net.value());
    }
    [[nodiscard]] std::size_t size() const { return rate_hz_.size(); }

    /// Nets sorted by descending toggle rate (the paper optimizes the
    /// highest-communication nets first).
    [[nodiscard]] std::vector<netlist::NetId> busiest(std::size_t count) const;

private:
    std::vector<double> rate_hz_;
};

/// Builds activity from a finished simulation (either engine — the parity
/// contract makes the result engine-independent): toggles observed over
/// `cycles` cycles of a clock at `clock_hz`. Per the toggle specification in
/// engine.hpp, constant-driven and undriven nets always get rate 0.
[[nodiscard]] ActivityMap activity_from_simulation(const SimEngine& sim, double clock_hz);

/// Builds activity from a parsed VCD, matching signals to nets by name.
/// Nets without a VCD record get rate 0.
[[nodiscard]] ActivityMap activity_from_vcd(const netlist::Netlist& nl,
                                            const VcdActivity& vcd);

}  // namespace refpga::sim
