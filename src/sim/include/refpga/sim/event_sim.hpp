// Levelized event-driven simulator (the fast engine).
//
// Where the cycle engine re-evaluates every combinational cell on every
// settle, this engine keeps per-level pending queues and only evaluates
// cells downstream of nets whose value actually changed. On realistic
// designs — where a small fraction of the fabric toggles per cycle (the
// clock-gated measurement datapath of the paper is the motivating case) —
// this is an order of magnitude cheaper while remaining bit-identical to
// `Simulator` (see engine.hpp for the contract, tests/test_sim_diff.cpp for
// the differential harness that enforces it).
//
// How parity is maintained:
//  - Net state is a packed bit vector; a cell is (re)scheduled only when one
//    of its input nets flips, into the queue of its precomputed level
//    (netlist::SimGraph). Levels are drained in ascending order and every
//    consumer sits at a strictly higher level than its driver, so each dirty
//    cell evaluates at most once per settle — exactly the transitions the
//    full sweep would produce, hence identical toggle counts.
//  - Sequential cells are edge-scheduled: a FF/BRAM is "armed" when any data
//    input changes (or its BRAM contents are poked externally), evaluated on
//    the next matching clock edge, and skipped otherwise. A skipped FF
//    necessarily has D == Q (nothing changed since it last latched), and a
//    skipped BRAM's write would be idempotent, so skipping is unobservable.
//  - All sequential cells start armed so the first edge after reset latches
//    everything, like the cycle engine's first tick.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "refpga/netlist/netlist.hpp"
#include "refpga/netlist/simgraph.hpp"
#include "refpga/sim/engine.hpp"

namespace refpga::sim {

class EventSimulator : public SimEngine {
public:
    /// Same preconditions and initial state as Simulator: DRC-clean netlist,
    /// reset-settled nets, FFs 0, BRAMs at init, toggle counters zeroed.
    explicit EventSimulator(const netlist::Netlist& nl);

    [[nodiscard]] EngineKind kind() const override { return EngineKind::Event; }

    [[nodiscard]] const netlist::Netlist& netlist() const override { return nl_; }

    void set_input(const std::string& port, std::uint64_t value) override;

    [[nodiscard]] std::uint64_t get_port(const std::string& port) const override;

    [[nodiscard]] bool net_value(netlist::NetId net) const override;

    void tick(netlist::NetId clock = netlist::NetId{}) override;

    [[nodiscard]] std::int64_t cycle_count() const override { return cycles_; }

    [[nodiscard]] const std::vector<netlist::NetId>& changed_nets() const override {
        return changed_;
    }

    [[nodiscard]] const std::vector<std::int64_t>& toggle_counts() const override {
        return toggles_;
    }

    [[nodiscard]] std::uint32_t bram_word(netlist::CellId bram,
                                          std::size_t addr) const override;
    void set_bram_word(netlist::CellId bram, std::size_t addr,
                       std::uint32_t value) override;

private:
    [[nodiscard]] bool bit(std::uint32_t net) const {
        return ((words_[net >> 6] >> (net & 63)) & 1) != 0;
    }
    void set_net(netlist::NetId net, bool value);
    void schedule(std::uint32_t cell);
    void eval_cell(std::uint32_t cell_index);
    void drain_levels();
    [[nodiscard]] bool in_value(const netlist::Cell& c, std::size_t pin) const;
    [[nodiscard]] std::uint64_t bus_in(const netlist::Cell& c, std::size_t first,
                                       std::size_t count) const;

    const netlist::Netlist& nl_;
    netlist::SimGraph graph_;
    std::vector<std::uint64_t> words_;         ///< packed net values, 64 per word
    std::vector<std::vector<std::uint32_t>> level_queue_;  ///< pending comb cells
    std::vector<std::uint8_t> in_queue_;       ///< per-cell: already scheduled
    std::vector<std::uint8_t> seq_armed_;      ///< per-cell: data input changed
    std::vector<std::vector<std::uint32_t>> bram_state_;   ///< per BRAM cell contents
    std::vector<std::int64_t> toggles_;
    std::vector<netlist::NetId> changed_;
    netlist::NetId default_clock_;
    std::int64_t cycles_ = 0;

    // Per-tick scratch, members to avoid reallocation on the hot path.
    struct FfUpdate {
        std::uint32_t cell;
        bool q;
    };
    struct BramUpdate {
        std::uint32_t cell;
        std::uint32_t read_word;
    };
    std::vector<FfUpdate> ff_scratch_;
    std::vector<BramUpdate> bram_scratch_;
};

}  // namespace refpga::sim
