// Levelized two-value cycle simulator.
//
// Combinational cells are evaluated in topological order after every input
// change or clock tick; sequential cells (FF, BRAM) latch on tick(). This is
// the engine behind functional verification, the VCD/XPower activity flow
// (§4.3 of the paper) and the SW-vs-HW timing comparison (§4.2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "refpga/netlist/netlist.hpp"

namespace refpga::sim {

class Simulator {
public:
    /// The netlist must pass DRC (no combinational loops). Initial state:
    /// all nets 0, all FFs 0, BRAMs hold their init contents.
    explicit Simulator(const netlist::Netlist& nl);

    [[nodiscard]] const netlist::Netlist& netlist() const { return nl_; }

    // --- stimulus / observation ----------------------------------------------

    /// Drives an input port with `value` (bit i of value -> bit i of the port).
    void set_input(const std::string& port, std::uint64_t value);

    /// Reads a port (input or output) as an unsigned integer.
    [[nodiscard]] std::uint64_t get_port(const std::string& port) const;

    [[nodiscard]] bool net_value(netlist::NetId net) const;

    // --- time ----------------------------------------------------------------

    /// One rising edge of `clock`: latch sequential state, then settle
    /// combinational logic. Default: the netlist's single clock.
    void tick(netlist::NetId clock = netlist::NetId{});

    /// Convenience: n ticks of the default clock.
    void run(int cycles);

    /// Re-evaluates combinational logic (called automatically by
    /// set_input/tick; exposed for tests).
    void settle();

    [[nodiscard]] std::int64_t cycle_count() const { return cycles_; }

    /// Nets whose value changed during the most recent settle/tick.
    [[nodiscard]] const std::vector<netlist::NetId>& changed_nets() const {
        return changed_;
    }

    /// Total value toggles per net since construction (for activity analysis).
    [[nodiscard]] const std::vector<std::int64_t>& toggle_counts() const {
        return toggles_;
    }

    /// BRAM word access (test/debug and software-memory modelling).
    [[nodiscard]] std::uint32_t bram_word(netlist::CellId bram, std::size_t addr) const;
    void set_bram_word(netlist::CellId bram, std::size_t addr, std::uint32_t value);

private:
    void levelize();
    void eval_cell(std::uint32_t cell_index);
    void set_net(netlist::NetId net, bool value);
    [[nodiscard]] bool in_value(const netlist::Cell& c, std::size_t pin) const;
    [[nodiscard]] std::uint64_t bus_in(const netlist::Cell& c, std::size_t first,
                                       std::size_t count) const;

    const netlist::Netlist& nl_;
    std::vector<std::uint8_t> values_;           ///< current net values
    std::vector<std::uint32_t> comb_order_;      ///< combinational cells, topo order
    std::vector<std::uint32_t> seq_cells_;       ///< FF + BRAM cell indices
    std::vector<std::vector<std::uint32_t>> bram_state_;  ///< per BRAM cell contents
    std::vector<std::int64_t> toggles_;
    std::vector<netlist::NetId> changed_;
    netlist::NetId default_clock_;
    std::int64_t cycles_ = 0;
};

}  // namespace refpga::sim
