// Levelized two-value cycle simulator (the reference engine).
//
// Combinational cells are evaluated in topological order after every input
// change or clock tick; sequential cells (FF, BRAM) latch on tick(). This is
// the engine behind functional verification, the VCD/XPower activity flow
// (§4.3 of the paper) and the SW-vs-HW timing comparison (§4.2). It defines
// the semantics the event-driven engine (EventSimulator) must reproduce
// bit-for-bit — see engine.hpp for the dual-engine contract.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "refpga/netlist/netlist.hpp"
#include "refpga/sim/engine.hpp"

namespace refpga::sim {

class Simulator : public SimEngine {
public:
    /// The netlist must pass DRC (no combinational loops). Initial state:
    /// all nets settled from reset, all FFs 0, BRAMs hold their init
    /// contents; toggle counters start at zero (the power-up settle is not
    /// counted — see engine.hpp).
    explicit Simulator(const netlist::Netlist& nl);

    [[nodiscard]] EngineKind kind() const override { return EngineKind::Cycle; }

    [[nodiscard]] const netlist::Netlist& netlist() const override { return nl_; }

    // --- stimulus / observation ----------------------------------------------

    void set_input(const std::string& port, std::uint64_t value) override;

    [[nodiscard]] std::uint64_t get_port(const std::string& port) const override;

    [[nodiscard]] bool net_value(netlist::NetId net) const override;

    // --- time ----------------------------------------------------------------

    void tick(netlist::NetId clock = netlist::NetId{}) override;

    /// Re-evaluates combinational logic (called automatically by
    /// set_input/tick; exposed for tests).
    void settle();

    [[nodiscard]] std::int64_t cycle_count() const override { return cycles_; }

    [[nodiscard]] const std::vector<netlist::NetId>& changed_nets() const override {
        return changed_;
    }

    [[nodiscard]] const std::vector<std::int64_t>& toggle_counts() const override {
        return toggles_;
    }

    [[nodiscard]] std::uint32_t bram_word(netlist::CellId bram,
                                          std::size_t addr) const override;
    void set_bram_word(netlist::CellId bram, std::size_t addr,
                       std::uint32_t value) override;

private:
    void levelize();
    void eval_cell(std::uint32_t cell_index);
    void set_net(netlist::NetId net, bool value);
    [[nodiscard]] bool in_value(const netlist::Cell& c, std::size_t pin) const;
    [[nodiscard]] std::uint64_t bus_in(const netlist::Cell& c, std::size_t first,
                                       std::size_t count) const;

    const netlist::Netlist& nl_;
    std::vector<std::uint8_t> values_;           ///< current net values
    std::vector<std::uint32_t> comb_order_;      ///< combinational cells, topo order
    std::vector<std::uint32_t> seq_cells_;       ///< FF + BRAM cell indices
    std::vector<std::vector<std::uint32_t>> bram_state_;  ///< per BRAM cell contents
    std::vector<std::int64_t> toggles_;
    std::vector<netlist::NetId> changed_;
    netlist::NetId default_clock_;
    std::int64_t cycles_ = 0;
};

}  // namespace refpga::sim
