// Common interface over the two simulation engines.
//
// refpga::sim ships a dual-engine pair, the same discipline par uses for
// reallocation: `Simulator` is the levelized full-sweep cycle engine (the
// reference semantics), `EventSimulator` is the levelized event-driven engine
// that only evaluates cells downstream of nets that actually changed. Both
// implement this interface and are contractually bit-identical: same per-net
// toggle counts, same final net/BRAM state, byte-identical VCD output for the
// same stimulus. `tests/test_sim_diff.cpp` enforces the contract across
// randomized netlists; anything observable where the engines may differ (only
// the ORDER of `changed_nets()`) is called out explicitly below.
//
// Toggle-count specification (both engines):
//  - Construction establishes the reset steady state (constants propagated,
//    combinational logic settled, FFs at 0, BRAMs at their init contents) and
//    then zeroes all counters: `toggle_counts()` never includes the power-up
//    transition.
//  - Nets driven by constants (Gnd/Vcc) therefore always report 0 toggles,
//    as do undriven nets — neither can change after reset.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "refpga/netlist/netlist.hpp"

namespace refpga::sim {

enum class EngineKind : std::uint8_t {
    Cycle,  ///< full topological sweep per settle (reference engine)
    Event,  ///< per-level pending queues, dirty cells only (fast engine)
};

[[nodiscard]] const char* engine_kind_name(EngineKind kind);

/// Parses "cycle"/"event" (as accepted by the CLI `--sim-engine` flags);
/// nullopt for anything else.
[[nodiscard]] std::optional<EngineKind> parse_engine_kind(std::string_view name);

class SimEngine {
public:
    virtual ~SimEngine() = default;

    [[nodiscard]] virtual EngineKind kind() const = 0;
    [[nodiscard]] virtual const netlist::Netlist& netlist() const = 0;

    // --- stimulus / observation ----------------------------------------------

    /// Drives an input port with `value` (bit i of value -> bit i of the
    /// port), then settles combinational logic.
    virtual void set_input(const std::string& port, std::uint64_t value) = 0;

    /// Reads a port (input or output) as an unsigned integer.
    [[nodiscard]] virtual std::uint64_t get_port(const std::string& port) const = 0;

    [[nodiscard]] virtual bool net_value(netlist::NetId net) const = 0;

    // --- time ----------------------------------------------------------------

    /// One rising edge of `clock`: latch sequential state, then settle
    /// combinational logic. Default: the netlist's single clock.
    virtual void tick(netlist::NetId clock = netlist::NetId{}) = 0;

    /// Convenience: n ticks of the default clock.
    void run(int cycles);

    [[nodiscard]] virtual std::int64_t cycle_count() const = 0;

    /// Nets whose value changed during the most recent settle/tick. The SET
    /// of nets is engine-independent; the ORDER is not specified and differs
    /// between engines (cycle: evaluation order; event: discovery order).
    [[nodiscard]] virtual const std::vector<netlist::NetId>& changed_nets() const = 0;

    /// Total value toggles per net since construction (see the toggle-count
    /// specification above). Bit-identical between engines.
    [[nodiscard]] virtual const std::vector<std::int64_t>& toggle_counts() const = 0;

    // --- BRAM word access (test/debug and software-memory modelling) ---------

    [[nodiscard]] virtual std::uint32_t bram_word(netlist::CellId bram,
                                                  std::size_t addr) const = 0;
    virtual void set_bram_word(netlist::CellId bram, std::size_t addr,
                               std::uint32_t value) = 0;
};

/// Constructs the requested engine over `nl` (which must pass DRC).
[[nodiscard]] std::unique_ptr<SimEngine> make_engine(EngineKind kind,
                                                     const netlist::Netlist& nl);

}  // namespace refpga::sim
