// Value Change Dump (IEEE 1364 §18) writing and parsing.
//
// The paper's §4.3 flow is: post-PAR simulation -> VCD file -> XPower, which
// derives per-net switching rates. We reproduce the same round trip: the
// simulator writes a real VCD, the parser recovers per-signal toggle counts
// that feed the power estimator.
//
// Both directions stream in constant memory: the writer holds only the last
// emitted value per watched signal and appends to the ostream as samples
// arrive; the parser is a single pass over the token stream whose state is
// one last-value record per declared variable — neither ever buffers the
// dump, so arbitrarily long simulations can round-trip through a pipe.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "refpga/netlist/netlist.hpp"
#include "refpga/sim/engine.hpp"

namespace refpga::sim {

/// A multi-bit variable for VcdWriter: emitted as one `$var wire N` with
/// `b...` value changes instead of N scalars. Bits are LSB first.
struct VcdVectorVar {
    std::string name;
    std::vector<netlist::NetId> bits;
};

class VcdWriter {
public:
    /// Watches `nets` of the engine's netlist as scalar variables, plus
    /// optional multi-bit `vectors`. Works identically over either engine
    /// (output depends only on net values at sample times, so the dual-engine
    /// parity contract makes the bytes engine-independent). Header is
    /// emitted immediately; timescale is 1 ps.
    VcdWriter(std::ostream& os, const SimEngine& sim, std::vector<netlist::NetId> nets,
              std::vector<VcdVectorVar> vectors = {});

    /// Emits value changes for watched variables at absolute time `time_ps`.
    /// Times must be strictly increasing.
    void sample(std::int64_t time_ps);

private:
    [[nodiscard]] static std::string code_for(std::size_t index);

    std::ostream& os_;
    const SimEngine& sim_;
    std::vector<netlist::NetId> nets_;
    std::vector<VcdVectorVar> vectors_;
    std::vector<std::string> codes_;      ///< scalars, then vectors
    std::vector<std::int8_t> last_;       ///< -1 = not yet dumped
    std::vector<std::vector<std::int8_t>> vec_last_;
    std::int64_t last_time_ = -1;
};

/// Per-signal toggle statistics recovered from a VCD file.
struct VcdActivity {
    std::int64_t duration_ps = 0;
    std::map<std::string, std::int64_t> toggles;  ///< signal name -> transitions

    /// Transitions per second for one signal (0 if unknown).
    [[nodiscard]] double toggle_rate_hz(const std::string& signal) const;
};

/// Malformed VCD input. The §4.3 flow feeds externally produced dumps into
/// the power estimator, so the parser rejects broken files loudly instead of
/// silently producing zero activity (which would read as "no dynamic power").
class VcdParseError : public std::runtime_error {
public:
    explicit VcdParseError(const std::string& what) : std::runtime_error(what) {}
};

/// Parses a VCD stream produced by VcdWriter. Scalar changes accumulate
/// toggles under the declared name. Vector (`b...`) changes on variables
/// declared with width > 1 accumulate per-bit toggles under `name[i]`
/// (i = 0 is the LSB, the rightmost binary digit; short values are
/// left-extended per IEEE 1364). Vector changes on width-1 variables are
/// skipped after validating the identifier, matching pre-vector behaviour.
/// Throws VcdParseError on truncated declarations or directives, value
/// changes for undeclared identifiers, vector values wider than the declared
/// width, malformed or non-increasing timestamps, value changes before the
/// first timestamp, and files with declarations but no value-change section
/// at all.
[[nodiscard]] VcdActivity parse_vcd(std::istream& is);

}  // namespace refpga::sim
