// Value Change Dump (IEEE 1364 §18) writing and parsing.
//
// The paper's §4.3 flow is: post-PAR simulation -> VCD file -> XPower, which
// derives per-net switching rates. We reproduce the same round trip: the
// simulator writes a real VCD, the parser recovers per-signal toggle counts
// that feed the power estimator.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "refpga/netlist/netlist.hpp"
#include "refpga/sim/simulator.hpp"

namespace refpga::sim {

class VcdWriter {
public:
    /// Watches `nets` of the simulator's netlist. Header is emitted
    /// immediately; timescale is 1 ps.
    VcdWriter(std::ostream& os, const Simulator& sim, std::vector<netlist::NetId> nets);

    /// Emits value changes for watched nets at absolute time `time_ps`.
    /// Times must be non-decreasing.
    void sample(std::int64_t time_ps);

private:
    [[nodiscard]] static std::string code_for(std::size_t index);

    std::ostream& os_;
    const Simulator& sim_;
    std::vector<netlist::NetId> nets_;
    std::vector<std::string> codes_;
    std::vector<std::int8_t> last_;  ///< -1 = not yet dumped
    std::int64_t last_time_ = -1;
};

/// Per-signal toggle statistics recovered from a VCD file.
struct VcdActivity {
    std::int64_t duration_ps = 0;
    std::map<std::string, std::int64_t> toggles;  ///< signal name -> transitions

    /// Transitions per second for one signal (0 if unknown).
    [[nodiscard]] double toggle_rate_hz(const std::string& signal) const;
};

/// Malformed VCD input. The §4.3 flow feeds externally produced dumps into
/// the power estimator, so the parser rejects broken files loudly instead of
/// silently producing zero activity (which would read as "no dynamic power").
class VcdParseError : public std::runtime_error {
public:
    explicit VcdParseError(const std::string& what) : std::runtime_error(what) {}
};

/// Parses a VCD stream produced by VcdWriter (scalar variables only; vector
/// changes are skipped after validating their identifier). Throws
/// VcdParseError on truncated declarations or directives, value changes for
/// undeclared identifiers, malformed or non-increasing timestamps, value
/// changes before the first timestamp, and files with declarations but no
/// value-change section at all.
[[nodiscard]] VcdActivity parse_vcd(std::istream& is);

}  // namespace refpga::sim
