#include "refpga/sim/activity.hpp"

#include <algorithm>

#include "refpga/common/contracts.hpp"

namespace refpga::sim {

std::vector<netlist::NetId> ActivityMap::busiest(std::size_t count) const {
    std::vector<netlist::NetId> order;
    order.reserve(rate_hz_.size());
    for (std::uint32_t i = 0; i < rate_hz_.size(); ++i)
        order.push_back(netlist::NetId{i});
    std::sort(order.begin(), order.end(), [&](netlist::NetId a, netlist::NetId b) {
        return rate_hz_[a.value()] > rate_hz_[b.value()];
    });
    if (order.size() > count) order.resize(count);
    return order;
}

ActivityMap activity_from_simulation(const SimEngine& sim, double clock_hz) {
    REFPGA_EXPECTS(clock_hz > 0.0);
    REFPGA_EXPECTS(sim.cycle_count() > 0);
    const double seconds = static_cast<double>(sim.cycle_count()) / clock_hz;
    ActivityMap map(sim.netlist().net_count());
    const auto& toggles = sim.toggle_counts();
    for (std::uint32_t i = 0; i < toggles.size(); ++i)
        map.set_rate(netlist::NetId{i}, static_cast<double>(toggles[i]) / seconds);
    return map;
}

ActivityMap activity_from_vcd(const netlist::Netlist& nl, const VcdActivity& vcd) {
    ActivityMap map(nl.net_count());
    if (vcd.duration_ps <= 0) return map;
    for (std::uint32_t i = 0; i < nl.net_count(); ++i) {
        const auto& net = nl.net(netlist::NetId{i});
        const auto it = vcd.toggles.find(net.name);
        if (it != vcd.toggles.end())
            map.set_rate(netlist::NetId{i},
                         static_cast<double>(it->second) /
                             (static_cast<double>(vcd.duration_ps) * 1e-12));
    }
    return map;
}

}  // namespace refpga::sim
