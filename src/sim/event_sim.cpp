#include "refpga/sim/event_sim.hpp"

#include <algorithm>

#include "refpga/netlist/drc.hpp"

namespace refpga::sim {

using netlist::Cell;
using netlist::CellId;
using netlist::CellKind;
using netlist::NetId;

EventSimulator::EventSimulator(const netlist::Netlist& nl) : nl_(nl), graph_(nl) {
    netlist::require_clean(nl_);
    words_.assign((nl_.net_count() + 63) / 64, 0);
    toggles_.assign(nl_.net_count(), 0);
    in_queue_.assign(nl_.cell_count(), 0);
    seq_armed_.assign(nl_.cell_count(), 0);
    level_queue_.resize(graph_.level_count());
    bram_state_.resize(nl_.cell_count());

    for (const std::uint32_t i : graph_.seq_cells()) {
        const Cell& c = nl_.cell(CellId{i});
        if (c.kind == CellKind::Bram) bram_state_[i] = nl_.bram_config(c).init;
        seq_armed_[i] = 1;  // the first matching edge must evaluate everything
    }

    const auto clocks = nl_.clock_nets();
    if (!clocks.empty()) default_clock_ = clocks.front();

    // Reset settle: propagate constants, then one full sweep in level order.
    // Events take over afterwards; the sweep's transitions are the power-up
    // settle and are not part of the toggle specification (engine.hpp).
    for (std::uint32_t i = 0; i < nl_.cell_count(); ++i) {
        const Cell& c = nl_.cell(CellId{i});
        if (c.kind == CellKind::Vcc) set_net(c.outputs[0], true);
    }
    for (const std::uint32_t ci : graph_.comb_order()) eval_cell(ci);
    for (auto& q : level_queue_) q.clear();
    std::fill(in_queue_.begin(), in_queue_.end(), 0);
    std::fill(toggles_.begin(), toggles_.end(), 0);
    changed_.clear();
}

bool EventSimulator::in_value(const Cell& c, std::size_t pin) const {
    const NetId n = c.inputs[pin];
    return n.valid() && bit(n.value());
}

std::uint64_t EventSimulator::bus_in(const Cell& c, std::size_t first,
                                     std::size_t count) const {
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < count; ++i)
        if (in_value(c, first + i)) v |= std::uint64_t{1} << i;
    return v;
}

void EventSimulator::set_net(NetId net, bool value) {
    const std::uint32_t n = net.value();
    const std::uint64_t mask = std::uint64_t{1} << (n & 63);
    std::uint64_t& word = words_[n >> 6];
    if (((word & mask) != 0) == value) return;
    word ^= mask;
    ++toggles_[n];
    changed_.push_back(net);
    for (const std::uint32_t c : graph_.comb_consumers(net)) schedule(c);
    for (const std::uint32_t c : graph_.seq_consumers(net)) seq_armed_[c] = 1;
}

void EventSimulator::schedule(std::uint32_t cell) {
    if (in_queue_[cell]) return;
    in_queue_[cell] = 1;
    level_queue_[graph_.level_of(cell)].push_back(cell);
}

void EventSimulator::eval_cell(std::uint32_t cell_index) {
    const Cell& c = nl_.cell(CellId{cell_index});
    switch (c.kind) {
        case CellKind::Lut: {
            std::uint32_t index = 0;
            for (std::size_t i = 0; i < c.inputs.size(); ++i)
                if (in_value(c, i)) index |= 1u << i;
            set_net(c.outputs[0], ((c.lut_mask >> index) & 1) != 0);
            break;
        }
        case CellKind::Mult18: {
            const std::size_t a_bits = c.lut_mask;  // operand split marker
            const std::size_t b_bits = c.inputs.size() - a_bits;
            auto sext = [](std::uint64_t raw, std::size_t bits) {
                const std::uint64_t sign = std::uint64_t{1} << (bits - 1);
                return static_cast<std::int64_t>((raw ^ sign)) -
                       static_cast<std::int64_t>(sign);
            };
            const std::int64_t a = sext(bus_in(c, 0, a_bits), a_bits);
            const std::int64_t b = sext(bus_in(c, a_bits, b_bits), b_bits);
            const std::int64_t p = a * b;
            for (std::size_t i = 0; i < c.outputs.size(); ++i)
                set_net(c.outputs[i], ((p >> i) & 1) != 0);
            break;
        }
        default:
            break;  // sequential cells and pads are not in the comb graph
    }
}

void EventSimulator::drain_levels() {
    // Every comb consumer sits at a strictly higher level than its driver, so
    // evaluating level L can only append to queues > L: the index loop over
    // each queue is exhaustive and each cell runs at most once per drain.
    for (auto& q : level_queue_) {
        for (std::size_t i = 0; i < q.size(); ++i) {
            const std::uint32_t ci = q[i];
            in_queue_[ci] = 0;
            eval_cell(ci);
        }
        q.clear();
    }
}

void EventSimulator::set_input(const std::string& port, std::uint64_t value) {
    const netlist::Port* p = nl_.find_port(port);
    REFPGA_EXPECTS(p != nullptr && p->dir == netlist::PortDir::Input);
    changed_.clear();
    for (std::size_t i = 0; i < p->nets.size(); ++i)
        set_net(p->nets[i], ((value >> i) & 1) != 0);
    drain_levels();
}

std::uint64_t EventSimulator::get_port(const std::string& port) const {
    const netlist::Port* p = nl_.find_port(port);
    REFPGA_EXPECTS(p != nullptr);
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < p->nets.size(); ++i)
        if (bit(p->nets[i].value())) v |= std::uint64_t{1} << i;
    return v;
}

bool EventSimulator::net_value(NetId net) const {
    REFPGA_EXPECTS(net.value() < nl_.net_count());
    return bit(net.value());
}

void EventSimulator::tick(NetId clock) {
    if (!clock.valid()) clock = default_clock_;
    REFPGA_EXPECTS(clock.valid());
    changed_.clear();
    ff_scratch_.clear();
    bram_scratch_.clear();

    // Phase 1: evaluate only armed cells on this clock; others are skipped
    // (their next state provably equals their current outputs). Cells armed
    // for a different clock stay armed.
    for (const std::uint32_t i : graph_.seq_cells()) {
        if (!seq_armed_[i]) continue;
        const Cell& c = nl_.cell(CellId{i});
        if (c.clock != clock) continue;
        seq_armed_[i] = 0;
        if (c.kind == CellKind::Ff) {
            const bool enabled =
                c.inputs.size() < 2 || !c.inputs[1].valid() || in_value(c, 1);
            if (enabled) ff_scratch_.push_back({i, in_value(c, 0)});
        } else {  // BRAM
            const auto& cfg = nl_.bram_config(c);
            const auto addr = static_cast<std::size_t>(
                bus_in(c, 0, static_cast<std::size_t>(cfg.addr_bits)));
            auto& mem = bram_state_[i];
            if (cfg.writable) {
                const std::size_t we_pin = static_cast<std::size_t>(cfg.addr_bits);
                if (in_value(c, we_pin)) {
                    const std::uint64_t w =
                        bus_in(c, we_pin + 1, static_cast<std::size_t>(cfg.data_bits));
                    mem[addr] = static_cast<std::uint32_t>(w);
                }
            }
            bram_scratch_.push_back({i, mem[addr]});
        }
    }

    // Phase 2: commit outputs (set_net re-arms feedback consumers), then
    // drain the dirtied combinational levels.
    for (const FfUpdate& u : ff_scratch_)
        set_net(nl_.cell(CellId{u.cell}).outputs[0], u.q);
    for (const BramUpdate& u : bram_scratch_) {
        const Cell& c = nl_.cell(CellId{u.cell});
        for (std::size_t b = 0; b < c.outputs.size(); ++b)
            set_net(c.outputs[b], ((u.read_word >> b) & 1) != 0);
    }
    drain_levels();
    ++cycles_;
}

std::uint32_t EventSimulator::bram_word(CellId bram, std::size_t addr) const {
    const Cell& c = nl_.cell(bram);
    REFPGA_EXPECTS(c.kind == CellKind::Bram);
    const auto& mem = bram_state_[bram.value()];
    REFPGA_EXPECTS(addr < mem.size());
    return mem[addr];
}

void EventSimulator::set_bram_word(CellId bram, std::size_t addr, std::uint32_t value) {
    const Cell& c = nl_.cell(bram);
    REFPGA_EXPECTS(c.kind == CellKind::Bram);
    auto& mem = bram_state_[bram.value()];
    REFPGA_EXPECTS(addr < mem.size());
    if (mem[addr] != value) seq_armed_[bram.value()] = 1;  // next read may differ
    mem[addr] = value;
}

}  // namespace refpga::sim
