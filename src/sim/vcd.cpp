#include "refpga/sim/vcd.hpp"

#include <istream>
#include <sstream>

#include "refpga/common/contracts.hpp"

namespace refpga::sim {

VcdWriter::VcdWriter(std::ostream& os, const SimEngine& sim,
                     std::vector<netlist::NetId> nets,
                     std::vector<VcdVectorVar> vectors)
    : os_(os), sim_(sim), nets_(std::move(nets)), vectors_(std::move(vectors)) {
    codes_.reserve(nets_.size() + vectors_.size());
    last_.assign(nets_.size(), -1);
    vec_last_.resize(vectors_.size());

    os_ << "$timescale 1ps $end\n";
    os_ << "$scope module top $end\n";
    for (std::size_t i = 0; i < nets_.size(); ++i) {
        codes_.push_back(code_for(i));
        const auto& net = sim_.netlist().net(nets_[i]);
        // VCD identifiers must not contain whitespace; net names are safe
        // (builder uses [a-zA-Z0-9_/.\[\]]).
        os_ << "$var wire 1 " << codes_[i] << ' ' << net.name << " $end\n";
    }
    for (std::size_t j = 0; j < vectors_.size(); ++j) {
        REFPGA_EXPECTS(!vectors_[j].bits.empty());
        codes_.push_back(code_for(nets_.size() + j));
        vec_last_[j].assign(vectors_[j].bits.size(), -1);
        os_ << "$var wire " << vectors_[j].bits.size() << ' '
            << codes_[nets_.size() + j] << ' ' << vectors_[j].name << " $end\n";
    }
    os_ << "$upscope $end\n$enddefinitions $end\n";
}

std::string VcdWriter::code_for(std::size_t index) {
    // Printable identifier alphabet '!'..'~' (94 symbols), little-endian.
    std::string code;
    do {
        code += static_cast<char>('!' + index % 94);
        index /= 94;
    } while (index != 0);
    return code;
}

void VcdWriter::sample(std::int64_t time_ps) {
    REFPGA_EXPECTS(time_ps > last_time_);
    bool header_emitted = false;
    auto stamp = [&] {
        if (!header_emitted) {
            os_ << '#' << time_ps << '\n';
            header_emitted = true;
        }
    };
    for (std::size_t i = 0; i < nets_.size(); ++i) {
        const auto v = static_cast<std::int8_t>(sim_.net_value(nets_[i]) ? 1 : 0);
        if (v == last_[i]) continue;
        stamp();
        os_ << (v != 0 ? '1' : '0') << codes_[i] << '\n';
        last_[i] = v;
    }
    for (std::size_t j = 0; j < vectors_.size(); ++j) {
        const auto& bits = vectors_[j].bits;
        auto& last = vec_last_[j];
        bool dirty = false;
        for (std::size_t b = 0; b < bits.size(); ++b) {
            const auto v = static_cast<std::int8_t>(sim_.net_value(bits[b]) ? 1 : 0);
            if (v != last[b]) {
                last[b] = v;
                dirty = true;
            }
        }
        if (!dirty) continue;
        stamp();
        os_ << 'b';
        for (std::size_t b = bits.size(); b-- > 0;)  // MSB first
            os_ << (last[b] != 0 ? '1' : '0');
        os_ << ' ' << codes_[nets_.size() + j] << '\n';
    }
    last_time_ = time_ps;
}

double VcdActivity::toggle_rate_hz(const std::string& signal) const {
    if (duration_ps <= 0) return 0.0;
    const auto it = toggles.find(signal);
    if (it == toggles.end()) return 0.0;
    return static_cast<double>(it->second) / (static_cast<double>(duration_ps) * 1e-12);
}

namespace {

struct VcdVarState {
    std::string name;
    std::size_t width = 1;
    std::vector<std::int8_t> last;  ///< per bit, LSB first; -1 = unknown
};

}  // namespace

VcdActivity parse_vcd(std::istream& is) {
    VcdActivity activity;
    std::map<std::string, VcdVarState> vars;
    std::int64_t first_time = -1;
    std::int64_t time = 0;

    std::string token;
    while (is >> token) {
        if (token == "$var") {
            // $var wire N <code> <name> $end
            std::string type, width, code, name, end;
            if (!(is >> type >> width >> code >> name >> end))
                throw VcdParseError("vcd: truncated $var declaration");
            if (end != "$end")
                throw VcdParseError("vcd: $var declaration not closed by $end");
            std::size_t w = 0;
            std::size_t consumed = 0;
            try {
                w = static_cast<std::size_t>(std::stoull(width, &consumed));
            } catch (const std::exception&) {
                consumed = 0;
            }
            if (consumed != width.size() || w == 0)
                throw VcdParseError("vcd: bad $var width '" + width + "'");
            VcdVarState& v = vars[code];
            v.name = name;
            v.width = w;
            v.last.assign(w, -1);
        } else if (token[0] == '$') {
            // Skip other directives until their $end.
            if (token != "$end" && token.find("$end") == std::string::npos) {
                std::string w;
                while (is >> w && w != "$end") {
                }
                if (w != "$end")
                    throw VcdParseError("vcd: directive " + token +
                                        " not closed by $end");
            }
        } else if (token[0] == '#') {
            std::int64_t t = 0;
            std::size_t consumed = 0;
            try {
                t = std::stoll(token.substr(1), &consumed);
            } catch (const std::exception&) {
                throw VcdParseError("vcd: malformed timestamp '" + token + "'");
            }
            if (consumed != token.size() - 1)
                throw VcdParseError("vcd: malformed timestamp '" + token + "'");
            if (first_time >= 0 && t <= time)
                throw VcdParseError("vcd: non-increasing timestamp '" + token +
                                    "'");
            time = t;
            if (first_time < 0) first_time = time;
            activity.duration_ps = time - first_time;
        } else if (token[0] == '0' || token[0] == '1' || token[0] == 'x' ||
                   token[0] == 'z' || token[0] == 'X' || token[0] == 'Z') {
            if (first_time < 0)
                throw VcdParseError(
                    "vcd: value change before the first timestamp");
            const std::string code = token.substr(1);
            auto it = vars.find(code);
            if (it == vars.end())
                throw VcdParseError("vcd: value change for undeclared "
                                    "identifier '" + code + "'");
            std::int8_t& last = it->second.last[0];
            if (token[0] != '0' && token[0] != '1') {
                last = -1;  // unknown/hi-Z: resets toggle tracking
                continue;
            }
            const auto v = static_cast<std::int8_t>(token[0] - '0');
            if (last >= 0 && last != v) ++activity.toggles[it->second.name];
            if (last < 0) activity.toggles.try_emplace(it->second.name, 0);
            last = v;
        } else if (token[0] == 'b' || token[0] == 'B' || token[0] == 'r' ||
                   token[0] == 'R') {
            // Vector/real change: the value token is followed by its
            // identifier. Width-1 declarations keep the historical
            // skip-but-validate behaviour; width>1 accumulates per-bit
            // toggles under name[i].
            const std::string value = token.substr(1);
            std::string code;
            if (!(is >> code))
                throw VcdParseError("vcd: truncated vector value change");
            auto it = vars.find(code);
            if (it == vars.end())
                throw VcdParseError("vcd: vector change for undeclared "
                                    "identifier '" + code + "'");
            VcdVarState& var = it->second;
            if (var.width <= 1 || token[0] == 'r' || token[0] == 'R') continue;
            if (first_time < 0)
                throw VcdParseError(
                    "vcd: value change before the first timestamp");
            if (value.empty() || value.size() > var.width)
                throw VcdParseError("vcd: vector value '" + token +
                                    "' does not fit width " +
                                    std::to_string(var.width) + " variable '" +
                                    var.name + "'");
            for (const char ch : value)
                if (ch != '0' && ch != '1' && ch != 'x' && ch != 'X' &&
                    ch != 'z' && ch != 'Z')
                    throw VcdParseError("vcd: bad vector digit in '" + token +
                                        "'");
            // IEEE 1364 left-extension: short values extend with 0 unless the
            // leftmost digit is x/z, which extends with itself.
            const char leftmost = value.front();
            const char pad =
                (leftmost == '0' || leftmost == '1') ? '0' : leftmost;
            for (std::size_t bit = 0; bit < var.width; ++bit) {
                // bit 0 is the rightmost digit.
                const char ch = bit < value.size()
                                    ? value[value.size() - 1 - bit]
                                    : pad;
                std::int8_t& last = var.last[bit];
                const std::string key =
                    var.name + "[" + std::to_string(bit) + "]";
                if (ch != '0' && ch != '1') {
                    last = -1;
                    continue;
                }
                const auto v = static_cast<std::int8_t>(ch - '0');
                if (last >= 0 && last != v) ++activity.toggles[key];
                if (last < 0) activity.toggles.try_emplace(key, 0);
                last = v;
            }
        } else {
            throw VcdParseError("vcd: unrecognized token '" + token + "'");
        }
    }
    if (first_time < 0 && !vars.empty())
        throw VcdParseError("vcd: no value-change section after declarations");
    return activity;
}

}  // namespace refpga::sim
