#include "refpga/sim/vcd.hpp"

#include <istream>
#include <sstream>

#include "refpga/common/contracts.hpp"

namespace refpga::sim {

VcdWriter::VcdWriter(std::ostream& os, const Simulator& sim,
                     std::vector<netlist::NetId> nets)
    : os_(os), sim_(sim), nets_(std::move(nets)) {
    codes_.reserve(nets_.size());
    last_.assign(nets_.size(), -1);

    os_ << "$timescale 1ps $end\n";
    os_ << "$scope module top $end\n";
    for (std::size_t i = 0; i < nets_.size(); ++i) {
        codes_.push_back(code_for(i));
        const auto& net = sim_.netlist().net(nets_[i]);
        // VCD identifiers must not contain whitespace; net names are safe
        // (builder uses [a-zA-Z0-9_/.\[\]]).
        os_ << "$var wire 1 " << codes_[i] << ' ' << net.name << " $end\n";
    }
    os_ << "$upscope $end\n$enddefinitions $end\n";
}

std::string VcdWriter::code_for(std::size_t index) {
    // Printable identifier alphabet '!'..'~' (94 symbols), little-endian.
    std::string code;
    do {
        code += static_cast<char>('!' + index % 94);
        index /= 94;
    } while (index != 0);
    return code;
}

void VcdWriter::sample(std::int64_t time_ps) {
    REFPGA_EXPECTS(time_ps > last_time_);
    bool header_emitted = false;
    for (std::size_t i = 0; i < nets_.size(); ++i) {
        const auto v = static_cast<std::int8_t>(sim_.net_value(nets_[i]) ? 1 : 0);
        if (v == last_[i]) continue;
        if (!header_emitted) {
            os_ << '#' << time_ps << '\n';
            header_emitted = true;
        }
        os_ << (v != 0 ? '1' : '0') << codes_[i] << '\n';
        last_[i] = v;
    }
    last_time_ = time_ps;
}

double VcdActivity::toggle_rate_hz(const std::string& signal) const {
    if (duration_ps <= 0) return 0.0;
    const auto it = toggles.find(signal);
    if (it == toggles.end()) return 0.0;
    return static_cast<double>(it->second) / (static_cast<double>(duration_ps) * 1e-12);
}

VcdActivity parse_vcd(std::istream& is) {
    VcdActivity activity;
    std::map<std::string, std::string> code_to_name;
    std::map<std::string, std::int8_t> last_value;
    std::int64_t first_time = -1;
    std::int64_t time = 0;

    std::string token;
    while (is >> token) {
        if (token == "$var") {
            // $var wire 1 <code> <name> $end
            std::string type, width, code, name, end;
            if (!(is >> type >> width >> code >> name >> end)) break;
            code_to_name[code] = name;
            last_value[code] = -1;
        } else if (token[0] == '$') {
            // Skip other directives until their $end.
            if (token != "$end" && token.find("$end") == std::string::npos) {
                std::string w;
                while (is >> w && w != "$end") {
                }
            }
        } else if (token[0] == '#') {
            time = std::stoll(token.substr(1));
            if (first_time < 0) first_time = time;
            activity.duration_ps = time - first_time;
        } else if (token[0] == '0' || token[0] == '1') {
            const std::string code = token.substr(1);
            const auto v = static_cast<std::int8_t>(token[0] - '0');
            auto it = last_value.find(code);
            if (it == last_value.end()) continue;
            if (it->second >= 0 && it->second != v) {
                const auto name_it = code_to_name.find(code);
                if (name_it != code_to_name.end()) ++activity.toggles[name_it->second];
            }
            if (it->second < 0) activity.toggles.try_emplace(code_to_name[code], 0);
            it->second = v;
        }
        // 'b...' vector changes and 'x/z' states are not produced by VcdWriter.
    }
    return activity;
}

}  // namespace refpga::sim
