#include "refpga/sim/vcd.hpp"

#include <istream>
#include <sstream>

#include "refpga/common/contracts.hpp"

namespace refpga::sim {

VcdWriter::VcdWriter(std::ostream& os, const Simulator& sim,
                     std::vector<netlist::NetId> nets)
    : os_(os), sim_(sim), nets_(std::move(nets)) {
    codes_.reserve(nets_.size());
    last_.assign(nets_.size(), -1);

    os_ << "$timescale 1ps $end\n";
    os_ << "$scope module top $end\n";
    for (std::size_t i = 0; i < nets_.size(); ++i) {
        codes_.push_back(code_for(i));
        const auto& net = sim_.netlist().net(nets_[i]);
        // VCD identifiers must not contain whitespace; net names are safe
        // (builder uses [a-zA-Z0-9_/.\[\]]).
        os_ << "$var wire 1 " << codes_[i] << ' ' << net.name << " $end\n";
    }
    os_ << "$upscope $end\n$enddefinitions $end\n";
}

std::string VcdWriter::code_for(std::size_t index) {
    // Printable identifier alphabet '!'..'~' (94 symbols), little-endian.
    std::string code;
    do {
        code += static_cast<char>('!' + index % 94);
        index /= 94;
    } while (index != 0);
    return code;
}

void VcdWriter::sample(std::int64_t time_ps) {
    REFPGA_EXPECTS(time_ps > last_time_);
    bool header_emitted = false;
    for (std::size_t i = 0; i < nets_.size(); ++i) {
        const auto v = static_cast<std::int8_t>(sim_.net_value(nets_[i]) ? 1 : 0);
        if (v == last_[i]) continue;
        if (!header_emitted) {
            os_ << '#' << time_ps << '\n';
            header_emitted = true;
        }
        os_ << (v != 0 ? '1' : '0') << codes_[i] << '\n';
        last_[i] = v;
    }
    last_time_ = time_ps;
}

double VcdActivity::toggle_rate_hz(const std::string& signal) const {
    if (duration_ps <= 0) return 0.0;
    const auto it = toggles.find(signal);
    if (it == toggles.end()) return 0.0;
    return static_cast<double>(it->second) / (static_cast<double>(duration_ps) * 1e-12);
}

VcdActivity parse_vcd(std::istream& is) {
    VcdActivity activity;
    std::map<std::string, std::string> code_to_name;
    std::map<std::string, std::int8_t> last_value;
    std::int64_t first_time = -1;
    std::int64_t time = 0;

    std::string token;
    while (is >> token) {
        if (token == "$var") {
            // $var wire 1 <code> <name> $end
            std::string type, width, code, name, end;
            if (!(is >> type >> width >> code >> name >> end))
                throw VcdParseError("vcd: truncated $var declaration");
            if (end != "$end")
                throw VcdParseError("vcd: $var declaration not closed by $end");
            code_to_name[code] = name;
            last_value[code] = -1;
        } else if (token[0] == '$') {
            // Skip other directives until their $end.
            if (token != "$end" && token.find("$end") == std::string::npos) {
                std::string w;
                while (is >> w && w != "$end") {
                }
                if (w != "$end")
                    throw VcdParseError("vcd: directive " + token +
                                        " not closed by $end");
            }
        } else if (token[0] == '#') {
            std::int64_t t = 0;
            std::size_t consumed = 0;
            try {
                t = std::stoll(token.substr(1), &consumed);
            } catch (const std::exception&) {
                throw VcdParseError("vcd: malformed timestamp '" + token + "'");
            }
            if (consumed != token.size() - 1)
                throw VcdParseError("vcd: malformed timestamp '" + token + "'");
            if (first_time >= 0 && t <= time)
                throw VcdParseError("vcd: non-increasing timestamp '" + token +
                                    "'");
            time = t;
            if (first_time < 0) first_time = time;
            activity.duration_ps = time - first_time;
        } else if (token[0] == '0' || token[0] == '1' || token[0] == 'x' ||
                   token[0] == 'z' || token[0] == 'X' || token[0] == 'Z') {
            if (first_time < 0)
                throw VcdParseError(
                    "vcd: value change before the first timestamp");
            const std::string code = token.substr(1);
            auto it = last_value.find(code);
            if (it == last_value.end())
                throw VcdParseError("vcd: value change for undeclared "
                                    "identifier '" + code + "'");
            if (token[0] != '0' && token[0] != '1') {
                it->second = -1;  // unknown/hi-Z: resets toggle tracking
                continue;
            }
            const auto v = static_cast<std::int8_t>(token[0] - '0');
            if (it->second >= 0 && it->second != v)
                ++activity.toggles[code_to_name[code]];
            if (it->second < 0) activity.toggles.try_emplace(code_to_name[code], 0);
            it->second = v;
        } else if (token[0] == 'b' || token[0] == 'B' || token[0] == 'r' ||
                   token[0] == 'R') {
            // Vector/real change (not produced by VcdWriter): the value token
            // is followed by its identifier; skip it, but still insist it
            // refers to a declared variable.
            std::string code;
            if (!(is >> code))
                throw VcdParseError("vcd: truncated vector value change");
            if (code_to_name.find(code) == code_to_name.end())
                throw VcdParseError("vcd: vector change for undeclared "
                                    "identifier '" + code + "'");
        } else {
            throw VcdParseError("vcd: unrecognized token '" + token + "'");
        }
    }
    if (first_time < 0 && !code_to_name.empty())
        throw VcdParseError("vcd: no value-change section after declarations");
    return activity;
}

}  // namespace refpga::sim
