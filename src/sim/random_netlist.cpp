#include "refpga/sim/random_netlist.hpp"

#include <array>
#include <string>
#include <vector>

#include "refpga/common/contracts.hpp"
#include "refpga/common/rng.hpp"
#include "refpga/netlist/builder.hpp"

namespace refpga::sim {

using netlist::Builder;
using netlist::Bus;
using netlist::NetId;

namespace {

/// Picks a random already-driven net; construction order makes the result a
/// DAG, so any pick is combinational-loop free.
NetId pick(Rng& rng, const std::vector<NetId>& pool) {
    return pool[rng.next_below(static_cast<std::uint32_t>(pool.size()))];
}

Bus pick_bus(Rng& rng, const std::vector<NetId>& pool, int width) {
    Bus bus;
    bus.reserve(static_cast<std::size_t>(width));
    for (int i = 0; i < width; ++i) bus.push_back(pick(rng, pool));
    return bus;
}

}  // namespace

netlist::Netlist random_netlist(std::uint64_t seed, const RandomNetlistOptions& opts) {
    REFPGA_EXPECTS(opts.stim_bits >= 1 && opts.stim_bits <= 16);
    REFPGA_EXPECTS(opts.probe_bits >= 1);
    Rng rng(seed);

    netlist::Netlist nl;
    const NetId clk = nl.add_input_port("clk", 1)[0];
    Builder b(nl, clk);

    // The pool holds every driven net usable as a data input. The clock net
    // is deliberately never pooled (DRC: clock-used-as-data).
    std::vector<NetId> pool = nl.add_input_port("stim", opts.stim_bits);

    auto pour = [&](const Bus& bus) {
        for (const NetId n : bus) pool.push_back(n);
    };

    if (opts.with_feedback) {
        // A free-running counter gives every netlist internal liveliness even
        // under constant stimulus, and a feedback register closes a
        // FF -> logic -> FF loop through random pool data.
        const int cwidth = 3 + static_cast<int>(rng.next_below(4));
        pour(b.counter(cwidth, NetId{}, "rcnt"));
        const int fwidth = 3 + static_cast<int>(rng.next_below(4));
        const Bus mix = pick_bus(rng, pool, fwidth);
        pour(b.feedback_reg(
            fwidth, [&](const Bus& q) { return b.add(b.xor_bus(q, mix), q); },
            rng.next_below(2) != 0 ? pick(rng, pool) : NetId{}, "rstate"));
    }

    if (opts.with_mult) {
        const int aw = 3 + static_cast<int>(rng.next_below(3));
        const int bw = 3 + static_cast<int>(rng.next_below(3));
        pour(b.mul_mult18(pick_bus(rng, pool, aw), pick_bus(rng, pool, bw),
                          aw + bw, 0, "rmul"));
    }

    if (opts.with_bram) {
        // One read-only BRAM with random contents...
        const int rom_addr = 3;
        std::vector<std::uint32_t> contents(std::size_t{1} << rom_addr);
        for (auto& word : contents) word = static_cast<std::uint32_t>(rng.next_u64());
        pour(b.rom_bram(pick_bus(rng, pool, rom_addr), contents, 6, "rrom"));

        // ...and one writable port so the engines' write paths diverge if
        // either mishandles write-first or arming on data changes.
        netlist::BramConfig cfg;
        cfg.addr_bits = 3;
        cfg.data_bits = 4;
        cfg.writable = true;
        cfg.init.assign(cfg.depth(), 0);
        for (auto& word : cfg.init)
            word = static_cast<std::uint32_t>(rng.next_u64()) & 0xF;
        const Bus addr = pick_bus(rng, pool, cfg.addr_bits);
        const NetId we = pick(rng, pool);
        const Bus wdata = pick_bus(rng, pool, cfg.data_bits);
        for (const NetId n : nl.add_bram(cfg, addr, clk, we, wdata, "rram"))
            pool.push_back(n);
    }

    // LUT soup and scattered FFs, interleaved so flops capture mid-soup nets
    // and later LUTs chew on flop outputs (sequential feedback across cells).
    int ffs_left = opts.ffs;
    for (int i = 0; i < opts.luts; ++i) {
        const int k = 1 + static_cast<int>(rng.next_below(4));
        std::array<NetId, 4> ins{};
        for (int j = 0; j < k; ++j) ins[static_cast<std::size_t>(j)] = pick(rng, pool);
        const auto mask = static_cast<std::uint16_t>(rng.next_u64());
        pool.push_back(nl.add_lut(mask, {ins.data(), static_cast<std::size_t>(k)},
                                  "rlut" + std::to_string(i)));
        if (ffs_left > 0 && rng.next_below(3) == 0) {
            const NetId ce = rng.next_below(2) != 0 ? pick(rng, pool) : NetId{};
            pool.push_back(b.ff(pick(rng, pool), ce, "rff" + std::to_string(i)));
            --ffs_left;
        }
    }
    while (ffs_left-- > 0)
        pool.push_back(b.ff(pick(rng, pool), NetId{}, "rfftail" + std::to_string(ffs_left)));

    nl.add_output_port("probe", pick_bus(rng, pool, opts.probe_bits));
    return nl;
}

netlist::Netlist gated_channel_netlist(int channels, int width, int depth) {
    REFPGA_EXPECTS(channels >= 1 && width >= 2 && width <= 16 && depth >= 1);
    netlist::Netlist nl;
    const NetId clk = nl.add_input_port("clk", 1)[0];
    Builder b(nl, clk);
    const Bus stim = nl.add_input_port("stim", width);

    // Selector counter: channel i is clock-enabled only when the low selector
    // bits equal i, so ~1/channels of the datapath toggles per cycle. The
    // remaining channels hold state — the activity profile of the paper's
    // clock-gated measurement system, and the event engine's best case.
    int sel_bits = 1;
    while ((1 << sel_bits) < channels) ++sel_bits;
    const Bus sel = b.counter(sel_bits, NetId{}, "sel");

    std::vector<Bus> leaves;
    leaves.reserve(static_cast<std::size_t>(channels));
    for (int ch = 0; ch < channels; ++ch) {
        b.push_scope("ch" + std::to_string(ch));
        const NetId hit = b.eq(sel, b.constant(static_cast<std::uint64_t>(ch) &
                                                   ((1u << sel_bits) - 1),
                                               sel_bits));
        const Bus acc = b.feedback_reg(
            width, [&](const Bus& q) { return b.add(q, stim); }, hit, "acc");
        // `depth` - 1 further CE-gated pipeline stages: pure combinational
        // weight that stays silent while the channel is not selected.
        Bus stage = acc;
        for (int s = 1; s < depth; ++s)
            stage = b.reg(b.xor_bus(b.add(stage, acc), stim), hit,
                          "st" + std::to_string(s));
        leaves.push_back(b.xor_bus(stage, stim));
        b.pop_scope();
    }

    // Balanced XOR tree: one channel's update reaches "probe" through
    // O(log channels) levels, keeping quiescent-channel cost where it
    // belongs (in the channels, not the reduction).
    while (leaves.size() > 1) {
        std::vector<Bus> next;
        next.reserve((leaves.size() + 1) / 2);
        for (std::size_t i = 0; i + 1 < leaves.size(); i += 2)
            next.push_back(b.xor_bus(leaves[i], leaves[i + 1]));
        if (leaves.size() % 2 != 0) next.push_back(leaves.back());
        leaves = std::move(next);
    }
    nl.add_output_port("probe", leaves.front());
    return nl;
}

}  // namespace refpga::sim
