#include "refpga/sim/simulator.hpp"

#include <algorithm>

#include "refpga/netlist/drc.hpp"

namespace refpga::sim {

using netlist::Cell;
using netlist::CellId;
using netlist::CellKind;
using netlist::Net;
using netlist::NetId;

Simulator::Simulator(const netlist::Netlist& nl) : nl_(nl) {
    netlist::require_clean(nl_);
    values_.assign(nl_.net_count(), 0);
    toggles_.assign(nl_.net_count(), 0);

    for (std::uint32_t i = 0; i < nl_.cell_count(); ++i) {
        const Cell& c = nl_.cell(CellId{i});
        if (c.sequential()) {
            seq_cells_.push_back(i);
            if (c.kind == CellKind::Bram)
                bram_state_.push_back(nl_.bram_config(c).init);
            else
                bram_state_.emplace_back();
        } else {
            bram_state_.emplace_back();
        }
    }

    const auto clocks = nl_.clock_nets();
    if (!clocks.empty()) default_clock_ = clocks.front();

    levelize();
    // Constants must be reflected before the first settle.
    for (std::uint32_t i = 0; i < nl_.cell_count(); ++i) {
        const Cell& c = nl_.cell(CellId{i});
        if (c.kind == CellKind::Vcc) values_[c.outputs[0].value()] = 1;
    }
    settle();
    // The settle above only establishes the reset steady state; activity
    // accounting starts from zero so the power-up transition is never
    // reported as a toggle (constant-driven and undriven nets stay at 0
    // forever). See engine.hpp for the full specification.
    std::fill(toggles_.begin(), toggles_.end(), 0);
    changed_.clear();
}

void Simulator::levelize() {
    // Kahn's algorithm over combinational cells; dependencies flow from a
    // cell's input nets' combinational drivers.
    std::vector<int> pending(nl_.cell_count(), 0);
    std::vector<std::vector<std::uint32_t>> dependents(nl_.cell_count());

    auto is_comb = [&](const Cell& c) {
        return c.kind == CellKind::Lut || c.kind == CellKind::Mult18 ||
               c.kind == CellKind::Outpad;
    };

    for (std::uint32_t i = 0; i < nl_.cell_count(); ++i) {
        const Cell& c = nl_.cell(CellId{i});
        if (!is_comb(c)) continue;
        for (const NetId in : c.inputs) {
            if (!in.valid()) continue;
            const Net& n = nl_.net(in);
            if (!n.driven()) continue;
            const Cell& drv = nl_.cell(n.driver.cell);
            if (is_comb(drv) && drv.kind != CellKind::Outpad) {
                ++pending[i];
                dependents[n.driver.cell.value()].push_back(i);
            }
        }
    }

    std::vector<std::uint32_t> ready;
    for (std::uint32_t i = 0; i < nl_.cell_count(); ++i) {
        const Cell& c = nl_.cell(CellId{i});
        if (is_comb(c) && pending[i] == 0) ready.push_back(i);
    }
    while (!ready.empty()) {
        const std::uint32_t i = ready.back();
        ready.pop_back();
        comb_order_.push_back(i);
        for (const std::uint32_t dep : dependents[i])
            if (--pending[dep] == 0) ready.push_back(dep);
    }
}

bool Simulator::in_value(const Cell& c, std::size_t pin) const {
    const NetId n = c.inputs[pin];
    return n.valid() && values_[n.value()] != 0;
}

std::uint64_t Simulator::bus_in(const Cell& c, std::size_t first, std::size_t count) const {
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < count; ++i)
        if (in_value(c, first + i)) v |= std::uint64_t{1} << i;
    return v;
}

void Simulator::set_net(NetId net, bool value) {
    std::uint8_t& slot = values_[net.value()];
    const auto v = static_cast<std::uint8_t>(value);
    if (slot != v) {
        slot = v;
        ++toggles_[net.value()];
        changed_.push_back(net);
    }
}

void Simulator::eval_cell(std::uint32_t cell_index) {
    const Cell& c = nl_.cell(CellId{cell_index});
    switch (c.kind) {
        case CellKind::Lut: {
            std::uint32_t index = 0;
            for (std::size_t i = 0; i < c.inputs.size(); ++i)
                if (in_value(c, i)) index |= 1u << i;
            set_net(c.outputs[0], ((c.lut_mask >> index) & 1) != 0);
            break;
        }
        case CellKind::Mult18: {
            const std::size_t a_bits = c.lut_mask;  // operand split marker
            const std::size_t b_bits = c.inputs.size() - a_bits;
            auto sext = [](std::uint64_t raw, std::size_t bits) {
                const std::uint64_t sign = std::uint64_t{1} << (bits - 1);
                return static_cast<std::int64_t>((raw ^ sign)) -
                       static_cast<std::int64_t>(sign);
            };
            const std::int64_t a = sext(bus_in(c, 0, a_bits), a_bits);
            const std::int64_t b = sext(bus_in(c, a_bits, b_bits), b_bits);
            const std::int64_t p = a * b;
            for (std::size_t i = 0; i < c.outputs.size(); ++i)
                set_net(c.outputs[i], ((p >> i) & 1) != 0);
            break;
        }
        case CellKind::Outpad:
            break;  // observation only
        default:
            break;  // sequential/pads handled elsewhere
    }
}

void Simulator::settle() {
    for (const std::uint32_t i : comb_order_) eval_cell(i);
}

void Simulator::set_input(const std::string& port, std::uint64_t value) {
    const netlist::Port* p = nl_.find_port(port);
    REFPGA_EXPECTS(p != nullptr && p->dir == netlist::PortDir::Input);
    changed_.clear();
    for (std::size_t i = 0; i < p->nets.size(); ++i)
        set_net(p->nets[i], ((value >> i) & 1) != 0);
    settle();
}

std::uint64_t Simulator::get_port(const std::string& port) const {
    const netlist::Port* p = nl_.find_port(port);
    REFPGA_EXPECTS(p != nullptr);
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < p->nets.size(); ++i)
        if (values_[p->nets[i].value()] != 0) v |= std::uint64_t{1} << i;
    return v;
}

bool Simulator::net_value(NetId net) const {
    REFPGA_EXPECTS(net.value() < values_.size());
    return values_[net.value()] != 0;
}

void Simulator::tick(NetId clock) {
    if (!clock.valid()) clock = default_clock_;
    REFPGA_EXPECTS(clock.valid());
    changed_.clear();

    // Phase 1: compute every sequential cell's next state from current values.
    struct FfUpdate {
        std::uint32_t cell;
        bool q;
    };
    struct BramUpdate {
        std::uint32_t cell;
        std::uint32_t read_word;
    };
    std::vector<FfUpdate> ff_updates;
    std::vector<BramUpdate> bram_updates;

    for (const std::uint32_t i : seq_cells_) {
        const Cell& c = nl_.cell(CellId{i});
        if (c.clock != clock) continue;
        if (c.kind == CellKind::Ff) {
            const bool enabled = c.inputs.size() < 2 || !c.inputs[1].valid() ||
                                 values_[c.inputs[1].value()] != 0;
            if (enabled)
                ff_updates.push_back({i, in_value(c, 0)});
        } else {  // BRAM
            const auto& cfg = nl_.bram_config(c);
            const auto addr =
                static_cast<std::size_t>(bus_in(c, 0, static_cast<std::size_t>(cfg.addr_bits)));
            auto& mem = bram_state_[i];
            if (cfg.writable) {
                const std::size_t we_pin = static_cast<std::size_t>(cfg.addr_bits);
                if (in_value(c, we_pin)) {
                    const std::uint64_t w =
                        bus_in(c, we_pin + 1, static_cast<std::size_t>(cfg.data_bits));
                    mem[addr] = static_cast<std::uint32_t>(w);
                }
            }
            bram_updates.push_back({i, mem[addr]});
        }
    }

    // Phase 2: commit outputs, then settle the combinational fabric.
    for (const FfUpdate& u : ff_updates)
        set_net(nl_.cell(CellId{u.cell}).outputs[0], u.q);
    for (const BramUpdate& u : bram_updates) {
        const Cell& c = nl_.cell(CellId{u.cell});
        for (std::size_t bit = 0; bit < c.outputs.size(); ++bit)
            set_net(c.outputs[bit], ((u.read_word >> bit) & 1) != 0);
    }
    settle();
    ++cycles_;
}

std::uint32_t Simulator::bram_word(CellId bram, std::size_t addr) const {
    const Cell& c = nl_.cell(bram);
    REFPGA_EXPECTS(c.kind == CellKind::Bram);
    const auto& mem = bram_state_[bram.value()];
    REFPGA_EXPECTS(addr < mem.size());
    return mem[addr];
}

void Simulator::set_bram_word(CellId bram, std::size_t addr, std::uint32_t value) {
    const Cell& c = nl_.cell(bram);
    REFPGA_EXPECTS(c.kind == CellKind::Bram);
    auto& mem = bram_state_[bram.value()];
    REFPGA_EXPECTS(addr < mem.size());
    mem[addr] = value;
}

}  // namespace refpga::sim
