#include "refpga/reconfig/config_port.hpp"

#include "refpga/common/contracts.hpp"

namespace refpga::reconfig {

void ConfigPortSpec::validate() const {
    REFPGA_EXPECTS(clock_hz > 0.0);
    REFPGA_EXPECTS(width_bits > 0);
    REFPGA_EXPECTS(efficiency > 0.0 && efficiency <= 1.0);
    REFPGA_EXPECTS(setup_s >= 0.0);
}

ConfigPortSpec icap_port() {
    return {"icap", 66e6, 8, 1.0, 20e-6, 60.0};
}

ConfigPortSpec selectmap_port() {
    return {"selectmap", 50e6, 8, 1.0, 30e-6, 60.0};
}

ConfigPortSpec jcap_port() {
    // JTAG shifts 1 bit/TCK; the TAP state machine and the JCAP controller's
    // fetch loop leave roughly 55% of TCK cycles carrying payload.
    return {"jcap", 33e6, 1, 0.55, 150e-6, 45.0};
}

ConfigPortSpec jcap_accelerated_port() {
    // [11] describes streamlined TAP sequencing that nearly saturates TCK.
    return {"jcap-accel", 33e6, 1, 0.90, 100e-6, 45.0};
}

}  // namespace refpga::reconfig
