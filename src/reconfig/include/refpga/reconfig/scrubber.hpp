// Configuration-memory integrity: readback scrubbing for SEU detection and
// recovery.
//
// The paper motivates FPGAs for this application with upcoming requirements
// on "failure detection and recovery" (§1, §5). On SRAM FPGAs the canonical
// mechanism is configuration readback + golden-CRC comparison + partial
// reconfiguration of the corrupted columns — built here on the same
// column-granular bitstream model and configuration ports as the module
// swapping.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "refpga/common/rng.hpp"
#include "refpga/reconfig/config_port.hpp"

namespace refpga::reconfig {

/// The device's configuration SRAM, column granular: each CLB column holds a
/// content signature. Loading sets columns to their golden signature; single
/// event upsets flip bits in one column.
class ConfigMemory {
public:
    explicit ConfigMemory(const fabric::Device& dev);

    [[nodiscard]] const fabric::Device& device() const { return dev_; }

    /// Writes columns [x_begin, x_end) with the configuration identified by
    /// `signature` and records it as golden. With `corrupt_transfer` the
    /// golden store still records the intended signature but the fabric
    /// lands with a wrong one (a transfer fault), so readback scrubbing can
    /// detect the mismatch later.
    void load_columns(int x_begin, int x_end, std::uint64_t signature,
                      bool corrupt_transfer = false);

    /// Flips a configuration bit in `column` (a single-event upset).
    void inject_upset(int column, Rng& rng);

    /// Readback of one column's current signature.
    [[nodiscard]] std::uint64_t read_column(int column) const;
    /// Golden signature recorded at load time (nullopt if never loaded).
    [[nodiscard]] std::optional<std::uint64_t> golden(int column) const;

    [[nodiscard]] bool column_corrupted(int column) const;
    [[nodiscard]] int corrupted_count() const;

private:
    const fabric::Device& dev_;
    std::vector<std::uint64_t> current_;
    std::vector<std::optional<std::uint64_t>> golden_;
};

/// Per-scan outcome of the scrubber.
struct ScrubReport {
    int columns_scanned = 0;
    int upsets_detected = 0;
    int columns_repaired = 0;
    double readback_s = 0.0;  ///< time spent reading configuration back
    double repair_s = 0.0;    ///< time spent rewriting corrupted columns
    double energy_mj = 0.0;

    [[nodiscard]] double total_s() const { return readback_s + repair_s; }
};

/// Periodic readback scrubber over a column range (e.g. the static area, or
/// the whole device between measurement cycles).
class Scrubber {
public:
    /// Readback runs over the same port as configuration; Spartan-3 readback
    /// via JTAG achieves roughly the configuration rate.
    Scrubber(ConfigMemory& memory, ConfigPortSpec port);

    /// One full scan of columns [x_begin, x_end): read back, compare against
    /// golden, rewrite any corrupted column from the golden bitstream.
    ScrubReport scan(int x_begin, int x_end);

    /// Accumulated over all scans.
    [[nodiscard]] long total_scans() const { return scans_; }
    [[nodiscard]] long total_repairs() const { return repairs_; }

private:
    ConfigMemory& memory_;
    ConfigPortSpec port_;
    long scans_ = 0;
    long repairs_ = 0;
};

/// Mean time to detect an upset, given a scan period: on average the upset
/// lands mid-way between scans and is found after the readback reaches it.
[[nodiscard]] double mean_detection_latency_s(const fabric::Device& dev,
                                              const ConfigPortSpec& port,
                                              double scan_period_s);

}  // namespace refpga::reconfig
