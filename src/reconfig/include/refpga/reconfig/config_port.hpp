// Configuration port models.
//
// Virtex-2/4 expose the ICAP for internal self-reconfiguration; Spartan-3
// does not, which is why the paper uses the JCAP [11] — a virtual internal
// configuration port built on the JTAG TAP. JTAG shifts one bit per TCK and
// burns extra cycles in the TAP state machine, so the JCAP's rate is far
// below ICAP's; [11] also describes an accelerated variant. SelectMAP is the
// external 8-bit parallel port. All are modelled by width x clock x protocol
// efficiency.
#pragma once

#include <cstdint>
#include <string>

#include "refpga/reconfig/bitstream.hpp"

namespace refpga::reconfig {

struct ConfigPortSpec {
    std::string name;
    double clock_hz = 0.0;
    int width_bits = 1;
    /// Fraction of cycles carrying payload (protocol/state-machine overhead).
    double efficiency = 1.0;
    /// Fixed per-reconfiguration overhead (sync words, CRC, desync).
    double setup_s = 0.0;
    /// Power drawn by the configuration logic while configuring.
    double active_power_mw = 0.0;

    /// Throws refpga::ContractViolation unless the spec yields a positive,
    /// finite throughput (clock_hz > 0, width_bits > 0, 0 < efficiency <= 1,
    /// setup_s >= 0). A zero clock, width or efficiency would otherwise turn
    /// config_time_s/config_energy_mj into inf or NaN and silently poison
    /// every schedule built on top.
    void validate() const;

    [[nodiscard]] double throughput_bps() const {
        return clock_hz * width_bits * efficiency;
    }

    /// Wall-clock time to push a bitstream through this port.
    [[nodiscard]] double config_time_s(const Bitstream& bs) const {
        validate();
        return setup_s + static_cast<double>(bs.bits) / throughput_bps();
    }

    /// Energy spent configuring, in millijoules.
    [[nodiscard]] double config_energy_mj(const Bitstream& bs) const {
        return config_time_s(bs) * active_power_mw;
    }
};

/// ICAP, 8 bit @ 66 MHz (Virtex-2/4 class; reference point only — absent on
/// Spartan-3).
[[nodiscard]] ConfigPortSpec icap_port();

/// External SelectMAP, 8 bit @ 50 MHz.
[[nodiscard]] ConfigPortSpec selectmap_port();

/// JCAP virtual internal port on Spartan-3 JTAG: 1 bit @ 33 MHz TCK with TAP
/// state-machine overhead.
[[nodiscard]] ConfigPortSpec jcap_port();

/// Accelerated JCAP from [11] (tighter TAP sequencing, less overhead).
[[nodiscard]] ConfigPortSpec jcap_accelerated_port();

}  // namespace refpga::reconfig
