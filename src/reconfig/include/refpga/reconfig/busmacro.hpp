// Slice-based bus macros and the static/dynamic boundary rule.
//
// In a partially reconfigurable design every signal crossing between the
// static area and a reconfigurable slot must pass through a bus macro — a
// fixed pair of slices whose routing is identical in every module bitstream
// [8]. The builder helper creates such macros (LUT buffers tagged by name);
// the checker verifies no net sneaks across the boundary without one.
#pragma once

#include <string>
#include <vector>

#include "refpga/netlist/builder.hpp"
#include "refpga/netlist/netlist.hpp"

namespace refpga::reconfig {

inline constexpr const char* kBusMacroTag = "busmacro";

/// Inserts a bus macro on each bit of `signals`: a buffer LUT in the source
/// partition followed by a buffer LUT in `target` partition. Returns the
/// nets on the target side. The builder's current partition is restored.
[[nodiscard]] netlist::Bus bus_macro(netlist::Builder& builder, const netlist::Bus& signals,
                                     netlist::PartitionId source,
                                     netlist::PartitionId target,
                                     const std::string& name);

struct BoundaryViolation {
    netlist::NetId net;
    std::string net_name;
    std::string from_partition;
    std::string to_partition;
};

/// All nets that connect cells of different partitions without passing
/// through a bus macro cell. Clock and constant nets are exempt (they use
/// dedicated networks).
[[nodiscard]] std::vector<BoundaryViolation> check_boundaries(const netlist::Netlist& nl);

}  // namespace refpga::reconfig
