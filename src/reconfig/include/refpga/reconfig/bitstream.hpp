// Configuration bitstreams: full-device and partial (column-range).
//
// Spartan-3 configuration frames span the full device height, so the
// smallest reconfigurable unit is a whole CLB column; a partial bitstream
// covers a contiguous column range. Sizes derive from the part's DS099
// configuration-bit count via the Device's column geometry.
#pragma once

#include <cstdint>
#include <string>

#include "refpga/fabric/device.hpp"

namespace refpga::reconfig {

struct Bitstream {
    std::string module_name;
    int x_begin = 0;  ///< first CLB column covered
    int x_end = 0;    ///< one past the last column (full device: cols())
    bool full_device = false;
    std::int64_t bits = 0;

    [[nodiscard]] std::int64_t bytes() const { return (bits + 7) / 8; }

    /// Full-device bitstream for `dev`.
    [[nodiscard]] static Bitstream full(const fabric::Device& dev, std::string name);

    /// Partial bitstream for a module occupying CLB columns [x_begin, x_end).
    [[nodiscard]] static Bitstream partial(const fabric::Device& dev, std::string name,
                                           int x_begin, int x_end);

    /// Partial bitstream for a floorplan region; the region is widened to
    /// whole columns (full height) because frames are column-granular.
    [[nodiscard]] static Bitstream for_region(const fabric::Device& dev,
                                              std::string name,
                                              const fabric::Region& region);
};

}  // namespace refpga::reconfig
