// Run-time reconfiguration controller.
//
// Mirrors the paper's architecture (Fig. 2): a controller in the static area
// fetches partial bitstreams from external low-power memory and writes them
// to the configuration port; reconfigurable modules are loaded on demand into
// a floorplan slot. The controller keeps a ledger of every reconfiguration's
// time and energy so the measurement-cycle schedule (Fig. 4) can account for
// the overhead the paper warns about.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "refpga/fault/fault.hpp"
#include "refpga/obs/obs.hpp"
#include "refpga/reconfig/bitstream.hpp"
#include "refpga/reconfig/config_port.hpp"

namespace refpga::reconfig {

class ConfigMemory;

/// External bitstream storage (serial flash / low-power memory).
struct FlashSpec {
    std::string name = "spi-flash";
    double read_bps = 160e6;       ///< parallel NOR flash: 8 bit x 20 MHz
    double read_power_mw = 15.0;   ///< power while streaming
};

/// Health of a reconfigurable slot across load attempts.
///
///   Healthy  — last load verified (or no load yet)
///   Retrying — a load attempt failed and is being retried
///   Failed   — the retry budget is exhausted; no module is resident until a
///              later load succeeds (callers degrade to a software path)
enum class SlotHealth { Healthy, Retrying, Failed };

[[nodiscard]] const char* slot_health_name(SlotHealth health);

/// One reconfigurable slot of the floorplan.
struct Slot {
    std::string name;
    fabric::Region region;
    std::string loaded_module;  ///< empty until first load
    SlotHealth health = SlotHealth::Healthy;
};

struct ReconfigEvent {
    std::string slot;
    std::string module;
    std::int64_t bits = 0;
    double time_s = 0.0;
    double energy_mj = 0.0;
    bool skipped = false;  ///< module was already resident
    int attempts = 0;      ///< transfer attempts charged (0 when skipped)
    double verify_s = 0.0; ///< readback-verify share of time_s
    bool failed = false;   ///< retry budget exhausted; slot marked Failed
};

/// Load-hardening knobs. Verification reads the slot's frames back over the
/// configuration port after each write (doubling the transfer time), so it
/// defaults off; the fault layer arms it when faults are being injected.
struct LoadPolicy {
    bool verify_after_write = false;
    int max_retries = 2;  ///< extra attempts after the first (>= 0)
};

/// Fault outcome of one configuration-load attempt: (slot, module, attempt)
/// -> fault::LoadFault. Installed by the fault-injection layer; the default
/// (empty) hook never faults.
using LoadFaultHook =
    std::function<fault::LoadFault(const std::string& slot,
                                   const std::string& module, int attempt)>;

class ReconfigController {
public:
    ReconfigController(const fabric::Device& dev, ConfigPortSpec port,
                       FlashSpec flash = {});

    [[nodiscard]] const ConfigPortSpec& port() const { return port_; }
    [[nodiscard]] const FlashSpec& flash() const { return flash_; }

    /// Declares a slot. Regions of different slots must not overlap columns
    /// (frames are column-granular).
    void add_slot(const std::string& name, const fabric::Region& region);
    [[nodiscard]] const std::vector<Slot>& slots() const { return slots_; }

    /// Registers a module's partial bitstream for a slot.
    void register_module(const std::string& slot, const std::string& module);

    /// Loads `module` into `slot`. No-op (skipped event) when already
    /// resident and the slot is Healthy. Configuration streams from flash
    /// into the port; the slower of the two paces the transfer. With a
    /// fault hook installed, flash errors and verify mismatches trigger
    /// bounded retries (LoadPolicy::max_retries), every attempt's time and
    /// energy charged to the ledger; an exhausted budget marks the slot
    /// Failed and clears its resident module, so the next request retries
    /// from scratch (recovery path).
    ReconfigEvent load(const std::string& slot, const std::string& module);

    [[nodiscard]] const std::string& resident_module(const std::string& slot) const;
    [[nodiscard]] SlotHealth slot_health(const std::string& slot) const;

    // --- fault hardening ------------------------------------------------------

    void set_load_policy(LoadPolicy policy);
    [[nodiscard]] const LoadPolicy& load_policy() const { return policy_; }

    /// Installs the per-attempt fault source (empty hook = no faults).
    void set_load_fault_hook(LoadFaultHook hook) { fault_hook_ = std::move(hook); }

    /// Mirrors successful loads into a configuration memory so readback
    /// scrubbing sees them (corrupted transfers land with wrong signatures).
    /// The memory must outlive the controller; pass nullptr to detach.
    void attach_memory(ConfigMemory* memory) { memory_ = memory; }

    /// Attach (or detach with nullptr) an observability recorder. load()
    /// then bumps reconfig.{loads,loads_skipped,load_retries,load_failures,
    /// bits_written,verify_reads}_total and observes the modelled per-load
    /// time into reconfig.load_seconds. Non-owning.
    void set_recorder(obs::Recorder* recorder);

    // --- ledger ---------------------------------------------------------------

    [[nodiscard]] const std::vector<ReconfigEvent>& events() const { return events_; }
    [[nodiscard]] double total_time_s() const;
    [[nodiscard]] double total_energy_mj() const;
    [[nodiscard]] long load_count() const;   ///< non-skipped loads
    [[nodiscard]] long retry_count() const;  ///< attempts beyond the first
    [[nodiscard]] long failed_load_count() const;

private:
    [[nodiscard]] Slot& find_slot(const std::string& name);
    [[nodiscard]] const Slot& find_slot(const std::string& name) const;

    fabric::Device dev_;  // owned copy: the controller must outlive any caller-supplied device
    ConfigPortSpec port_;
    FlashSpec flash_;
    LoadPolicy policy_;
    LoadFaultHook fault_hook_;
    ConfigMemory* memory_ = nullptr;  // not owned
    std::vector<Slot> slots_;
    std::map<std::string, std::vector<std::string>> slot_modules_;
    std::vector<ReconfigEvent> events_;

    obs::Recorder* recorder_ = nullptr;  // not owned
    struct ObsIds {
        obs::MetricId loads, skipped, retries, failures;
        obs::MetricId bits_written, verify_reads;
        obs::MetricId load_seconds;
    } obs_ids_;
};

}  // namespace refpga::reconfig
