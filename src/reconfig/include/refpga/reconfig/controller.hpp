// Run-time reconfiguration controller.
//
// Mirrors the paper's architecture (Fig. 2): a controller in the static area
// fetches partial bitstreams from external low-power memory and writes them
// to the configuration port; reconfigurable modules are loaded on demand into
// a floorplan slot. The controller keeps a ledger of every reconfiguration's
// time and energy so the measurement-cycle schedule (Fig. 4) can account for
// the overhead the paper warns about.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "refpga/reconfig/bitstream.hpp"
#include "refpga/reconfig/config_port.hpp"

namespace refpga::reconfig {

/// External bitstream storage (serial flash / low-power memory).
struct FlashSpec {
    std::string name = "spi-flash";
    double read_bps = 160e6;       ///< parallel NOR flash: 8 bit x 20 MHz
    double read_power_mw = 15.0;   ///< power while streaming
};

/// One reconfigurable slot of the floorplan.
struct Slot {
    std::string name;
    fabric::Region region;
    std::string loaded_module;  ///< empty until first load
};

struct ReconfigEvent {
    std::string slot;
    std::string module;
    std::int64_t bits = 0;
    double time_s = 0.0;
    double energy_mj = 0.0;
    bool skipped = false;  ///< module was already resident
};

class ReconfigController {
public:
    ReconfigController(const fabric::Device& dev, ConfigPortSpec port,
                       FlashSpec flash = {});

    [[nodiscard]] const ConfigPortSpec& port() const { return port_; }
    [[nodiscard]] const FlashSpec& flash() const { return flash_; }

    /// Declares a slot. Regions of different slots must not overlap columns
    /// (frames are column-granular).
    void add_slot(const std::string& name, const fabric::Region& region);
    [[nodiscard]] const std::vector<Slot>& slots() const { return slots_; }

    /// Registers a module's partial bitstream for a slot.
    void register_module(const std::string& slot, const std::string& module);

    /// Loads `module` into `slot`. No-op (skipped event) when already
    /// resident. Configuration streams from flash into the port; the slower
    /// of the two paces the transfer.
    ReconfigEvent load(const std::string& slot, const std::string& module);

    [[nodiscard]] const std::string& resident_module(const std::string& slot) const;

    // --- ledger ---------------------------------------------------------------

    [[nodiscard]] const std::vector<ReconfigEvent>& events() const { return events_; }
    [[nodiscard]] double total_time_s() const;
    [[nodiscard]] double total_energy_mj() const;
    [[nodiscard]] long load_count() const;  ///< non-skipped loads

private:
    [[nodiscard]] Slot& find_slot(const std::string& name);
    [[nodiscard]] const Slot& find_slot(const std::string& name) const;

    fabric::Device dev_;  // owned copy: the controller must outlive any caller-supplied device
    ConfigPortSpec port_;
    FlashSpec flash_;
    std::vector<Slot> slots_;
    std::map<std::string, std::vector<std::string>> slot_modules_;
    std::vector<ReconfigEvent> events_;
};

}  // namespace refpga::reconfig
