#include "refpga/reconfig/scrubber.hpp"

#include "refpga/common/contracts.hpp"

namespace refpga::reconfig {

ConfigMemory::ConfigMemory(const fabric::Device& dev)
    : dev_(dev),
      current_(static_cast<std::size_t>(dev.cols()), 0),
      golden_(static_cast<std::size_t>(dev.cols())) {}

void ConfigMemory::load_columns(int x_begin, int x_end, std::uint64_t signature,
                                bool corrupt_transfer) {
    REFPGA_EXPECTS(x_begin >= 0 && x_begin < x_end && x_end <= dev_.cols());
    for (int x = x_begin; x < x_end; ++x) {
        // Each column's signature is salted by position so identical modules
        // in different columns still differ (as real frame data would).
        const std::uint64_t salted = signature ^ (0x9e3779b97f4a7c15ULL * (x + 1));
        golden_[static_cast<std::size_t>(x)] = salted;
        // A corrupted transfer lands with a deterministic one-bit error per
        // column; the golden store keeps the intended frame data.
        current_[static_cast<std::size_t>(x)] =
            corrupt_transfer ? (salted ^ (std::uint64_t{1} << (x % 64))) : salted;
    }
}

void ConfigMemory::inject_upset(int column, Rng& rng) {
    REFPGA_EXPECTS(column >= 0 && column < dev_.cols());
    current_[static_cast<std::size_t>(column)] ^= std::uint64_t{1}
                                                  << rng.next_below(64);
}

std::uint64_t ConfigMemory::read_column(int column) const {
    REFPGA_EXPECTS(column >= 0 && column < dev_.cols());
    return current_[static_cast<std::size_t>(column)];
}

std::optional<std::uint64_t> ConfigMemory::golden(int column) const {
    REFPGA_EXPECTS(column >= 0 && column < dev_.cols());
    return golden_[static_cast<std::size_t>(column)];
}

bool ConfigMemory::column_corrupted(int column) const {
    const auto g = golden(column);
    return g.has_value() && *g != read_column(column);
}

int ConfigMemory::corrupted_count() const {
    int n = 0;
    for (int x = 0; x < dev_.cols(); ++x)
        if (column_corrupted(x)) ++n;
    return n;
}

Scrubber::Scrubber(ConfigMemory& memory, ConfigPortSpec port)
    : memory_(memory), port_(std::move(port)) {}

ScrubReport Scrubber::scan(int x_begin, int x_end) {
    const auto& dev = memory_.device();
    REFPGA_EXPECTS(x_begin >= 0 && x_begin < x_end && x_end <= dev.cols());
    ScrubReport report;
    const double column_bits = static_cast<double>(dev.bits_per_clb_column());

    for (int x = x_begin; x < x_end; ++x) {
        ++report.columns_scanned;
        report.readback_s += column_bits / port_.throughput_bps();
        const auto golden = memory_.golden(x);
        if (!golden.has_value()) continue;  // never configured: nothing to check
        if (memory_.read_column(x) == *golden) continue;

        ++report.upsets_detected;
        // Repair: rewrite the single corrupted column from the golden store.
        memory_.load_columns(x, x + 1, *golden ^ (0x9e3779b97f4a7c15ULL * (x + 1)));
        report.repair_s += port_.setup_s + column_bits / port_.throughput_bps();
        ++report.columns_repaired;
        ++repairs_;
    }
    report.energy_mj = report.total_s() * port_.active_power_mw;
    ++scans_;
    return report;
}

double mean_detection_latency_s(const fabric::Device& dev, const ConfigPortSpec& port,
                                double scan_period_s) {
    // Expected wait to the next scan start (period/2) plus half a full
    // readback pass (the upset is in a uniformly random column).
    const double full_scan_s = static_cast<double>(dev.bits_per_clb_column()) *
                               dev.cols() / port.throughput_bps();
    return scan_period_s / 2.0 + full_scan_s / 2.0;
}

}  // namespace refpga::reconfig
