#include "refpga/reconfig/busmacro.hpp"

#include <set>

namespace refpga::reconfig {

using netlist::Builder;
using netlist::Bus;
using netlist::CellKind;
using netlist::NetId;
using netlist::PartitionId;

Bus bus_macro(Builder& builder, const Bus& signals, PartitionId source,
              PartitionId target, const std::string& name) {
    auto& nl = builder.netlist();
    const PartitionId restore = nl.current_partition();
    builder.push_scope(std::string(kBusMacroTag) + "_" + name);

    Bus out;
    out.reserve(signals.size());
    for (std::size_t i = 0; i < signals.size(); ++i) {
        // Source-side buffer (identity LUT) pinned in the source partition...
        nl.set_current_partition(source);
        const NetId staged = builder.lut(0x2, {signals[i]}, "src" + std::to_string(i));
        // ...wired to a sink-side buffer pinned in the target partition.
        nl.set_current_partition(target);
        out.push_back(builder.lut(0x2, {staged}, "dst" + std::to_string(i)));
    }

    builder.pop_scope();
    nl.set_current_partition(restore);
    return out;
}

std::vector<BoundaryViolation> check_boundaries(const netlist::Netlist& nl) {
    std::vector<BoundaryViolation> violations;
    for (std::uint32_t i = 0; i < nl.net_count(); ++i) {
        const NetId id{i};
        const auto& net = nl.net(id);
        if (!net.driven() || net.is_clock) continue;
        const auto& driver = nl.cell(net.driver.cell);
        if (driver.kind == CellKind::Gnd || driver.kind == CellKind::Vcc) continue;

        const bool is_macro_net =
            driver.name.find(kBusMacroTag) != std::string::npos;

        for (const auto& sink : net.sinks) {
            const auto& sc = nl.cell(sink.cell);
            if (sc.partition == driver.partition) continue;
            if (is_macro_net || sc.name.find(kBusMacroTag) != std::string::npos)
                continue;
            violations.push_back(
                {id, net.name, nl.partitions()[driver.partition.value()],
                 nl.partitions()[sc.partition.value()]});
            break;  // one report per net is enough
        }
    }
    return violations;
}

}  // namespace refpga::reconfig
