#include "refpga/reconfig/controller.hpp"

#include <algorithm>

#include "refpga/common/contracts.hpp"

namespace refpga::reconfig {

ReconfigController::ReconfigController(const fabric::Device& dev, ConfigPortSpec port,
                                       FlashSpec flash)
    : dev_(dev), port_(std::move(port)), flash_(std::move(flash)) {}

void ReconfigController::add_slot(const std::string& name,
                                  const fabric::Region& region) {
    REFPGA_EXPECTS(region.x_begin >= 0 && region.x_end <= dev_.cols());
    for (const Slot& s : slots_) {
        REFPGA_EXPECTS(s.name != name);
        const bool overlap =
            region.x_begin < s.region.x_end && s.region.x_begin < region.x_end;
        REFPGA_EXPECTS(!overlap && "slot column ranges must not overlap");
    }
    slots_.push_back(Slot{name, region, {}});
}

void ReconfigController::register_module(const std::string& slot,
                                         const std::string& module) {
    (void)find_slot(slot);  // validates existence
    auto& mods = slot_modules_[slot];
    REFPGA_EXPECTS(std::find(mods.begin(), mods.end(), module) == mods.end());
    mods.push_back(module);
}

Slot& ReconfigController::find_slot(const std::string& name) {
    for (Slot& s : slots_)
        if (s.name == name) return s;
    throw ContractViolation("unknown slot: " + name);
}

const Slot& ReconfigController::find_slot(const std::string& name) const {
    for (const Slot& s : slots_)
        if (s.name == name) return s;
    throw ContractViolation("unknown slot: " + name);
}

ReconfigEvent ReconfigController::load(const std::string& slot,
                                       const std::string& module) {
    Slot& s = find_slot(slot);
    const auto it = slot_modules_.find(slot);
    REFPGA_EXPECTS(it != slot_modules_.end());
    REFPGA_EXPECTS(std::find(it->second.begin(), it->second.end(), module) !=
                   it->second.end());

    ReconfigEvent event;
    event.slot = slot;
    event.module = module;

    if (s.loaded_module == module) {
        event.skipped = true;
        events_.push_back(event);
        return event;
    }

    const Bitstream bs = Bitstream::for_region(dev_, module, s.region);
    event.bits = bs.bits;

    // The controller streams flash -> port; the slower path paces it.
    const double port_time = port_.config_time_s(bs);
    const double flash_time = static_cast<double>(bs.bits) / flash_.read_bps;
    event.time_s = std::max(port_time, flash_time);
    event.energy_mj = event.time_s * (port_.active_power_mw + flash_.read_power_mw);

    s.loaded_module = module;
    events_.push_back(event);
    return event;
}

const std::string& ReconfigController::resident_module(const std::string& slot) const {
    return find_slot(slot).loaded_module;
}

double ReconfigController::total_time_s() const {
    double t = 0.0;
    for (const auto& e : events_) t += e.time_s;
    return t;
}

double ReconfigController::total_energy_mj() const {
    double e = 0.0;
    for (const auto& ev : events_) e += ev.energy_mj;
    return e;
}

long ReconfigController::load_count() const {
    long n = 0;
    for (const auto& e : events_)
        if (!e.skipped) ++n;
    return n;
}

}  // namespace refpga::reconfig
