#include "refpga/reconfig/controller.hpp"

#include <algorithm>

#include "refpga/common/contracts.hpp"
#include "refpga/reconfig/scrubber.hpp"

namespace refpga::reconfig {

namespace {

// FNV-1a over the module name: the content signature its frames carry in the
// configuration memory (salted per column by ConfigMemory::load_columns).
std::uint64_t module_signature(const std::string& module) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : module) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

}  // namespace

const char* slot_health_name(SlotHealth health) {
    switch (health) {
        case SlotHealth::Healthy: return "healthy";
        case SlotHealth::Retrying: return "retrying";
        case SlotHealth::Failed: return "failed";
    }
    return "?";
}

ReconfigController::ReconfigController(const fabric::Device& dev, ConfigPortSpec port,
                                       FlashSpec flash)
    : dev_(dev), port_(std::move(port)), flash_(std::move(flash)) {}

void ReconfigController::add_slot(const std::string& name,
                                  const fabric::Region& region) {
    REFPGA_EXPECTS(region.x_begin >= 0 && region.x_end <= dev_.cols());
    for (const Slot& s : slots_) {
        REFPGA_EXPECTS(s.name != name);
        const bool overlap =
            region.x_begin < s.region.x_end && s.region.x_begin < region.x_end;
        REFPGA_EXPECTS(!overlap && "slot column ranges must not overlap");
    }
    slots_.push_back(Slot{name, region, {}});
}

void ReconfigController::register_module(const std::string& slot,
                                         const std::string& module) {
    (void)find_slot(slot);  // validates existence
    auto& mods = slot_modules_[slot];
    REFPGA_EXPECTS(std::find(mods.begin(), mods.end(), module) == mods.end());
    mods.push_back(module);
}

Slot& ReconfigController::find_slot(const std::string& name) {
    for (Slot& s : slots_)
        if (s.name == name) return s;
    throw ContractViolation("unknown slot: " + name);
}

const Slot& ReconfigController::find_slot(const std::string& name) const {
    for (const Slot& s : slots_)
        if (s.name == name) return s;
    throw ContractViolation("unknown slot: " + name);
}

void ReconfigController::set_recorder(obs::Recorder* recorder) {
    recorder_ = recorder;
    if (recorder_ == nullptr) return;
    obs::MetricRegistry& m = recorder_->metrics();
    obs_ids_.loads = m.counter("reconfig.loads_total");
    obs_ids_.skipped = m.counter("reconfig.loads_skipped_total");
    obs_ids_.retries = m.counter("reconfig.load_retries_total");
    obs_ids_.failures = m.counter("reconfig.load_failures_total");
    obs_ids_.bits_written = m.counter("reconfig.bits_written_total");
    obs_ids_.verify_reads = m.counter("reconfig.verify_reads_total");
    // Bounds bracket the paper's port spread: SelectMAP swaps ~100 us,
    // JTAG the better part of a second (Table 1 geometry).
    obs_ids_.load_seconds = m.histogram(
        "reconfig.load_seconds",
        {1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0});
}

void ReconfigController::set_load_policy(LoadPolicy policy) {
    REFPGA_EXPECTS(policy.max_retries >= 0);
    policy_ = policy;
}

SlotHealth ReconfigController::slot_health(const std::string& slot) const {
    return find_slot(slot).health;
}

ReconfigEvent ReconfigController::load(const std::string& slot,
                                       const std::string& module) {
    Slot& s = find_slot(slot);
    const auto it = slot_modules_.find(slot);
    REFPGA_EXPECTS(it != slot_modules_.end());
    REFPGA_EXPECTS(std::find(it->second.begin(), it->second.end(), module) !=
                   it->second.end());

    ReconfigEvent event;
    event.slot = slot;
    event.module = module;

    if (s.loaded_module == module && s.health == SlotHealth::Healthy) {
        event.skipped = true;
        events_.push_back(event);
        if (recorder_ != nullptr && recorder_->enabled())
            recorder_->metrics().add(obs_ids_.skipped);
        return event;
    }

    const Bitstream bs = Bitstream::for_region(dev_, module, s.region);
    event.bits = bs.bits;

    // The controller streams flash -> port; the slower path paces it.
    const double port_time = port_.config_time_s(bs);
    const double flash_time = static_cast<double>(bs.bits) / flash_.read_bps;
    const double transfer_s = std::max(port_time, flash_time);
    const double transfer_mj =
        transfer_s * (port_.active_power_mw + flash_.read_power_mw);
    // Verification streams the slot's frames back over the same port (no
    // extra setup; flash is idle during readback).
    const double verify_s =
        policy_.verify_after_write
            ? static_cast<double>(bs.bits) / port_.throughput_bps()
            : 0.0;

    bool success = false;
    bool landed_corrupt = false;
    int verify_reads = 0;
    while (event.attempts <= policy_.max_retries) {
        ++event.attempts;
        const fault::LoadFault fault =
            fault_hook_ ? fault_hook_(slot, module, event.attempts)
                        : fault::LoadFault{};
        event.time_s += transfer_s;
        event.energy_mj += transfer_mj;
        if (fault.flash_error) {
            // The fetch fails its CRC at end of stream: the attempt's full
            // transfer time is spent, nothing lands in the fabric.
            s.health = SlotHealth::Retrying;
            continue;
        }
        if (policy_.verify_after_write) {
            ++verify_reads;
            event.verify_s += verify_s;
            event.time_s += verify_s;
            event.energy_mj += verify_s * port_.active_power_mw;
            if (fault.corrupt_transfer) {
                // Readback disagrees with the golden bitstream: retry.
                s.health = SlotHealth::Retrying;
                continue;
            }
        }
        success = true;
        // Without verification a corrupted transfer goes unnoticed here and
        // lands with a wrong signature — readback scrubbing's job to find.
        landed_corrupt = fault.corrupt_transfer;
        break;
    }

    if (success) {
        s.loaded_module = module;
        s.health = SlotHealth::Healthy;
        if (memory_ != nullptr)
            memory_->load_columns(s.region.x_begin, s.region.x_end,
                                  module_signature(module), landed_corrupt);
    } else {
        s.loaded_module.clear();
        s.health = SlotHealth::Failed;
        event.failed = true;
    }
    events_.push_back(event);
    if (recorder_ != nullptr && recorder_->enabled()) {
        obs::MetricRegistry& m = recorder_->metrics();
        m.add(obs_ids_.loads);
        // Every attempt streams the full partial bitstream over the port.
        m.add(obs_ids_.bits_written,
              static_cast<double>(event.bits) * event.attempts);
        if (event.attempts > 1) m.add(obs_ids_.retries, event.attempts - 1);
        if (verify_reads > 0) m.add(obs_ids_.verify_reads, verify_reads);
        if (event.failed) m.add(obs_ids_.failures);
        m.observe(obs_ids_.load_seconds, event.time_s);
    }
    return event;
}

const std::string& ReconfigController::resident_module(const std::string& slot) const {
    return find_slot(slot).loaded_module;
}

double ReconfigController::total_time_s() const {
    double t = 0.0;
    for (const auto& e : events_) t += e.time_s;
    return t;
}

double ReconfigController::total_energy_mj() const {
    double e = 0.0;
    for (const auto& ev : events_) e += ev.energy_mj;
    return e;
}

long ReconfigController::load_count() const {
    long n = 0;
    for (const auto& e : events_)
        if (!e.skipped) ++n;
    return n;
}

long ReconfigController::retry_count() const {
    long n = 0;
    for (const auto& e : events_)
        if (e.attempts > 1) n += e.attempts - 1;
    return n;
}

long ReconfigController::failed_load_count() const {
    long n = 0;
    for (const auto& e : events_)
        if (e.failed) ++n;
    return n;
}

}  // namespace refpga::reconfig
