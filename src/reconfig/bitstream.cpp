#include "refpga/reconfig/bitstream.hpp"

#include "refpga/common/contracts.hpp"

namespace refpga::reconfig {

Bitstream Bitstream::full(const fabric::Device& dev, std::string name) {
    Bitstream b;
    b.module_name = std::move(name);
    b.x_begin = 0;
    b.x_end = dev.cols();
    b.full_device = true;
    b.bits = dev.full_bits();
    return b;
}

Bitstream Bitstream::partial(const fabric::Device& dev, std::string name, int x_begin,
                             int x_end) {
    REFPGA_EXPECTS(x_begin >= 0 && x_begin < x_end && x_end <= dev.cols());
    Bitstream b;
    b.module_name = std::move(name);
    b.x_begin = x_begin;
    b.x_end = x_end;
    b.full_device = false;
    b.bits = dev.partial_bits(x_begin, x_end);
    return b;
}

Bitstream Bitstream::for_region(const fabric::Device& dev, std::string name,
                                const fabric::Region& region) {
    return partial(dev, std::move(name), region.x_begin, region.x_end);
}

}  // namespace refpga::reconfig
