#include "refpga/svc/checkpoint.hpp"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

#include "refpga/common/interval_set.hpp"
#include "refpga/fleet/outcome_codec.hpp"

namespace refpga::svc {

namespace {

constexpr std::string_view kMagic = "refpga-svc-checkpoint";

std::string header_line(std::uint64_t fingerprint, std::size_t scenario_count) {
    char buf[160];
    std::snprintf(buf, sizeof buf, "%s v1 codec %d fingerprint %016" PRIx64
                  " scenarios %zu\n",
                  std::string(kMagic).c_str(), fleet::kOutcomeCodecVersion,
                  fingerprint, scenario_count);
    return buf;
}

[[noreturn]] void fail(const std::string& path, std::size_t line,
                       const std::string& why) {
    throw CheckpointError("checkpoint " + path + ":" + std::to_string(line) +
                          ": " + why);
}

/// Full-write loop shared by header and record appends: short writes and
/// EINTR are continuations, not errors.
void write_all(int fd, const char* data, std::size_t n,
               const std::string& path) {
    while (n > 0) {
        const ssize_t w = ::write(fd, data, n);
        if (w < 0) {
            if (errno == EINTR) continue;
            throw CheckpointError("checkpoint write to " + path + " failed: " +
                                  std::strerror(errno));
        }
        data += w;
        n -= static_cast<std::size_t>(w);
    }
}

std::string batch_record(std::uint64_t first,
                         const std::vector<std::string>& lines) {
    // One buffered record per write(2): the `e` trailer lands in the same
    // syscall as the data it seals, so a crash can only tear the last record.
    std::string record =
        "b " + std::to_string(first) + ' ' + std::to_string(lines.size()) + '\n';
    for (const std::string& line : lines) {
        record += line;
        record += '\n';
    }
    record += "e " + std::to_string(first) + '\n';
    return record;
}

}  // namespace

CheckpointWriter::CheckpointWriter(Tag, const std::string& path) : path_(path) {}

CheckpointWriter::CheckpointWriter(const std::string& path,
                                   std::uint64_t fingerprint,
                                   std::size_t scenario_count)
    : path_(path) {
    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd_ < 0)
        throw CheckpointError("cannot create checkpoint " + path + ": " +
                              std::strerror(errno));
    const std::string header = header_line(fingerprint, scenario_count);
    write_all(fd_, header.data(), header.size(), path_);
}

CheckpointWriter CheckpointWriter::resume(const std::string& path,
                                          std::uint64_t fingerprint,
                                          std::size_t scenario_count) {
    // Validate identity first (throws on mismatch), then reopen for append.
    const CheckpointContents contents =
        load_checkpoint(path, fingerprint, scenario_count);
    CheckpointWriter writer(Tag{}, path);
    writer.fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
    if (writer.fd_ < 0)
        throw CheckpointError("cannot reopen checkpoint " + path + ": " +
                              std::strerror(errno));
    // A torn tail that load dropped must also leave the file: O_APPEND lands
    // new records at physical EOF, and a partial record stranded mid-file
    // reads as hard corruption on the next load.
    if (::ftruncate(writer.fd_, static_cast<off_t>(contents.valid_bytes)) != 0)
        throw CheckpointError("cannot drop torn tail of checkpoint " + path +
                              ": " + std::strerror(errno));
    return writer;
}

CheckpointWriter::CheckpointWriter(CheckpointWriter&& other) noexcept
    : path_(std::move(other.path_)),
      fd_(std::exchange(other.fd_, -1)),
      records_(other.records_),
      fsync_every_(other.fsync_every_),
      appends_since_sync_(other.appends_since_sync_) {}

CheckpointWriter& CheckpointWriter::operator=(CheckpointWriter&& other) noexcept {
    if (this != &other) {
        if (fd_ >= 0) ::close(fd_);
        path_ = std::move(other.path_);
        fd_ = std::exchange(other.fd_, -1);
        records_ = other.records_;
        fsync_every_ = other.fsync_every_;
        appends_since_sync_ = other.appends_since_sync_;
    }
    return *this;
}

CheckpointWriter::~CheckpointWriter() {
    if (fd_ >= 0) ::close(fd_);
}

void CheckpointWriter::append(std::uint64_t first,
                              const std::vector<std::string>& lines) {
    const std::string record = batch_record(first, lines);
    write_all(fd_, record.data(), record.size(), path_);
    ++records_;
    if (fsync_every_ > 0 && ++appends_since_sync_ >= fsync_every_) sync();
}

void CheckpointWriter::append_torn(std::uint64_t first,
                                   const std::vector<std::string>& lines,
                                   std::size_t bytes) {
    const std::string record = batch_record(first, lines);
    const std::size_t cut =
        bytes < record.size() ? bytes : record.size() - 1;
    write_all(fd_, record.data(), cut, path_);
}

void CheckpointWriter::sync() {
    if (fd_ < 0) return;
    if (::fsync(fd_) != 0)
        throw CheckpointError("fsync of checkpoint " + path_ + " failed: " +
                              std::strerror(errno));
    appends_since_sync_ = 0;
}

CheckpointContents load_checkpoint(const std::string& path,
                                   std::uint64_t expected_fingerprint,
                                   std::size_t expected_count) {
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open())
        throw CheckpointError("cannot open checkpoint " + path);

    CheckpointContents contents;
    std::string line;
    std::size_t line_no = 1;
    // Bytes consumed by the line just read: its text plus the '\n' getline
    // swallowed — absent exactly when the file ended without one (eofbit),
    // which only happens inside a torn record we are about to drop anyway.
    const auto line_bytes = [&in](const std::string& l) {
        return static_cast<std::uint64_t>(l.size()) + (in.eof() ? 0 : 1);
    };
    if (!std::getline(in, line)) fail(path, line_no, "empty file");
    if (in.eof())
        fail(path, line_no, "header missing trailing newline (torn header)");
    contents.valid_bytes = line_bytes(line);

    {
        std::istringstream header(line);
        std::string magic, version, codec_kw, fp_kw, fp_hex, sc_kw;
        int codec = -1;
        std::size_t scenarios = 0;
        if (!(header >> magic >> version >> codec_kw >> codec >> fp_kw >> fp_hex >>
              sc_kw >> scenarios) ||
            magic != kMagic || codec_kw != "codec" || fp_kw != "fingerprint" ||
            sc_kw != "scenarios")
            fail(path, line_no, "malformed header '" + line + "'");
        if (version != "v1")
            fail(path, line_no, "unsupported checkpoint version '" + version + "'");
        if (codec != fleet::kOutcomeCodecVersion)
            fail(path, line_no,
                 "outcome codec " + std::to_string(codec) + " != supported " +
                     std::to_string(fleet::kOutcomeCodecVersion));
        if (fp_hex.size() != 16 ||
            std::sscanf(fp_hex.c_str(), "%16" SCNx64, &contents.fingerprint) != 1)
            fail(path, line_no, "malformed fingerprint '" + fp_hex + "'");
        contents.scenario_count = scenarios;
    }
    if (expected_fingerprint != 0 && contents.fingerprint != expected_fingerprint)
        fail(path, 1, "job fingerprint mismatch: checkpoint belongs to a different job spec");
    if (expected_count != 0 && contents.scenario_count != expected_count)
        fail(path, 1,
             "scenario count " + std::to_string(contents.scenario_count) +
                 " != expected " + std::to_string(expected_count));

    // A record that goes wrong exactly at end-of-file is the signature of a
    // write torn by a crash and is dropped; the same malformation followed
    // by more data means real corruption and is fatal.
    const auto at_eof = [&in] { return in.peek() == std::ifstream::traits_type::eof(); };

    IntervalSet covered;
    while (std::getline(in, line)) {
        ++line_no;
        std::uint64_t first = 0;
        std::size_t count = 0;
        {
            std::istringstream head(line);
            std::string tag;
            if (!(head >> tag >> first >> count) || tag != "b" ||
                !(head >> std::ws).eof()) {
                if (at_eof()) {
                    contents.torn_tail = true;
                    break;
                }
                fail(path, line_no, "expected batch header, got '" + line + "'");
            }
        }
        if (count == 0) fail(path, line_no, "empty batch record");

        const std::size_t header_line_no = line_no;
        std::uint64_t record_bytes = line_bytes(line);
        CheckpointBatch batch;
        batch.first = first;
        bool torn = false;
        for (std::size_t i = 0; i < count; ++i) {
            if (!std::getline(in, line)) {
                torn = true;
                break;
            }
            ++line_no;
            record_bytes += line_bytes(line);
            try {
                (void)fleet::decode_outcome_line(line);
            } catch (const fleet::CodecError& e) {
                if (at_eof()) {
                    torn = true;
                    break;
                }
                fail(path, line_no, std::string("bad outcome line: ") + e.what());
            }
            batch.lines.push_back(line);
        }
        if (!torn) {
            if (!std::getline(in, line)) {
                torn = true;
            } else {
                ++line_no;
                record_bytes += line_bytes(line);
                if (line != "e " + std::to_string(first)) {
                    if (at_eof()) {
                        torn = true;
                    } else {
                        fail(path, line_no,
                             "batch trailer mismatch: expected 'e " +
                                 std::to_string(first) + "', got '" + line + "'");
                    }
                } else if (in.eof()) {
                    // Trailer text landed but its newline did not: the write
                    // tore one byte short. Drop the record so a resumed run
                    // never appends onto an unterminated line.
                    torn = true;
                }
            }
        }
        if (torn) {
            // The process died mid-append; everything before this record is
            // intact. Drop the tail and report it.
            contents.torn_tail = true;
            break;
        }
        if (first + count > contents.scenario_count)
            fail(path, header_line_no,
                 "batch [" + std::to_string(first) + ", " +
                     std::to_string(first + count) + ") exceeds scenario count " +
                     std::to_string(contents.scenario_count));
        try {
            covered.add(first, count);
        } catch (const std::exception&) {
            fail(path, header_line_no,
                 "batch [" + std::to_string(first) + ", " +
                     std::to_string(first + count) +
                     ") overlaps an earlier record");
        }
        contents.batches.push_back(std::move(batch));
        contents.valid_bytes += record_bytes;
    }
    return contents;
}

}  // namespace refpga::svc
