#include "refpga/svc/coordinator.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstring>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "refpga/common/contracts.hpp"
#include "refpga/common/log.hpp"
#include "refpga/common/rng.hpp"
#include "refpga/fleet/outcome_codec.hpp"
#include "refpga/svc/checkpoint.hpp"
#include "refpga/svc/wire.hpp"
#include "refpga/svc/worker.hpp"

namespace refpga::svc {

namespace {

[[nodiscard]] std::int64_t now_ms() {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/// Contiguous scenario range awaiting assignment.
struct Range {
    std::uint64_t first = 0;
    std::uint64_t end = 0;  ///< exclusive

    [[nodiscard]] std::uint64_t count() const { return end - first; }
};

struct ShardState {
    std::uint64_t id = 0;
    std::uint64_t first = 0;
    std::uint64_t next = 0;  ///< first index not yet committed
    std::uint64_t end = 0;   ///< exclusive (shrinks when stolen from)
    /// A speculative copy of [next, end) runs elsewhere; losers' duplicate
    /// commits are discarded in commit_batch.
    bool speculated = false;
};

struct WorkerProc {
    pid_t pid = -1;
    int to_fd = -1;    ///< coordinator → worker
    int from_fd = -1;  ///< worker → coordinator
    FrameReader reader;
    bool alive = false;
    int slot = 0;        ///< stable index in the fleet
    int generation = 0;  ///< process incarnation of this slot
    std::optional<ShardState> shard;
    /// Truncate sent, TruncateAck not yet received; `steal_old_end` is the
    /// shard end recorded when the steal was initiated.
    bool steal_pending = false;
    std::uint64_t steal_old_end = 0;
    std::uint64_t killed_sent = 0;  ///< SIGKILL test hook fired

    // --- liveness bookkeeping (liveness state machine: healthy while
    // frames arrive; suspect while pings go unanswered; restarting between
    // reap and respawn; dead once the restart budget is spent) -------------
    std::int64_t last_heard_ms = 0;     ///< last complete frame received
    std::int64_t last_progress_ms = 0;  ///< last commit/completion on its shard
    std::int64_t last_ping_ms = 0;
    int pings_unanswered = 0;
    int restart_attempts = 0;        ///< per-slot, drives the backoff curve
    std::int64_t restart_due_ms = -1;  ///< scheduled respawn (-1 = none)
    std::int64_t death_ms = 0;

    void close_fds() {
        if (to_fd >= 0) ::close(to_fd);
        if (from_fd >= 0) ::close(from_fd);
        to_fd = -1;
        from_fd = -1;
    }
};

struct SvcObs {
    obs::Recorder* rec = nullptr;
    obs::MetricId dispatched, stolen, reassigned, restarts, checkpoints,
        committed, backlog, workers, pings, hb_misses, liveness_kills,
        deadline_kills, speculations, dupes, protocol_errors, chaos_injected,
        recovery_seconds;
};

SvcObs make_svc_obs(obs::Recorder* rec) {
    SvcObs o;
    o.rec = rec;
    if (rec == nullptr) return o;
    obs::MetricRegistry& m = rec->metrics();
    o.dispatched = m.counter("svc.shards_dispatched_total");
    o.stolen = m.counter("svc.shards_stolen_total");
    o.reassigned = m.counter("svc.shards_reassigned_total");
    o.restarts = m.counter("svc.worker_restarts_total");
    o.checkpoints = m.counter("svc.checkpoint_writes_total");
    o.committed = m.counter("svc.scenarios_committed_total");
    o.backlog = m.gauge("svc.merge_backlog_segments");
    o.workers = m.gauge("svc.workers_alive");
    o.pings = m.counter("svc.heartbeat_pings_total");
    o.hb_misses = m.counter("svc.heartbeat_misses_total");
    o.liveness_kills = m.counter("svc.liveness_kills_total");
    o.deadline_kills = m.counter("svc.deadline_kills_total");
    o.speculations = m.counter("svc.speculations_total");
    o.dupes = m.counter("svc.duplicates_discarded_total");
    o.protocol_errors = m.counter("svc.protocol_errors_total");
    o.chaos_injected = m.counter("svc.chaos_faults_injected_total");
    o.recovery_seconds = m.counter("svc.recovery_seconds_total");
    return o;
}

/// Thrown by the coordinator-side chaos hooks (checkpoint tear,
/// pre-checkpoint crash). Deliberately NOT a CoordinatorError: the
/// quarantine path must never swallow it — it unwinds to run(), which kills
/// the fleet and abandons the drain, exactly as a real crash would.
class SimulatedCrash : public std::exception {
public:
    explicit SimulatedCrash(std::string what) : what_(std::move(what)) {}
    [[nodiscard]] const char* what() const noexcept override {
        return what_.c_str();
    }

private:
    std::string what_;
};

}  // namespace

struct Coordinator::Impl {
    JobSpec spec;
    CoordinatorOptions options;
    std::string job_json;
    std::size_t grid = 0;

    std::unique_ptr<fleet::ReportAccumulator> accumulator;
    std::optional<CheckpointWriter> checkpoint;
    std::vector<WorkerProc> workers;
    std::deque<Range> pending;
    SvcObs obs;
    CoordinatorResult result;
    /// Coordinator-side chaos schedule (checkpoint tears, PreCheckpoint
    /// crashes). Worker-side categories live in each worker's own plan,
    /// seeded per (slot, generation) via the Init frame.
    std::optional<ChaosPlan> chaos_plan;

    std::uint64_t next_shard_id = 0;
    std::uint64_t commits = 0;  ///< batches committed this run
    std::uint64_t ping_seq = 0;
    /// Recent batch-commit intervals across the fleet; the median is the
    /// straggler detector's baseline.
    std::deque<std::int64_t> batch_intervals_ms;
    bool stopping = false;       ///< stop requested; drain and return
    bool draining = false;       ///< Shutdown broadcast; no more restarts
    bool partial_finish = false; ///< fleet exhausted under partial_ok
    bool ran = false;

    explicit Impl(JobSpec s, CoordinatorOptions o)
        : spec(std::move(s)), options(std::move(o)) {
        REFPGA_EXPECTS(options.workers >= 1);
        REFPGA_EXPECTS(options.worker_threads >= 1);
        REFPGA_EXPECTS(options.batch >= 1);
        REFPGA_EXPECTS(options.drain_timeout_ms >= 1);
        REFPGA_EXPECTS(options.min_workers >= 1);
        REFPGA_EXPECTS(options.restart_backoff_ms >= 0);
        REFPGA_EXPECTS(!options.spool_path.empty());
        job_json = spec.canonical_json();
        grid = spec.grid_size();
        if (options.shard == 0) {
            const std::uint64_t per_worker =
                (grid + static_cast<std::uint64_t>(options.workers) - 1) /
                static_cast<std::uint64_t>(options.workers);
            options.shard = std::max(per_worker, options.batch);
        }
        if (options.steal_min == 0) options.steal_min = 2 * options.batch;
        accumulator =
            std::make_unique<fleet::ReportAccumulator>(grid, options.spool_path);
        obs = make_svc_obs(options.recorder);
        if (options.chaos.any())
            chaos_plan.emplace(options.chaos, options.chaos_seed);
    }

    ~Impl() {
        for (WorkerProc& w : workers) {
            if (w.alive && w.pid > 0) ::kill(w.pid, SIGKILL);
            w.close_fds();
            if (w.pid > 0) ::waitpid(w.pid, nullptr, 0);
        }
    }

    // --- setup -------------------------------------------------------------

    void open_journal() {
        if (options.checkpoint_path.empty()) return;
        const std::uint64_t fp = spec.fingerprint();
        if (options.resume) {
            const CheckpointContents contents =
                load_checkpoint(options.checkpoint_path, fp, grid);
            for (const CheckpointBatch& batch : contents.batches) {
                accumulator->add_encoded(batch.first, batch.lines);
                result.scenarios_resumed += batch.lines.size();
            }
            checkpoint.emplace(
                CheckpointWriter::resume(options.checkpoint_path, fp, grid));
            if (contents.torn_tail)
                log_warning("svc: dropped torn record at checkpoint tail");
        } else {
            checkpoint.emplace(options.checkpoint_path, fp, grid);
        }
        checkpoint->set_fsync_every(options.checkpoint_fsync_every_n);
    }

    void seed_pending() {
        for (const IntervalSet::Interval& gap :
             accumulator->covered().missing(grid))
            pending.push_back(Range{gap.first, gap.last});
    }

    /// Init head line: the thread count, plus the worker's chaos schedule
    /// when armed for this (slot, generation). Unarmed runs send exactly
    /// the bytes the pre-chaos protocol sent.
    [[nodiscard]] std::string init_payload(const WorkerProc& w) const {
        std::string head = std::to_string(options.worker_threads);
        if (options.chaos.any_worker() &&
            (options.chaos.only_worker < 0 ||
             options.chaos.only_worker == w.slot) &&
            (w.generation == 0 || options.chaos_all_generations)) {
            head += ' ' + encode_chaos(
                              options.chaos,
                              worker_chaos_seed(options.chaos_seed, w.slot,
                                                w.generation));
        }
        return head + '\n' + job_json;
    }

    void spawn_worker(WorkerProc& w) {
        int to_pipe[2];    // coordinator writes, worker reads
        int from_pipe[2];  // worker writes, coordinator reads
        if (::pipe(to_pipe) != 0 || ::pipe(from_pipe) != 0)
            throw CoordinatorError(std::string("pipe: ") + std::strerror(errno));
        const pid_t pid = ::fork();
        if (pid < 0)
            throw CoordinatorError(std::string("fork: ") + std::strerror(errno));
        if (pid == 0) {
            // Child. Keep only the worker ends open.
            ::close(to_pipe[1]);
            ::close(from_pipe[0]);
            for (const WorkerProc& other : workers) {
                if (other.to_fd >= 0) ::close(other.to_fd);
                if (other.from_fd >= 0) ::close(other.from_fd);
            }
            if (options.launch == CoordinatorOptions::Launch::Exec) {
                // Pin the protocol pipes to fds 3/4 so a stray stdout write
                // in the re-executed binary cannot corrupt the frame stream.
                // Park both above 4 first: the originals may themselves
                // occupy 3 or 4, and a blind dup2 would clobber one.
                const int rfd = ::fcntl(to_pipe[0], F_DUPFD, 5);
                const int wfd = ::fcntl(from_pipe[1], F_DUPFD, 5);
                if (rfd < 0 || wfd < 0) _exit(127);
                ::close(to_pipe[0]);
                ::close(from_pipe[1]);
                if (::dup2(rfd, 3) < 0 || ::dup2(wfd, 4) < 0) _exit(127);
                ::close(rfd);
                ::close(wfd);
                const char* argv[] = {options.exec_path.c_str(),
                                      "--campaign-worker", nullptr};
                ::execv(options.exec_path.c_str(),
                        const_cast<char* const*>(argv));
                _exit(127);
            }
            // Fork mode: run the protocol loop in-process and leave via
            // _exit so no parent-inherited atexit/teardown runs twice.
            _exit(worker_main(to_pipe[0], from_pipe[1]));
        }
        // Parent.
        ::close(to_pipe[0]);
        ::close(from_pipe[1]);
        w.pid = pid;
        w.to_fd = to_pipe[1];
        w.from_fd = from_pipe[0];
        w.reader = FrameReader{};
        w.alive = true;
        w.shard.reset();
        w.steal_pending = false;
        w.restart_due_ms = -1;
        w.pings_unanswered = 0;
        w.last_heard_ms = w.last_progress_ms = w.last_ping_ms = now_ms();
        try {
            write_frame(w.to_fd, MsgType::Init, init_payload(w));
        } catch (const WireError&) {
            // The child died before the Init landed (a pre-init crash can
            // beat this write). Leave it marked alive: its read end is
            // already closed, so the next poll sees POLLHUP and takes the
            // ordinary death path (requeue + restart budget) — handling it
            // here would recurse spawn → write → spawn.
        }
    }

    [[nodiscard]] int alive_workers() const {
        int n = 0;
        for (const WorkerProc& w : workers) n += w.alive ? 1 : 0;
        return n;
    }

    [[nodiscard]] bool restart_scheduled() const {
        for (const WorkerProc& w : workers)
            if (!w.alive && w.restart_due_ms >= 0) return true;
        return false;
    }

    [[nodiscard]] bool restart_budget_left() const {
        return options.restart_dead_workers &&
               result.worker_restarts <
                   static_cast<std::uint64_t>(options.max_worker_restarts);
    }

    void update_gauges() {
        if (obs.rec == nullptr) return;
        obs.rec->metrics().set(obs.backlog,
                               static_cast<double>(accumulator->segment_count()));
        obs.rec->metrics().set(obs.workers, static_cast<double>(alive_workers()));
    }

    void count(obs::MetricId id, double delta = 1.0) {
        if (obs.rec != nullptr) obs.rec->metrics().add(id, delta);
    }

    // --- dispatch ----------------------------------------------------------

    void assign_next(WorkerProc& w) {
        Range& range = pending.front();
        const std::uint64_t count_n = std::min(options.shard, range.count());
        const ShardState shard{next_shard_id, range.first, range.first,
                               range.first + count_n};
        // The write goes first: it throws WireError when the worker is
        // already dead (EPIPE), and at that point the range must still be
        // intact in `pending` — carving it out before a failed write would
        // leak it (not pending, not in any shard) and the run would wait
        // forever for indices nobody owns.
        write_frame(w.to_fd, MsgType::Assign,
                    std::to_string(shard.id) + ' ' + std::to_string(shard.first) +
                        ' ' + std::to_string(count_n) + ' ' +
                        std::to_string(options.batch));
        ++next_shard_id;
        range.first += count_n;
        if (range.count() == 0) pending.pop_front();
        w.shard = shard;
        w.last_progress_ms = now_ms();
        ++result.shards_dispatched;
        count(obs.dispatched);
    }

    /// Picks the busiest worker and asks it to give back the upper half of
    /// its uncommitted remainder.
    void try_steal() {
        WorkerProc* victim = nullptr;
        std::uint64_t best_remaining = 0;
        for (WorkerProc& w : workers) {
            if (!w.alive || !w.shard.has_value() || w.steal_pending) continue;
            const std::uint64_t remaining = w.shard->end - w.shard->next;
            if (remaining > best_remaining) {
                best_remaining = remaining;
                victim = &w;
            }
        }
        if (victim == nullptr || best_remaining < options.steal_min) return;
        const std::uint64_t mid = victim->shard->next + best_remaining / 2;
        victim->steal_pending = true;
        victim->steal_old_end = victim->shard->end;
        try {
            write_frame(victim->to_fd, MsgType::Truncate,
                        std::to_string(victim->shard->id) + ' ' +
                            std::to_string(mid));
        } catch (const WireError&) {
            on_worker_death(*victim, "write failed");
        }
    }

    /// Speculative re-execution of a straggler's remainder: the exact-steal
    /// handshake can't help when the remainder is too small to split or the
    /// victim has stopped answering, so run a *copy* on an idle worker and
    /// let first-commit-wins (enforced in commit_batch) settle it.
    void try_speculate(std::int64_t now) {
        if (options.straggler_factor <= 0.0) return;
        WorkerProc* idle = nullptr;
        for (WorkerProc& w : workers) {
            if (w.steal_pending) return;  // settle the steal first
            if (w.alive && !w.shard.has_value() && idle == nullptr) idle = &w;
        }
        if (idle == nullptr) return;
        std::int64_t median = 0;
        if (!batch_intervals_ms.empty()) {
            std::vector<std::int64_t> s(batch_intervals_ms.begin(),
                                        batch_intervals_ms.end());
            std::nth_element(s.begin(),
                             s.begin() + static_cast<std::ptrdiff_t>(s.size() / 2),
                             s.end());
            median = s[s.size() / 2];
        }
        const std::int64_t threshold = std::max<std::int64_t>(
            options.straggler_min_ms,
            std::llround(options.straggler_factor * static_cast<double>(median)));
        for (WorkerProc& w : workers) {
            if (!w.alive || !w.shard.has_value() || w.shard->speculated)
                continue;
            if (w.shard->next >= w.shard->end) continue;
            if (now - w.last_progress_ms < threshold) continue;
            const std::uint64_t first = w.shard->next;
            const std::uint64_t count_n = w.shard->end - first;
            const ShardState copy{next_shard_id++, first, first, w.shard->end};
            try {
                write_frame(idle->to_fd, MsgType::Assign,
                            std::to_string(copy.id) + ' ' +
                                std::to_string(first) + ' ' +
                                std::to_string(count_n) + ' ' +
                                std::to_string(options.batch));
            } catch (const WireError&) {
                on_worker_death(*idle, "write failed");
                return;
            }
            idle->shard = copy;
            idle->last_progress_ms = now;
            w.shard->speculated = true;
            ++result.speculations;
            ++result.shards_dispatched;
            count(obs.speculations);
            count(obs.dispatched);
            log_warning("svc: straggler in slot ", w.slot,
                        "; speculating its remainder on slot ", idle->slot);
            return;
        }
    }

    void dispatch() {
        for (WorkerProc& w : workers) {
            if (!w.alive || w.shard.has_value()) continue;
            if (pending.empty()) break;
            try {
                assign_next(w);
            } catch (const WireError&) {
                on_worker_death(w, "write failed");
            }
        }
        if (!stopping && pending.empty()) {
            for (const WorkerProc& w : workers)
                if (w.alive && !w.shard.has_value()) {
                    try_steal();
                    try_speculate(now_ms());
                    break;
                }
        }
    }

    // --- frame handling ----------------------------------------------------

    void commit_batch(WorkerProc& w, const BatchPayload& batch) {
        if (batch.lines.empty())
            throw CoordinatorError("empty batch frame");
        if (!w.shard.has_value() || w.shard->id != batch.shard)
            throw CoordinatorError("batch for shard " +
                                   std::to_string(batch.shard) +
                                   " from a worker not assigned to it");
        ShardState& shard = *w.shard;
        if (batch.first != shard.next ||
            batch.first + batch.lines.size() > shard.end)
            throw CoordinatorError(
                "batch [" + std::to_string(batch.first) + ", " +
                std::to_string(batch.first + batch.lines.size()) +
                ") does not continue shard " + std::to_string(shard.id));
        // Speculation can race two workers over the same indices; whoever
        // committed first won, so split this batch into its still-uncovered
        // runs and commit exactly those. The common (unraced) case is one
        // run spanning the whole batch — byte-identical to the direct path.
        const std::size_t n = batch.lines.size();
        std::size_t fresh = 0;
        std::size_t i = 0;
        while (i < n) {
            if (accumulator->covered().contains(
                    static_cast<std::size_t>(batch.first) + i)) {
                ++i;
                ++result.duplicates_discarded;
                count(obs.dupes);
                continue;
            }
            std::size_t j = i + 1;
            while (j < n && !accumulator->covered().contains(
                                static_cast<std::size_t>(batch.first) + j))
                ++j;
            const std::vector<std::string> run(
                batch.lines.begin() + static_cast<std::ptrdiff_t>(i),
                batch.lines.begin() + static_cast<std::ptrdiff_t>(j));
            accumulator->add_encoded(batch.first + i, run);
            fresh += run.size();
            if (checkpoint.has_value()) {
                if (chaos_plan.has_value()) {
                    if (chaos_plan->crash_now(CrashPhase::PreCheckpoint)) {
                        ++result.chaos_faults_injected;
                        count(obs.chaos_injected);
                        throw SimulatedCrash(
                            "chaos: simulated coordinator crash before "
                            "checkpoint append");
                    }
                    if (chaos_plan->tear_checkpoint_now()) {
                        ++result.chaos_faults_injected;
                        count(obs.chaos_injected);
                        checkpoint->append_torn(
                            batch.first + i, run,
                            chaos_plan->spec().checkpoint_tear_bytes);
                        throw SimulatedCrash(
                            "chaos: checkpoint append torn mid-write");
                    }
                }
                checkpoint->append(batch.first + i, run);
                ++result.checkpoint_records;
                count(obs.checkpoints);
            }
            i = j;
        }
        shard.next = batch.first + n;
        ++commits;
        const std::int64_t now = now_ms();
        // Zero-ms intervals count: a fast fleet's median must stay low or
        // the straggler threshold drifts toward the stragglers themselves.
        batch_intervals_ms.push_back(now - w.last_progress_ms);
        if (batch_intervals_ms.size() > 64) batch_intervals_ms.pop_front();
        w.last_progress_ms = now;
        if (fresh > 0) count(obs.committed, static_cast<double>(fresh));
        fire_commit_hooks();
    }

    void fire_commit_hooks() {
        if (options.stop_after_commits > 0 &&
            commits >= options.stop_after_commits)
            stopping = true;
        if (options.kill_worker >= 0 &&
            options.kill_worker < static_cast<int>(workers.size()) &&
            commits >= options.kill_after_commits) {
            WorkerProc& target =
                workers[static_cast<std::size_t>(options.kill_worker)];
            if (target.alive && target.killed_sent == 0) {
                target.killed_sent = 1;
                ::kill(target.pid, SIGKILL);
            }
        }
    }

    void handle_frame(WorkerProc& w, const Frame& frame) {
        w.last_heard_ms = now_ms();
        w.pings_unanswered = 0;  // any complete frame proves the process runs
        switch (frame.type) {
            case MsgType::Batch:
                commit_batch(w, parse_batch(frame.payload));
                return;
            case MsgType::ShardDone: {
                const auto f = parse_fields(frame.payload, 2);
                if (!w.shard.has_value() || w.shard->id != f[0])
                    throw CoordinatorError("ShardDone for unassigned shard " +
                                           std::to_string(f[0]));
                if (w.shard->next != f[1] || f[1] > w.shard->end)
                    throw CoordinatorError(
                        "ShardDone at " + std::to_string(f[1]) +
                        " but commits reached " + std::to_string(w.shard->next));
                w.shard.reset();
                w.last_progress_ms = w.last_heard_ms;
                return;
            }
            case MsgType::TruncateAck: {
                const auto f = parse_fields(frame.payload, 2);
                if (!w.steal_pending)
                    throw CoordinatorError("unsolicited TruncateAck");
                w.steal_pending = false;
                const std::uint64_t effective = f[1];
                if (effective == kNothingStolen) return;  // shard had finished
                if (w.shard.has_value() && w.shard->id == f[0])
                    w.shard->end = std::min(w.shard->end, effective);
                if (effective < w.steal_old_end) {
                    pending.push_back(Range{effective, w.steal_old_end});
                    ++result.shards_stolen;
                    count(obs.stolen);
                }
                return;
            }
            case MsgType::Pong:
                (void)parse_fields(frame.payload, 1);
                return;
            case MsgType::WorkerError:
                throw CoordinatorError("worker reported: " + frame.payload);
            default:
                throw CoordinatorError(std::string("unexpected ") +
                                       msg_type_name(frame.type) +
                                       " frame from worker");
        }
    }

    // --- failure handling --------------------------------------------------

    /// Backoff before the attempt-th respawn of a slot: exponential from the
    /// base, capped, plus deterministic jitter derived from (fingerprint,
    /// slot, attempt) so a fleet that died together does not refork in
    /// lockstep — and so every run schedules identically.
    [[nodiscard]] std::int64_t restart_delay_ms(int slot, int attempt) const {
        const int shift = std::min(attempt - 1, 12);
        std::int64_t delay = static_cast<std::int64_t>(options.restart_backoff_ms)
                             << shift;
        delay = std::min<std::int64_t>(delay, options.restart_backoff_cap_ms);
        Rng jitter(worker_chaos_seed(spec.fingerprint(), slot, attempt));
        delay += jitter.next_below(static_cast<std::uint32_t>(delay / 2 + 1));
        return delay;
    }

    void on_worker_death(WorkerProc& w, const char* why,
                         bool trust_stream = true) {
        if (!w.alive) return;
        // Whatever complete frames are already buffered commit normally; a
        // truncated trailing frame is the expected shape of a crash and is
        // simply dropped with the reader. A quarantined (corrupt) stream is
        // not drained at all: nothing after the violation is trustworthy.
        if (trust_stream) (void)drain_reader(w);
        w.alive = false;
        w.close_fds();
        if (w.pid > 0) {
            ::waitpid(w.pid, nullptr, 0);
            w.pid = -1;
        }
        w.steal_pending = false;
        // EOF after Shutdown with nothing assigned is the orderly exit, not
        // a death.
        if (draining && !w.shard.has_value()) return;
        if (w.shard.has_value()) {
            if (w.shard->next < w.shard->end) {
                pending.push_front(Range{w.shard->next, w.shard->end});
                ++result.shards_reassigned;
                count(obs.reassigned);
            }
            w.shard.reset();
        }
        log_warning("svc: worker died (", why, "); remainder requeued");
        if (!stopping && !draining && restart_budget_left()) {
            ++result.worker_restarts;
            count(obs.restarts);
            ++w.restart_attempts;
            w.death_ms = now_ms();
            if (options.restart_backoff_ms <= 0) {
                ++w.generation;
                spawn_worker(w);
            } else {
                w.restart_due_ms =
                    w.death_ms + restart_delay_ms(w.slot, w.restart_attempts);
            }
        }
    }

    /// The stream from this worker is poisoned (corrupt frame, protocol
    /// violation, undecodable outcome): everything already committed stands,
    /// nothing further can be trusted. Kill the process and take the normal
    /// death path (requeue + restart policy).
    void quarantine(WorkerProc& w, const char* why) {
        ++result.protocol_errors;
        count(obs.protocol_errors);
        if (w.pid > 0) ::kill(w.pid, SIGKILL);
        on_worker_death(w, why, /*trust_stream=*/false);
    }

    /// Extracts and handles every complete frame currently buffered.
    /// Returns false when the stream turned out corrupt or protocol-
    /// violating — the caller must quarantine the worker, or the reader
    /// would sit on unparseable bytes forever while the worker counts as
    /// alive.
    [[nodiscard]] bool drain_reader(WorkerProc& w) {
        while (true) {
            std::optional<Frame> frame;
            try {
                frame = w.reader.next();
                if (!frame.has_value()) return true;
                handle_frame(w, *frame);
            } catch (const WireError& e) {
                log_warning("svc: dropping worker stream: ", e.what());
                return false;
            } catch (const CoordinatorError& e) {
                log_warning("svc: protocol violation from worker: ", e.what());
                return false;
            } catch (const fleet::CodecError& e) {
                log_warning("svc: undecodable batch from worker: ", e.what());
                return false;
            }
        }
    }

    void read_worker(WorkerProc& w) {
        char buf[64 * 1024];
        const ssize_t r = ::read(w.from_fd, buf, sizeof buf);
        if (r < 0) {
            if (errno == EINTR || errno == EAGAIN) return;
            on_worker_death(w, "read failed");
            return;
        }
        if (r == 0) {
            on_worker_death(w, "pipe closed");
            return;
        }
        w.reader.feed(buf, static_cast<std::size_t>(r));
        if (!drain_reader(w)) quarantine(w, "corrupt or violating stream");
    }

    // --- liveness ----------------------------------------------------------

    /// Respawns slots whose backoff delay has expired.
    void service_restarts(std::int64_t now) {
        for (WorkerProc& w : workers) {
            if (w.alive || w.restart_due_ms < 0) continue;
            if (stopping || draining) {
                w.restart_due_ms = -1;
                continue;
            }
            if (now < w.restart_due_ms) continue;
            w.restart_due_ms = -1;
            ++w.generation;
            spawn_worker(w);
            count(obs.recovery_seconds,
                  static_cast<double>(now - w.death_ms) / 1000.0);
        }
    }

    void reap(WorkerProc& w, const char* why) {
        if (w.pid > 0) ::kill(w.pid, SIGKILL);
        on_worker_death(w, why);
    }

    void check_liveness(std::int64_t now) {
        if (options.heartbeat_interval_ms <= 0 &&
            options.progress_timeout_ms <= 0)
            return;
        for (WorkerProc& w : workers) {
            if (!w.alive) continue;
            if (options.heartbeat_interval_ms > 0) {
                if (now - std::max(w.last_ping_ms, w.last_heard_ms) >=
                    options.heartbeat_interval_ms) {
                    if (w.pings_unanswered > 0) {
                        ++result.heartbeat_misses;
                        count(obs.hb_misses);
                    }
                    try {
                        write_frame(w.to_fd, MsgType::Ping,
                                    std::to_string(ping_seq++));
                    } catch (const WireError&) {
                        on_worker_death(w, "write failed");
                        continue;
                    }
                    count(obs.pings);
                    ++w.pings_unanswered;
                    w.last_ping_ms = now;
                }
                if (options.liveness_timeout_ms > 0 &&
                    w.pings_unanswered >= options.heartbeat_miss_limit &&
                    now - w.last_heard_ms >= options.liveness_timeout_ms) {
                    ++result.heartbeat_misses;
                    ++result.liveness_kills;
                    count(obs.hb_misses);
                    count(obs.liveness_kills);
                    reap(w, "liveness timeout: heartbeats unanswered");
                    continue;
                }
            }
            if (options.progress_timeout_ms > 0 && w.shard.has_value() &&
                now - w.last_progress_ms >= options.progress_timeout_ms) {
                ++result.deadline_kills;
                count(obs.deadline_kills);
                reap(w, "progress deadline exceeded");
            }
        }
    }

    // --- shutdown ----------------------------------------------------------

    void broadcast_shutdown() {
        draining = true;
        for (WorkerProc& w : workers) {
            w.restart_due_ms = -1;
            if (!w.alive) continue;
            try {
                write_frame(w.to_fd, MsgType::Shutdown, "");
            } catch (const WireError&) {
                on_worker_death(w, "write failed");
            }
        }
    }

    /// After Shutdown: keep reading until every worker closes its pipe, so
    /// in-flight batches land in the journal before the final report.
    void drain_until_exit() {
        bool term_sent = false;
        while (alive_workers() > 0) {
            std::vector<pollfd> fds;
            for (const WorkerProc& w : workers)
                if (w.alive) fds.push_back({w.from_fd, POLLIN, 0});
            const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                                  options.drain_timeout_ms);
            if (rc < 0 && errno != EINTR)
                throw CoordinatorError(std::string("poll: ") +
                                       std::strerror(errno));
            std::size_t cursor = 0;
            for (WorkerProc& w : workers) {
                if (!w.alive) continue;
                const pollfd& p = fds[cursor++];
                if ((p.revents & (POLLIN | POLLHUP | POLLERR)) != 0)
                    read_worker(w);
            }
            if (rc == 0) {
                // A worker neither producing nor exiting after Shutdown is
                // presumed wedged. Escalate: SIGTERM first so a merely slow
                // batch still dies cleanly at the process level, SIGKILL on
                // the next expiry so the final report cannot hang forever.
                for (WorkerProc& w : workers)
                    if (w.alive) {
                        if (!term_sent) {
                            ::kill(w.pid, SIGTERM);
                        } else {
                            ::kill(w.pid, SIGKILL);
                            on_worker_death(w, "shutdown timeout");
                        }
                    }
                term_sent = true;
            }
        }
    }

    // --- main loop ---------------------------------------------------------

    void serve_http() {
        if (options.http == nullptr || !options.http->listening()) return;
        options.http->serve_ready([this](const std::string& path,
                                         std::string& body) {
            if (path == "/metrics") {
                body = options.recorder != nullptr
                           ? options.recorder->metrics().render_prometheus()
                           : "";
                return true;
            }
            if (path == "/healthz") {
                body = "ok " + std::to_string(accumulator->committed()) + "/" +
                       std::to_string(grid) + "\n";
                return true;
            }
            return false;
        });
    }

    void event_loop() {
        while (true) {
            if (options.stop != nullptr &&
                options.stop->load(std::memory_order_relaxed))
                stopping = true;
            if (accumulator->complete()) break;
            if (stopping) break;
            const std::int64_t now = now_ms();
            service_restarts(now);
            check_liveness(now);
            dispatch();
            update_gauges();

            // All work parked but nobody to run it — and nobody scheduled to
            // come back: the run cannot finish. Policy decides the ending.
            bool in_flight = false;
            for (const WorkerProc& w : workers)
                in_flight = in_flight || (w.alive && w.shard.has_value());
            const int alive = alive_workers();
            if (!in_flight && alive == 0 && !restart_scheduled()) {
                if (options.partial_ok) {
                    partial_finish = true;
                    return;
                }
                result.error = "all workers dead and restarts exhausted";
                return;
            }
            if (alive < options.min_workers && !restart_scheduled() &&
                !restart_budget_left() && !options.partial_ok) {
                result.error =
                    "alive workers (" + std::to_string(alive) +
                    ") below min_workers (" +
                    std::to_string(options.min_workers) +
                    ") with the restart budget exhausted";
                return;
            }

            std::vector<pollfd> fds;
            std::vector<WorkerProc*> owners;
            for (WorkerProc& w : workers)
                if (w.alive) {
                    fds.push_back({w.from_fd, POLLIN, 0});
                    owners.push_back(&w);
                }
            if (options.http != nullptr && options.http->listening())
                fds.push_back({options.http->fd(), POLLIN, 0});

            // Time-based policies are only evaluated when poll returns, so
            // the timeout must undercut the shortest armed deadline — a
            // straggler committing every 60ms would otherwise wake the loop
            // itself and always be observed at gap ~0.
            int timeout_ms = 100;
            const auto tighten = [&](int ms) {
                if (ms > 0) timeout_ms = std::min(timeout_ms, std::max(5, ms / 4));
            };
            if (options.heartbeat_interval_ms > 0)
                tighten(options.heartbeat_interval_ms);
            if (options.progress_timeout_ms > 0)
                tighten(options.progress_timeout_ms);
            if (options.straggler_factor > 0.0)
                tighten(options.straggler_min_ms);
            if (restart_scheduled()) tighten(options.restart_backoff_ms);

            const int rc =
                ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);
            if (rc < 0) {
                if (errno == EINTR) continue;  // signal: loop re-checks stop
                throw CoordinatorError(std::string("poll: ") +
                                       std::strerror(errno));
            }
            for (std::size_t i = 0; i < owners.size(); ++i)
                if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0)
                    read_worker(*owners[i]);
            if (options.http != nullptr && fds.size() > owners.size() &&
                (fds.back().revents & POLLIN) != 0)
                serve_http();
        }
    }

    void finalize_counts() {
        result.scenarios_committed = accumulator->committed();
        result.failures = accumulator->failure_count();
        result.max_retained_rows = accumulator->max_retained_rows();
    }

    CoordinatorResult run() {
        REFPGA_EXPECTS(!ran);
        ran = true;
        // A worker can die between our liveness check and a write; the
        // resulting EPIPE must surface as WireError, not kill the process.
        ::signal(SIGPIPE, SIG_IGN);

        open_journal();
        seed_pending();
        workers.resize(static_cast<std::size_t>(options.workers));
        for (std::size_t i = 0; i < workers.size(); ++i) {
            workers[i].slot = static_cast<int>(i);
            spawn_worker(workers[i]);
        }
        update_gauges();

        try {
            if (!accumulator->complete() && result.error.empty()) event_loop();
            broadcast_shutdown();
            drain_until_exit();
        } catch (const SimulatedCrash& e) {
            // A real crash takes the whole process with it. The closest
            // honest simulation kills the fleet outright and abandons the
            // drain, so --resume has to recover from exactly what hit disk.
            for (WorkerProc& w : workers) {
                if (w.alive && w.pid > 0) ::kill(w.pid, SIGKILL);
                w.close_fds();
                if (w.pid > 0) {
                    ::waitpid(w.pid, nullptr, 0);
                    w.pid = -1;
                }
                w.alive = false;
            }
            result.error = e.what();
            finalize_counts();
            return result;
        }
        update_gauges();
        if (checkpoint.has_value() && options.checkpoint_fsync_every_n > 0)
            checkpoint->sync();

        result.completed = accumulator->complete();
        finalize_counts();
        if (result.completed) {
            // Survivors finished the grid during the drain; a fail-fast
            // verdict reached mid-loop is obsolete.
            result.error.clear();
        } else if (partial_finish && result.error.empty()) {
            result.partial = true;
            accumulator->mark_partial();
        }
        if (!result.completed && !result.partial && result.error.empty())
            result.error = stopping ? "stopped before completion"
                                    : "incomplete sweep";
        return result;
    }
};

Coordinator::Coordinator(JobSpec spec, CoordinatorOptions options)
    : impl_(std::make_unique<Impl>(std::move(spec), std::move(options))) {}

Coordinator::~Coordinator() = default;

CoordinatorResult Coordinator::run() { return impl_->run(); }

const fleet::ReportAccumulator& Coordinator::report() const {
    return *impl_->accumulator;
}

fleet::ReportAccumulator& Coordinator::report() { return *impl_->accumulator; }

}  // namespace refpga::svc
