#include "refpga/svc/coordinator.hpp"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "refpga/common/contracts.hpp"
#include "refpga/common/log.hpp"
#include "refpga/svc/checkpoint.hpp"
#include "refpga/svc/wire.hpp"
#include "refpga/svc/worker.hpp"

namespace refpga::svc {

namespace {

/// Contiguous scenario range awaiting assignment.
struct Range {
    std::uint64_t first = 0;
    std::uint64_t end = 0;  ///< exclusive

    [[nodiscard]] std::uint64_t count() const { return end - first; }
};

struct ShardState {
    std::uint64_t id = 0;
    std::uint64_t first = 0;
    std::uint64_t next = 0;  ///< first index not yet committed
    std::uint64_t end = 0;   ///< exclusive (shrinks when stolen from)
};

struct WorkerProc {
    pid_t pid = -1;
    int to_fd = -1;    ///< coordinator → worker
    int from_fd = -1;  ///< worker → coordinator
    FrameReader reader;
    bool alive = false;
    std::optional<ShardState> shard;
    /// Truncate sent, TruncateAck not yet received; `steal_old_end` is the
    /// shard end recorded when the steal was initiated.
    bool steal_pending = false;
    std::uint64_t steal_old_end = 0;
    std::uint64_t killed_sent = 0;  ///< SIGKILL test hook fired

    void close_fds() {
        if (to_fd >= 0) ::close(to_fd);
        if (from_fd >= 0) ::close(from_fd);
        to_fd = -1;
        from_fd = -1;
    }
};

struct SvcObs {
    obs::Recorder* rec = nullptr;
    obs::MetricId dispatched, stolen, reassigned, restarts, checkpoints,
        committed, backlog, workers;
};

SvcObs make_svc_obs(obs::Recorder* rec) {
    SvcObs o;
    o.rec = rec;
    if (rec == nullptr) return o;
    obs::MetricRegistry& m = rec->metrics();
    o.dispatched = m.counter("svc.shards_dispatched_total");
    o.stolen = m.counter("svc.shards_stolen_total");
    o.reassigned = m.counter("svc.shards_reassigned_total");
    o.restarts = m.counter("svc.worker_restarts_total");
    o.checkpoints = m.counter("svc.checkpoint_writes_total");
    o.committed = m.counter("svc.scenarios_committed_total");
    o.backlog = m.gauge("svc.merge_backlog_segments");
    o.workers = m.gauge("svc.workers_alive");
    return o;
}

}  // namespace

struct Coordinator::Impl {
    JobSpec spec;
    CoordinatorOptions options;
    std::string job_json;
    std::size_t grid = 0;

    std::unique_ptr<fleet::ReportAccumulator> accumulator;
    std::optional<CheckpointWriter> checkpoint;
    std::vector<WorkerProc> workers;
    std::deque<Range> pending;
    SvcObs obs;
    CoordinatorResult result;

    std::uint64_t next_shard_id = 0;
    std::uint64_t commits = 0;  ///< batches committed this run
    bool stopping = false;      ///< stop requested; drain and return
    bool draining = false;      ///< Shutdown broadcast; no more restarts
    bool ran = false;

    explicit Impl(JobSpec s, CoordinatorOptions o)
        : spec(std::move(s)), options(std::move(o)) {
        REFPGA_EXPECTS(options.workers >= 1);
        REFPGA_EXPECTS(options.worker_threads >= 1);
        REFPGA_EXPECTS(options.batch >= 1);
        REFPGA_EXPECTS(options.drain_timeout_ms >= 1);
        REFPGA_EXPECTS(!options.spool_path.empty());
        job_json = spec.canonical_json();
        grid = spec.grid_size();
        if (options.shard == 0) {
            const std::uint64_t per_worker =
                (grid + static_cast<std::uint64_t>(options.workers) - 1) /
                static_cast<std::uint64_t>(options.workers);
            options.shard = std::max(per_worker, options.batch);
        }
        if (options.steal_min == 0) options.steal_min = 2 * options.batch;
        accumulator =
            std::make_unique<fleet::ReportAccumulator>(grid, options.spool_path);
        obs = make_svc_obs(options.recorder);
    }

    ~Impl() {
        for (WorkerProc& w : workers) {
            if (w.alive && w.pid > 0) ::kill(w.pid, SIGKILL);
            w.close_fds();
            if (w.pid > 0) ::waitpid(w.pid, nullptr, 0);
        }
    }

    // --- setup -------------------------------------------------------------

    void open_journal() {
        if (options.checkpoint_path.empty()) return;
        const std::uint64_t fp = spec.fingerprint();
        if (options.resume) {
            const CheckpointContents contents =
                load_checkpoint(options.checkpoint_path, fp, grid);
            for (const CheckpointBatch& batch : contents.batches) {
                accumulator->add_encoded(batch.first, batch.lines);
                result.scenarios_resumed += batch.lines.size();
            }
            checkpoint.emplace(
                CheckpointWriter::resume(options.checkpoint_path, fp, grid));
            if (contents.torn_tail)
                log_warning("svc: dropped torn record at checkpoint tail");
        } else {
            checkpoint.emplace(options.checkpoint_path, fp, grid);
        }
    }

    void seed_pending() {
        for (const IntervalSet::Interval& gap :
             accumulator->covered().missing(grid))
            pending.push_back(Range{gap.first, gap.last});
    }

    void spawn_worker(WorkerProc& w) {
        int to_pipe[2];    // coordinator writes, worker reads
        int from_pipe[2];  // worker writes, coordinator reads
        if (::pipe(to_pipe) != 0 || ::pipe(from_pipe) != 0)
            throw CoordinatorError(std::string("pipe: ") + std::strerror(errno));
        const pid_t pid = ::fork();
        if (pid < 0)
            throw CoordinatorError(std::string("fork: ") + std::strerror(errno));
        if (pid == 0) {
            // Child. Keep only the worker ends open.
            ::close(to_pipe[1]);
            ::close(from_pipe[0]);
            for (const WorkerProc& other : workers) {
                if (other.to_fd >= 0) ::close(other.to_fd);
                if (other.from_fd >= 0) ::close(other.from_fd);
            }
            if (options.launch == CoordinatorOptions::Launch::Exec) {
                // Pin the protocol pipes to fds 3/4 so a stray stdout write
                // in the re-executed binary cannot corrupt the frame stream.
                // Park both above 4 first: the originals may themselves
                // occupy 3 or 4, and a blind dup2 would clobber one.
                const int rfd = ::fcntl(to_pipe[0], F_DUPFD, 5);
                const int wfd = ::fcntl(from_pipe[1], F_DUPFD, 5);
                if (rfd < 0 || wfd < 0) _exit(127);
                ::close(to_pipe[0]);
                ::close(from_pipe[1]);
                if (::dup2(rfd, 3) < 0 || ::dup2(wfd, 4) < 0) _exit(127);
                ::close(rfd);
                ::close(wfd);
                const char* argv[] = {options.exec_path.c_str(),
                                      "--campaign-worker", nullptr};
                ::execv(options.exec_path.c_str(),
                        const_cast<char* const*>(argv));
                _exit(127);
            }
            // Fork mode: run the protocol loop in-process and leave via
            // _exit so no parent-inherited atexit/teardown runs twice.
            _exit(worker_main(to_pipe[0], from_pipe[1]));
        }
        // Parent.
        ::close(to_pipe[0]);
        ::close(from_pipe[1]);
        w.pid = pid;
        w.to_fd = to_pipe[1];
        w.from_fd = from_pipe[0];
        w.reader = FrameReader{};
        w.alive = true;
        w.shard.reset();
        w.steal_pending = false;
        write_frame(w.to_fd, MsgType::Init,
                    encode_init(options.worker_threads, job_json));
    }

    [[nodiscard]] int alive_workers() const {
        int n = 0;
        for (const WorkerProc& w : workers) n += w.alive ? 1 : 0;
        return n;
    }

    void update_gauges() {
        if (obs.rec == nullptr) return;
        obs.rec->metrics().set(obs.backlog,
                               static_cast<double>(accumulator->segment_count()));
        obs.rec->metrics().set(obs.workers, static_cast<double>(alive_workers()));
    }

    // --- dispatch ----------------------------------------------------------

    void assign_next(WorkerProc& w) {
        Range& range = pending.front();
        const std::uint64_t count = std::min(options.shard, range.count());
        const ShardState shard{next_shard_id++, range.first, range.first,
                               range.first + count};
        range.first += count;
        if (range.count() == 0) pending.pop_front();
        write_frame(w.to_fd, MsgType::Assign,
                    std::to_string(shard.id) + ' ' + std::to_string(shard.first) +
                        ' ' + std::to_string(count) + ' ' +
                        std::to_string(options.batch));
        w.shard = shard;
        ++result.shards_dispatched;
        if (obs.rec != nullptr) obs.rec->metrics().add(obs.dispatched);
    }

    /// Picks the busiest worker and asks it to give back the upper half of
    /// its uncommitted remainder.
    void try_steal() {
        WorkerProc* victim = nullptr;
        std::uint64_t best_remaining = 0;
        for (WorkerProc& w : workers) {
            if (!w.alive || !w.shard.has_value() || w.steal_pending) continue;
            const std::uint64_t remaining = w.shard->end - w.shard->next;
            if (remaining > best_remaining) {
                best_remaining = remaining;
                victim = &w;
            }
        }
        if (victim == nullptr || best_remaining < options.steal_min) return;
        const std::uint64_t mid = victim->shard->next + best_remaining / 2;
        victim->steal_pending = true;
        victim->steal_old_end = victim->shard->end;
        try {
            write_frame(victim->to_fd, MsgType::Truncate,
                        std::to_string(victim->shard->id) + ' ' +
                            std::to_string(mid));
        } catch (const WireError&) {
            on_worker_death(*victim, "write failed");
        }
    }

    void dispatch() {
        for (WorkerProc& w : workers) {
            if (!w.alive || w.shard.has_value()) continue;
            if (pending.empty()) break;
            try {
                assign_next(w);
            } catch (const WireError&) {
                on_worker_death(w, "write failed");
            }
        }
        if (!stopping && pending.empty()) {
            for (const WorkerProc& w : workers)
                if (w.alive && !w.shard.has_value()) {
                    try_steal();
                    break;
                }
        }
    }

    // --- frame handling ----------------------------------------------------

    void commit_batch(WorkerProc& w, const BatchPayload& batch) {
        if (batch.lines.empty())
            throw CoordinatorError("empty batch frame");
        if (!w.shard.has_value() || w.shard->id != batch.shard)
            throw CoordinatorError("batch for shard " +
                                   std::to_string(batch.shard) +
                                   " from a worker not assigned to it");
        ShardState& shard = *w.shard;
        if (batch.first != shard.next ||
            batch.first + batch.lines.size() > shard.end)
            throw CoordinatorError(
                "batch [" + std::to_string(batch.first) + ", " +
                std::to_string(batch.first + batch.lines.size()) +
                ") does not continue shard " + std::to_string(shard.id));
        accumulator->add_encoded(batch.first, batch.lines);
        if (checkpoint.has_value()) {
            checkpoint->append(batch.first, batch.lines);
            ++result.checkpoint_records;
            if (obs.rec != nullptr) obs.rec->metrics().add(obs.checkpoints);
        }
        shard.next = batch.first + batch.lines.size();
        ++commits;
        if (obs.rec != nullptr)
            obs.rec->metrics().add(obs.committed,
                                   static_cast<double>(batch.lines.size()));
        fire_commit_hooks();
    }

    void fire_commit_hooks() {
        if (options.stop_after_commits > 0 &&
            commits >= options.stop_after_commits)
            stopping = true;
        if (options.kill_worker >= 0 &&
            options.kill_worker < static_cast<int>(workers.size()) &&
            commits >= options.kill_after_commits) {
            WorkerProc& target =
                workers[static_cast<std::size_t>(options.kill_worker)];
            if (target.alive && target.killed_sent == 0) {
                target.killed_sent = 1;
                ::kill(target.pid, SIGKILL);
            }
        }
    }

    void handle_frame(WorkerProc& w, const Frame& frame) {
        switch (frame.type) {
            case MsgType::Batch:
                commit_batch(w, parse_batch(frame.payload));
                return;
            case MsgType::ShardDone: {
                const auto f = parse_fields(frame.payload, 2);
                if (!w.shard.has_value() || w.shard->id != f[0])
                    throw CoordinatorError("ShardDone for unassigned shard " +
                                           std::to_string(f[0]));
                if (w.shard->next != f[1] || f[1] > w.shard->end)
                    throw CoordinatorError(
                        "ShardDone at " + std::to_string(f[1]) +
                        " but commits reached " + std::to_string(w.shard->next));
                w.shard.reset();
                return;
            }
            case MsgType::TruncateAck: {
                const auto f = parse_fields(frame.payload, 2);
                if (!w.steal_pending)
                    throw CoordinatorError("unsolicited TruncateAck");
                w.steal_pending = false;
                const std::uint64_t effective = f[1];
                if (effective == kNothingStolen) return;  // shard had finished
                if (w.shard.has_value() && w.shard->id == f[0])
                    w.shard->end = std::min(w.shard->end, effective);
                if (effective < w.steal_old_end) {
                    pending.push_back(Range{effective, w.steal_old_end});
                    ++result.shards_stolen;
                    if (obs.rec != nullptr) obs.rec->metrics().add(obs.stolen);
                }
                return;
            }
            case MsgType::WorkerError:
                throw CoordinatorError("worker reported: " + frame.payload);
            default:
                throw CoordinatorError(std::string("unexpected ") +
                                       msg_type_name(frame.type) +
                                       " frame from worker");
        }
    }

    // --- failure handling --------------------------------------------------

    void on_worker_death(WorkerProc& w, const char* why) {
        if (!w.alive) return;
        // Whatever complete frames are already buffered commit normally; a
        // truncated trailing frame is the expected shape of a crash and is
        // simply dropped with the reader.
        drain_reader(w);
        w.alive = false;
        w.close_fds();
        if (w.pid > 0) {
            ::waitpid(w.pid, nullptr, 0);
            w.pid = -1;
        }
        w.steal_pending = false;
        // EOF after Shutdown with nothing assigned is the orderly exit, not
        // a death.
        if (draining && !w.shard.has_value()) return;
        if (w.shard.has_value()) {
            if (w.shard->next < w.shard->end) {
                pending.push_front(Range{w.shard->next, w.shard->end});
                ++result.shards_reassigned;
                if (obs.rec != nullptr) obs.rec->metrics().add(obs.reassigned);
            }
            w.shard.reset();
        }
        log_warning("svc: worker died (", why, "); remainder requeued");
        if (!stopping && !draining && options.restart_dead_workers &&
            result.worker_restarts <
                static_cast<std::uint64_t>(options.max_worker_restarts)) {
            spawn_worker(w);
            ++result.worker_restarts;
            if (obs.rec != nullptr) obs.rec->metrics().add(obs.restarts);
        }
    }

    /// Extracts and handles every complete frame currently buffered.
    void drain_reader(WorkerProc& w) {
        while (true) {
            std::optional<Frame> frame;
            try {
                frame = w.reader.next();
            } catch (const WireError& e) {
                // Corrupt prefix: everything after it is untrustworthy.
                log_warning("svc: dropping worker stream: ", e.what());
                return;
            }
            if (!frame.has_value()) return;
            handle_frame(w, *frame);
        }
    }

    void read_worker(WorkerProc& w) {
        char buf[64 * 1024];
        const ssize_t r = ::read(w.from_fd, buf, sizeof buf);
        if (r < 0) {
            if (errno == EINTR || errno == EAGAIN) return;
            on_worker_death(w, "read failed");
            return;
        }
        if (r == 0) {
            on_worker_death(w, "pipe closed");
            return;
        }
        w.reader.feed(buf, static_cast<std::size_t>(r));
        drain_reader(w);
    }

    // --- shutdown ----------------------------------------------------------

    void broadcast_shutdown() {
        draining = true;
        for (WorkerProc& w : workers) {
            if (!w.alive) continue;
            try {
                write_frame(w.to_fd, MsgType::Shutdown, "");
            } catch (const WireError&) {
                on_worker_death(w, "write failed");
            }
        }
    }

    /// After Shutdown: keep reading until every worker closes its pipe, so
    /// in-flight batches land in the journal before the final report.
    void drain_until_exit() {
        bool term_sent = false;
        while (alive_workers() > 0) {
            std::vector<pollfd> fds;
            for (const WorkerProc& w : workers)
                if (w.alive) fds.push_back({w.from_fd, POLLIN, 0});
            const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                                  options.drain_timeout_ms);
            if (rc < 0 && errno != EINTR)
                throw CoordinatorError(std::string("poll: ") +
                                       std::strerror(errno));
            std::size_t cursor = 0;
            for (WorkerProc& w : workers) {
                if (!w.alive) continue;
                const pollfd& p = fds[cursor++];
                if ((p.revents & (POLLIN | POLLHUP | POLLERR)) != 0)
                    read_worker(w);
            }
            if (rc == 0) {
                // A worker neither producing nor exiting after Shutdown is
                // presumed wedged. Escalate: SIGTERM first so a merely slow
                // batch still dies cleanly at the process level, SIGKILL on
                // the next expiry so the final report cannot hang forever.
                for (WorkerProc& w : workers)
                    if (w.alive) {
                        if (!term_sent) {
                            ::kill(w.pid, SIGTERM);
                        } else {
                            ::kill(w.pid, SIGKILL);
                            on_worker_death(w, "shutdown timeout");
                        }
                    }
                term_sent = true;
            }
        }
    }

    // --- main loop ---------------------------------------------------------

    void serve_http() {
        if (options.http == nullptr || !options.http->listening()) return;
        options.http->serve_ready([this](const std::string& path,
                                         std::string& body) {
            if (path == "/metrics") {
                body = options.recorder != nullptr
                           ? options.recorder->metrics().render_prometheus()
                           : "";
                return true;
            }
            if (path == "/healthz") {
                body = "ok " + std::to_string(accumulator->committed()) + "/" +
                       std::to_string(grid) + "\n";
                return true;
            }
            return false;
        });
    }

    void event_loop() {
        while (true) {
            if (options.stop != nullptr &&
                options.stop->load(std::memory_order_relaxed))
                stopping = true;
            if (accumulator->complete()) break;
            if (stopping) break;
            dispatch();
            update_gauges();

            // All work parked but nobody to run it: unrecoverable.
            bool in_flight = false;
            for (const WorkerProc& w : workers)
                in_flight = in_flight || (w.alive && w.shard.has_value());
            if (!in_flight && alive_workers() == 0) {
                result.error = "all workers dead and restarts exhausted";
                return;
            }

            std::vector<pollfd> fds;
            std::vector<WorkerProc*> owners;
            for (WorkerProc& w : workers)
                if (w.alive) {
                    fds.push_back({w.from_fd, POLLIN, 0});
                    owners.push_back(&w);
                }
            if (options.http != nullptr && options.http->listening())
                fds.push_back({options.http->fd(), POLLIN, 0});

            const int rc =
                ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 100);
            if (rc < 0) {
                if (errno == EINTR) continue;  // signal: loop re-checks stop
                throw CoordinatorError(std::string("poll: ") +
                                       std::strerror(errno));
            }
            for (std::size_t i = 0; i < owners.size(); ++i)
                if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0)
                    read_worker(*owners[i]);
            if (options.http != nullptr && fds.size() > owners.size() &&
                (fds.back().revents & POLLIN) != 0)
                serve_http();
        }
    }

    CoordinatorResult run() {
        REFPGA_EXPECTS(!ran);
        ran = true;
        // A worker can die between our liveness check and a write; the
        // resulting EPIPE must surface as WireError, not kill the process.
        ::signal(SIGPIPE, SIG_IGN);

        open_journal();
        seed_pending();
        workers.resize(static_cast<std::size_t>(options.workers));
        for (WorkerProc& w : workers) spawn_worker(w);
        update_gauges();

        if (!accumulator->complete() && result.error.empty()) event_loop();

        broadcast_shutdown();
        drain_until_exit();
        update_gauges();

        result.completed = accumulator->complete();
        result.scenarios_committed = accumulator->committed();
        result.failures = accumulator->failure_count();
        result.max_retained_rows = accumulator->max_retained_rows();
        if (!result.completed && result.error.empty())
            result.error = stopping ? "stopped before completion"
                                    : "incomplete sweep";
        return result;
    }
};

Coordinator::Coordinator(JobSpec spec, CoordinatorOptions options)
    : impl_(std::make_unique<Impl>(std::move(spec), std::move(options))) {}

Coordinator::~Coordinator() = default;

CoordinatorResult Coordinator::run() { return impl_->run(); }

const fleet::ReportAccumulator& Coordinator::report() const {
    return *impl_->accumulator;
}

fleet::ReportAccumulator& Coordinator::report() { return *impl_->accumulator; }

}  // namespace refpga::svc
