#include "refpga/svc/job.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "refpga/svc/json.hpp"

namespace refpga::svc {

app::SystemVariant parse_variant(const std::string& name) {
    for (const auto v : {app::SystemVariant::Software, app::SystemVariant::MonolithicHw,
                         app::SystemVariant::ReconfiguredHw})
        if (name == app::variant_name(v)) return v;
    throw JobError("unknown variant '" + name + "'");
}

fabric::PartName parse_part(const std::string& id) {
    for (const auto p :
         {fabric::PartName::XC3S50, fabric::PartName::XC3S200, fabric::PartName::XC3S400,
          fabric::PartName::XC3S1000, fabric::PartName::XC3S1500,
          fabric::PartName::XC3S2000, fabric::PartName::XC3S4000,
          fabric::PartName::XC3S5000})
        if (id == fabric::part(p).id) return p;
    throw JobError("unknown part '" + id + "'");
}

fleet::PortKind parse_port(const std::string& name) {
    for (const auto k : {fleet::PortKind::Jcap, fleet::PortKind::JcapAccelerated,
                         fleet::PortKind::Icap, fleet::PortKind::SelectMap})
        if (name == fleet::port_kind_name(k)) return k;
    throw JobError("unknown config port '" + name + "'");
}

namespace {

// Doubles travel as hexfloat strings ("0x1.999999999999ap-4") so the
// canonical document survives any locale or printf quirk bit-exactly.
std::string hex_double(double v) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%a", v);
    return buf;
}

double parse_hex_double(const JsonValue& v, const char* key) {
    if (v.is(JsonValue::Kind::Number)) return v.number;  // plain JSON accepted
    if (!v.is(JsonValue::Kind::String))
        throw JobError(std::string(key) + ": expected number or hexfloat string");
    const std::string& s = v.string;
    const char* begin = s.c_str();
    char* end = nullptr;
    const double parsed = std::strtod(begin, &end);
    if (end == begin || *end != '\0')
        throw JobError(std::string(key) + ": malformed number '" + s + "'");
    return parsed;
}

std::vector<double> double_list(const JsonValue& v, const char* key) {
    std::vector<double> out;
    for (const JsonValue& e : v.as_array()) out.push_back(parse_hex_double(e, key));
    if (out.empty()) throw JobError(std::string(key) + ": empty list");
    return out;
}

int int_value(const JsonValue& v, const char* key) {
    const double d = v.as_number();
    const int i = static_cast<int>(d);
    if (static_cast<double>(i) != d)
        throw JobError(std::string(key) + ": expected integer");
    return i;
}

std::uint64_t u64_value(const JsonValue& v, const char* key) {
    if (v.is(JsonValue::Kind::String)) {
        // Seeds round-trip as decimal strings: 2^53 < seed values exist.
        const std::string& s = v.string;
        std::uint64_t out = 0;
        if (s.empty()) throw JobError(std::string(key) + ": empty seed");
        for (const char c : s) {
            if (c < '0' || c > '9')
                throw JobError(std::string(key) + ": malformed seed '" + s + "'");
            const auto digit = static_cast<std::uint64_t>(c - '0');
            if (out > (UINT64_MAX - digit) / 10)
                throw JobError(std::string(key) + ": seed '" + s +
                               "' overflows 64 bits");
            out = out * 10 + digit;
        }
        return out;
    }
    const double d = v.as_number();
    if (d < 0 || std::floor(d) != d)
        throw JobError(std::string(key) + ": expected unsigned integer");
    return static_cast<std::uint64_t>(d);
}

void append_string_list(std::string& out, const char* key,
                        const std::vector<std::string>& values) {
    out += '"';
    out += key;
    out += "\":[";
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i > 0) out += ',';
        out += '"';
        out += values[i];
        out += '"';
    }
    out += ']';
}

void append_double_list(std::string& out, const char* key,
                        const std::vector<double>& values) {
    out += '"';
    out += key;
    out += "\":[";
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i > 0) out += ',';
        out += '"';
        out += hex_double(values[i]);
        out += '"';
    }
    out += ']';
}

}  // namespace

JobSpec JobSpec::from_json(const std::string& text) {
    JsonValue doc;
    try {
        doc = parse_json(text);
    } catch (const JsonError& e) {
        throw JobError(std::string("job spec: ") + e.what());
    }
    if (!doc.is(JsonValue::Kind::Object))
        throw JobError("job spec: document is not an object");

    JobSpec spec;
    for (const auto& [key, value] : doc.object) {
        if (key == "variants") {
            spec.variants.clear();
            for (const JsonValue& e : value.as_array())
                spec.variants.push_back(parse_variant(e.as_string()));
            if (spec.variants.empty()) throw JobError("variants: empty list");
        } else if (key == "parts") {
            spec.parts.clear();
            for (const JsonValue& e : value.as_array())
                spec.parts.push_back(parse_part(e.as_string()));
            if (spec.parts.empty()) throw JobError("parts: empty list");
        } else if (key == "ports") {
            spec.ports.clear();
            for (const JsonValue& e : value.as_array())
                spec.ports.push_back(parse_port(e.as_string()));
            if (spec.ports.empty()) throw JobError("ports: empty list");
        } else if (key == "noise_levels") {
            spec.noise_levels = double_list(value, "noise_levels");
        } else if (key == "upset_rates") {
            spec.upset_rates = double_list(value, "upset_rates");
            for (const double rate : spec.upset_rates)
                if (rate < 0.0) throw JobError("upset_rates: negative rate");
        } else if (key == "fault") {
            if (!value.is(JsonValue::Kind::Object))
                throw JobError("fault: expected object");
            for (const auto& [fkey, fvalue] : value.object) {
                if (fkey == "load_corruption_prob")
                    spec.fault_defaults.load_corruption_prob =
                        parse_hex_double(fvalue, "fault.load_corruption_prob");
                else if (fkey == "flash_error_prob")
                    spec.fault_defaults.flash_error_prob =
                        parse_hex_double(fvalue, "fault.flash_error_prob");
                else if (fkey == "glitch_prob_per_cycle")
                    spec.fault_defaults.glitch_prob_per_cycle =
                        parse_hex_double(fvalue, "fault.glitch_prob_per_cycle");
                else
                    throw JobError("fault: unknown key '" + fkey + "'");
            }
        } else if (key == "fills") {
            spec.fills.clear();
            for (const JsonValue& e : value.as_array()) {
                if (!e.is(JsonValue::Kind::Object))
                    throw JobError("fills: expected objects");
                fleet::FillProfile fill;
                for (const auto& [fkey, fvalue] : e.object) {
                    if (fkey == "start")
                        fill.start_level = parse_hex_double(fvalue, "fills.start");
                    else if (fkey == "end")
                        fill.end_level = parse_hex_double(fvalue, "fills.end");
                    else
                        throw JobError("fills: unknown key '" + fkey + "'");
                }
                spec.fills.push_back(fill);
            }
            if (spec.fills.empty()) throw JobError("fills: empty list");
        } else if (key == "cycles") {
            spec.cycles = int_value(value, "cycles");
            if (spec.cycles <= 0) throw JobError("cycles: must be positive");
        } else if (key == "campaign_seed") {
            spec.campaign_seed = u64_value(value, "campaign_seed");
        } else if (key == "stream_block_ticks") {
            spec.stream_block_ticks = int_value(value, "stream_block_ticks");
            if (spec.stream_block_ticks <= 0)
                throw JobError("stream_block_ticks: must be positive");
        } else {
            throw JobError("job spec: unknown key '" + key + "'");
        }
    }
    return spec;
}

std::string JobSpec::canonical_json() const {
    std::string out = "{";

    std::vector<std::string> names;
    for (const auto v : variants) names.emplace_back(app::variant_name(v));
    append_string_list(out, "variants", names);

    names.clear();
    for (const auto p : parts) names.emplace_back(fabric::part(p).id);
    out += ',';
    append_string_list(out, "parts", names);

    names.clear();
    for (const auto k : ports) names.emplace_back(fleet::port_kind_name(k));
    out += ',';
    append_string_list(out, "ports", names);

    out += ',';
    append_double_list(out, "noise_levels", noise_levels);
    out += ',';
    append_double_list(out, "upset_rates", upset_rates);

    out += ",\"fault\":{\"load_corruption_prob\":\"" +
           hex_double(fault_defaults.load_corruption_prob) +
           "\",\"flash_error_prob\":\"" + hex_double(fault_defaults.flash_error_prob) +
           "\",\"glitch_prob_per_cycle\":\"" +
           hex_double(fault_defaults.glitch_prob_per_cycle) + "\"}";

    out += ",\"fills\":[";
    for (std::size_t i = 0; i < fills.size(); ++i) {
        if (i > 0) out += ',';
        out += "{\"start\":\"" + hex_double(fills[i].start_level) + "\",\"end\":\"" +
               hex_double(fills[i].end_level) + "\"}";
    }
    out += ']';

    out += ",\"cycles\":" + std::to_string(cycles);
    out += ",\"campaign_seed\":\"" + std::to_string(campaign_seed) + "\"";
    out += ",\"stream_block_ticks\":" + std::to_string(stream_block_ticks);
    out += '}';
    return out;
}

std::uint64_t JobSpec::fingerprint() const {
    const std::string doc = canonical_json();
    std::uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
    for (const char c : doc) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ULL;  // FNV prime
    }
    return hash;
}

std::size_t JobSpec::grid_size() const {
    return variants.size() * parts.size() * ports.size() * noise_levels.size() *
           upset_rates.size() * fills.size();
}

std::vector<fleet::Scenario> JobSpec::expand() const {
    fleet::SweepBuilder builder;
    builder.variants(variants)
        .parts(parts)
        .ports(ports)
        .noise_levels(noise_levels)
        .upset_rates(upset_rates)
        .fault_defaults(fault_defaults)
        .fills(fills)
        .cycles(cycles)
        .campaign_seed(campaign_seed);
    return builder.build();
}

}  // namespace refpga::svc
