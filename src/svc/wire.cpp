#include "refpga/svc/wire.hpp"

#include <cerrno>
#include <cstring>
#include <unistd.h>

namespace refpga::svc {

const char* msg_type_name(MsgType type) {
    switch (type) {
        case MsgType::Init: return "Init";
        case MsgType::Assign: return "Assign";
        case MsgType::Truncate: return "Truncate";
        case MsgType::Shutdown: return "Shutdown";
        case MsgType::Batch: return "Batch";
        case MsgType::ShardDone: return "ShardDone";
        case MsgType::TruncateAck: return "TruncateAck";
        case MsgType::WorkerError: return "WorkerError";
        case MsgType::Ping: return "Ping";
        case MsgType::Pong: return "Pong";
    }
    return "?";
}

namespace {

void write_all(int fd, const char* data, std::size_t n) {
    while (n > 0) {
        const ssize_t w = ::write(fd, data, n);
        if (w < 0) {
            if (errno == EINTR) continue;
            throw WireError(std::string("frame write failed: ") +
                            std::strerror(errno));
        }
        data += w;
        n -= static_cast<std::size_t>(w);
    }
}

/// Reads exactly n bytes. Returns bytes read (n on success, less on EOF).
std::size_t read_upto(int fd, char* data, std::size_t n) {
    std::size_t got = 0;
    while (got < n) {
        const ssize_t r = ::read(fd, data + got, n - got);
        if (r < 0) {
            if (errno == EINTR) continue;
            throw WireError(std::string("frame read failed: ") +
                            std::strerror(errno));
        }
        if (r == 0) break;
        got += static_cast<std::size_t>(r);
    }
    return got;
}

[[nodiscard]] std::uint32_t decode_length(const char* header) {
    const auto* b = reinterpret_cast<const unsigned char*>(header);
    return static_cast<std::uint32_t>(b[0]) |
           static_cast<std::uint32_t>(b[1]) << 8 |
           static_cast<std::uint32_t>(b[2]) << 16 |
           static_cast<std::uint32_t>(b[3]) << 24;
}

void check_header(std::uint32_t length, std::uint8_t type) {
    if (length > kMaxFramePayload)
        throw WireError("frame payload of " + std::to_string(length) +
                        " bytes exceeds the " + std::to_string(kMaxFramePayload) +
                        " byte limit (corrupt length prefix?)");
    if (type < static_cast<std::uint8_t>(MsgType::Init) ||
        type > static_cast<std::uint8_t>(MsgType::Pong))
        throw WireError("unknown frame type " + std::to_string(type));
}

}  // namespace

void write_frame(int fd, MsgType type, std::string_view payload) {
    if (payload.size() > kMaxFramePayload)
        throw WireError("refusing to write oversized frame of " +
                        std::to_string(payload.size()) + " bytes");
    const auto length = static_cast<std::uint32_t>(payload.size());
    char header[5];
    header[0] = static_cast<char>(length & 0xff);
    header[1] = static_cast<char>((length >> 8) & 0xff);
    header[2] = static_cast<char>((length >> 16) & 0xff);
    header[3] = static_cast<char>((length >> 24) & 0xff);
    header[4] = static_cast<char>(type);
    // Header and payload go out in one buffer: a frame is either fully
    // written or the writer has already thrown, so readers never see an
    // interleaved or headerless payload from a healthy peer.
    std::string buffer;
    buffer.reserve(sizeof header + payload.size());
    buffer.append(header, sizeof header);
    buffer.append(payload);
    write_all(fd, buffer.data(), buffer.size());
}

bool read_frame(int fd, Frame& out) {
    char header[5];
    const std::size_t got = read_upto(fd, header, sizeof header);
    if (got == 0) return false;  // clean EOF at a frame boundary
    if (got < sizeof header) throw WireError("EOF inside frame header");
    const std::uint32_t length = decode_length(header);
    const auto type = static_cast<std::uint8_t>(header[4]);
    check_header(length, type);
    out.type = static_cast<MsgType>(type);
    out.payload.resize(length);
    if (read_upto(fd, out.payload.data(), length) < length)
        throw WireError("EOF inside " +
                        std::string(msg_type_name(out.type)) + " payload");
    return true;
}

std::optional<Frame> FrameReader::next() {
    if (buffer_.size() < 5) return std::nullopt;
    const std::uint32_t length = decode_length(buffer_.data());
    const auto type = static_cast<std::uint8_t>(buffer_[4]);
    check_header(length, type);
    if (buffer_.size() < 5 + static_cast<std::size_t>(length))
        return std::nullopt;
    Frame frame;
    frame.type = static_cast<MsgType>(type);
    frame.payload = buffer_.substr(5, length);
    buffer_.erase(0, 5 + static_cast<std::size_t>(length));
    return frame;
}

std::vector<std::uint64_t> parse_fields(std::string_view payload, std::size_t n) {
    std::vector<std::uint64_t> fields;
    std::size_t pos = 0;
    while (pos < payload.size()) {
        const std::size_t end = payload.find(' ', pos);
        const std::string_view token =
            payload.substr(pos, end == std::string_view::npos ? end : end - pos);
        if (token.empty()) throw WireError("empty field in payload");
        std::uint64_t value = 0;
        for (const char c : token) {
            if (c < '0' || c > '9')
                throw WireError("non-numeric payload field '" +
                                std::string(token) + "'");
            const auto digit = static_cast<std::uint64_t>(c - '0');
            if (value > (UINT64_MAX - digit) / 10)
                throw WireError("payload field '" + std::string(token) +
                                "' overflows 64 bits");
            value = value * 10 + digit;
        }
        fields.push_back(value);
        if (end == std::string_view::npos) break;
        pos = end + 1;
    }
    if (fields.size() != n)
        throw WireError("expected " + std::to_string(n) + " payload fields, got " +
                        std::to_string(fields.size()));
    return fields;
}

std::string encode_batch(std::uint64_t shard, std::uint64_t first,
                         const std::vector<std::string>& lines) {
    std::string out = std::to_string(shard) + ' ' + std::to_string(first) + ' ' +
                      std::to_string(lines.size()) + '\n';
    for (const std::string& line : lines) {
        out += line;
        out += '\n';
    }
    return out;
}

BatchPayload parse_batch(std::string_view payload) {
    const std::size_t eol = payload.find('\n');
    if (eol == std::string_view::npos)
        throw WireError("batch payload missing header line");
    const std::vector<std::uint64_t> head = parse_fields(payload.substr(0, eol), 3);
    BatchPayload batch;
    batch.shard = head[0];
    batch.first = head[1];
    const std::uint64_t count = head[2];
    std::size_t pos = eol + 1;
    for (std::uint64_t i = 0; i < count; ++i) {
        const std::size_t end = payload.find('\n', pos);
        if (end == std::string_view::npos)
            throw WireError("batch payload truncated at line " + std::to_string(i));
        batch.lines.emplace_back(payload.substr(pos, end - pos));
        pos = end + 1;
    }
    if (pos != payload.size())
        throw WireError("trailing bytes after batch payload");
    return batch;
}

}  // namespace refpga::svc
