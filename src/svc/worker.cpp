#include "refpga/svc/worker.hpp"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <deque>
#include <optional>
#include <stdexcept>
#include <vector>

#include <poll.h>
#include <unistd.h>

#include "refpga/fleet/campaign.hpp"
#include "refpga/fleet/outcome_codec.hpp"
#include "refpga/svc/chaos.hpp"
#include "refpga/svc/job.hpp"
#include "refpga/svc/wire.hpp"

namespace refpga::svc {

std::string encode_init(int worker_threads, const std::string& job_json) {
    return std::to_string(worker_threads) + '\n' + job_json;
}

namespace {

struct Shard {
    std::uint64_t id = 0;
    std::uint64_t next = 0;   ///< first index not yet started
    std::uint64_t end = 0;    ///< exclusive
    std::uint64_t batch = 1;  ///< outcomes per Batch frame
};

/// True when in_fd has bytes ready right now (control frame between
/// batches); does not block.
bool readable_now(int fd) {
    pollfd p{fd, POLLIN, 0};
    while (true) {
        const int rc = ::poll(&p, 1, 0);
        if (rc < 0 && errno == EINTR) continue;
        return rc > 0 && (p.revents & (POLLIN | POLLHUP)) != 0;
    }
}

class Worker {
public:
    Worker(int in_fd, int out_fd) : in_fd_(in_fd), out_fd_(out_fd) {}

    int run() {
        try {
            loop();
            return 0;
        } catch (const std::exception& e) {
            try {
                // Error reporting bypasses the chaos wrapper: a worker dying
                // of injected chaos already exercised the failure path; its
                // last words should stay trustworthy.
                write_frame(out_fd_, MsgType::WorkerError, e.what());
            } catch (...) {
                // Pipe to the coordinator is gone; exit code says it all.
            }
            return 1;
        }
    }

private:
    /// All protocol writes go through here so the chaos plan (when armed)
    /// can tear, corrupt, delay or drop them. A torn write simulates death
    /// mid-write: the process exits immediately, leaving the partial frame.
    void send(MsgType type, const std::string& payload) {
        if (!chaos_.has_value() || !chaos_->armed()) {
            write_frame(out_fd_, type, payload);
            return;
        }
        const WireAction action =
            chaos_->next_wire_action(5 + payload.size(), payload.size());
        if (!apply_wire_action(action, out_fd_,
                               static_cast<std::uint8_t>(type), payload))
            _exit(9);
    }

    void loop() {
        Frame frame;
        while (true) {
            if (!current_.has_value()) {
                // Idle: block for the next instruction.
                if (!read_frame(in_fd_, frame)) return;  // coordinator went away
                if (!handle(frame)) return;
                continue;
            }
            // Busy: drain control frames first so Truncate and Shutdown act
            // at this batch boundary, then run one batch.
            while (readable_now(in_fd_)) {
                if (!read_frame(in_fd_, frame))
                    throw WireError("coordinator closed the pipe mid-shard");
                if (!handle(frame)) return;
                if (!current_.has_value()) break;
            }
            if (current_.has_value()) run_batch();
        }
    }

    /// Returns false on Shutdown.
    bool handle(const Frame& frame) {
        switch (frame.type) {
            case MsgType::Init: {
                const std::size_t eol = frame.payload.find('\n');
                if (eol == std::string::npos)
                    throw WireError("Init payload missing thread-count line");
                parse_init_line(frame.payload.substr(0, eol));
                if (chaos_.has_value() && chaos_->crash_now(CrashPhase::PreInit))
                    _exit(9);
                spec_ = JobSpec::from_json(frame.payload.substr(eol + 1));
                scenarios_ = spec_.expand();
                options_.stream_block_ticks = spec_.stream_block_ticks;
                return true;
            }
            case MsgType::Assign: {
                const auto f = parse_fields(frame.payload, 4);
                if (scenarios_.empty())
                    throw WireError("Assign before Init");
                if (f[2] == 0 || f[3] == 0 || f[1] + f[2] > scenarios_.size())
                    throw WireError("Assign range out of bounds");
                if (current_.has_value())
                    throw WireError("Assign while a shard is in progress");
                current_ = Shard{f[0], f[1], f[1] + f[2], f[3]};
                return true;
            }
            case MsgType::Truncate: {
                const auto f = parse_fields(frame.payload, 2);
                std::uint64_t effective = kNothingStolen;
                if (current_.has_value() && current_->id == f[0]) {
                    // Keep everything already started; give back the rest.
                    effective = std::max(current_->next, f[1]);
                    current_->end = std::min(current_->end, effective);
                    if (current_->next >= current_->end) finish_shard();
                }
                if (chaos_.has_value() &&
                    chaos_->crash_now(CrashPhase::PreTruncateAck))
                    _exit(9);
                send(MsgType::TruncateAck,
                     std::to_string(f[0]) + ' ' + std::to_string(effective));
                return true;
            }
            case MsgType::Ping:
                // Liveness probe: answer immediately. A busy worker only
                // sees this at a batch boundary, which is exactly the
                // granularity at which it can credibly claim to be alive.
                send(MsgType::Pong, frame.payload);
                return true;
            case MsgType::Shutdown:
                return false;
            default:
                throw WireError(std::string("unexpected ") +
                                msg_type_name(frame.type) + " frame in worker");
        }
    }

    /// First Init line: "<threads>" or "<threads> chaos <seed> <fields...>".
    void parse_init_line(const std::string& line) {
        const std::size_t space = line.find(' ');
        const std::string threads_tok = line.substr(0, space);
        const auto threads = parse_fields(threads_tok, 1);
        options_.threads = static_cast<int>(threads[0]);
        if (space == std::string::npos) return;
        std::string rest = line.substr(space + 1);
        constexpr std::string_view kw = "chaos ";
        if (rest.compare(0, kw.size(), kw) != 0)
            throw WireError("malformed Init option line '" + rest + "'");
        try {
            const auto [spec, seed] = parse_chaos(rest.substr(kw.size()));
            chaos_.emplace(spec, seed);
        } catch (const std::exception& e) {
            throw WireError(std::string("bad Init chaos config: ") + e.what());
        }
    }

    void run_batch() {
        if (chaos_.has_value()) {
            if (chaos_->next_hang()) {
                // Wedge exactly like a stuck process: stop draining stdin,
                // stop producing. Only a signal ends this.
                for (;;) ::pause();
            }
            if (chaos_->next_slow())
                ::poll(nullptr, 0, chaos_->spec().slow_ms);
        }
        Shard& shard = *current_;
        const std::uint64_t count =
            std::min<std::uint64_t>(shard.batch, shard.end - shard.next);
        const std::vector<fleet::Scenario> slice(
            scenarios_.begin() + static_cast<std::ptrdiff_t>(shard.next),
            scenarios_.begin() + static_cast<std::ptrdiff_t>(shard.next + count));
        const fleet::CampaignRunner runner(options_);
        const fleet::CampaignResult result = runner.run(slice);
        // The cursor advance below and the coordinator's shard.next both
        // assume one outcome per scenario; anything else must fail loudly
        // here, not as a baffling "does not continue shard" protocol error.
        if (result.outcomes.size() != slice.size())
            throw std::runtime_error(
                "CampaignRunner returned " +
                std::to_string(result.outcomes.size()) + " outcomes for " +
                std::to_string(slice.size()) + " scenarios in shard " +
                std::to_string(shard.id));
        if (chaos_.has_value() && chaos_->crash_now(CrashPhase::MidBatch))
            _exit(9);  // the computed batch dies with us

        std::vector<std::string> lines;
        lines.reserve(result.outcomes.size());
        for (const fleet::ScenarioOutcome& o : result.outcomes)
            lines.push_back(fleet::encode_outcome_line(o));
        send(MsgType::Batch, encode_batch(shard.id, shard.next, lines));
        shard.next += count;
        if (shard.next >= shard.end) finish_shard();
    }

    void finish_shard() {
        send(MsgType::ShardDone, std::to_string(current_->id) + ' ' +
                                     std::to_string(current_->end));
        current_.reset();
    }

    int in_fd_;
    int out_fd_;
    JobSpec spec_;
    std::vector<fleet::Scenario> scenarios_;
    fleet::CampaignOptions options_;
    std::optional<Shard> current_;
    std::optional<ChaosPlan> chaos_;
};

}  // namespace

int worker_main(int in_fd, int out_fd) {
    // A coordinator that died (or quarantined this worker) closes our pipe;
    // the resulting EPIPE must surface as a WireError return path, not
    // SIGPIPE process death with no WorkerError frame.
    ::signal(SIGPIPE, SIG_IGN);
    return Worker(in_fd, out_fd).run();
}

}  // namespace refpga::svc
