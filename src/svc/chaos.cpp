#include "refpga/svc/chaos.hpp"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include <poll.h>
#include <unistd.h>

#include "refpga/svc/wire.hpp"

namespace refpga::svc {

namespace {

/// SplitMix64 finalizer over (seed, salt): the per-category stream seeds,
/// same derivation as refpga::fault::FaultPlan so one plan seed yields
/// fully independent category schedules.
std::uint64_t mix(std::uint64_t seed, std::uint64_t salt) {
    std::uint64_t z = seed + salt * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

void write_all_or_throw(int fd, const char* data, std::size_t n) {
    while (n > 0) {
        const ssize_t w = ::write(fd, data, n);
        if (w < 0) {
            if (errno == EINTR) continue;
            throw WireError(std::string("chaos frame write failed: ") +
                            std::strerror(errno));
        }
        data += w;
        n -= static_cast<std::size_t>(w);
    }
}

std::string frame_bytes(std::uint8_t type, std::string_view payload) {
    const auto length = static_cast<std::uint32_t>(payload.size());
    std::string buffer;
    buffer.reserve(5 + payload.size());
    buffer.push_back(static_cast<char>(length & 0xff));
    buffer.push_back(static_cast<char>((length >> 8) & 0xff));
    buffer.push_back(static_cast<char>((length >> 16) & 0xff));
    buffer.push_back(static_cast<char>((length >> 24) & 0xff));
    buffer.push_back(static_cast<char>(type));
    buffer.append(payload);
    return buffer;
}

std::string fmt_prob(double v) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%a", v);
    return buf;
}

constexpr std::size_t kMaxTraceLines = 512;

}  // namespace

const char* crash_phase_name(CrashPhase phase) {
    switch (phase) {
        case CrashPhase::None: return "none";
        case CrashPhase::PreInit: return "pre-init";
        case CrashPhase::MidBatch: return "mid-batch";
        case CrashPhase::PreTruncateAck: return "pre-truncate-ack";
        case CrashPhase::PreCheckpoint: return "pre-checkpoint";
    }
    return "?";
}

CrashPhase parse_crash_phase(std::string_view name) {
    for (const CrashPhase p :
         {CrashPhase::None, CrashPhase::PreInit, CrashPhase::MidBatch,
          CrashPhase::PreTruncateAck, CrashPhase::PreCheckpoint})
        if (name == crash_phase_name(p)) return p;
    throw std::runtime_error("unknown crash phase '" + std::string(name) + "'");
}

ChaosPlan::ChaosPlan(ChaosSpec spec, std::uint64_t seed)
    : spec_(spec),
      torn_rng_(mix(seed, 1)),
      clen_rng_(mix(seed, 2)),
      cpay_rng_(mix(seed, 3)),
      delay_rng_(mix(seed, 4)),
      drop_rng_(mix(seed, 5)),
      hang_rng_(mix(seed, 6)),
      slow_rng_(mix(seed, 7)) {}

void ChaosPlan::record(const char* what, std::uint64_t detail) {
    if (trace_.size() >= kMaxTraceLines) return;
    trace_.push_back(std::string(what) + ' ' + std::to_string(detail));
}

WireAction ChaosPlan::next_wire_action(std::size_t frame_size,
                                       std::size_t payload_size) {
    // Every category stream advances exactly once per frame whether or not
    // it fires, so enabling one category never shifts another's schedule.
    const bool torn = torn_rng_.next_double() < spec_.torn_frame_prob;
    const bool clen = clen_rng_.next_double() < spec_.corrupt_length_prob;
    const bool cpay = cpay_rng_.next_double() < spec_.corrupt_payload_prob;
    const bool delay = delay_rng_.next_double() < spec_.delay_frame_prob;
    const bool drop = drop_rng_.next_double() < spec_.drop_frame_prob;

    WireAction action;
    if (torn && frame_size >= 2) {
        action.kind = WireAction::Kind::Torn;
        action.cut = 1 + torn_rng_.next_below(
                             static_cast<std::uint32_t>(frame_size - 1));
        ++stats_.torn_frames;
        record("torn-frame cut=", action.cut);
    } else if (clen) {
        action.kind = WireAction::Kind::CorruptLength;
        ++stats_.corrupt_lengths;
        record("corrupt-length frame_size=", frame_size);
    } else if (cpay && payload_size > 0) {
        // Flip a byte in the payload's numeric header region: the frame
        // still parses as a frame but its fields are provably garbage, so
        // the coordinator detects it instead of merging wrong data.
        action.kind = WireAction::Kind::CorruptPayload;
        action.offset = cpay_rng_.next_below(static_cast<std::uint32_t>(
            payload_size < 8 ? payload_size : std::size_t{8}));
        ++stats_.corrupt_payloads;
        record("corrupt-payload offset=", action.offset);
    } else if (drop) {
        action.kind = WireAction::Kind::Drop;
        ++stats_.dropped_frames;
        record("drop-frame size=", frame_size);
    } else if (delay) {
        action.kind = WireAction::Kind::Delay;
        action.delay_ms = spec_.delay_ms;
        ++stats_.delayed_frames;
        record("delay-frame ms=", static_cast<std::uint64_t>(spec_.delay_ms));
    }
    return action;
}

bool ChaosPlan::next_hang() {
    const bool hang = hang_rng_.next_double() < spec_.hang_prob;
    if (hang) {
        ++stats_.hangs;
        record("hang at-batch=", stats_.slow_batches + stats_.hangs);
    }
    return hang;
}

bool ChaosPlan::next_slow() {
    const bool slow = slow_rng_.next_double() < spec_.slow_batch_prob;
    if (slow) {
        ++stats_.slow_batches;
        record("slow-batch ms=", static_cast<std::uint64_t>(spec_.slow_ms));
    }
    return slow;
}

bool ChaosPlan::crash_now(CrashPhase phase) {
    if (phase == CrashPhase::None || phase != spec_.crash_phase) return false;
    ++crash_opportunities_;
    if (crash_opportunities_ != spec_.crash_after) return false;
    ++stats_.crashes;
    record(crash_phase_name(phase), crash_opportunities_);
    return true;
}

bool ChaosPlan::tear_checkpoint_now() {
    if (spec_.checkpoint_tear_after == 0) return false;
    ++checkpoint_appends_;
    if (checkpoint_appends_ != spec_.checkpoint_tear_after) return false;
    ++stats_.checkpoint_tears;
    record("checkpoint-tear append=", checkpoint_appends_);
    return true;
}

bool apply_wire_action(const WireAction& action, int fd, std::uint8_t type,
                       std::string_view payload) {
    switch (action.kind) {
        case WireAction::Kind::None: {
            write_frame(fd, static_cast<MsgType>(type), payload);
            return true;
        }
        case WireAction::Kind::Torn: {
            const std::string frame = frame_bytes(type, payload);
            const std::size_t cut =
                action.cut < frame.size() ? action.cut : frame.size() - 1;
            write_all_or_throw(fd, frame.data(), cut);
            return false;  // the writer must now act dead
        }
        case WireAction::Kind::CorruptLength: {
            std::string frame = frame_bytes(type, payload);
            // Top bit of the u32 length: the decoded length lands far above
            // kMaxFramePayload, so the reader always rejects the stream.
            frame[3] = static_cast<char>(frame[3] ^ char(0x80));
            write_all_or_throw(fd, frame.data(), frame.size());
            return true;
        }
        case WireAction::Kind::CorruptPayload: {
            std::string frame = frame_bytes(type, payload);
            frame[5 + action.offset] =
                static_cast<char>(frame[5 + action.offset] ^ char(0x80));
            write_all_or_throw(fd, frame.data(), frame.size());
            return true;
        }
        case WireAction::Kind::Drop:
            return true;
        case WireAction::Kind::Delay: {
            ::poll(nullptr, 0, action.delay_ms);
            write_frame(fd, static_cast<MsgType>(type), payload);
            return true;
        }
    }
    return true;
}

std::string encode_chaos(const ChaosSpec& spec, std::uint64_t seed) {
    if (!spec.any_worker()) return {};
    std::string out = "chaos " + std::to_string(seed);
    out += ' ' + fmt_prob(spec.torn_frame_prob);
    out += ' ' + fmt_prob(spec.corrupt_length_prob);
    out += ' ' + fmt_prob(spec.corrupt_payload_prob);
    out += ' ' + fmt_prob(spec.delay_frame_prob);
    out += ' ' + std::to_string(spec.delay_ms);
    out += ' ' + fmt_prob(spec.drop_frame_prob);
    out += ' ' + fmt_prob(spec.hang_prob);
    out += ' ' + fmt_prob(spec.slow_batch_prob);
    out += ' ' + std::to_string(spec.slow_ms);
    out += ' ' + std::string(crash_phase_name(spec.crash_phase));
    out += ' ' + std::to_string(spec.crash_after);
    return out;
}

namespace {

std::vector<std::string> split_tokens(std::string_view text) {
    std::vector<std::string> tokens;
    std::size_t pos = 0;
    while (pos < text.size()) {
        while (pos < text.size() && text[pos] == ' ') ++pos;
        std::size_t end = pos;
        while (end < text.size() && text[end] != ' ') ++end;
        if (end > pos) tokens.emplace_back(text.substr(pos, end - pos));
        pos = end;
    }
    return tokens;
}

double parse_prob(const std::string& token) {
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (errno != 0 || end == token.c_str() || *end != '\0' || v < 0.0 ||
        v > 1.0)
        throw std::runtime_error("bad chaos probability '" + token + "'");
    return v;
}

std::uint64_t parse_u64_token(const std::string& token) {
    errno = 0;
    char* end = nullptr;
    const std::uint64_t v = std::strtoull(token.c_str(), &end, 10);
    if (errno != 0 || end == token.c_str() || *end != '\0')
        throw std::runtime_error("bad chaos integer '" + token + "'");
    return v;
}

}  // namespace

std::pair<ChaosSpec, std::uint64_t> parse_chaos(std::string_view text) {
    const std::vector<std::string> t = split_tokens(text);
    if (t.size() != 12)
        throw std::runtime_error("chaos config expects 12 tokens, got " +
                                 std::to_string(t.size()));
    ChaosSpec spec;
    const std::uint64_t seed = parse_u64_token(t[0]);
    spec.torn_frame_prob = parse_prob(t[1]);
    spec.corrupt_length_prob = parse_prob(t[2]);
    spec.corrupt_payload_prob = parse_prob(t[3]);
    spec.delay_frame_prob = parse_prob(t[4]);
    spec.delay_ms = static_cast<int>(parse_u64_token(t[5]));
    spec.drop_frame_prob = parse_prob(t[6]);
    spec.hang_prob = parse_prob(t[7]);
    spec.slow_batch_prob = parse_prob(t[8]);
    spec.slow_ms = static_cast<int>(parse_u64_token(t[9]));
    spec.crash_phase = parse_crash_phase(t[10]);
    spec.crash_after = parse_u64_token(t[11]);
    return {spec, seed};
}

std::uint64_t worker_chaos_seed(std::uint64_t seed, int slot, int generation) {
    return mix(seed, 0x10000ULL + static_cast<std::uint64_t>(slot) * 257ULL +
                         static_cast<std::uint64_t>(generation));
}

}  // namespace refpga::svc
