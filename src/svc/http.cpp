#include "refpga/svc/http.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <sys/time.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

namespace refpga::svc {

HttpEndpoint::~HttpEndpoint() { close(); }

void HttpEndpoint::listen(std::uint16_t port) {
    close();
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) throw HttpError(std::string("socket: ") + std::strerror(errno));
    const int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
        const std::string why = std::strerror(errno);
        close();
        throw HttpError("bind 127.0.0.1:" + std::to_string(port) + ": " + why);
    }
    if (::listen(fd_, 8) < 0) {
        const std::string why = std::strerror(errno);
        close();
        throw HttpError("listen: " + why);
    }
    socklen_t len = sizeof addr;
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
        const std::string why = std::strerror(errno);
        close();
        throw HttpError("getsockname: " + why);
    }
    port_ = ntohs(addr.sin_port);
}

namespace {

void send_all(int fd, const std::string& data) {
    const char* p = data.data();
    std::size_t n = data.size();
    while (n > 0) {
        const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR) continue;
            return;  // client went away; nothing to do about it
        }
        p += w;
        n -= static_cast<std::size_t>(w);
    }
}

std::string response(int status, const char* reason, const std::string& body) {
    return "HTTP/1.1 " + std::to_string(status) + " " + reason +
           "\r\nContent-Type: text/plain; charset=utf-8\r\nContent-Length: " +
           std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n" + body;
}

}  // namespace

bool HttpEndpoint::serve_ready(const Handler& handler) {
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client < 0) return false;

    // This runs inline on the coordinator's single-threaded event loop, so
    // a client that connects and then sends nothing (or dribbles) must not
    // stall dispatch, checkpointing, and worker handling: every recv times
    // out quickly and the whole head read has a hard deadline.
    timeval tv{};
    tv.tv_usec = 250 * 1000;
    ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    ::setsockopt(client, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(2);

    // Read until the blank line that ends the request head (or the client
    // stops sending). Requests of interest are a few hundred bytes.
    std::string request;
    char buf[1024];
    while (request.find("\r\n\r\n") == std::string::npos &&
           request.size() < 16 * 1024 &&
           std::chrono::steady_clock::now() < deadline) {
        const ssize_t r = ::recv(client, buf, sizeof buf, 0);
        if (r < 0 && errno == EINTR) continue;
        if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        if (r <= 0) break;
        request.append(buf, static_cast<std::size_t>(r));
    }

    std::string reply;
    const std::size_t method_end = request.find(' ');
    const std::size_t path_end =
        method_end == std::string::npos ? std::string::npos
                                        : request.find(' ', method_end + 1);
    if (path_end == std::string::npos) {
        reply = response(400, "Bad Request", "malformed request line\n");
    } else if (request.substr(0, method_end) != "GET") {
        reply = response(405, "Method Not Allowed", "GET only\n");
    } else {
        const std::string path =
            request.substr(method_end + 1, path_end - method_end - 1);
        std::string body;
        if (handler(path, body))
            reply = response(200, "OK", body);
        else
            reply = response(404, "Not Found", "no such resource\n");
    }
    send_all(client, reply);
    ::close(client);
    return true;
}

void HttpEndpoint::close() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
        port_ = 0;
    }
}

}  // namespace refpga::svc
