#include "refpga/svc/json.hpp"

#include <cctype>
#include <cstdlib>

namespace refpga::svc {

const JsonValue* JsonValue::find(std::string_view key) const {
    if (kind != Kind::Object) return nullptr;
    for (const auto& [name, value] : object)
        if (name == key) return &value;
    return nullptr;
}

bool JsonValue::as_bool() const {
    if (kind != Kind::Bool) throw JsonError("expected boolean");
    return boolean;
}

double JsonValue::as_number() const {
    if (kind != Kind::Number) throw JsonError("expected number");
    return number;
}

const std::string& JsonValue::as_string() const {
    if (kind != Kind::String) throw JsonError("expected string");
    return string;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
    if (kind != Kind::Array) throw JsonError("expected array");
    return array;
}

namespace {

class Parser {
public:
    explicit Parser(std::string_view text) : text_(text) {}

    JsonValue document() {
        JsonValue v = value();
        skip_ws();
        if (pos_ != text_.size()) fail("trailing bytes after document");
        return v;
    }

private:
    JsonValue value() {
        skip_ws();
        if (pos_ >= text_.size()) fail("unexpected end of document");
        switch (text_[pos_]) {
            case '{': return object();
            case '[': return array();
            case '"': return string_value();
            case 't':
            case 'f': return boolean();
            case 'n': return null();
            default: return number();
        }
    }

    JsonValue object() {
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        ++pos_;  // '{'
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            skip_ws();
            if (peek() != '"') fail("expected object key");
            std::string key = parse_string();
            for (const auto& [name, _] : v.object)
                if (name == key) fail("duplicate object key '" + key + "'");
            skip_ws();
            if (peek() != ':') fail("expected ':'");
            ++pos_;
            v.object.emplace_back(std::move(key), value());
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return v;
            }
            fail("expected ',' or '}'");
        }
    }

    JsonValue array() {
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        ++pos_;  // '['
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.array.push_back(value());
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return v;
            }
            fail("expected ',' or ']'");
        }
    }

    JsonValue string_value() {
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        v.string = parse_string();
        return v;
    }

    std::string parse_string() {
        ++pos_;  // '"'
        std::string out;
        while (true) {
            if (pos_ >= text_.size()) fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"') return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("raw control byte in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size()) fail("truncated escape");
            const char e = text_[pos_++];
            switch (e) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u': {
                    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            fail("bad \\u escape digit");
                    }
                    if (code > 0xff)
                        fail("\\u escape beyond Basic Latin is unsupported");
                    out += static_cast<char>(code);
                    break;
                }
                default: fail("unknown escape");
            }
        }
    }

    JsonValue boolean() {
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        if (text_.substr(pos_, 4) == "true") {
            v.boolean = true;
            pos_ += 4;
        } else if (text_.substr(pos_, 5) == "false") {
            v.boolean = false;
            pos_ += 5;
        } else {
            fail("expected boolean");
        }
        return v;
    }

    JsonValue null() {
        if (text_.substr(pos_, 4) != "null") fail("expected null");
        pos_ += 4;
        return JsonValue{};
    }

    JsonValue number() {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
                text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
                text_[pos_] == '+' || text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start) fail("expected value");
        const std::string digits(text_.substr(start, pos_ - start));
        const char* begin = digits.c_str();
        char* end = nullptr;
        const double parsed = std::strtod(begin, &end);
        if (end == begin || *end != '\0') fail("malformed number '" + digits + "'");
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        v.number = parsed;
        return v;
    }

    [[nodiscard]] char peek() const {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    void skip_ws() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
                text_[pos_] == '\r'))
            ++pos_;
    }

    [[noreturn]] void fail(const std::string& why) const {
        throw JsonError("JSON byte " + std::to_string(pos_) + ": " + why);
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) { return Parser(text).document(); }

}  // namespace refpga::svc
