// Deterministic, seed-driven chaos harness for the campaign service.
//
// svc::chaos does to the service layer what refpga::fault does to the
// reconfiguration path: every modelled failure mode is scheduled from an
// independent per-category RNG stream derived from one plan seed, so a run
// with the same (spec, seed) injects the identical fault trace, and
// enabling one category never shifts what another injects. A default
// (all-zero) spec arms nothing: the worker and coordinator then skip the
// chaos layer entirely — the wire bytes, report bytes and checkpoint bytes
// are bit-identical to a build that never heard of chaos.
//
// Categories (the worker side wraps the wire writes and the batch loop; the
// coordinator side wraps checkpoint appends):
//
//   - torn frame: a frame write lands partially and the writer dies
//   - corrupt length: the u32 length prefix is flipped into the invalid
//     range (> kMaxFramePayload), poisoning the stream detectably
//   - corrupt payload: one byte in the payload's numeric header region is
//     flipped out of ASCII, so the frame parses as a protocol violation
//   - delayed frame / dropped frame
//   - hang: the worker stops draining stdin and stops producing (the shape
//     of a wedged process; only heartbeats/deadlines can catch it)
//   - slow batch: a per-batch sleep, the shape of a straggler
//   - crash-at-phase: _exit at PreInit / MidBatch / PreTruncateAck, or a
//     simulated coordinator crash at PreCheckpoint
//   - checkpoint tear: the Nth journal append lands partially and the
//     coordinator "crashes" (run aborts without draining)
//
// Every injection increments a ChaosStats counter and appends a line to a
// bounded trace, so tests can assert a fault actually fired and that two
// same-seed plans injected byte-identical traces.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "refpga/common/rng.hpp"

namespace refpga::svc {

/// Where a crash-at-phase injection fires. PreInit/MidBatch/PreTruncateAck
/// are worker phases (_exit); PreCheckpoint is coordinator-side (the run
/// aborts right before the Nth journal append, as a crash would).
enum class CrashPhase : std::uint8_t {
    None = 0,
    PreInit,         ///< worker dies before processing Init
    MidBatch,        ///< worker dies after computing a batch, before sending it
    PreTruncateAck,  ///< worker dies mid steal handshake, before the ack
    PreCheckpoint,   ///< coordinator "crashes" before a checkpoint append
};

[[nodiscard]] const char* crash_phase_name(CrashPhase phase);
/// Inverse of crash_phase_name; throws std::runtime_error on unknown names.
[[nodiscard]] CrashPhase parse_crash_phase(std::string_view name);

/// Chaos environment of one run. All probabilities default to zero: the
/// default spec injects nothing and arms nothing.
struct ChaosSpec {
    // --- wire faults (per frame written by the worker) ---------------------
    double torn_frame_prob = 0.0;      ///< partial frame write, then death
    double corrupt_length_prob = 0.0;  ///< length prefix flipped invalid
    double corrupt_payload_prob = 0.0; ///< one header byte flipped non-ASCII
    double delay_frame_prob = 0.0;     ///< frame delayed by delay_ms
    int delay_ms = 2;
    double drop_frame_prob = 0.0;      ///< frame silently not written

    // --- lifecycle faults (per batch boundary) -----------------------------
    double hang_prob = 0.0;        ///< stop draining stdin, stop producing
    double slow_batch_prob = 0.0;  ///< sleep slow_ms before the batch
    int slow_ms = 20;

    // --- deterministic (count-scheduled, not probabilistic) ----------------
    CrashPhase crash_phase = CrashPhase::None;
    std::uint64_t crash_after = 1;  ///< fire at the Nth opportunity (1-based)

    /// Coordinator-side: tear the Nth checkpoint append (0 = off). Only the
    /// first checkpoint_tear_bytes of the record land; the run then aborts
    /// as a crash would (workers are killed, nothing is drained).
    std::uint64_t checkpoint_tear_after = 0;
    std::size_t checkpoint_tear_bytes = 7;

    /// Restrict worker-side injection to one worker slot (-1 = all). The
    /// coordinator-side categories ignore this.
    int only_worker = -1;

    [[nodiscard]] bool any() const {
        return torn_frame_prob > 0.0 || corrupt_length_prob > 0.0 ||
               corrupt_payload_prob > 0.0 || delay_frame_prob > 0.0 ||
               drop_frame_prob > 0.0 || hang_prob > 0.0 ||
               slow_batch_prob > 0.0 || crash_phase != CrashPhase::None ||
               checkpoint_tear_after > 0;
    }
    /// True when any worker-side category is armed.
    [[nodiscard]] bool any_worker() const {
        return torn_frame_prob > 0.0 || corrupt_length_prob > 0.0 ||
               corrupt_payload_prob > 0.0 || delay_frame_prob > 0.0 ||
               drop_frame_prob > 0.0 || hang_prob > 0.0 ||
               slow_batch_prob > 0.0 ||
               (crash_phase != CrashPhase::None &&
                crash_phase != CrashPhase::PreCheckpoint);
    }
};

/// Injection tally, one counter per category; tests assert a category
/// actually fired before trusting that the system recovered from it.
struct ChaosStats {
    std::uint64_t torn_frames = 0;
    std::uint64_t corrupt_lengths = 0;
    std::uint64_t corrupt_payloads = 0;
    std::uint64_t delayed_frames = 0;
    std::uint64_t dropped_frames = 0;
    std::uint64_t hangs = 0;
    std::uint64_t slow_batches = 0;
    std::uint64_t crashes = 0;
    std::uint64_t checkpoint_tears = 0;

    [[nodiscard]] std::uint64_t total() const {
        return torn_frames + corrupt_lengths + corrupt_payloads +
               delayed_frames + dropped_frames + hangs + slow_batches +
               crashes + checkpoint_tears;
    }
};

/// One decided wire-level action for a frame about to be written. Exactly
/// one kind applies per frame (precedence: torn > corrupt length > corrupt
/// payload > drop > delay); the draws behind the decision come from
/// independent per-category streams, so disabling one category never shifts
/// another's schedule.
struct WireAction {
    enum class Kind : std::uint8_t {
        None,
        Torn,            ///< write only `cut` bytes of the full frame
        CorruptLength,   ///< flip the top bit of length byte 3
        CorruptPayload,  ///< flip bit 7 of payload byte `offset`
        Drop,            ///< write nothing
        Delay,           ///< sleep delay_ms, then write normally
    };
    Kind kind = Kind::None;
    std::size_t cut = 0;     ///< Torn: bytes of the frame that land
    std::size_t offset = 0;  ///< CorruptPayload: payload byte flipped
    int delay_ms = 0;        ///< Delay: sleep before the write
};

/// Per-process chaos schedule. Deterministic: a pure function of
/// (spec, seed) — same inputs, same injected trace. Not thread-safe.
class ChaosPlan {
public:
    ChaosPlan(ChaosSpec spec, std::uint64_t seed);

    [[nodiscard]] const ChaosSpec& spec() const { return spec_; }
    [[nodiscard]] bool armed() const { return spec_.any(); }

    /// Decides the fate of the next frame of `frame_size` total bytes
    /// (header + payload; payload_size for the corrupt-payload offset).
    [[nodiscard]] WireAction next_wire_action(std::size_t frame_size,
                                              std::size_t payload_size);

    /// Draws whether the worker hangs at this batch boundary.
    [[nodiscard]] bool next_hang();
    /// Draws whether this batch runs slowed by spec().slow_ms.
    [[nodiscard]] bool next_slow();
    /// True when the crash_after-th opportunity of the configured phase has
    /// arrived (counts opportunities internally; deterministic, no RNG).
    [[nodiscard]] bool crash_now(CrashPhase phase);
    /// True when the `n`-th checkpoint append (1-based) must tear.
    [[nodiscard]] bool tear_checkpoint_now();

    [[nodiscard]] const ChaosStats& stats() const { return stats_; }
    /// Bounded human-readable injection log ("torn frame cut=12", ...);
    /// byte-identical across same-seed plans fed the same call sequence.
    [[nodiscard]] const std::vector<std::string>& trace() const { return trace_; }

private:
    void record(const char* what, std::uint64_t detail);

    ChaosSpec spec_;
    ChaosStats stats_;
    std::vector<std::string> trace_;
    std::uint64_t crash_opportunities_ = 0;
    std::uint64_t checkpoint_appends_ = 0;

    Rng torn_rng_;     ///< torn-frame decisions and cut points
    Rng clen_rng_;     ///< corrupt-length decisions
    Rng cpay_rng_;     ///< corrupt-payload decisions and offsets
    Rng delay_rng_;    ///< delayed-frame decisions
    Rng drop_rng_;     ///< dropped-frame decisions
    Rng hang_rng_;     ///< hang decisions
    Rng slow_rng_;     ///< slow-batch decisions
};

/// Applies `action` to one frame write on `fd`: mangles, delays, drops or
/// truncates exactly as decided. Returns false only for a torn write — the
/// writer must then act dead (a worker _exits, simulating death mid-write).
/// Dropped and corrupted frames return true: the writer lives on and the
/// damage surfaces at the reader. Throws WireError on a real I/O failure.
bool apply_wire_action(const WireAction& action, int fd, std::uint8_t type,
                       std::string_view payload);

/// Serializes the worker-relevant part of (spec, seed) for the Init frame's
/// first line ("chaos <seed> <fields...>", doubles as hexfloats). Empty
/// result when no worker-side category is armed — a clean Init line stays
/// byte-identical to a chaos-free build's.
[[nodiscard]] std::string encode_chaos(const ChaosSpec& spec,
                                       std::uint64_t seed);
/// Inverse of encode_chaos; `text` is the token list after the leading
/// "chaos" keyword. Throws std::runtime_error on malformed input.
[[nodiscard]] std::pair<ChaosSpec, std::uint64_t> parse_chaos(
    std::string_view text);

/// Mixes a per-worker chaos seed: distinct per (plan seed, worker slot,
/// restart generation) so a restarted worker replays a fresh — but still
/// deterministic — schedule.
[[nodiscard]] std::uint64_t worker_chaos_seed(std::uint64_t seed, int slot,
                                              int generation);

}  // namespace refpga::svc
