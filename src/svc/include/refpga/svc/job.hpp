// Campaign job specification: the JSON document that fully describes a
// sharded campaign run.
//
// A JobSpec is the serializable twin of fleet::SweepBuilder plus the
// execution knobs a scenario's outcome depends on (cycles, campaign seed,
// streaming block size). Workers never receive scenario lists over the wire
// — they receive the JobSpec once (Init frame), expand the same grid
// locally, and are then assigned index ranges into it. That keeps Assign
// frames tiny and guarantees every process agrees on scenario -> index.
//
// canonical_json() renders doubles as hexfloat strings so the document —
// and therefore fingerprint(), which checkpoints embed to refuse resuming a
// journal against a different job — is byte-stable across locales and
// formatting quirks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "refpga/fleet/scenario.hpp"

namespace refpga::svc {

class JobError : public std::runtime_error {
public:
    explicit JobError(const std::string& what) : std::runtime_error(what) {}
};

// Axis-value parsers, inverse of the names the fleet layer renders.
// Throw JobError on unknown names.
[[nodiscard]] app::SystemVariant parse_variant(const std::string& name);
[[nodiscard]] fabric::PartName parse_part(const std::string& id);
[[nodiscard]] fleet::PortKind parse_port(const std::string& name);

struct JobSpec {
    std::vector<app::SystemVariant> variants{app::SystemVariant::ReconfiguredHw};
    std::vector<fabric::PartName> parts{fabric::PartName::XC3S400};
    std::vector<fleet::PortKind> ports{fleet::PortKind::Jcap};
    std::vector<double> noise_levels{1e-3};
    std::vector<double> upset_rates{0.0};
    fault::FaultSpec fault_defaults;
    std::vector<fleet::FillProfile> fills{fleet::FillProfile{}};
    int cycles = 8;
    std::uint64_t campaign_seed = 2008;
    int stream_block_ticks = 4096;

    /// Parses a job document; unknown keys and malformed values throw
    /// JobError with the offending key in the message.
    [[nodiscard]] static JobSpec from_json(const std::string& text);

    /// Canonical rendering: fixed key order, doubles as hexfloat strings.
    /// from_json(canonical_json()) round-trips bit-exactly.
    [[nodiscard]] std::string canonical_json() const;

    /// FNV-1a over canonical_json(); checkpoints embed this so a journal is
    /// only ever replayed against the job that wrote it.
    [[nodiscard]] std::uint64_t fingerprint() const;

    /// Number of scenarios the grid expands to.
    [[nodiscard]] std::size_t grid_size() const;

    /// Expands the full scenario grid via fleet::SweepBuilder — identical in
    /// every process that holds the same spec.
    [[nodiscard]] std::vector<fleet::Scenario> expand() const;
};

}  // namespace refpga::svc
