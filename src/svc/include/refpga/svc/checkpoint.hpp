// Checkpoint journal for campaign runs: crash-safe record of committed
// scenario ranges so a killed run resumes without recomputing.
//
// Plain-text, append-only format:
//
//   refpga-svc-checkpoint v1 codec <codec> fingerprint <hex16> scenarios <N>
//   b <first> <count>
//   <count outcome_codec lines>
//   e <first>
//   ... more records ...
//
// Each committed batch is bracketed by a `b` header and an `e` trailer that
// repeats the batch's first index; a record missing its trailer (the
// process died mid-append) is an *expected* torn tail and is dropped by
// load(). Every other malformation — wrong magic, fingerprint mismatch,
// codec mismatch, count/trailer disagreement, undecodable outcome line,
// overlapping ranges — throws CheckpointError naming the line: a corrupt
// journal must fail loudly, not silently resume a wrong campaign.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "refpga/fleet/campaign.hpp"

namespace refpga::svc {

class CheckpointError : public std::runtime_error {
public:
    explicit CheckpointError(const std::string& what)
        : std::runtime_error(what) {}
};

/// Append-side writer. Batches are flushed to the OS after each append; a
/// torn final record is recoverable, a reordered one is not possible.
class CheckpointWriter {
public:
    /// Creates/truncates `path` and writes the header. Throws on I/O error.
    CheckpointWriter(const std::string& path, std::uint64_t fingerprint,
                     std::size_t scenario_count);

    /// Opens `path` for append after a successful load() (resume). The
    /// header is validated against the given job identity.
    static CheckpointWriter resume(const std::string& path,
                                   std::uint64_t fingerprint,
                                   std::size_t scenario_count);

    CheckpointWriter(CheckpointWriter&& other) noexcept;
    CheckpointWriter& operator=(CheckpointWriter&& other) noexcept;

    /// Appends one committed batch (encoded outcome lines starting at
    /// scenario index `first`). Throws CheckpointError on I/O failure.
    void append(std::uint64_t first, const std::vector<std::string>& lines);

    /// Chaos hook: writes only the first `bytes` of the record `append`
    /// would have written — the on-disk shape of a crash mid-append. Never
    /// counts as a record.
    void append_torn(std::uint64_t first, const std::vector<std::string>& lines,
                     std::size_t bytes);

    /// Durability policy: fsync after every n-th append (0 = never, the
    /// default — a torn tail is already recoverable; fsync buys power-loss
    /// durability at measured cost). Coordinators also call sync() once
    /// after the final record regardless of cadence when a policy is set.
    void set_fsync_every(std::uint64_t n) { fsync_every_ = n; }
    /// Flushes the journal to stable storage now. Throws CheckpointError.
    void sync();

    [[nodiscard]] std::size_t records_written() const { return records_; }

private:
    struct Tag {};
    CheckpointWriter(Tag, const std::string& path);

    std::string path_;
    int fd_ = -1;
    std::size_t records_ = 0;
    std::uint64_t fsync_every_ = 0;
    std::uint64_t appends_since_sync_ = 0;

public:
    ~CheckpointWriter();
    CheckpointWriter(const CheckpointWriter&) = delete;
    CheckpointWriter& operator=(const CheckpointWriter&) = delete;
};

/// One recovered batch: outcome lines for scenario indices
/// [first, first + lines.size()).
struct CheckpointBatch {
    std::uint64_t first = 0;
    std::vector<std::string> lines;
};

struct CheckpointContents {
    std::uint64_t fingerprint = 0;
    std::size_t scenario_count = 0;
    std::vector<CheckpointBatch> batches;
    /// True when the file ended inside a record (torn tail was dropped).
    bool torn_tail = false;
    /// Byte offset just past the last valid record (the header when there
    /// are none). resume() truncates the file here so a dropped torn tail
    /// cannot end up mid-file — where the next load would treat it as hard
    /// corruption — once new records are appended after it.
    std::uint64_t valid_bytes = 0;
};

/// Loads and validates a journal. `expected_fingerprint`/`expected_count`
/// of 0 skip that check (used by inspection tools); coordinators always
/// pass the real values. Throws CheckpointError on any malformation other
/// than a torn tail.
[[nodiscard]] CheckpointContents load_checkpoint(const std::string& path,
                                                 std::uint64_t expected_fingerprint,
                                                 std::size_t expected_count);

}  // namespace refpga::svc
