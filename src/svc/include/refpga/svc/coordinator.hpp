// Campaign coordinator: shards a job's scenario grid across worker
// processes, merges their streamed outcome batches, and journals progress.
//
// One single-threaded poll() event loop owns everything: worker pipes, the
// optional HTTP observability endpoint, the checkpoint journal and the
// streaming report accumulator. Workers are pure executors, so every
// consistency decision — exactly-once commits, work stealing, reassignment
// after a crash — is made in one place with no locks.
//
// Lifecycle of a scenario index range:
//
//   pending ──Assign──▶ in-flight ──Batch──▶ committed (spool + journal)
//      ▲                   │
//      │   Truncate/Ack    │ worker died: requeue [next, end)
//      └───────────────────┘
//
// Stealing is a two-step handshake (Truncate → TruncateAck) so the
// coordinator never reassigns an index the victim might still emit; a
// worker that dies mid-handshake simply has its whole remainder requeued.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "refpga/fleet/report_stream.hpp"
#include "refpga/obs/obs.hpp"
#include "refpga/svc/chaos.hpp"
#include "refpga/svc/http.hpp"
#include "refpga/svc/job.hpp"

namespace refpga::svc {

class CoordinatorError : public std::runtime_error {
public:
    explicit CoordinatorError(const std::string& what)
        : std::runtime_error(what) {}
};

struct CoordinatorOptions {
    /// Worker processes to fork (>= 1).
    int workers = 2;
    /// Campaign threads inside each worker.
    int worker_threads = 1;
    /// Outcomes per Batch frame — the unit of commit, steal granularity and
    /// the bound on rows the coordinator ever holds in memory.
    std::uint64_t batch = 8;
    /// Scenarios per shard (the unit of assignment). 0 = grid/workers,
    /// clamped to at least one batch.
    std::uint64_t shard = 0;
    /// Only steal from a shard with at least this many uncommitted
    /// scenarios left (0 = 2 * batch).
    std::uint64_t steal_min = 0;

    /// Checkpoint journal path; empty disables checkpointing.
    std::string checkpoint_path;
    /// Resume from an existing journal at checkpoint_path instead of
    /// truncating it. The journal must match the job fingerprint.
    bool resume = false;
    /// Spool file backing the streaming report accumulator (required).
    std::string spool_path = "campaign.spool";

    /// Refork a worker that dies unexpectedly, up to max_worker_restarts
    /// per run; its in-flight range is requeued either way.
    bool restart_dead_workers = true;
    int max_worker_restarts = 2;

    /// Restart backoff: the k-th restart of a slot waits
    /// min(cap, base << (k-1)) + jitter milliseconds, jitter deterministic
    /// from (job fingerprint, slot, attempt). 0 = restart immediately (the
    /// pre-liveness behavior, and what keeps clean-path timing identical).
    int restart_backoff_ms = 0;
    int restart_backoff_cap_ms = 5000;

    // --- liveness policy (all off by default: a default-constructed run is
    // frame-for-frame identical to one that predates the liveness layer;
    // campaignd turns these on) ------------------------------------------
    /// Ping each worker after this many ms without hearing a frame from it
    /// (0 = no heartbeats).
    int heartbeat_interval_ms = 0;
    /// Reap a worker (SIGKILL + requeue + restart policy) once this many
    /// pings went unanswered AND liveness_timeout_ms of total silence
    /// passed. Both gates, so a worker mid-batch — which can only answer at
    /// a batch boundary — is not shot for computing.
    int heartbeat_miss_limit = 3;
    int liveness_timeout_ms = 10000;
    /// Reap a worker holding a shard that has not committed anything for
    /// this long (0 = no progress deadline). Catches a worker that answers
    /// pings but computes nothing.
    int progress_timeout_ms = 0;

    /// Straggler speculation: when the pending queue is empty, a worker sits
    /// idle, and stealing is not viable, re-assign the remainder of a shard
    /// whose owner has gone straggler_factor × the fleet's median
    /// batch-commit interval (and at least straggler_min_ms) without
    /// progress. First valid result wins; the loser's duplicate commits are
    /// discarded exactly. 0 = disabled.
    double straggler_factor = 0.0;
    int straggler_min_ms = 1000;

    /// Fail the run once the alive fleet drops below this and the restart
    /// budget cannot restore it (unless partial_ok). 1 = complete on any
    /// surviving worker, the pre-liveness behavior.
    int min_workers = 1;
    /// When every worker is gone and restarts are exhausted, finish with
    /// whatever committed and mark the report (and result) partial instead
    /// of failing.
    bool partial_ok = false;

    /// Checkpoint durability policy: fsync the journal every n-th append
    /// and once after the final record (0 = never fsync; a torn tail is
    /// recoverable either way, fsync adds power-loss durability).
    std::uint64_t checkpoint_fsync_every_n = 0;

    // --- chaos (tests/CI/benches; a default ChaosSpec injects nothing and
    // leaves every wire byte identical to an unarmed build) ---------------
    ChaosSpec chaos;
    std::uint64_t chaos_seed = 1;
    /// Arm worker-side chaos only in each slot's first process generation
    /// (default), so a restarted worker runs clean and recovery can be
    /// proven byte-identical. True re-arms every generation — the
    /// persistent-fault world the partial/fail-fast policies exist for.
    bool chaos_all_generations = false;

    /// Milliseconds of poll silence after Shutdown before a worker is
    /// presumed wedged. The first expiry sends SIGTERM (a batch that is
    /// merely slow still gets to finish and commit); a second expiry
    /// escalates to SIGKILL so the final report cannot hang forever. Size
    /// this above the slowest expected batch, or stop/resume recomputes
    /// the in-flight batches of workers killed mid-compute.
    int drain_timeout_ms = 30000;

    /// Observability sinks (both optional).
    obs::Recorder* recorder = nullptr;
    /// Already-listening HTTP endpoint to serve on the event loop
    /// (/metrics, /healthz). Not owned.
    HttpEndpoint* http = nullptr;

    /// Graceful-shutdown flag (typically set by a SIGINT/SIGTERM handler).
    /// When it reads true the coordinator stops dispatching, drains
    /// in-flight batches, finalizes the journal and returns with
    /// completed() == false; uncommitted scenarios stay uncommitted so a
    /// --resume run picks them up.
    const std::atomic<bool>* stop = nullptr;

    /// How to launch workers. Fork calls worker_main() in the child
    /// directly (tests); Exec re-executes exec_path with the worker pipes
    /// on fds 3 and 4 (campaignd), keeping stray stdio writes out of the
    /// frame stream.
    enum class Launch { Fork, Exec };
    Launch launch = Launch::Fork;
    /// argv[0] for Launch::Exec; invoked as "<exec_path> --campaign-worker".
    std::string exec_path;

    // --- deterministic failure-injection hooks (tests/CI only) ------------
    /// Behave as if `stop` turned true after this many committed batches.
    std::uint64_t stop_after_commits = 0;  ///< 0 = disabled
    /// SIGKILL worker `kill_worker` after `kill_after_commits` committed
    /// batches, exercising the reassignment path.
    int kill_worker = -1;  ///< -1 = disabled
    std::uint64_t kill_after_commits = 0;
};

struct CoordinatorResult {
    bool completed = false;       ///< full grid committed
    /// Run ended with workers exhausted under partial_ok: the report renders
    /// what committed, explicitly marked partial with its missing ranges.
    bool partial = false;
    std::string error;            ///< set when the run ended abnormally
    std::size_t scenarios_committed = 0;
    std::size_t scenarios_resumed = 0;  ///< committed via journal replay
    std::size_t failures = 0;
    std::uint64_t shards_dispatched = 0;
    std::uint64_t shards_stolen = 0;
    std::uint64_t shards_reassigned = 0;  ///< requeued after worker death
    std::uint64_t worker_restarts = 0;
    std::uint64_t checkpoint_records = 0;
    std::size_t max_retained_rows = 0;  ///< memory bound: peak decoded rows

    // --- liveness layer ----------------------------------------------------
    std::uint64_t heartbeat_misses = 0;   ///< pings that expired unanswered
    std::uint64_t liveness_kills = 0;     ///< reaped: heartbeat silence
    std::uint64_t deadline_kills = 0;     ///< reaped: progress deadline
    std::uint64_t speculations = 0;       ///< straggler ranges re-assigned
    std::uint64_t duplicates_discarded = 0;  ///< outcome lines dropped as dupes
    std::uint64_t protocol_errors = 0;    ///< corrupt streams quarantined
    std::uint64_t chaos_faults_injected = 0;  ///< coordinator-side injections
};

class Coordinator {
public:
    Coordinator(JobSpec spec, CoordinatorOptions options);
    ~Coordinator();
    Coordinator(const Coordinator&) = delete;
    Coordinator& operator=(const Coordinator&) = delete;

    /// Runs the campaign to completion (or graceful stop / unrecoverable
    /// failure). May be called once per Coordinator.
    CoordinatorResult run();

    /// Streaming report over everything committed so far; valid after run().
    [[nodiscard]] const fleet::ReportAccumulator& report() const;
    [[nodiscard]] fleet::ReportAccumulator& report();

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

}  // namespace refpga::svc
