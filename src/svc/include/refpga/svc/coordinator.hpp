// Campaign coordinator: shards a job's scenario grid across worker
// processes, merges their streamed outcome batches, and journals progress.
//
// One single-threaded poll() event loop owns everything: worker pipes, the
// optional HTTP observability endpoint, the checkpoint journal and the
// streaming report accumulator. Workers are pure executors, so every
// consistency decision — exactly-once commits, work stealing, reassignment
// after a crash — is made in one place with no locks.
//
// Lifecycle of a scenario index range:
//
//   pending ──Assign──▶ in-flight ──Batch──▶ committed (spool + journal)
//      ▲                   │
//      │   Truncate/Ack    │ worker died: requeue [next, end)
//      └───────────────────┘
//
// Stealing is a two-step handshake (Truncate → TruncateAck) so the
// coordinator never reassigns an index the victim might still emit; a
// worker that dies mid-handshake simply has its whole remainder requeued.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "refpga/fleet/report_stream.hpp"
#include "refpga/obs/obs.hpp"
#include "refpga/svc/http.hpp"
#include "refpga/svc/job.hpp"

namespace refpga::svc {

class CoordinatorError : public std::runtime_error {
public:
    explicit CoordinatorError(const std::string& what)
        : std::runtime_error(what) {}
};

struct CoordinatorOptions {
    /// Worker processes to fork (>= 1).
    int workers = 2;
    /// Campaign threads inside each worker.
    int worker_threads = 1;
    /// Outcomes per Batch frame — the unit of commit, steal granularity and
    /// the bound on rows the coordinator ever holds in memory.
    std::uint64_t batch = 8;
    /// Scenarios per shard (the unit of assignment). 0 = grid/workers,
    /// clamped to at least one batch.
    std::uint64_t shard = 0;
    /// Only steal from a shard with at least this many uncommitted
    /// scenarios left (0 = 2 * batch).
    std::uint64_t steal_min = 0;

    /// Checkpoint journal path; empty disables checkpointing.
    std::string checkpoint_path;
    /// Resume from an existing journal at checkpoint_path instead of
    /// truncating it. The journal must match the job fingerprint.
    bool resume = false;
    /// Spool file backing the streaming report accumulator (required).
    std::string spool_path = "campaign.spool";

    /// Refork a worker that dies unexpectedly, up to max_worker_restarts
    /// per run; its in-flight range is requeued either way.
    bool restart_dead_workers = true;
    int max_worker_restarts = 2;

    /// Milliseconds of poll silence after Shutdown before a worker is
    /// presumed wedged. The first expiry sends SIGTERM (a batch that is
    /// merely slow still gets to finish and commit); a second expiry
    /// escalates to SIGKILL so the final report cannot hang forever. Size
    /// this above the slowest expected batch, or stop/resume recomputes
    /// the in-flight batches of workers killed mid-compute.
    int drain_timeout_ms = 30000;

    /// Observability sinks (both optional).
    obs::Recorder* recorder = nullptr;
    /// Already-listening HTTP endpoint to serve on the event loop
    /// (/metrics, /healthz). Not owned.
    HttpEndpoint* http = nullptr;

    /// Graceful-shutdown flag (typically set by a SIGINT/SIGTERM handler).
    /// When it reads true the coordinator stops dispatching, drains
    /// in-flight batches, finalizes the journal and returns with
    /// completed() == false; uncommitted scenarios stay uncommitted so a
    /// --resume run picks them up.
    const std::atomic<bool>* stop = nullptr;

    /// How to launch workers. Fork calls worker_main() in the child
    /// directly (tests); Exec re-executes exec_path with the worker pipes
    /// on fds 3 and 4 (campaignd), keeping stray stdio writes out of the
    /// frame stream.
    enum class Launch { Fork, Exec };
    Launch launch = Launch::Fork;
    /// argv[0] for Launch::Exec; invoked as "<exec_path> --campaign-worker".
    std::string exec_path;

    // --- deterministic failure-injection hooks (tests/CI only) ------------
    /// Behave as if `stop` turned true after this many committed batches.
    std::uint64_t stop_after_commits = 0;  ///< 0 = disabled
    /// SIGKILL worker `kill_worker` after `kill_after_commits` committed
    /// batches, exercising the reassignment path.
    int kill_worker = -1;  ///< -1 = disabled
    std::uint64_t kill_after_commits = 0;
};

struct CoordinatorResult {
    bool completed = false;       ///< full grid committed
    std::string error;            ///< set when the run ended abnormally
    std::size_t scenarios_committed = 0;
    std::size_t scenarios_resumed = 0;  ///< committed via journal replay
    std::size_t failures = 0;
    std::uint64_t shards_dispatched = 0;
    std::uint64_t shards_stolen = 0;
    std::uint64_t shards_reassigned = 0;  ///< requeued after worker death
    std::uint64_t worker_restarts = 0;
    std::uint64_t checkpoint_records = 0;
    std::size_t max_retained_rows = 0;  ///< memory bound: peak decoded rows
};

class Coordinator {
public:
    Coordinator(JobSpec spec, CoordinatorOptions options);
    ~Coordinator();
    Coordinator(const Coordinator&) = delete;
    Coordinator& operator=(const Coordinator&) = delete;

    /// Runs the campaign to completion (or graceful stop / unrecoverable
    /// failure). May be called once per Coordinator.
    CoordinatorResult run();

    /// Streaming report over everything committed so far; valid after run().
    [[nodiscard]] const fleet::ReportAccumulator& report() const;
    [[nodiscard]] fleet::ReportAccumulator& report();

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

}  // namespace refpga::svc
