// Campaign worker: the child-process half of the sharded campaign service.
//
// A worker speaks the svc wire protocol over two pipe fds. It receives the
// job spec once (Init), expands the identical scenario grid the coordinator
// holds, and then executes assigned index ranges, streaming outcome batches
// back as they complete. Between batches it drains pending control frames,
// which is what makes work stealing race-free: a Truncate can only ever
// observe the worker at a batch boundary, so the acked effective end is
// exact — every index below it has been (or is about to be) emitted, every
// index at or above it never started.
//
// Workers are execution only: no checkpointing, no aggregation, no
// observability registry. All of that lives in the coordinator, which is
// the single writer of every output artifact.
#pragma once

#include <cstdint>
#include <string>

namespace refpga::svc {

/// TruncateAck payload value meaning "that shard was already finished here;
/// nothing was stolen".
inline constexpr std::uint64_t kNothingStolen = ~std::uint64_t{0};

/// Init frame payload: "<worker_threads>\n" followed by the job JSON.
[[nodiscard]] std::string encode_init(int worker_threads,
                                      const std::string& job_json);

/// Runs the worker protocol loop until Shutdown or EOF on `in_fd`.
/// Returns the process exit code (0 on orderly shutdown, 1 after a fatal
/// error, which is also reported upstream via a WorkerError frame).
/// Never throws — a worker that cannot even report its error just exits.
[[nodiscard]] int worker_main(int in_fd, int out_fd);

}  // namespace refpga::svc
