// Minimal HTTP/1.1 endpoint for exposing coordinator observability.
//
// Just enough protocol for a Prometheus scrape or `curl`: a listening TCP
// socket on 127.0.0.1, one request per connection ("Connection: close"),
// GET only. The coordinator polls the listening fd alongside its worker
// pipes and calls serve_ready() when it turns readable, so no thread is
// spent on HTTP and the scrape handler runs on the event loop with
// consistent metric values.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>

namespace refpga::svc {

class HttpError : public std::runtime_error {
public:
    explicit HttpError(const std::string& what) : std::runtime_error(what) {}
};

class HttpEndpoint {
public:
    /// Resolves a request path to a body, or returns false for 404.
    using Handler = std::function<bool(const std::string& path, std::string& body)>;

    HttpEndpoint() = default;
    ~HttpEndpoint();
    HttpEndpoint(const HttpEndpoint&) = delete;
    HttpEndpoint& operator=(const HttpEndpoint&) = delete;

    /// Binds 127.0.0.1:`port` (port 0 = kernel-assigned) and listens.
    /// Throws HttpError on failure.
    void listen(std::uint16_t port);

    [[nodiscard]] bool listening() const { return fd_ >= 0; }
    /// Listening fd for the caller's poll set (-1 when not listening).
    [[nodiscard]] int fd() const { return fd_; }
    /// Actual bound port (resolves port 0).
    [[nodiscard]] std::uint16_t port() const { return port_; }

    /// Accepts and serves one pending connection; call when fd() polls
    /// readable. Returns false if the readiness was spurious. Client I/O
    /// errors are swallowed (a half-closed scraper must not kill a run).
    bool serve_ready(const Handler& handler);

    void close();

private:
    int fd_ = -1;
    std::uint16_t port_ = 0;
};

}  // namespace refpga::svc
