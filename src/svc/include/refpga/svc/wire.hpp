// Length-prefixed frame protocol between the campaign coordinator and its
// worker processes.
//
// Transport is a pair of pipes per worker. Each frame is:
//
//   u32 little-endian payload length | u8 message type | payload bytes
//
// Payloads are line-oriented text: control messages carry space-separated
// decimal fields, and Batch frames carry a "shard first count" header line
// followed by `count` outcome_codec lines. Text keeps the protocol
// debuggable (`xxd` on a captured stream reads almost like a log) at
// negligible cost next to running scenarios.
//
// Delivery rules the coordinator relies on:
//   - write_frame writes the whole frame or throws (partial writes and
//     EINTR are retried), so a frame observed by the reader is complete;
//   - a worker killed mid-write leaves a truncated frame that FrameReader
//     simply never yields — complete frames before it stay valid, which is
//     what makes committed batches from a dead worker trustworthy.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace refpga::svc {

class WireError : public std::runtime_error {
public:
    explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

enum class MsgType : std::uint8_t {
    Init = 1,     ///< coordinator→worker: "worker_threads\n" + job JSON
    Assign,       ///< coordinator→worker: "shard first count batch"
    Truncate,     ///< coordinator→worker: "shard new_end" (work stealing)
    Shutdown,     ///< coordinator→worker: empty payload; drain and exit
    Batch,        ///< worker→coordinator: "shard first count\n" + outcome lines
    ShardDone,    ///< worker→coordinator: "shard end"
    TruncateAck,  ///< worker→coordinator: "shard effective_end"
    WorkerError,  ///< worker→coordinator: fatal error text
    Ping,         ///< coordinator→worker: "seq" liveness probe
    Pong,         ///< worker→coordinator: "seq" echoed back
};

[[nodiscard]] const char* msg_type_name(MsgType type);

struct Frame {
    MsgType type = MsgType::Init;
    std::string payload;
};

/// Frames larger than this are a protocol violation (a batch of outcomes is
/// a few hundred KB at most; megabytes means a corrupt length prefix).
inline constexpr std::uint32_t kMaxFramePayload = 64u << 20;

/// Blocking write of one complete frame; throws WireError on any failure
/// (including EPIPE — callers treat that as worker death).
void write_frame(int fd, MsgType type, std::string_view payload);

/// Blocking read of one frame. Returns false on clean EOF at a frame
/// boundary; throws WireError on EOF mid-frame or a corrupt prefix.
[[nodiscard]] bool read_frame(int fd, Frame& out);

/// Incremental decoder for the coordinator's poll loop: feed() whatever
/// bytes arrived, then drain next() until it returns nullopt. Bytes of an
/// incomplete trailing frame are retained across feeds.
class FrameReader {
public:
    void feed(const char* data, std::size_t n) { buffer_.append(data, n); }

    /// Next complete frame, if any. Throws WireError on a corrupt prefix.
    [[nodiscard]] std::optional<Frame> next();

    /// True when buffered bytes form only part of a frame (diagnostic for
    /// worker-death handling: a truncated final frame is expected there).
    [[nodiscard]] bool mid_frame() const { return !buffer_.empty(); }

private:
    std::string buffer_;
};

// --- payload helpers --------------------------------------------------------

/// Splits a control payload of exactly `n` space-separated u64 fields;
/// throws WireError otherwise.
[[nodiscard]] std::vector<std::uint64_t> parse_fields(std::string_view payload,
                                                      std::size_t n);

/// Batch payload: header "shard first count" then `count` outcome lines.
struct BatchPayload {
    std::uint64_t shard = 0;
    std::uint64_t first = 0;
    std::vector<std::string> lines;
};

[[nodiscard]] std::string encode_batch(std::uint64_t shard, std::uint64_t first,
                                       const std::vector<std::string>& lines);
[[nodiscard]] BatchPayload parse_batch(std::string_view payload);

}  // namespace refpga::svc
