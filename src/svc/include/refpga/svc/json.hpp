// Minimal strict JSON parser for the campaign service.
//
// Job specs arrive as JSON documents (files or Init frames) and tests
// validate rendered reports; both need a real parser, not string probing.
// This is a small recursive-descent parser over the full JSON grammar
// (objects, arrays, strings with escapes, numbers, booleans, null) with two
// deliberate restrictions: documents are parsed eagerly into a DOM (job
// specs are tiny) and \u escapes outside the Basic Latin range are rejected
// (the service never produces them). Any syntax error throws JsonError with
// the byte offset.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace refpga::svc {

class JsonError : public std::runtime_error {
public:
    explicit JsonError(const std::string& what) : std::runtime_error(what) {}
};

struct JsonValue {
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    /// Members in document order (duplicate keys rejected at parse time).
    std::vector<std::pair<std::string, JsonValue>> object;

    /// Object member lookup; nullptr when absent (or not an object).
    [[nodiscard]] const JsonValue* find(std::string_view key) const;

    // Checked accessors: throw JsonError when the kind does not match.
    [[nodiscard]] bool as_bool() const;
    [[nodiscard]] double as_number() const;
    [[nodiscard]] const std::string& as_string() const;
    [[nodiscard]] const std::vector<JsonValue>& as_array() const;

    [[nodiscard]] bool is(Kind k) const { return kind == k; }
};

/// Parses one complete JSON document; trailing non-whitespace throws.
[[nodiscard]] JsonValue parse_json(std::string_view text);

}  // namespace refpga::svc
