// Figure 4 — Tasks performed in one measurement cycle (t = 100 ms).
//
// Paper: per cycle, the system samples the measurement/reference signals,
// then runs amplitude & phase calculation, capacity computation and
// filtering/level calculation, reconfiguring the slot before each stage.
// We run the full behavioural system and print the schedule, for the JCAP
// (the paper's Spartan-3 port), the accelerated JCAP of [11] and an
// ICAP-class port for comparison.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "refpga/common/table.hpp"
#include "refpga/reconfig/config_port.hpp"

namespace {

using namespace refpga;

void print_schedule(const reconfig::ConfigPortSpec& port) {
    app::SystemOptions options;
    options.variant = app::SystemVariant::ReconfiguredHw;
    options.port = port;
    app::MeasurementSystem system(options);
    system.set_true_level(0.55);
    // Warm up: the EMA filter converges over ~30 measurement cycles, and the
    // first cycle pays the initial module loads.
    for (int i = 0; i < 30; ++i) (void)system.run_cycle();
    const app::CycleReport report = system.run_cycle();

    benchkit::print_header("Figure 4",
                           "measurement cycle schedule via " + port.name);
    Table table({"task", "start (ms)", "duration (ms)"});
    for (const auto& phase : report.phases)
        table.add_row({phase.name, Table::num(phase.start_s * 1e3, 3),
                       Table::num(phase.duration_s * 1e3, 3)});
    std::cout << table.render();
    std::cout << "busy " << Table::num(report.busy_s() * 1e3, 2) << " ms of the "
              << Table::num(system.options().params.cycle_period_s * 1e3, 0)
              << " ms cycle (sampling " << Table::num(report.sampling_s * 1e3, 2)
              << " + reconfig " << Table::num(report.reconfig_s * 1e3, 2)
              << " + processing " << Table::num(report.processing_s * 1e3, 4)
              << " + scrub " << Table::num((report.scrub_s + report.repair_s) * 1e3, 2)
              << "); fits: " << (report.busy_s() < 0.1 ? "yes" : "NO") << "\n";
    std::cout << "measured level: " << Table::num(report.level, 3)
              << " (true 0.550)\n";
}

void BM_FullCycleJcap(benchmark::State& state) {
    app::SystemOptions options;
    options.variant = app::SystemVariant::ReconfiguredHw;
    app::MeasurementSystem system(options);
    system.set_true_level(0.5);
    for (auto _ : state) {
        auto report = system.run_cycle();
        benchmark::DoNotOptimize(report.level);
    }
}
BENCHMARK(BM_FullCycleJcap)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    print_schedule(reconfig::jcap_port());
    print_schedule(reconfig::jcap_accelerated_port());
    print_schedule(reconfig::icap_port());
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
