// Observability overhead gate: the refpga::obs contract is that compiled-in
// instrumentation is free until someone attaches an enabled recorder.
//
// Three configurations drive the same sinus-generator delta-sigma bit stream
// through FrontEnd::run_block_ds (the bench_frontend_stream hot path, block
// 4096):
//   bare     — no recorder attached (the seed baseline);
//   disabled — recorder attached but disabled (what every production build
//              pays for having the hooks compiled in);
//   enabled  — recorder attached and recording (the actual cost of metrics).
// Each configuration is timed best-of-N with a fresh front end per rep, so
// scheduler noise shrinks the spread instead of inflating one side.
//
// The gate (full mode only; smoke workloads are too small to time reliably
// on loaded CI machines): disabled throughput must stay within 2% of bare.
// A second, non-gating section runs a few MeasurementSystem cycles with an
// enabled recorder and prints the harvest — the cycle/reconfig/frontend
// metric taxonomy documented in DESIGN.md.
//
// Emits BENCH_obs_overhead.json next to the binary; --json mirrors it to
// stdout.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.hpp"
#include "refpga/analog/frontend.hpp"
#include "refpga/analog/sample_block.hpp"
#include "refpga/common/table.hpp"
#include "refpga/obs/obs.hpp"

namespace {

using namespace refpga;

constexpr std::uint64_t kSeed = 42;
constexpr std::size_t kBlockTicks = 4096;

bool flag(int argc, char** argv, std::string_view name) {
    for (int i = 1; i < argc; ++i)
        if (std::string_view(argv[i]) == name) return true;
    return false;
}

double now_ms() {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

analog::FrontEnd make_frontend() {
    analog::FrontEndConfig config;
    config.tank.noise_rms_v = 0.0;  // pipeline-bound, like the headline gate
    analog::FrontEnd frontend(config, kSeed);
    frontend.tank().set_level(0.6);
    return frontend;
}

struct Config {
    std::string label;
    obs::Recorder* recorder = nullptr;  ///< nullptr = bare
    double best_wall_ms = 0.0;
    double pcm_per_s = 0.0;
    std::int64_t pcm_checksum = 0;  ///< must match across configurations
};

void time_config(Config& cfg, const std::vector<std::uint8_t>& drive,
                 std::size_t pcm_pairs, int reps) {
    analog::SampleBlock out;
    const auto stream = [&](analog::FrontEnd& fe) {
        out.clear_pcm();
        out.reserve_pcm(drive.size() / 5);
        for (std::size_t at = 0; at < drive.size();) {
            const std::size_t n =
                std::min<std::size_t>(kBlockTicks, drive.size() - at);
            fe.run_block_ds({drive.data() + at, n}, out);
            at += n;
        }
    };
    {
        analog::FrontEnd warm = make_frontend();  // page in code paths
        if (cfg.recorder != nullptr) warm.set_recorder(cfg.recorder);
        stream(warm);
    }
    cfg.best_wall_ms = 0.0;
    for (int r = 0; r < reps; ++r) {
        analog::FrontEnd frontend = make_frontend();
        if (cfg.recorder != nullptr) frontend.set_recorder(cfg.recorder);
        const double t0 = now_ms();
        stream(frontend);
        const double wall = now_ms() - t0;
        if (r == 0 || wall < cfg.best_wall_ms) cfg.best_wall_ms = wall;
    }
    cfg.pcm_per_s = cfg.best_wall_ms > 0.0
                        ? static_cast<double>(pcm_pairs) / (cfg.best_wall_ms * 1e-3)
                        : 0.0;
    cfg.pcm_checksum = 0;
    for (const std::int32_t v : out.meas) cfg.pcm_checksum += v;
    for (const std::int32_t v : out.ref) cfg.pcm_checksum -= v;
}

}  // namespace

int main(int argc, char** argv) {
    const bool smoke = benchkit::smoke_mode(argc, argv);
    const bool echo_json = flag(argc, argv, "--json");
    benchkit::print_header("obs overhead",
                           std::string("instrumentation cost on the streaming "
                                       "front end") +
                               (smoke ? " [smoke]" : ""));

    const std::size_t ticks = smoke ? 200'000 : 8'000'000;
    const int reps = smoke ? 3 : 5;
    std::vector<std::uint8_t> drive(ticks);
    app::SinusGenModel sinusgen{app::AppParams{}};
    sinusgen.run_block_bits(ticks, drive.data());
    const std::size_t pcm_pairs =
        ticks / static_cast<std::size_t>(analog::FrontEndConfig{}.adc_decimation);

    obs::Recorder disabled_recorder(/*enabled=*/false);
    obs::Recorder enabled_recorder;

    Config bare{"bare (no recorder)", nullptr};
    Config disabled{"attached, disabled", &disabled_recorder};
    Config enabled{"attached, enabled", &enabled_recorder};
    // Interleaving would be fairer still, but best-of-reps already clips the
    // scheduler tail; measure in a fixed order so runs are comparable.
    time_config(bare, drive, pcm_pairs, reps);
    time_config(disabled, drive, pcm_pairs, reps);
    time_config(enabled, drive, pcm_pairs, reps);

    const bool parity_ok = bare.pcm_checksum == disabled.pcm_checksum &&
                           bare.pcm_checksum == enabled.pcm_checksum;
    const auto regression_pct = [&](const Config& cfg) {
        return bare.pcm_per_s > 0.0
                   ? 100.0 * (1.0 - cfg.pcm_per_s / bare.pcm_per_s)
                   : 0.0;
    };

    Table table({"configuration", "wall (ms)", "PCM pairs/s", "vs bare"});
    for (const Config* cfg : {&bare, &disabled, &enabled})
        table.add_row({cfg->label, Table::num(cfg->best_wall_ms, 1),
                       Table::num(cfg->pcm_per_s, 0),
                       cfg == &bare ? "baseline"
                                    : Table::num(regression_pct(*cfg), 2) + "%"});
    std::cout << table.render();
    std::cout << "PCM checksums identical across configurations: "
              << (parity_ok ? "yes" : "NO") << "\n";
    std::cout << "enabled-recorder harvest: "
              << enabled_recorder.metrics().value("frontend.ticks_total")
              << " ticks, "
              << enabled_recorder.metrics().value("frontend.blocks_total")
              << " blocks recorded\n";

    // Non-gating showcase: what an instrumented measurement cycle reports.
    {
        obs::Recorder recorder;
        app::SystemOptions options;
        options.recorder = &recorder;
        app::MeasurementSystem system(options, 11);
        system.set_true_level(0.5);
        for (int c = 0; c < 3; ++c) (void)system.run_cycle();
        std::cout << "\nthree instrumented measurement cycles:\n"
                  << recorder.metrics().render_text();
    }

    std::ostringstream js;
    js << "{\n"
       << "  \"bench\": \"obs_overhead\",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"modulator_ticks\": " << ticks << ",\n"
       << "  \"pcm_pairs\": " << pcm_pairs << ",\n"
       << "  \"bare_pcm_per_s\": " << bare.pcm_per_s << ",\n"
       << "  \"disabled_pcm_per_s\": " << disabled.pcm_per_s << ",\n"
       << "  \"enabled_pcm_per_s\": " << enabled.pcm_per_s << ",\n"
       << "  \"disabled_regression_pct\": " << regression_pct(disabled) << ",\n"
       << "  \"enabled_regression_pct\": " << regression_pct(enabled) << ",\n"
       << "  \"gate_pct\": 2.0,\n"
       << "  \"parity_ok\": " << (parity_ok ? "true" : "false") << "\n"
       << "}\n";
    std::ofstream("BENCH_obs_overhead.json") << js.str();
    if (echo_json) std::cout << js.str();

    if (!parity_ok) {
        std::cerr << "FAIL: attaching a recorder changed the PCM stream\n";
        return 1;
    }
    // The timing gate only runs in full mode: smoke workloads are too small
    // to time reliably on loaded CI machines (parity still gates above).
    if (!smoke && regression_pct(disabled) > 2.0) {
        std::cerr << "FAIL: disabled instrumentation costs "
                  << regression_pct(disabled) << "% (> 2% gate)\n";
        return 1;
    }
    return 0;
}
