// Fleet scaling — campaign throughput vs worker threads.
//
// Runs one fixed 24-scenario campaign (the test suite's acceptance sweep:
// hardware variants x parts x JCAP ports x noise) at 1, 2, 4 and
// hardware-concurrency threads and reports scenarios/sec plus the speedup
// over the serial run. Scenarios are embarrassingly parallel — each owns its
// MeasurementSystem — so throughput should track physical cores. The bench
// also re-checks the determinism guarantee: the serial and widest-parallel
// JSON reports must be byte-identical.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "refpga/common/table.hpp"
#include "refpga/fleet/campaign.hpp"
#include "refpga/fleet/report.hpp"

namespace {

using namespace refpga;

std::vector<fleet::Scenario> campaign_sweep() {
    return fleet::SweepBuilder{}
        .variants({app::SystemVariant::MonolithicHw,
                   app::SystemVariant::ReconfiguredHw})
        .parts({fabric::PartName::XC3S200, fabric::PartName::XC3S400,
                fabric::PartName::XC3S1000})
        .ports({fleet::PortKind::Jcap, fleet::PortKind::JcapAccelerated})
        .noise_levels({1e-3, 5e-3})
        .cycles(4)
        .campaign_seed(2008)
        .build();
}

void print_scaling() {
    benchkit::print_header("Fleet", "campaign throughput vs worker threads");

    const std::vector<fleet::Scenario> sweep = campaign_sweep();
    int hw = static_cast<int>(std::thread::hardware_concurrency());
    if (hw < 1) hw = 1;
    std::vector<int> thread_counts{1, 2, 4};
    if (std::find(thread_counts.begin(), thread_counts.end(), hw) ==
        thread_counts.end())
        thread_counts.push_back(hw);

    std::string serial_json;
    std::string widest_json;
    double serial_rate = 0.0;
    double rate_at_4 = 0.0;

    Table table({"threads", "wall (s)", "scenarios/sec", "speedup vs 1"});
    for (const int threads : thread_counts) {
        const auto begin = std::chrono::steady_clock::now();
        const fleet::CampaignResult result =
            fleet::CampaignRunner(threads).run(sweep);
        const double seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
                .count();
        const double rate = static_cast<double>(sweep.size()) / seconds;
        if (threads == 1) {
            serial_rate = rate;
            serial_json = fleet::CampaignReport::from(result).render_json();
        }
        if (threads == 4) rate_at_4 = rate;
        if (threads == thread_counts.back())
            widest_json = fleet::CampaignReport::from(result).render_json();
        table.add_row({std::to_string(threads), Table::num(seconds, 3),
                       Table::num(rate, 2),
                       Table::num(serial_rate > 0.0 ? rate / serial_rate : 1.0, 2) +
                           "x"});
    }
    std::cout << table.render();
    std::cout << "hardware concurrency: " << hw << " (speedup is bounded by "
              << "physical cores; 4-thread target >1.5x needs >=2 cores)\n";
    if (rate_at_4 > 0.0 && serial_rate > 0.0)
        std::cout << "4-thread speedup: " << Table::num(rate_at_4 / serial_rate, 2)
                  << "x\n";
    std::cout << "serial vs parallel report byte-identical: "
              << (serial_json == widest_json ? "yes" : "NO — DETERMINISM BUG")
              << "\n";
}

void BM_SingleScenario(benchmark::State& state) {
    std::vector<fleet::Scenario> sweep =
        fleet::SweepBuilder{}
            .variants({app::SystemVariant::ReconfiguredHw})
            .cycles(2)
            .build();
    const fleet::CampaignRunner runner(1);
    for (auto _ : state) {
        auto result = runner.run(sweep);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_SingleScenario)->Unit(benchmark::kMillisecond);

void BM_SweepExpansion(benchmark::State& state) {
    for (auto _ : state) {
        auto sweep = campaign_sweep();
        benchmark::DoNotOptimize(sweep);
    }
}
BENCHMARK(BM_SweepExpansion);

void BM_ReportRender(benchmark::State& state) {
    const fleet::CampaignResult result =
        fleet::CampaignRunner(1).run(campaign_sweep());
    const fleet::CampaignReport report = fleet::CampaignReport::from(result);
    for (auto _ : state) {
        auto json = report.render_json();
        benchmark::DoNotOptimize(json);
    }
}
BENCHMARK(BM_ReportRender);

}  // namespace

int main(int argc, char** argv) {
    print_scaling();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
