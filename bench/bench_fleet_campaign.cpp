// Fleet scaling — in-process campaign throughput vs worker threads.
//
// Runs one fixed campaign sweep (the acceptance sweep: hardware variants x
// parts x JCAP ports x noise) at 1, 2, 4 and hardware-concurrency threads
// and reports scenarios/sec plus the speedup over the serial run. Scenarios
// are embarrassingly parallel — each owns its MeasurementSystem — so
// throughput should track physical cores. The bench also re-checks the
// determinism guarantee: the serial and widest-parallel JSON reports must
// be byte-identical.
//
// Emits BENCH_fleet_campaign.json next to the binary; --json mirrors it to
// stdout. Exit status is non-zero on a determinism violation or (full mode,
// >= 2 cores) a 4-thread speedup below the 1.5x target, so CI can run it as
// a check. The process-level analogue of this bench is bench_svc_scale.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "refpga/common/table.hpp"
#include "refpga/fleet/campaign.hpp"
#include "refpga/fleet/report.hpp"

namespace {

using namespace refpga;

bool flag(int argc, char** argv, std::string_view name) {
    for (int i = 1; i < argc; ++i)
        if (std::string_view(argv[i]) == name) return true;
    return false;
}

std::vector<fleet::Scenario> campaign_sweep(bool smoke) {
    fleet::SweepBuilder builder;
    builder.variants({app::SystemVariant::MonolithicHw,
                      app::SystemVariant::ReconfiguredHw})
        .ports({fleet::PortKind::Jcap, fleet::PortKind::JcapAccelerated})
        .campaign_seed(2008);
    if (smoke) {
        builder.parts({fabric::PartName::XC3S200, fabric::PartName::XC3S400})
            .noise_levels({1e-3})
            .cycles(2);
    } else {
        builder.parts({fabric::PartName::XC3S200, fabric::PartName::XC3S400,
                       fabric::PartName::XC3S1000})
            .noise_levels({1e-3, 5e-3})
            .cycles(4);
    }
    return builder.build();
}

struct Run {
    int threads = 0;
    double wall_s = 0.0;
    double scenarios_per_s = 0.0;
    double speedup = 1.0;
};

}  // namespace

int main(int argc, char** argv) {
    const bool smoke = benchkit::smoke_mode(argc, argv);
    const bool echo_json = flag(argc, argv, "--json");
    benchkit::print_header("Fleet",
                           std::string("campaign throughput vs worker threads") +
                               (smoke ? " [smoke]" : ""));

    const std::vector<fleet::Scenario> sweep = campaign_sweep(smoke);
    int hw = static_cast<int>(std::thread::hardware_concurrency());
    if (hw < 1) hw = 1;
    std::vector<int> thread_counts{1, 2, 4};
    if (std::find(thread_counts.begin(), thread_counts.end(), hw) ==
        thread_counts.end())
        thread_counts.push_back(hw);

    std::string serial_json;
    std::string widest_json;
    double serial_rate = 0.0;
    double speedup_at_4 = 0.0;
    std::vector<Run> runs;

    Table table({"threads", "wall (s)", "scenarios/sec", "speedup vs 1"});
    for (const int threads : thread_counts) {
        const auto begin = std::chrono::steady_clock::now();
        const fleet::CampaignResult result =
            fleet::CampaignRunner(threads).run(sweep);
        const double seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
                .count();

        Run run;
        run.threads = threads;
        run.wall_s = seconds;
        run.scenarios_per_s = static_cast<double>(sweep.size()) / seconds;
        if (threads == 1) {
            serial_rate = run.scenarios_per_s;
            serial_json = fleet::CampaignReport::from(result).render_json();
        }
        run.speedup = serial_rate > 0.0 ? run.scenarios_per_s / serial_rate : 1.0;
        if (threads == 4) speedup_at_4 = run.speedup;
        if (threads == thread_counts.back())
            widest_json = fleet::CampaignReport::from(result).render_json();
        runs.push_back(run);
        table.add_row({std::to_string(threads), Table::num(seconds, 3),
                       Table::num(run.scenarios_per_s, 2),
                       Table::num(run.speedup, 2) + "x"});
    }
    std::cout << table.render();
    std::cout << "hardware concurrency: " << hw << " (speedup is bounded by "
              << "physical cores; 4-thread target >=1.5x needs >=2 cores)\n";
    const bool identical = serial_json == widest_json;
    std::cout << "serial vs parallel report byte-identical: "
              << (identical ? "yes" : "NO — DETERMINISM BUG") << "\n";

    std::ostringstream js;
    js << "{\n"
       << "  \"bench\": \"fleet_campaign\",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"scenarios\": " << sweep.size() << ",\n"
       << "  \"hardware_concurrency\": " << hw << ",\n"
       << "  \"threads\": [";
    for (std::size_t i = 0; i < runs.size(); ++i)
        js << (i > 0 ? ", " : "") << "{\"threads\": " << runs[i].threads
           << ", \"wall_s\": " << runs[i].wall_s
           << ", \"scenarios_per_s\": " << runs[i].scenarios_per_s
           << ", \"speedup_vs_1\": " << runs[i].speedup << "}";
    js << "],\n"
       << "  \"speedup_at_4_threads\": " << speedup_at_4 << ",\n"
       << "  \"report_byte_identical\": " << (identical ? "true" : "false") << "\n"
       << "}\n";
    std::ofstream("BENCH_fleet_campaign.json") << js.str();
    if (echo_json) std::cout << js.str();

    if (!identical) {
        std::cerr << "FAIL: parallel campaign report differs from the serial "
                     "report\n";
        return 1;
    }
    // Timing gates only run in full mode on multi-core hosts: smoke
    // workloads are too small to time reliably on loaded CI machines (the
    // determinism gate still holds).
    if (!smoke && hw >= 2 && speedup_at_4 < 1.5) {
        std::cerr << "FAIL: 4-thread speedup " << speedup_at_4
                  << "x is below the 1.5x target on a " << hw << "-core host\n";
        return 1;
    }
    return 0;
}
