// §4.3 reallocation engine: incremental vs reference, on the Table-2 scenario.
//
// The incremental engine (precomputed adjacency, scratch-route delta costing,
// cached net power, lazy timing, parallel candidate evaluation) must produce a
// byte-identical ReallocateReport to the retained reference engine — at every
// thread count — while being at least ~5x faster. This bench measures both,
// checks the equality and the total-power invariant, and emits a
// machine-readable BENCH_par_reallocate.json next to the binary. Exit status
// is non-zero on any invariant violation, so CI can run it as a check.
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "refpga/common/table.hpp"
#include "refpga/par/reallocate.hpp"

namespace {

using namespace refpga;

constexpr double kClockHz = 50e6;

struct RunResult {
    par::ReallocateReport report;
    double wall_ms = 0.0;
    long overflow = 0;
};

/// Builds a fresh implementation (the flow is deterministic, so every run
/// starts from the same placement and routes) and times only the optimizer.
RunResult run_engine(const netlist::Netlist& nl, fabric::PartName part,
                     const sim::ActivityMap& activity,
                     par::ReallocateOptions options) {
    benchkit::Implementation impl(nl, part, 0.05);
    const auto t0 = std::chrono::steady_clock::now();
    RunResult r;
    r.report = par::optimize_net_power(impl.placement, impl.routed, activity, options);
    const auto t1 = std::chrono::steady_clock::now();
    r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    r.overflow = impl.routed.overflow_count();
    return r;
}

double nets_per_s(const RunResult& r) {
    return r.wall_ms > 0.0
               ? static_cast<double>(r.report.nets.size()) / (r.wall_ms * 1e-3)
               : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
    const bool smoke = benchkit::smoke_mode(argc, argv);
    benchkit::print_header("PAR reallocate",
                           std::string("incremental vs reference engine") +
                               (smoke ? " [smoke]" : ""));

    // Table-2 scenario: the full system on the XC3S1000 (smoke: the hardware
    // core alone on the XC3S400, fewer stimulus cycles).
    const app::SystemNetlist sys =
        smoke ? app::build_system_netlist(
                    {app::AppParams{}, soc::SoftIpBudgets{}, /*include_soft_ip=*/false})
              : app::build_system_netlist({});
    const fabric::PartName part =
        smoke ? fabric::PartName::XC3S400 : fabric::PartName::XC3S1000;
    const sim::ActivityMap activity =
        benchkit::system_activity_via_vcd(sys.nl, kClockHz, smoke ? 64 : 256);

    par::ReallocateOptions options;
    options.net_count = 8;

    options.engine = par::ReallocEngine::Reference;
    const RunResult ref = run_engine(sys.nl, part, activity, options);

    options.engine = par::ReallocEngine::Incremental;
    const std::vector<int> thread_counts = smoke ? std::vector<int>{1, 4}
                                                 : std::vector<int>{1, 4, 16};
    std::vector<RunResult> inc;
    for (const int threads : thread_counts) {
        options.threads = threads;
        inc.push_back(run_engine(sys.nl, part, activity, options));
    }

    bool identical = true;
    for (const RunResult& r : inc)
        if (!(r.report == ref.report)) identical = false;
    const bool power_ok = ref.report.total_after_uw <= ref.report.total_before_uw;

    Table table({"engine", "wall (ms)", "nets/s", "speedup"});
    table.add_row({"reference", Table::num(ref.wall_ms, 1),
                   Table::num(nets_per_s(ref), 1), "1.0x"});
    double best_ms = ref.wall_ms;
    for (std::size_t i = 0; i < inc.size(); ++i) {
        table.add_row({"incremental t=" + std::to_string(thread_counts[i]),
                       Table::num(inc[i].wall_ms, 1),
                       Table::num(nets_per_s(inc[i]), 1),
                       Table::num(ref.wall_ms / inc[i].wall_ms, 1) + "x"});
        best_ms = std::min(best_ms, inc[i].wall_ms);
    }
    std::cout << table.render();
    std::cout << "total dynamic power: " << Table::num(ref.report.total_before_uw * 1e-3)
              << " mW -> " << Table::num(ref.report.total_after_uw * 1e-3) << " mW\n";
    std::cout << "reports byte-identical across engines and thread counts: "
              << (identical ? "yes" : "NO") << "\n";

    std::ofstream json("BENCH_par_reallocate.json");
    json << "{\n"
         << "  \"bench\": \"par_reallocate\",\n"
         << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
         << "  \"scenario\": \""
         << (smoke ? "xc3s400_core_only" : "table2_xc3s1000_full_system") << "\",\n"
         << "  \"nets_optimized\": " << ref.report.nets.size() << ",\n"
         << "  \"reference\": {\"wall_ms\": " << ref.wall_ms
         << ", \"nets_per_s\": " << nets_per_s(ref) << "},\n"
         << "  \"incremental\": [";
    for (std::size_t i = 0; i < inc.size(); ++i)
        json << (i > 0 ? ", " : "") << "{\"threads\": " << thread_counts[i]
             << ", \"wall_ms\": " << inc[i].wall_ms
             << ", \"nets_per_s\": " << nets_per_s(inc[i]) << "}";
    json << "],\n"
         << "  \"speedup_best\": " << (best_ms > 0.0 ? ref.wall_ms / best_ms : 0.0)
         << ",\n"
         << "  \"total_before_uw\": " << ref.report.total_before_uw << ",\n"
         << "  \"total_after_uw\": " << ref.report.total_after_uw << ",\n"
         << "  \"critical_before_ps\": " << ref.report.critical_before_ps << ",\n"
         << "  \"critical_after_ps\": " << ref.report.critical_after_ps << ",\n"
         << "  \"overflow_count\": " << ref.overflow << ",\n"
         << "  \"reports_identical\": " << (identical ? "true" : "false") << "\n"
         << "}\n";

    if (!identical || !power_ok) {
        std::cerr << "FAIL: " << (!identical ? "reports differ across engines/threads"
                                             : "total power increased")
                  << "\n";
        return 1;
    }
    return 0;
}
