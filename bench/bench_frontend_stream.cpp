// Block-streaming front end: throughput and cycle latency vs block size.
//
// The Fig. 4 sample window (256 PCM pairs at 3.2 MHz plus two settling
// windows, i.e. 3840 modulator ticks per cycle) is the hot loop of every
// cycle and every campaign scenario. This bench drives the same waveform
// through the retained per-sample path (the pre-streaming implementation),
// the per-sample API (block-of-1 wrappers) and run_block_ds at several block
// sizes, checks the PCM streams are bit-identical, and measures samples/s
// plus the end-to-end MeasurementSystem cycle latency vs stream_block_ticks.
//
// Two plant conditions are measured. With tank noise off the window is
// pipeline-bound and the fused kernel's speedup is the headline (and the 3x
// regression gate). With noise on, every tick must reproduce the reference
// path's two Irwin-Hall Gaussians — 24 serial xoshiro draws whose RNG-state
// recurrence dominates the tick regardless of batching — so the achievable
// speedup is bounded near the RNG floor and reported for context.
//
// Emits BENCH_frontend_stream.json next to the binary; --json mirrors it to
// stdout. Exit status is non-zero on a parity violation or (full mode) a
// noise-off speedup below the 3x target, so CI can run it as a check.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.hpp"
#include "refpga/analog/frontend.hpp"
#include "refpga/analog/sample_block.hpp"
#include "refpga/common/table.hpp"

namespace {

using namespace refpga;

constexpr std::uint64_t kSeed = 42;

bool flag(int argc, char** argv, std::string_view name) {
    for (int i = 1; i < argc; ++i)
        if (std::string_view(argv[i]) == name) return true;
    return false;
}

double now_ms() {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

struct Throughput {
    std::string label;
    double wall_ms = 0.0;
    double pcm_per_s = 0.0;
    int block_ticks = 0;  ///< 0 = reference path, 1 = per-sample API
};

/// One plant condition's full measurement set.
struct Suite {
    double noise_rms = 0.0;
    Throughput reference;
    Throughput api;
    std::vector<Throughput> blocks;
    bool parity_ok = true;

    [[nodiscard]] const Throughput& best() const {
        return *std::max_element(blocks.begin(), blocks.end(),
                                 [](const Throughput& a, const Throughput& b) {
                                     return a.pcm_per_s < b.pcm_per_s;
                                 });
    }
    [[nodiscard]] double speedup_vs_reference() const {
        return reference.pcm_per_s > 0.0 ? best().pcm_per_s / reference.pcm_per_s
                                         : 0.0;
    }
    [[nodiscard]] double speedup_vs_api() const {
        return api.pcm_per_s > 0.0 ? best().pcm_per_s / api.pcm_per_s : 0.0;
    }
};

analog::FrontEnd make_frontend(double noise_rms) {
    analog::FrontEndConfig config;
    config.tank.noise_rms_v = noise_rms;
    analog::FrontEnd frontend(config, kSeed);
    frontend.tank().set_level(0.6);
    return frontend;
}

/// Streams `drive` through run(frontend, drive) and reports PCM pairs/s.
template <typename Run>
Throughput time_run(const std::string& label, int block_ticks, double noise_rms,
                    const std::vector<std::uint8_t>& drive, std::size_t pcm_pairs,
                    Run run) {
    Throughput t;
    t.label = label;
    t.block_ticks = block_ticks;
    {
        analog::FrontEnd warm = make_frontend(noise_rms);  // page in code paths
        run(warm, drive);
    }
    analog::FrontEnd frontend = make_frontend(noise_rms);
    const double t0 = now_ms();
    run(frontend, drive);
    t.wall_ms = now_ms() - t0;
    t.pcm_per_s =
        t.wall_ms > 0.0 ? static_cast<double>(pcm_pairs) / (t.wall_ms * 1e-3) : 0.0;
    return t;
}

Suite run_suite(double noise_rms, const std::vector<std::uint8_t>& drive,
                std::size_t pcm_pairs, const std::vector<int>& block_sizes) {
    Suite suite;
    suite.noise_rms = noise_rms;

    // Retained pre-streaming path (component-by-component steps): the
    // baseline the refactor's speedup is measured against.
    analog::SampleBlock baseline_pcm;
    suite.reference = time_run(
        "per-sample (reference)", 0, noise_rms, drive, pcm_pairs,
        [&baseline_pcm](analog::FrontEnd& fe, const std::vector<std::uint8_t>& d) {
            baseline_pcm.clear_pcm();
            baseline_pcm.reserve_pcm(d.size() / 5);
            for (const std::uint8_t bit : d)
                if (const auto pcm = fe.step_ds_bit_reference(bit != 0)) {
                    baseline_pcm.meas.push_back(pcm->meas);
                    baseline_pcm.ref.push_back(pcm->ref);
                }
        });

    // Per-sample public API: block-of-1 wrappers over the fused kernel.
    suite.api = time_run(
        "per-sample API (block of 1)", 1, noise_rms, drive, pcm_pairs,
        [](analog::FrontEnd& fe, const std::vector<std::uint8_t>& d) {
            std::int64_t sink = 0;
            for (const std::uint8_t bit : d)
                if (const auto pcm = fe.step_ds_bit(bit != 0))
                    sink += pcm->meas + pcm->ref;
            if (sink == 0x7fffffff) std::cout << "";  // keep the loop live
        });

    for (const int bs : block_sizes) {
        analog::SampleBlock out;
        suite.blocks.push_back(time_run(
            "run_block " + std::to_string(bs), bs, noise_rms, drive, pcm_pairs,
            [bs, &out](analog::FrontEnd& fe, const std::vector<std::uint8_t>& d) {
                out.clear_pcm();
                out.reserve_pcm(d.size() / 5);
                for (std::size_t at = 0; at < d.size();) {
                    const std::size_t n = std::min<std::size_t>(
                        static_cast<std::size_t>(bs), d.size() - at);
                    fe.run_block_ds({d.data() + at, n}, out);
                    at += n;
                }
            }));
        if (out.meas != baseline_pcm.meas || out.ref != baseline_pcm.ref) {
            suite.parity_ok = false;
            std::cerr << "PARITY VIOLATION at block size " << bs << " (noise "
                      << noise_rms << ")\n";
        }
    }
    return suite;
}

/// Mean MeasurementSystem::run_cycle wall time at one stream_block_ticks.
double cycle_ms(int stream_block_ticks, int cycles) {
    app::SystemOptions options;
    options.stream_block_ticks = stream_block_ticks;
    app::MeasurementSystem system(options, 11);
    system.set_true_level(0.5);
    (void)system.run_cycle();  // warm-up: first cycle grows the block buffers
    const double t0 = now_ms();
    for (int c = 0; c < cycles; ++c) (void)system.run_cycle();
    return (now_ms() - t0) / cycles;
}

void print_suite(const Suite& suite) {
    std::cout << "tank noise " << suite.noise_rms << " V rms:\n";
    Table table({"path", "wall (ms)", "PCM pairs/s", "speedup"});
    table.add_row({suite.reference.label, Table::num(suite.reference.wall_ms, 1),
                   Table::num(suite.reference.pcm_per_s, 0), "1.0x"});
    table.add_row({suite.api.label, Table::num(suite.api.wall_ms, 1),
                   Table::num(suite.api.pcm_per_s, 0),
                   Table::num(suite.api.pcm_per_s / suite.reference.pcm_per_s, 1) +
                       "x"});
    for (const Throughput& t : suite.blocks)
        table.add_row({t.label, Table::num(t.wall_ms, 1), Table::num(t.pcm_per_s, 0),
                       Table::num(t.pcm_per_s / suite.reference.pcm_per_s, 1) + "x"});
    std::cout << table.render();
}

void json_suite(std::ostringstream& js, const Suite& suite) {
    js << "{\"noise_rms_v\": " << suite.noise_rms
       << ", \"reference\": {\"wall_ms\": " << suite.reference.wall_ms
       << ", \"pcm_per_s\": " << suite.reference.pcm_per_s
       << "}, \"per_sample_api\": {\"wall_ms\": " << suite.api.wall_ms
       << ", \"pcm_per_s\": " << suite.api.pcm_per_s << "}, \"blocks\": [";
    for (std::size_t i = 0; i < suite.blocks.size(); ++i)
        js << (i > 0 ? ", " : "") << "{\"block_ticks\": " << suite.blocks[i].block_ticks
           << ", \"wall_ms\": " << suite.blocks[i].wall_ms
           << ", \"pcm_per_s\": " << suite.blocks[i].pcm_per_s << "}";
    js << "], \"best_block_ticks\": " << suite.best().block_ticks
       << ", \"speedup_vs_reference\": " << suite.speedup_vs_reference()
       << ", \"speedup_vs_per_sample_api\": " << suite.speedup_vs_api()
       << ", \"parity_ok\": " << (suite.parity_ok ? "true" : "false") << "}";
}

}  // namespace

int main(int argc, char** argv) {
    const bool smoke = benchkit::smoke_mode(argc, argv);
    const bool echo_json = flag(argc, argv, "--json");
    benchkit::print_header("frontend stream",
                           std::string("block pipeline vs per-sample path") +
                               (smoke ? " [smoke]" : ""));

    // The drive is the real sinus generator's delta-sigma bit stream — the
    // same stimulus run_cycle feeds the front end (Fig. 4 sample window).
    const std::size_t ticks = smoke ? 200'000 : 8'000'000;
    std::vector<std::uint8_t> drive(ticks);
    app::SinusGenModel sinusgen{app::AppParams{}};
    sinusgen.run_block_bits(ticks, drive.data());
    const std::size_t pcm_pairs =
        ticks / static_cast<std::size_t>(analog::FrontEndConfig{}.adc_decimation);

    const std::vector<int> block_sizes = {16, 64, 256, 1024, 4096};
    const Suite quiet = run_suite(0.0, drive, pcm_pairs, block_sizes);
    const Suite noisy = run_suite(1e-3, drive, pcm_pairs, block_sizes);
    print_suite(quiet);
    print_suite(noisy);

    // End-to-end cycle latency (sampling + processing + reconfig) vs block
    // size — what a fleet campaign actually pays per cycle.
    const int cycles = smoke ? 3 : 20;
    const std::vector<int> cycle_settings = {0, 1, 256, 4096};
    std::vector<double> cycle_wall_ms;
    Table cycle_table({"stream_block_ticks", "cycle wall (ms)"});
    for (const int setting : cycle_settings) {
        cycle_wall_ms.push_back(cycle_ms(setting, cycles));
        cycle_table.add_row({setting == 0 ? "0 (reference)" : std::to_string(setting),
                             Table::num(cycle_wall_ms.back(), 2)});
    }
    std::cout << cycle_table.render();
    std::cout << "noise-off: " << Table::num(quiet.speedup_vs_reference(), 2)
              << "x vs per-sample reference (best " << quiet.best().label << ", "
              << Table::num(quiet.best().pcm_per_s * 1e-6, 2) << " M pairs/s)\n";
    std::cout << "noise-on:  " << Table::num(noisy.speedup_vs_reference(), 2)
              << "x vs per-sample reference (RNG-bound; draw order preserved)\n";
    std::cout << "PCM bit-identical across all block sizes: "
              << (quiet.parity_ok && noisy.parity_ok ? "yes" : "NO") << "\n";

    std::ostringstream js;
    js << "{\n"
       << "  \"bench\": \"frontend_stream\",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"modulator_ticks\": " << ticks << ",\n"
       << "  \"pcm_pairs\": " << pcm_pairs << ",\n"
       << "  \"noise_off\": ";
    json_suite(js, quiet);
    js << ",\n  \"noise_on\": ";
    json_suite(js, noisy);
    js << ",\n  \"cycle_latency_ms\": [";
    for (std::size_t i = 0; i < cycle_settings.size(); ++i)
        js << (i > 0 ? ", " : "") << "{\"stream_block_ticks\": " << cycle_settings[i]
           << ", \"wall_ms\": " << cycle_wall_ms[i] << "}";
    js << "],\n"
       << "  \"speedup_sample_window\": " << quiet.speedup_vs_reference() << ",\n"
       << "  \"parity_ok\": "
       << (quiet.parity_ok && noisy.parity_ok ? "true" : "false") << "\n"
       << "}\n";
    std::ofstream("BENCH_frontend_stream.json") << js.str();
    if (echo_json) std::cout << js.str();

    if (!quiet.parity_ok || !noisy.parity_ok) {
        std::cerr << "FAIL: streamed PCM differs from the per-sample path\n";
        return 1;
    }
    // Timing gates only run in full mode: smoke workloads are too small to
    // time reliably on loaded CI machines (the parity gate still holds).
    if (!smoke && quiet.speedup_vs_reference() < 3.0) {
        std::cerr << "FAIL: noise-off fused-kernel speedup "
                  << quiet.speedup_vs_reference() << "x is below the 3x target\n";
        return 1;
    }
    return 0;
}
