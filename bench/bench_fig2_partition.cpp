// Figure 2 / Figure 5 — Static/dynamic partitioning with bus macros.
//
// Paper: the FPGA is split into a static side (MicroBlaze, FSL, OPB, IP
// cores) and a dynamic side holding one reconfigurable slot; slice-based bus
// macros carry every boundary signal. Figure 5 shows the placed system in
// FPGA Editor. We verify the boundary discipline, place the system with the
// Fig. 2 floorplan and render an ASCII occupancy map of the die.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "refpga/common/table.hpp"
#include "refpga/reconfig/busmacro.hpp"

namespace {

using namespace refpga;

void print_partition_report() {
    benchkit::print_header("Figure 2", "static/dynamic partitioning and bus macros");

    const app::SystemNetlist sys = app::build_system_netlist({});
    const auto violations = reconfig::check_boundaries(sys.nl);
    std::cout << "boundary-crossing nets without bus macro: " << violations.size()
              << (violations.empty() ? " (clean, as required)" : " (VIOLATIONS!)")
              << "\n";

    std::size_t macro_cells = 0;
    for (const auto& cell : sys.nl.cells())
        if (cell.name.find(reconfig::kBusMacroTag) != std::string::npos) ++macro_cells;
    std::cout << "bus macro buffer LUTs: " << macro_cells << " ("
              << macro_cells / 2 << " boundary signals)\n";
}

void print_floorplan() {
    benchkit::print_header("Figure 5", "placed system occupancy map (XC3S1000)");

    const app::SystemNetlist sys = app::build_system_netlist({});
    const fabric::Device dev(fabric::PartName::XC3S1000);
    par::PackedDesign packed = par::pack(sys.nl);
    par::Placement placement(dev, sys.nl, packed);
    // Fig. 2 floorplan: static on the left half, dynamic slot columns on the
    // right (full height, because Spartan-3 frames are column-granular).
    const int split = dev.cols() / 2;
    placement.constrain(sys.static_part, {0, split, 0, dev.rows()});
    placement.constrain(sys.amp_part, {split, dev.cols(), 0, dev.rows()});
    placement.constrain(sys.cap_part, {split, dev.cols(), 0, dev.rows()});
    placement.constrain(sys.filt_part, {split, dev.cols(), 0, dev.rows()});
    placement.place_initial();

    // Occupancy map: one character per CLB tile, labelled by the dominant
    // partition of its slices ('.': empty, 'S' static, 'A' amp, 'C' cap,
    // 'F' filter).
    std::vector<std::string> grid(static_cast<std::size_t>(dev.rows()),
                                  std::string(static_cast<std::size_t>(dev.cols()), '.'));
    for (std::uint32_t si = 0; si < packed.slice_count(); ++si) {
        const auto pos = placement.slice_pos(par::SliceId{si});
        const auto part = packed.slices()[si].partition.value();
        const char mark = part == 0 ? 'S' : (part == 1 ? 'A' : (part == 2 ? 'C' : 'F'));
        grid[static_cast<std::size_t>(pos.y)][static_cast<std::size_t>(pos.x)] = mark;
    }
    // Print every second row to keep the figure terminal-sized.
    for (int y = dev.rows() - 1; y >= 0; y -= 2)
        std::cout << grid[static_cast<std::size_t>(y)] << '\n';
    std::cout << "legend: S=static  A=amp_phase  C=capacity  F=filter  .=free\n";
    std::cout << "(dynamic partitions share the right-hand column range; at run\n"
              << " time only one of them is configured into the slot)\n";
}

void BM_BoundaryCheck(benchmark::State& state) {
    const app::SystemNetlist sys = app::build_system_netlist({});
    for (auto _ : state) {
        auto violations = reconfig::check_boundaries(sys.nl);
        benchmark::DoNotOptimize(violations);
    }
}
BENCHMARK(BM_BoundaryCheck)->Unit(benchmark::kMillisecond);

void BM_RegionedPlacement(benchmark::State& state) {
    const app::SystemNetlist sys = app::build_system_netlist({});
    const fabric::Device dev(fabric::PartName::XC3S1000);
    for (auto _ : state) {
        par::PackedDesign packed = par::pack(sys.nl);
        par::Placement placement(dev, sys.nl, packed);
        placement.constrain(sys.static_part, {0, dev.cols() / 2, 0, dev.rows()});
        placement.place_initial();
        benchmark::DoNotOptimize(placement.total_hpwl());
    }
}
BENCHMARK(BM_RegionedPlacement)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    print_partition_report();
    print_floorplan();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
