// §2/§4 motivation — Total system power across implementation options.
//
// The paper's argument chain: a plain FPGA port burns more power than the
// original low-power microcontroller; integrating the converters, moving the
// algorithms to hardware (enabling a lower clock) and downsizing the device
// via partial reconfiguration claw that back. We run the XPower-style
// estimator over placed-and-routed variants and add the reconfiguration
// energy amortized over the 100 ms cycle.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "refpga/common/table.hpp"
#include "refpga/power/estimator.hpp"
#include "refpga/reconfig/config_port.hpp"
#include "refpga/reconfig/controller.hpp"

namespace {

using namespace refpga;

struct VariantPower {
    std::string name;
    double static_mw = 0.0;
    double dynamic_mw = 0.0;
    double reconfig_mw = 0.0;  ///< amortized over the 100 ms cycle

    [[nodiscard]] double total() const { return static_mw + dynamic_mw + reconfig_mw; }
};

VariantPower measure_variant(const std::string& name,
                             const app::SystemNetlistOptions& nl_options,
                             fabric::PartName part, double clock_hz,
                             double reconfig_mj_per_cycle) {
    const app::SystemNetlist sys = app::build_system_netlist(nl_options);
    const sim::ActivityMap activity =
        benchkit::system_activity_via_vcd(sys.nl, clock_hz, 192);
    benchkit::Implementation impl(sys.nl, part, 0.04);
    const power::PowerReport report =
        power::estimate_power(impl.routed, activity, clock_hz);
    VariantPower v;
    v.name = name;
    v.static_mw = report.static_mw;
    v.dynamic_mw = report.dynamic_mw();
    v.reconfig_mw = reconfig_mj_per_cycle / 0.1;  // mJ per 100 ms -> mW
    return v;
}

void print_breakdown() {
    benchkit::print_header("Power breakdown",
                           "system variants, XPower-style estimation");

    std::vector<VariantPower> variants;

    // Reference point: the original low-power microcontroller solution
    // (datasheet-class model: ~3 mW active core + 5 mW analog front end).
    VariantPower mcu;
    mcu.name = "low-power microcontroller (original product)";
    mcu.static_mw = 0.4;
    mcu.dynamic_mw = 7.6;
    variants.push_back(mcu);

    // Monolithic FPGA port: everything resident on an XC3S1000 at 50 MHz.
    app::SystemNetlistOptions mono;
    variants.push_back(measure_variant("FPGA monolithic, XC3S1000 @ 50 MHz", mono,
                                       fabric::PartName::XC3S1000, 50e6, 0.0));

    // Reconfigured: only static + largest module resident, XC3S400, 50 MHz,
    // plus 3 JCAP loads per cycle.
    const fabric::Device s400(fabric::PartName::XC3S400);
    const auto port = reconfig::jcap_port();
    const auto slot =
        reconfig::Bitstream::partial(s400, "m", 0, s400.cols() / 3);
    const double reconfig_mj = 3.0 * port.config_energy_mj(slot);
    app::SystemNetlistOptions resident;
    resident.include_capacity = false;
    resident.include_filter = false;
    variants.push_back(measure_variant(
        "FPGA reconfigured (1 slot), XC3S400 @ 50 MHz + JCAP", resident,
        fabric::PartName::XC3S400, 50e6, reconfig_mj));

    // Reconfigured + lowered clock: the x1000 hardware speedup leaves room to
    // run the fabric at 12.5 MHz and still finish well inside the cycle.
    variants.push_back(measure_variant(
        "FPGA reconfigured, XC3S400 @ 12.5 MHz + JCAP", resident,
        fabric::PartName::XC3S400, 12.5e6, reconfig_mj));

    Table table({"variant", "static (mW)", "dynamic (mW)", "reconfig (mW)",
                 "total (mW)"});
    for (const auto& v : variants)
        table.add_row({v.name, Table::num(v.static_mw, 1), Table::num(v.dynamic_mw, 1),
                       Table::num(v.reconfig_mw, 2), Table::num(v.total(), 1)});
    std::cout << table.render();

    const double mono_total = variants[1].total();
    const double best_fpga = variants.back().total();
    std::cout << "FPGA power recovered by the paper's methodology: "
              << Table::num(mono_total, 1) << " mW -> " << Table::num(best_fpga, 1)
              << " mW (" << Table::num(100.0 * (mono_total - best_fpga) / mono_total, 0)
              << "% lower)\n";
    std::cout << "remaining gap to the microcontroller buys run-time "
                 "adaptation, fault handling and interface flexibility (§5)\n";
}

void BM_PowerEstimate(benchmark::State& state) {
    const app::SystemNetlist sys = app::build_system_netlist(
        {app::AppParams{}, soc::SoftIpBudgets{}, /*include_soft_ip=*/false});
    const sim::ActivityMap activity =
        benchkit::system_activity_via_vcd(sys.nl, 50e6, 64);
    benchkit::Implementation impl(sys.nl, fabric::PartName::XC3S400, 0.02);
    for (auto _ : state) {
        auto report = power::estimate_power(impl.routed, activity, 50e6);
        benchmark::DoNotOptimize(report.total_mw());
    }
}
BENCHMARK(BM_PowerEstimate)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    print_breakdown();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
