// §4.2 headline — Device downsizing through partial reconfiguration.
//
// Paper: "Implementing the complete system without exploiting reconfiguration
// would require more than 6000 slices and at least a Spartan-3 1000. By
// exploiting hardware reconfiguration the FPGA size could be reduced ... to a
// Spartan-3 400. Furthermore ... by re-partitioning the modules into e.g. 5
// reconfigurable modules of smaller sizes, the system could be implemented on
// a Spartan-3 200." Smaller device => lower static power and lower cost.
//
// We compute the resident slice demand of each scenario (with a 7 %
// place-and-route headroom: ISE-era flows close slice-dominated designs at
// ~93 % utilization), fit the smallest part, and report the static-power and
// cost consequences. The 5-slot scenario uses the minimal MicroBlaze
// configuration (documented in DESIGN.md).
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "refpga/common/table.hpp"

namespace {

using namespace refpga;

constexpr double kParHeadroom = 1.07;  // routing/fragmentation margin (~93% util)

struct Scenario {
    std::string name;
    std::size_t resident_slices = 0;  ///< worst-case simultaneously configured
    std::size_t with_headroom = 0;
    std::optional<fabric::PartName> part;
    int slot_loads_per_cycle = 0;
};

Scenario make_scenario(std::string name, std::size_t resident, int loads) {
    Scenario s;
    s.name = std::move(name);
    s.resident_slices = resident;
    s.with_headroom =
        static_cast<std::size_t>(static_cast<double>(resident) * kParHeadroom);
    s.part = fabric::smallest_fit(static_cast<int>(s.with_headroom), 0, 0);
    s.slot_loads_per_cycle = loads;
    return s;
}

void print_device_fit() {
    benchkit::print_header("Headline (§4.2)",
                           "device fit: monolithic vs reconfigured vs 5-slot");

    // Full system, full-featured soft IP.
    const app::SystemNetlist full = app::build_system_netlist({});
    const auto stats = netlist::partition_stats(full.nl);
    const std::size_t static_slices = stats[0].slices();
    const std::size_t amp = stats[1].slices();
    const std::size_t cap = stats[2].slices();
    const std::size_t filt = stats[3].slices();

    // 5-slot scenario: slim static area (minimal MicroBlaze, no EMC) and the
    // processing pipeline split into 5 submodules; the slot is sized by the
    // largest submodule (~amp_phase/3: MAC stage, CORDIC stage, divider,
    // cos+scaling, filter).
    app::SystemNetlistOptions slim_options;
    slim_options.soft_ip = soc::SoftIpBudgets::minimal();
    const app::SystemNetlist slim = app::build_system_netlist(slim_options);
    const auto slim_stats = netlist::partition_stats(slim.nl);
    const std::size_t slim_static = slim_stats[0].slices();
    const std::size_t largest_submodule =
        std::max({amp / 3 + 1, cap / 2 + 1, filt});

    std::vector<Scenario> scenarios;
    scenarios.push_back(
        make_scenario("monolithic (all modules resident)",
                      static_slices + amp + cap + filt, 0));
    scenarios.push_back(make_scenario("reconfigured, 1 slot (paper's system)",
                                      static_slices + amp, 3));
    scenarios.push_back(make_scenario("reconfigured, 5 slots + slim static",
                                      slim_static + largest_submodule, 5));

    Table table({"scenario", "resident slices", "+7% headroom", "smallest part",
                 "static power (mW)", "unit cost (USD)", "loads/cycle"});
    for (const auto& s : scenarios) {
        const fabric::Part* part = s.part ? &fabric::part(*s.part) : nullptr;
        table.add_row({s.name, std::to_string(s.resident_slices),
                       std::to_string(s.with_headroom),
                       part ? std::string(part->id) : "none",
                       part ? Table::num(part->static_power_mw(), 1) : "-",
                       part ? Table::num(part->unit_cost_usd, 2) : "-",
                       std::to_string(s.slot_loads_per_cycle)});
    }
    std::cout << table.render();

    const auto& mono = scenarios[0];
    const auto& reconf = scenarios[1];
    const auto& five = scenarios[2];
    std::cout << "paper: >6000 slices monolithic -> XC3S1000; reconfigured -> "
                 "XC3S400; 5-slot -> XC3S200\n";
    std::cout << "measured: " << mono.with_headroom << " -> "
              << (mono.part ? fabric::part(*mono.part).id : "none") << "; "
              << reconf.with_headroom << " -> "
              << (reconf.part ? fabric::part(*reconf.part).id : "none") << "; "
              << five.with_headroom << " -> "
              << (five.part ? fabric::part(*five.part).id : "none") << "\n";
    if (mono.part && reconf.part) {
        const double saved = fabric::part(*mono.part).static_power_mw() -
                             fabric::part(*reconf.part).static_power_mw();
        std::cout << "static power saved by downsizing (mono -> 1 slot): "
                  << Table::num(saved, 1) << " mW\n";
    }

    // Granularity sweep: slot count vs slot size vs per-cycle reconfig time
    // over the JCAP (more slots = smaller device but more overhead).
    benchkit::print_header("Ablation", "slot granularity sweep (JCAP)");
    const auto port = reconfig::jcap_port();
    Table sweep({"slots", "slot size (slices)", "resident + headroom", "part",
                 "reconfig per cycle (ms)"});
    const std::size_t pipeline = amp + cap + filt;
    for (const int slots : {1, 2, 3, 5, 8}) {
        const std::size_t slot_size = pipeline / static_cast<std::size_t>(slots) + 1;
        const std::size_t resident = static_cast<std::size_t>(
            static_cast<double>(slim_static + slot_size) * kParHeadroom);
        const auto part_name = fabric::smallest_fit(static_cast<int>(resident), 0, 0);
        double reconfig_ms = 0.0;
        if (part_name) {
            const fabric::Device dev(*part_name);
            // Slot columns sized by slice share of the die.
            const int cols = std::max(
                1, static_cast<int>(slot_size * static_cast<std::size_t>(dev.cols()) /
                                    static_cast<std::size_t>(dev.slice_count())));
            const auto bits = dev.partial_bits(0, std::min(cols, dev.cols()));
            reconfig_ms = slots *
                          (port.setup_s + static_cast<double>(bits) /
                                              port.throughput_bps()) *
                          1e3;
        }
        sweep.add_row({std::to_string(slots), std::to_string(slot_size),
                       std::to_string(resident),
                       part_name ? std::string(fabric::part(*part_name).id) : "none",
                       Table::num(reconfig_ms, 2)});
    }
    std::cout << sweep.render();
}

void BM_SmallestFit(benchmark::State& state) {
    for (auto _ : state) {
        auto part = fabric::smallest_fit(4829, 8, 8);
        benchmark::DoNotOptimize(part);
    }
}
BENCHMARK(BM_SmallestFit);

}  // namespace

int main(int argc, char** argv) {
    print_device_fit();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
