// Table 2 + Figure 6 — Power-optimized place & route (§4.3).
//
// Paper flow: post-PAR simulation -> VCD -> XPower activity -> pick the nets
// with the highest communication rates -> reallocate their logic to closer
// slices and re-route on shorter wires -> per-net power drops 40-60 %
// (headline: 1176 uW -> 516 uW, -56 %), verified after every step that total
// dynamic power decreased. Figure 6 shows one net's routing before/after.
//
// Ablation: activity-weighted placement (beta > 0) vs the conventional
// wirelength-driven flow (beta = 0).
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "refpga/common/table.hpp"
#include "refpga/par/reallocate.hpp"
#include "refpga/par/timing.hpp"

namespace {

using namespace refpga;

constexpr double kClockHz = 50e6;

void print_table2(bool smoke) {
    benchkit::print_header(
        "Table 2", "per-net power before/after logic reallocation (uW)");

    // The paper optimized the hardware data-processing modules; use the full
    // system netlist (soft-IP activity included) on the XC3S1000. Smoke mode
    // shrinks to the hardware core on the XC3S400.
    const app::SystemNetlist sys =
        smoke ? app::build_system_netlist(
                    {app::AppParams{}, soc::SoftIpBudgets{}, /*include_soft_ip=*/false})
              : app::build_system_netlist({});
    const sim::ActivityMap activity =
        benchkit::system_activity_via_vcd(sys.nl, kClockHz, smoke ? 64 : 256);

    benchkit::Implementation impl(
        sys.nl, smoke ? fabric::PartName::XC3S400 : fabric::PartName::XC3S1000, 0.05);

    par::ReallocateOptions options;
    options.net_count = 8;
    options.capture_routes = true;
    const par::ReallocateReport report =
        par::optimize_net_power(impl.placement, impl.routed, activity, options);

    Table table({"signal net", "power before (uW)", "power after (uW)",
                 "reduction (%)", "logic moved"});
    for (const auto& change : report.nets)
        table.add_row({change.name, Table::num(change.before_uw),
                       Table::num(change.after_uw),
                       Table::num(change.reduction_pct(), 1),
                       change.moved_logic ? "yes" : "re-route only"});
    std::cout << table.render();
    std::cout << "total dynamic power: " << Table::num(report.total_before_uw * 1e-3)
              << " mW -> " << Table::num(report.total_after_uw * 1e-3)
              << " mW (verified not increased: "
              << (report.total_after_uw <= report.total_before_uw ? "yes" : "NO")
              << ")\n";
    std::cout << "critical path: " << Table::num(report.critical_before_ps * 1e-3, 2)
              << " ns -> " << Table::num(report.critical_after_ps * 1e-3, 2)
              << " ns (slack gate " << options.timing_slack << "x)\n";

    // Figure 6: the hottest net's route before and after.
    benchkit::print_header("Figure 6", "optimized signal net routing (hottest net)");
    if (!report.nets.empty()) {
        std::cout << "--- before reallocation ---\n"
                  << report.nets.front().route_before;
        std::cout << "--- after reallocation ---\n"
                  << report.nets.front().route_after;
    }
}

void print_placement_ablation() {
    benchkit::print_header(
        "Ablation", "activity-weighted placement (beta) vs wirelength-only");

    const app::SystemNetlist sys = app::build_system_netlist(
        {app::AppParams{}, soc::SoftIpBudgets{}, /*include_soft_ip=*/false});
    const sim::ActivityMap activity =
        benchkit::system_activity_via_vcd(sys.nl, kClockHz);

    Table table({"placer", "total net C (pF)", "hot-20 net power (uW)"});
    for (const double beta : {0.0, 0.5, 1.5}) {
        benchkit::Implementation impl(sys.nl, fabric::PartName::XC3S400, 0.15, beta,
                                      &activity);
        double hot_uw = 0.0;
        for (const auto net : activity.busiest(20))
            hot_uw += par::net_power_uw(impl.routed, net, activity, 1.2);
        table.add_row({beta == 0.0 ? "wirelength only (ISE-like)"
                                   : "activity beta=" + Table::num(beta, 1),
                       Table::num(impl.routed.total_capacitance_pf(), 1),
                       Table::num(hot_uw, 1)});
    }
    std::cout << table.render();
}

void BM_Reallocate8Nets(benchmark::State& state) {
    const app::SystemNetlist sys = app::build_system_netlist(
        {app::AppParams{}, soc::SoftIpBudgets{}, /*include_soft_ip=*/false});
    const sim::ActivityMap activity =
        benchkit::system_activity_via_vcd(sys.nl, kClockHz, 64);
    for (auto _ : state) {
        benchkit::Implementation impl(sys.nl, fabric::PartName::XC3S400, 0.02);
        par::ReallocateOptions options;
        options.net_count = 8;
        auto report =
            par::optimize_net_power(impl.placement, impl.routed, activity, options);
        benchmark::DoNotOptimize(report.total_after_uw);
    }
}
BENCHMARK(BM_Reallocate8Nets)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
    const bool smoke = benchkit::smoke_mode(argc, argv);
    print_table2(smoke);
    if (smoke) return 0;  // scaled-down end-to-end pass for CI
    print_placement_ablation();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
