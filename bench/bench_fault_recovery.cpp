// Fault detection and recovery: how fast does readback scrubbing find a
// configuration upset, and what does self-healing cost per cycle?
//
// The paper motivates FPGAs with upcoming requirements on "failure detection
// and recovery" (§1, §5). Detection latency is set by the scrub bandwidth —
// the configuration port's throughput times the share of the cycle's idle
// window donated to readback — so the same port choice that drives the §4.2
// reconfiguration trade-off also bounds the repair loop. We sweep both axes
// on the running system and report measured MTTD/MTTR, availability and the
// scrub share of the schedule.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "refpga/common/table.hpp"
#include "refpga/reconfig/config_port.hpp"
#include "refpga/reconfig/scrubber.hpp"

namespace {

using namespace refpga;

constexpr double kUpsetRate = 0.5;  // events per CLB-column-second
constexpr int kCycles = 60;

app::SystemOptions faulty_options(const reconfig::ConfigPortSpec& port,
                                  double scrub_idle_fraction) {
    app::SystemOptions options;
    options.variant = app::SystemVariant::ReconfiguredHw;
    options.port = port;
    options.scrub_idle_fraction = scrub_idle_fraction;
    options.fault.upset_rate_per_column_s = kUpsetRate;
    return options;
}

fault::FaultStats run_faulty(const app::SystemOptions& options) {
    app::MeasurementSystem system(options, 2008);
    system.set_true_level(0.55);
    for (int i = 0; i < kCycles; ++i) (void)system.run_cycle();
    return system.fault_stats();
}

void print_port_sweep() {
    benchkit::print_header(
        "Fault recovery vs configuration port",
        "upset rate 0.5 / column-second, scrub share 0.5 of idle");
    Table table({"port", "analytic MTTD (ms)", "measured MTTD (ms)",
                 "MTTR (ms)", "scrub (ms/cyc)", "availability"});
    const fabric::Device dev(fabric::PartName::XC3S400);
    for (const reconfig::ConfigPortSpec& port :
         {reconfig::jcap_port(), reconfig::jcap_accelerated_port(),
          reconfig::icap_port()}) {
        const app::SystemOptions options = faulty_options(port, 0.5);
        const fault::FaultStats stats = run_faulty(options);
        // Analytic reference: a free-running scrub loop at the port's full
        // bandwidth. The in-system scrubber only gets the donated idle
        // share, so its measured latency sits above this bound.
        const double analytic =
            reconfig::mean_detection_latency_s(dev, port, 0.0);
        table.add_row({port.name, Table::num(analytic * 1e3, 2),
                       Table::num(stats.mean_time_to_detect_s() * 1e3, 2),
                       Table::num(stats.mean_time_to_repair_s() * 1e3, 2),
                       Table::num((stats.scrub_s + stats.repair_s) /
                                      static_cast<double>(stats.cycles) * 1e3,
                                  2),
                       Table::num(stats.availability(), 3)});
    }
    std::cout << table.render();
    std::cout << "faster ports detect sooner and repair cheaper; the plain "
                 "JCAP needs several\ncycles per full-device pass, so upsets "
                 "linger and availability drops\n";
}

void print_scrub_share_sweep() {
    benchkit::print_header(
        "Fault recovery vs donated idle share",
        "accelerated JCAP, upset rate 0.5 / column-second");
    Table table({"idle share", "cols/cycle", "measured MTTD (ms)",
                 "scrub (ms/cyc)", "availability"});
    const fabric::Device dev(fabric::PartName::XC3S400);
    for (const double share : {0.1, 0.25, 0.5, 0.9}) {
        const app::SystemOptions options =
            faulty_options(reconfig::jcap_accelerated_port(), share);
        const fault::FaultStats stats = run_faulty(options);
        // Columns scanned per cycle, recovered from the scrub time and the
        // port's per-column readback cost.
        const double column_s =
            static_cast<double>(dev.bits_per_clb_column()) /
            options.port.throughput_bps();
        table.add_row(
            {Table::num(share, 2),
             Table::num(stats.scrub_s / column_s / static_cast<double>(stats.cycles),
                        1),
             Table::num(stats.mean_time_to_detect_s() * 1e3, 2),
             Table::num((stats.scrub_s + stats.repair_s) /
                            static_cast<double>(stats.cycles) * 1e3,
                        2),
             Table::num(stats.availability(), 3)});
    }
    std::cout << table.render();
    std::cout << "donating more idle time buys detection latency with zero "
                 "schedule risk: the\nscrubber only ever spends the idle "
                 "window the Fig. 4 cycle leaves over\n";
}

void BM_FaultyCycleJcapAccel(benchmark::State& state) {
    const app::SystemOptions options =
        faulty_options(reconfig::jcap_accelerated_port(), 0.5);
    app::MeasurementSystem system(options, 2008);
    system.set_true_level(0.5);
    for (auto _ : state) {
        auto report = system.run_cycle();
        benchmark::DoNotOptimize(report.level);
    }
}
BENCHMARK(BM_FaultyCycleJcapAccel)->Unit(benchmark::kMillisecond);

void BM_ScrubFullDeviceIcap(benchmark::State& state) {
    const fabric::Device dev(fabric::PartName::XC3S400);
    reconfig::ConfigMemory memory(dev);
    memory.load_columns(0, dev.cols(), 42);
    reconfig::Scrubber scrubber(memory, reconfig::icap_port());
    Rng rng(7);
    for (auto _ : state) {
        memory.inject_upset(
            static_cast<int>(rng.next_below(static_cast<std::uint32_t>(dev.cols()))),
            rng);
        auto report = scrubber.scan(0, dev.cols());
        benchmark::DoNotOptimize(report.columns_repaired);
    }
}
BENCHMARK(BM_ScrubFullDeviceIcap);

}  // namespace

int main(int argc, char** argv) {
    print_port_sweep();
    print_scrub_share_sweep();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
