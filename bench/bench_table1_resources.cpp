// Table 1 — Resource utilization of the system on the Spartan-3 1000.
//
// Paper: slice counts for the static area (MicroBlaze, FSL, RS232, ...) and
// the three reconfigurable modules (amp & phase, capacity, filter), with the
// amp & phase module the largest. We rebuild the full system netlist,
// partition it as in Fig. 2, and report per-partition slices/BRAM/MULT plus
// the device-fit consequences.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "refpga/common/table.hpp"

namespace {

using namespace refpga;

void print_table1() {
    benchkit::print_header("Table 1", "resource utilization of the system (XC3S1000)");

    const app::SystemNetlist sys = app::build_system_netlist({});
    const auto stats = netlist::partition_stats(sys.nl);

    Table table({"partition", "slices", "LUTs", "FFs", "MULT18", "BRAM"});
    std::size_t total_slices = 0;
    for (const auto& s : stats) {
        table.add_row({s.name == "static" ? "static (MicroBlaze, FSL, JCAP, UART, sinus gen)"
                                          : s.name,
                       std::to_string(s.slices()), std::to_string(s.luts),
                       std::to_string(s.ffs), std::to_string(s.mults),
                       std::to_string(s.brams)});
        total_slices += s.slices();
    }
    std::cout << table.render();

    const auto amp = stats[1].slices();
    const auto cap = stats[2].slices();
    const auto filt = stats[3].slices();
    std::cout << "total (all modules resident): " << total_slices << " slices\n";
    std::cout << "largest reconfigurable module: amp_phase ("
              << (amp > cap && amp > filt ? "as in the paper" : "UNEXPECTED")
              << ")\n";
    const auto fit = fabric::smallest_fit(static_cast<int>(total_slices), 0, 0);
    std::cout << "smallest part for the monolithic system: "
              << (fit ? fabric::part(*fit).id : "none") << "\n";
    const auto resident = stats[0].slices() + amp;
    const auto fit_reconf = fabric::smallest_fit(static_cast<int>(resident), 0, 0);
    std::cout << "static + largest module (reconfigured system): " << resident
              << " slices -> " << (fit_reconf ? fabric::part(*fit_reconf).id : "none")
              << "\n";
}

void BM_BuildSystemNetlist(benchmark::State& state) {
    for (auto _ : state) {
        const app::SystemNetlist sys = app::build_system_netlist({});
        benchmark::DoNotOptimize(sys.nl.cell_count());
    }
}
BENCHMARK(BM_BuildSystemNetlist)->Unit(benchmark::kMillisecond);

void BM_PartitionStats(benchmark::State& state) {
    const app::SystemNetlist sys = app::build_system_netlist({});
    for (auto _ : state) {
        auto stats = netlist::partition_stats(sys.nl);
        benchmark::DoNotOptimize(stats);
    }
}
BENCHMARK(BM_PartitionStats)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
    print_table1();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
