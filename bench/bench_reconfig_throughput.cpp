// §4.2 / [11] — Configuration-port throughput and reconfiguration overhead.
//
// Paper: "the JCAP core ... offers a reconfiguration rate which is lower than
// the one provided by the ICAP interface. However ... it is also described
// how the reconfiguration rate provided by the JCAP core may be increased."
// We sweep every port model across module bitstream sizes and report the
// time/energy overhead per measurement cycle.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "refpga/common/table.hpp"
#include "refpga/reconfig/config_port.hpp"
#include "refpga/reconfig/controller.hpp"
#include "refpga/reconfig/scrubber.hpp"

namespace {

using namespace refpga;

void print_port_table() {
    benchkit::print_header("Config ports", "throughput and per-module load time");

    const fabric::Device dev(fabric::PartName::XC3S400);
    const int slot_cols = dev.cols() / 3;
    const reconfig::Bitstream slot =
        reconfig::Bitstream::partial(dev, "module", 0, slot_cols);
    const reconfig::Bitstream full = reconfig::Bitstream::full(dev, "full");

    Table table({"port", "payload rate", "slot load (" +
                             std::to_string(slot.bytes() / 1024) + " KiB)",
                 "full device (" + std::to_string(full.bytes() / 1024) + " KiB)",
                 "energy/slot (mJ)"});
    for (const auto& port :
         {reconfig::jcap_port(), reconfig::jcap_accelerated_port(),
          reconfig::selectmap_port(), reconfig::icap_port()}) {
        table.add_row({port.name,
                       Table::num(port.throughput_bps() / 1e6, 1) + " Mbit/s",
                       Table::num(port.config_time_s(slot) * 1e3, 2) + " ms",
                       Table::num(port.config_time_s(full) * 1e3, 2) + " ms",
                       Table::num(port.config_energy_mj(slot), 3)});
    }
    std::cout << table.render();
    std::cout << "note: Spartan-3 has no ICAP; the JCAP [11] virtualizes the "
                 "internal port over JTAG, trading rate for availability\n";
}

void print_cycle_overhead() {
    benchkit::print_header("Per-cycle overhead",
                           "3 module swaps per 100 ms measurement cycle");

    const fabric::Device dev(fabric::PartName::XC3S400);
    Table table({"port", "reconfig per cycle (ms)", "share of 100 ms cycle",
                 "reconfig energy per cycle (mJ)"});
    for (const auto& port :
         {reconfig::jcap_port(), reconfig::jcap_accelerated_port(),
          reconfig::selectmap_port(), reconfig::icap_port()}) {
        reconfig::ReconfigController ctrl(dev, port);
        const int slot_cols = dev.cols() / 3;
        ctrl.add_slot("slot0", {dev.cols() - slot_cols, dev.cols(), 0, dev.rows()});
        for (const char* module : {"amp_phase", "capacity", "filter"})
            ctrl.register_module("slot0", module);
        for (const char* module : {"amp_phase", "capacity", "filter"})
            (void)ctrl.load("slot0", module);
        table.add_row({port.name, Table::num(ctrl.total_time_s() * 1e3, 2),
                       Table::num(ctrl.total_time_s() / 0.1 * 100.0, 1) + " %",
                       Table::num(ctrl.total_energy_mj(), 3)});
    }
    std::cout << table.render();
}

void print_bitstream_scaling() {
    benchkit::print_header("Scaling", "JCAP load time vs slot width (XC3S400)");
    const fabric::Device dev(fabric::PartName::XC3S400);
    const auto port = reconfig::jcap_port();
    Table table({"slot columns", "bitstream (KiB)", "load time (ms)"});
    for (const int cols : {2, 4, 8, 12, 18, 28}) {
        const auto bs = reconfig::Bitstream::partial(dev, "m", 0, cols);
        table.add_row({std::to_string(cols), std::to_string(bs.bytes() / 1024),
                       Table::num(port.config_time_s(bs) * 1e3, 2)});
    }
    std::cout << table.render();
}

void print_scrubbing() {
    // §1/§5 motivation: "failure detection and recovery". Readback scrubbing
    // over the configuration port detects and repairs SEUs; the port rate
    // sets the detection latency.
    benchkit::print_header("Extension", "SEU readback scrubbing (fault injection)");

    const fabric::Device dev(fabric::PartName::XC3S400);
    Rng rng(42);
    Table table({"port", "full-device scan (ms)", "mean detect latency (ms)",
                 "100 injected upsets: detected/repaired"});
    for (const auto& port :
         {reconfig::jcap_port(), reconfig::jcap_accelerated_port(),
          reconfig::icap_port()}) {
        reconfig::ConfigMemory memory(dev);
        memory.load_columns(0, dev.cols(), 0xBADC0FFEEULL);
        reconfig::Scrubber scrubber(memory, port);

        int detected = 0;
        int repaired = 0;
        double scan_ms = 0.0;
        // 10 rounds of 10 upsets each, scrubbed after every round.
        for (int round = 0; round < 10; ++round) {
            for (int i = 0; i < 10; ++i)
                memory.inject_upset(
                    static_cast<int>(rng.next_below(
                        static_cast<std::uint32_t>(dev.cols()))),
                    rng);
            const reconfig::ScrubReport report = scrubber.scan(0, dev.cols());
            detected += report.upsets_detected;
            repaired += report.columns_repaired;
            scan_ms = report.readback_s * 1e3;
        }
        const double latency_ms =
            reconfig::mean_detection_latency_s(dev, port, 0.1) * 1e3;
        table.add_row({port.name, Table::num(scan_ms, 2), Table::num(latency_ms, 1),
                       std::to_string(detected) + "/" + std::to_string(repaired)});
    }
    std::cout << table.render();
    std::cout << "(multiple upsets in one column count once: the column is "
                 "rewritten whole; residual corruption after each scan is 0)\n";
}

void BM_ControllerLoad(benchmark::State& state) {
    const fabric::Device dev(fabric::PartName::XC3S400);
    reconfig::ReconfigController ctrl(dev, reconfig::jcap_port());
    ctrl.add_slot("s", {0, 9, 0, dev.rows()});
    ctrl.register_module("s", "a");
    ctrl.register_module("s", "b");
    bool flip = false;
    for (auto _ : state) {
        auto ev = ctrl.load("s", flip ? "a" : "b");
        flip = !flip;
        benchmark::DoNotOptimize(ev.time_s);
    }
}
BENCHMARK(BM_ControllerLoad);

}  // namespace

int main(int argc, char** argv) {
    print_port_table();
    print_cycle_overhead();
    print_bitstream_scaling();
    print_scrubbing();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
