// Shared plumbing for the reproduction benches: builds the system netlist,
// runs the physical flow (pack/place/route), extracts switching activity via
// the paper's VCD round trip, and prints consistent headers.
#pragma once

#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

#include "refpga/app/activity.hpp"
#include "refpga/app/system.hpp"
#include "refpga/netlist/stats.hpp"
#include "refpga/par/pack.hpp"
#include "refpga/par/placer.hpp"
#include "refpga/par/router.hpp"
#include "refpga/sim/activity.hpp"
#include "refpga/sim/engine.hpp"
#include "refpga/sim/simulator.hpp"
#include "refpga/sim/vcd.hpp"

namespace refpga::benchkit {

inline void print_header(const std::string& id, const std::string& title) {
    std::cout << "\n=== " << id << ": " << title << " ===\n";
}

/// True when the binary was invoked with --smoke. CI runs the benches in
/// this mode: a scaled-down scenario that validates the bench end-to-end
/// (and its invariants) without paying full measurement time.
inline bool smoke_mode(int argc, char** argv) {
    for (int i = 1; i < argc; ++i)
        if (std::string_view(argv[i]) == "--smoke") return true;
    return false;
}

/// Physical implementation of a netlist on a device: pack + regioned
/// placement + annealing + routing.
struct Implementation {
    par::PackedDesign packed;
    fabric::Device device;
    par::Placement placement;
    par::RoutedDesign routed;

    Implementation(const netlist::Netlist& nl, fabric::PartName part,
                   double effort = 0.15, double activity_beta = 0.0,
                   const sim::ActivityMap* activity = nullptr)
        : packed(par::pack(nl)),
          device(part),
          placement(device, nl, packed),
          routed(placement, par::ChannelCapacity{}) {
        placement.place_initial();
        par::PlacerOptions options;
        options.effort = effort;
        options.activity_beta = activity_beta;
        (void)par::anneal(placement, options, activity);
        routed.route_all(par::RouteMode::Performance);
    }
};

/// Stimulates the system netlist for `cycles` and recovers per-net activity
/// through the full VCD round trip (post-PAR simulation -> VCD -> parse),
/// mirroring the paper's XPower flow. Thin wrapper over app::system_activity
/// so benches, campaigns and examples share one stimulus definition; the
/// engine choice does not change the result (sim/engine.hpp parity contract).
inline sim::ActivityMap system_activity_via_vcd(
    const netlist::Netlist& nl, double clock_hz, int cycles = 256,
    sim::EngineKind engine = sim::EngineKind::Cycle) {
    app::ActivityOptions opts;
    opts.engine = engine;
    opts.cycles = cycles;
    opts.via_vcd = true;
    return app::system_activity(nl, clock_hz, opts);
}

}  // namespace refpga::benchkit
