// svc scaling — sharded campaign throughput vs worker processes.
//
// The process-level analogue of bench_fleet_campaign: the same job is run
// through svc::Coordinator with 1, 2 and 4 forked workers (batch 1, default
// sharding, stealing enabled) and scenarios/sec is reported against the
// single-worker run. The sweep is deliberately uniform-cost — one variant,
// one part, one port, N noise levels — so the speedup measures the service
// (fork + framing + commit + steal overhead), not scenario skew.
//
// Every worker count must render the byte-identical report to the
// single-process CampaignRunner; that parity gate always applies, smoke
// included. The 2-worker speedup gate (>= 1.8x) also applies in smoke mode
// — the per-scenario work is large enough to time reliably — but only on
// hosts with >= 2 cores, since process parallelism cannot beat the core
// count.
//
// Emits BENCH_svc_scale.json next to the binary; --json mirrors it to
// stdout. Exit status is non-zero on a parity violation or a failed
// speedup gate.
//
// --chaos switches to the recovery-overhead matrix instead: the same job
// runs once clean and once under each fault category (worker hang, mid-
// batch crash, torn frame, slow straggler) with the liveness layer armed.
// Every faulted run must still complete and render byte-identically to the
// single-process report — recovery cost is allowed to show up only as wall
// time, never as report drift. Emits BENCH_svc_chaos.json.
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "refpga/common/table.hpp"
#include "refpga/fleet/campaign.hpp"
#include "refpga/fleet/report.hpp"
#include "refpga/svc/coordinator.hpp"

namespace {

using namespace refpga;

bool flag(int argc, char** argv, std::string_view name) {
    for (int i = 1; i < argc; ++i)
        if (std::string_view(argv[i]) == name) return true;
    return false;
}

/// Uniform-cost job: every scenario differs only in tank noise, so each
/// worker's share costs the same and the speedup reflects the service.
svc::JobSpec scale_job(bool smoke) {
    svc::JobSpec spec;
    spec.variants = {app::SystemVariant::ReconfiguredHw};
    spec.parts = {fabric::PartName::XC3S200};
    spec.ports = {fleet::PortKind::Jcap};
    spec.noise_levels.clear();
    const int scenarios = smoke ? 8 : 24;
    for (int i = 0; i < scenarios; ++i)
        spec.noise_levels.push_back(1e-3 * (1.0 + 0.05 * i));
    spec.cycles = smoke ? 2 : 4;
    spec.campaign_seed = 2008;
    return spec;
}

struct Run {
    int workers = 0;
    double wall_s = 0.0;
    double scenarios_per_s = 0.0;
    double speedup = 1.0;
    std::uint64_t shards_stolen = 0;
    bool byte_identical = false;
};

/// One row of the --chaos matrix: a fault category, the options that arm
/// it, and what the run had to do to survive.
struct ChaosRun {
    std::string fault;
    double wall_s = 0.0;
    double overhead = 1.0;  ///< wall vs the clean liveness-armed run
    bool completed = false;
    bool byte_identical = false;
    std::uint64_t restarts = 0;
    std::uint64_t liveness_kills = 0;
    std::uint64_t speculations = 0;
    std::uint64_t duplicates_discarded = 0;
    std::uint64_t protocol_errors = 0;
};

/// The liveness policy every chaos-matrix run (clean included) uses, so the
/// overhead column compares like with like.
svc::CoordinatorOptions chaos_base_options(const std::string& tag) {
    svc::CoordinatorOptions options;
    options.workers = 2;
    options.worker_threads = 1;
    options.batch = 1;
    options.spool_path = "BENCH_svc_chaos_" + tag + ".spool";
    options.heartbeat_interval_ms = 25;
    options.heartbeat_miss_limit = 2;
    options.liveness_timeout_ms = 150;
    options.restart_backoff_ms = 1;
    options.restart_backoff_cap_ms = 50;
    options.max_worker_restarts = 4;
    return options;
}

int run_chaos_matrix(const svc::JobSpec& spec, const std::string& reference_json,
                     bool smoke, bool echo_json) {
    struct Case {
        const char* name;
        void (*arm)(svc::CoordinatorOptions&);
    };
    const Case cases[] = {
        {"clean", [](svc::CoordinatorOptions&) {}},
        {"hang",
         [](svc::CoordinatorOptions& o) {
             o.chaos.hang_prob = 1.0;
             o.chaos.only_worker = 0;
         }},
        {"crash-mid-batch",
         [](svc::CoordinatorOptions& o) {
             o.chaos.crash_phase = svc::CrashPhase::MidBatch;
             o.chaos.crash_after = 1;
         }},
        {"torn-frame",
         [](svc::CoordinatorOptions& o) {
             o.chaos.torn_frame_prob = 1.0;
             o.chaos.only_worker = 0;
         }},
        {"slow-straggler",
         [](svc::CoordinatorOptions& o) {
             o.chaos.slow_batch_prob = 1.0;
             o.chaos.slow_ms = 60;
             o.chaos.only_worker = 0;
             o.steal_min = 1000;  // force the speculation path, not stealing
             o.straggler_factor = 2.0;
             o.straggler_min_ms = 40;
         }},
    };

    std::vector<ChaosRun> runs;
    double clean_wall = 0.0;
    bool all_ok = true;

    Table table({"fault", "wall (s)", "overhead", "restarts", "kills",
                 "specs", "dupes", "report"});
    for (const Case& c : cases) {
        svc::CoordinatorOptions options = chaos_base_options(c.name);
        options.chaos_seed = 2008;
        c.arm(options);

        svc::Coordinator coordinator(spec, options);
        const auto begin = std::chrono::steady_clock::now();
        const svc::CoordinatorResult result = coordinator.run();
        const double seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
                .count();

        ChaosRun run;
        run.fault = c.name;
        run.wall_s = seconds;
        if (run.fault == "clean") clean_wall = seconds;
        run.overhead = clean_wall > 0.0 ? seconds / clean_wall : 1.0;
        run.completed = result.completed;
        run.byte_identical =
            result.completed &&
            coordinator.report().render_json() == reference_json;
        run.restarts = result.worker_restarts;
        run.liveness_kills = result.liveness_kills + result.deadline_kills;
        run.speculations = result.speculations;
        run.duplicates_discarded = result.duplicates_discarded;
        run.protocol_errors = result.protocol_errors;
        all_ok = all_ok && run.completed && run.byte_identical;
        runs.push_back(run);
        table.add_row({run.fault, Table::num(seconds, 3),
                       Table::num(run.overhead, 2) + "x",
                       std::to_string(run.restarts),
                       std::to_string(run.liveness_kills),
                       std::to_string(run.speculations),
                       std::to_string(run.duplicates_discarded),
                       !run.completed        ? "INCOMPLETE"
                       : run.byte_identical ? "identical"
                                            : "DIFFERS"});
    }
    std::cout << table.render();
    std::cout << "all faulted runs byte-identical to single-process report: "
              << (all_ok ? "yes" : "NO — RECOVERY BUG") << "\n";

    std::ostringstream js;
    js << "{\n"
       << "  \"bench\": \"svc_chaos\",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"scenarios\": " << spec.grid_size() << ",\n"
       << "  \"faults\": [";
    for (std::size_t i = 0; i < runs.size(); ++i)
        js << (i > 0 ? ", " : "") << "{\"fault\": \"" << runs[i].fault
           << "\", \"wall_s\": " << runs[i].wall_s
           << ", \"overhead_vs_clean\": " << runs[i].overhead
           << ", \"completed\": " << (runs[i].completed ? "true" : "false")
           << ", \"worker_restarts\": " << runs[i].restarts
           << ", \"liveness_kills\": " << runs[i].liveness_kills
           << ", \"speculations\": " << runs[i].speculations
           << ", \"duplicates_discarded\": " << runs[i].duplicates_discarded
           << ", \"protocol_errors\": " << runs[i].protocol_errors
           << ", \"report_byte_identical\": "
           << (runs[i].byte_identical ? "true" : "false") << "}";
    js << "],\n"
       << "  \"parity_ok\": " << (all_ok ? "true" : "false") << "\n"
       << "}\n";
    std::ofstream("BENCH_svc_chaos.json") << js.str();
    if (echo_json) std::cout << js.str();

    if (!all_ok) {
        std::cerr << "FAIL: a faulted run did not complete or its report "
                     "differs from the single-process report\n";
        return 1;
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    const bool smoke = benchkit::smoke_mode(argc, argv);
    const bool echo_json = flag(argc, argv, "--json");
    const bool chaos = flag(argc, argv, "--chaos");
    benchkit::print_header(
        chaos ? "svc chaos" : "svc scale",
        std::string(chaos ? "recovery overhead under injected faults"
                          : "sharded campaign vs worker processes") +
            (smoke ? " [smoke]" : ""));

    const svc::JobSpec spec = scale_job(smoke);
    int hw = static_cast<int>(std::thread::hardware_concurrency());
    if (hw < 1) hw = 1;

    // Single-process reference: the byte-identity target for every worker
    // count, and a warm-up so the fork()ed children inherit paged-in code.
    fleet::CampaignOptions reference_options(1);
    reference_options.stream_block_ticks = spec.stream_block_ticks;
    const std::string reference_json =
        fleet::CampaignReport::from(
            fleet::CampaignRunner(reference_options).run(spec.expand()))
            .render_json();

    if (chaos) return run_chaos_matrix(spec, reference_json, smoke, echo_json);

    std::vector<Run> runs;
    double single_rate = 0.0;
    double speedup_at_2 = 0.0;
    bool parity_ok = true;

    Table table({"workers", "wall (s)", "scenarios/sec", "speedup vs 1",
                 "stolen", "report"});
    for (const int workers : {1, 2, 4}) {
        svc::CoordinatorOptions options;
        options.workers = workers;
        options.worker_threads = 1;
        options.batch = 1;
        options.spool_path =
            "BENCH_svc_scale_w" + std::to_string(workers) + ".spool";
        svc::Coordinator coordinator(spec, options);

        const auto begin = std::chrono::steady_clock::now();
        const svc::CoordinatorResult result = coordinator.run();
        const double seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
                .count();
        if (!result.completed) {
            std::cerr << "FAIL: " << workers << "-worker run did not complete: "
                      << result.error << "\n";
            return 1;
        }

        Run run;
        run.workers = workers;
        run.wall_s = seconds;
        run.scenarios_per_s = static_cast<double>(spec.grid_size()) / seconds;
        if (workers == 1) single_rate = run.scenarios_per_s;
        run.speedup = single_rate > 0.0 ? run.scenarios_per_s / single_rate : 1.0;
        if (workers == 2) speedup_at_2 = run.speedup;
        run.shards_stolen = result.shards_stolen;
        run.byte_identical = coordinator.report().render_json() == reference_json;
        parity_ok = parity_ok && run.byte_identical;
        runs.push_back(run);
        table.add_row({std::to_string(workers), Table::num(seconds, 3),
                       Table::num(run.scenarios_per_s, 2),
                       Table::num(run.speedup, 2) + "x",
                       std::to_string(run.shards_stolen),
                       run.byte_identical ? "identical" : "DIFFERS"});
    }
    std::cout << table.render();
    std::cout << "hardware concurrency: " << hw << "\n";
    std::cout << "all worker counts byte-identical to single-process report: "
              << (parity_ok ? "yes" : "NO — DETERMINISM BUG") << "\n";

    const bool gate_evaluated = hw >= 2;
    if (!gate_evaluated)
        std::cout << "2-worker speedup gate skipped: single-core host cannot "
                     "run workers in parallel\n";

    std::ostringstream js;
    js << "{\n"
       << "  \"bench\": \"svc_scale\",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"scenarios\": " << spec.grid_size() << ",\n"
       << "  \"hardware_concurrency\": " << hw << ",\n"
       << "  \"workers\": [";
    for (std::size_t i = 0; i < runs.size(); ++i)
        js << (i > 0 ? ", " : "") << "{\"workers\": " << runs[i].workers
           << ", \"wall_s\": " << runs[i].wall_s
           << ", \"scenarios_per_s\": " << runs[i].scenarios_per_s
           << ", \"speedup_vs_1\": " << runs[i].speedup
           << ", \"shards_stolen\": " << runs[i].shards_stolen
           << ", \"report_byte_identical\": "
           << (runs[i].byte_identical ? "true" : "false") << "}";
    js << "],\n"
       << "  \"two_worker_speedup\": " << speedup_at_2 << ",\n"
       << "  \"speedup_gate_evaluated\": " << (gate_evaluated ? "true" : "false")
       << ",\n"
       << "  \"parity_ok\": " << (parity_ok ? "true" : "false") << "\n"
       << "}\n";
    std::ofstream("BENCH_svc_scale.json") << js.str();
    if (echo_json) std::cout << js.str();

    if (!parity_ok) {
        std::cerr << "FAIL: a sharded run's report differs from the "
                     "single-process report\n";
        return 1;
    }
    // Unlike the timing gates elsewhere, this one holds in smoke mode too:
    // scenarios cost hundreds of milliseconds each, so even the smoke
    // workload times the 2-worker split reliably.
    if (gate_evaluated && speedup_at_2 < 1.8) {
        std::cerr << "FAIL: 2-worker speedup " << speedup_at_2
                  << "x is below the 1.8x target on a " << hw << "-core host\n";
        return 1;
    }
    return 0;
}
